// Regenerates the paper's figures as Graphviz files.
//
//   $ ./figures_to_dot [output-dir]      (default: current directory)
//   $ dot -Tsvg fig2a_mrsin.dot -o fig2a.svg
//
// Produces:
//   fig2a_mrsin.dot   — the 8x8 Omega MRSIN with the occupied circuits of
//                       Fig. 2(a) highlighted;
//   fig2b_flow.dot    — the Transformation-1 flow network with the maximum
//                       flow drawn bold (Fig. 2(b));
//   fig5b_flow.dot    — the Transformation-2 network with the min-cost
//                       flow (Fig. 5(b); bypass node u included);
//   fig8a_flow.dot    — the 4x4 MRSIN flow network with the initial
//                       two-circuit flow of Fig. 8(a).
#include <fstream>
#include <iostream>
#include <string>

#include "core/routing.hpp"
#include "core/transform.hpp"
#include "flow/max_flow.hpp"
#include "flow/min_cost.hpp"
#include "topo/builders.hpp"
#include "topo/dot_export.hpp"

namespace {

void write_file(const std::string& path, const auto& writer) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  writer(out);
  std::cout << "wrote " << path << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsin;
  const std::string dir = argc > 1 ? std::string(argv[1]) + "/" : "./";

  // Fig. 2(a): the occupied MRSIN.
  topo::Network omega = topo::make_omega(8);
  omega.establish(core::enumerate_free_paths(omega, 1, 5).front());
  omega.establish(core::enumerate_free_paths(omega, 3, 3).front());
  write_file(dir + "fig2a_mrsin.dot",
             [&](std::ostream& out) { topo::write_dot(out, omega); });

  // Fig. 2(b): Transformation 1 + max flow.
  const core::Problem fig2 =
      core::make_problem(omega, {0, 2, 4, 6, 7}, {0, 2, 4, 6, 7});
  core::TransformResult t1 = core::transformation1(fig2);
  flow::max_flow_dinic(t1.net);
  write_file(dir + "fig2b_flow.dot",
             [&](std::ostream& out) { flow::write_dot(out, t1.net); });

  // Fig. 5(b): Transformation 2 + min-cost flow (out-of-kilter).
  const topo::Network omega_free = topo::make_omega(8);
  core::Problem fig5;
  fig5.network = &omega_free;
  fig5.requests = {{2, 6, 0}, {4, 4, 0}, {7, 9, 0}};
  fig5.free_resources = {
      {0, 9, 0}, {3, 2, 0}, {4, 3, 0}, {6, 8, 0}, {7, 10, 0}};
  core::TransformResult t2 = core::transformation2(fig5);
  flow::min_cost_flow_out_of_kilter(t2.net, t2.request_count);
  write_file(dir + "fig5b_flow.dot",
             [&](std::ostream& out) { flow::write_dot(out, t2.net); });

  // Fig. 8(a): the 4x4 MRSIN flow network with the initial assignment.
  const topo::Network cube = topo::make_indirect_cube(4);
  const core::Problem fig8 = core::make_problem(cube, {0, 1, 3}, {0, 2, 3});
  core::TransformResult t3 = core::transformation1(fig8);
  for (const auto& [p, r] : {std::pair<int, int>{0, 0}, {3, 3}}) {
    const auto paths = core::enumerate_free_paths(cube, p, r);
    for (std::size_t a = 0; a < t3.net.arc_count(); ++a) {
      const auto arc = static_cast<flow::ArcId>(a);
      const bool on_path =
          t3.arc_processor[a] == p || t3.arc_resource[a] == r ||
          (t3.arc_link[a] != topo::kInvalidId &&
           std::find(paths.front().links.begin(), paths.front().links.end(),
                     t3.arc_link[a]) != paths.front().links.end());
      if (on_path) t3.net.set_flow(arc, 1);
    }
  }
  write_file(dir + "fig8a_flow.dot",
             [&](std::ostream& out) { flow::write_dot(out, t3.net); });
  return 0;
}
