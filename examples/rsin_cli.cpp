// rsin_cli — command-line driver over the library's main entry points.
//
// Usage:
//   rsin_cli blocking   [topology] [n] [scheduler] [trials] [load]
//   rsin_cli system     [topology] [n] [scheduler] [arrival_rate]
//   rsin_cli federation [topology] [n] [scheduler] [arrival_rate] [cycles]
//   rsin_cli dot        [topology] [n]
//
// schedulers: dinic | ford-fulkerson | edmonds-karp | push-relabel |
//             mincost | greedy | greedy-local | random | randomized-match |
//             threshold | token | hetero-lp | warm | breaker
// Every argument is optional; defaults are omega 8 dinic. --scheduler=NAME
// selects a scheduler by flag (wins over the positional argument).
//
// Fault / degraded-mode flags (anywhere on the command line):
//   --fail-links=K   permanently fail the first K fabric links before the
//                    run (all modes; `dot` renders them dashed)
//   --mttf=X         system mode: mean time to failure per fabric link;
//                    enables the fault injector
//   --mttr=X         system mode: mean time to repair (default 1.0)
//   --deadline=S     wrap the scheduler in core::FallbackScheduler with a
//                    per-cycle deadline of S seconds (greedy on overrun)
//
// Overload / record-replay flags (system mode):
//   --max-queue=K         bound each processor queue at K tasks (0 = off)
//   --shed-policy=P       drop-tail | oldest-first (with --max-queue)
//   --record-trace=PATH   record the run and save a replayable trace
//   --replay=PATH         replay a recorded trace on the same topology
//                         instead of running the scheduler
//
// Batching flags (system mode): wrap the scheduler in
// core::BatchingScheduler so one warm solve drains a window of cycles:
//   --batch-window=K      accumulate up to K cycles per solve (default 1 =
//                         solve every cycle)
//   --batch-deadline=K    force a drain once a pending request has waited
//                         K deferrals (0 = pure window batching)
//
// Observability flags (blocking and system modes):
//   --metrics-out=PATH    dump the obs registry as JSON after the run
//                         (counters, gauges, histograms with percentiles)
//   --trace-events=PATH   write a Chrome-trace-format event file; open it
//                         at chrome://tracing. Incompatible with --replay
//                         (a replay is already a recorded timeline).
//
// Federation flags (federation mode; see DESIGN.md §14):
//   --clusters=K      number of independent cluster domains (default 4);
//                     each owns its own [topology] x [n] fabric
//   --uplink-cap=C    per-directed-pair inter-cluster uplink capacity in
//                     tasks per cycle (default 2)
//   --spill=on|off    coflow-style spill/retry of backlogged tasks to
//                     sibling clusters (default on)
//
// Service-client mode (talks to a running rsind daemon):
//   rsin_cli client SOCKET [--timeout-ms=N] [--retries=N] [command...]
// With command words, sends that one command ("rsin_cli client /run/r.sock
// stats tenant=t0") and exits 0/3 for ok/err. Without, reads command lines
// from stdin and prints each reply.
//
// Signals: SIGINT/SIGTERM are handled cleanly — a partially completed run
// still flushes --metrics-out / --trace-events before exiting 128+sig.
#include <signal.h>

#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/batching.hpp"
#include "core/hetero.hpp"
#include "core/scheduler.hpp"
#include "core/zoo.hpp"
#include "fault/fault_injector.hpp"
#include "fed/federation.hpp"
#include "sim/federated.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "sim/static_experiment.hpp"
#include "sim/system_sim.hpp"
#include "sim/trace.hpp"
#include "svc/client.hpp"
#include "token/token_machine.hpp"
#include "topo/builders.hpp"
#include "topo/dot_export.hpp"
#include "util/table.hpp"

namespace {

using namespace rsin;

/// What a SIGINT/SIGTERM must still write out before the process dies.
/// Guarded by a mutex because the flush callback runs on the signal-watcher
/// thread while main may still be installing it.
struct SignalFlush {
  std::mutex mutex;
  std::function<void()> flush;
};
SignalFlush g_signal_flush;

/// Clean shutdown without async-signal-unsafe work in a handler: SIGINT and
/// SIGTERM are blocked in every thread and consumed by a dedicated sigwait
/// thread, which runs the registered flush (ordinary thread context, so
/// ofstream and mutexes are fine) and exits 128+sig — nonzero, so callers
/// can tell an interrupted run from a finished one.
void start_signal_watcher() {
  static sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  std::thread([] {
    int sig = 0;
    if (sigwait(&set, &sig) != 0) return;
    {
      const std::lock_guard<std::mutex> lock(g_signal_flush.mutex);
      if (g_signal_flush.flush) {
        try {
          g_signal_flush.flush();
        } catch (...) {
          // Dying anyway; a failed flush must not mask the signal exit.
        }
      }
    }
    std::_Exit(128 + sig);
  }).detach();
}

/// `rsin_cli client SOCKET [command words...]` — one-shot or stdin-driven
/// rsind client on the retrying svc::Client.
int run_client(const std::vector<std::string>& args, std::int32_t timeout_ms,
               std::int32_t retries) {
  if (args.size() < 2) {
    std::cerr << "client mode needs a socket path\n";
    return 2;
  }
  svc::ClientOptions options;
  options.socket_path = args[1];
  options.timeout_ms = timeout_ms;
  options.retries = retries;
  svc::Client client(options);

  const auto print_reply = [](const svc::Response& reply) {
    std::cout << (reply.ok ? "ok" : "err");
    if (!reply.body.empty()) std::cout << ' ' << reply.body;
    std::cout << '\n';
    for (const std::string& line : reply.extra) std::cout << line << '\n';
  };

  if (args.size() > 2) {
    std::string line;
    for (std::size_t i = 2; i < args.size(); ++i) {
      if (i > 2) line += ' ';
      line += args[i];
    }
    const svc::Response reply = client.request(line);
    print_reply(reply);
    return reply.ok ? 0 : 3;
  }
  std::string line;
  bool all_ok = true;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    const svc::Response reply = client.request(line);
    print_reply(reply);
    all_ok = all_ok && reply.ok;
  }
  return all_ok ? 0 : 3;
}

std::unique_ptr<core::Scheduler> make_scheduler(const std::string& name) {
  // token and hetero-lp live outside rsin_core; everything else (the flow
  // solvers and the scheduler zoo) comes from the shared factory. An
  // unknown name must enumerate the CLI's full vocabulary, not just the
  // factory's, so the factory error is rewrapped with the extras appended.
  if (name == "token") return std::make_unique<token::TokenScheduler>();
  if (name == "hetero-lp") return std::make_unique<core::HeteroLpScheduler>();
  try {
    return core::make_named_scheduler(name, /*seed=*/1);
  } catch (const std::invalid_argument&) {
    std::string known;
    for (const std::string& candidate : core::scheduler_names()) {
      known += candidate + ' ';
    }
    throw std::invalid_argument("unknown scheduler: " + name +
                                " (expected one of: " + known +
                                "token hetero-lp)");
  }
}

int usage() {
  std::cerr
      << "usage: rsin_cli blocking [topology] [n] [scheduler] [trials] "
         "[load]\n"
         "       rsin_cli system   [topology] [n] [scheduler] [arrival]\n"
         "       rsin_cli federation [topology] [n] [scheduler] [arrival] "
         "[cycles]\n"
         "       rsin_cli dot      [topology] [n]\n"
         "       rsin_cli client   SOCKET [--timeout-ms=N] [--retries=N] "
         "[command...]\n"
         "topologies: omega baseline cube butterfly benes crossbar gamma\n"
         "schedulers: dinic ford-fulkerson edmonds-karp push-relabel\n"
         "            mincost greedy greedy-local random randomized-match\n"
         "            threshold token hetero-lp warm breaker\n"
         "flags: --scheduler=NAME (overrides the positional scheduler)\n"
         "       --fail-links=K --mttf=X --mttr=X --deadline=S\n"
         "       --max-queue=K --shed-policy=drop-tail|oldest-first\n"
         "       --record-trace=PATH --replay=PATH\n"
         "       --batch-window=K --batch-deadline=K (system mode)\n"
         "       --clusters=K --uplink-cap=C --spill=on|off (federation)\n"
         "       --metrics-out=PATH --trace-events=PATH\n";
  return 2;
}

/// Fault / degraded-mode options gathered from --key=value flags.
struct Options {
  std::int32_t fail_links = 0;
  double mttf = 0.0;
  double mttr = 1.0;
  double deadline = 0.0;
  std::int32_t max_queue = 0;
  sim::ShedPolicy shed_policy = sim::ShedPolicy::kDropTail;
  std::string record_trace;
  std::string replay;
  std::int32_t batch_window = 1;
  std::int32_t batch_deadline = 0;
  std::string metrics_out;
  std::string trace_events;
  std::int32_t timeout_ms = 2000;  ///< Client mode: per-attempt deadline.
  std::int32_t retries = 5;        ///< Client mode: retry attempts.
  std::int32_t clusters = 4;       ///< Federation mode: cluster domains.
  std::int64_t uplink_cap = 2;     ///< Federation mode: per-pair uplink cap.
  bool spill = true;               ///< Federation mode: cross-cluster spill.
  std::string scheduler;  ///< --scheduler=NAME; wins over the positional.
};

/// Splits argv into positional arguments and recognized --flags.
std::vector<std::string> parse_args(int argc, char** argv, Options& options) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(arg);
      continue;
    }
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--fail-links") {
      options.fail_links = std::stoi(value);
    } else if (key == "--mttf") {
      options.mttf = std::stod(value);
    } else if (key == "--mttr") {
      options.mttr = std::stod(value);
    } else if (key == "--deadline") {
      options.deadline = std::stod(value);
    } else if (key == "--max-queue") {
      options.max_queue = std::stoi(value);
    } else if (key == "--shed-policy") {
      if (value == "drop-tail") {
        options.shed_policy = sim::ShedPolicy::kDropTail;
      } else if (value == "oldest-first") {
        options.shed_policy = sim::ShedPolicy::kOldestFirst;
      } else {
        throw std::invalid_argument("unknown shed policy: " + value);
      }
    } else if (key == "--record-trace") {
      options.record_trace = value;
    } else if (key == "--replay") {
      options.replay = value;
    } else if (key == "--batch-window") {
      options.batch_window = std::stoi(value);
      if (options.batch_window < 1) {
        throw std::invalid_argument("--batch-window must be >= 1");
      }
    } else if (key == "--batch-deadline") {
      options.batch_deadline = std::stoi(value);
      if (options.batch_deadline < 0) {
        throw std::invalid_argument("--batch-deadline must be >= 0");
      }
    } else if (key == "--metrics-out") {
      if (value.empty()) {
        throw std::invalid_argument("--metrics-out requires a path");
      }
      options.metrics_out = value;
    } else if (key == "--trace-events") {
      if (value.empty()) {
        throw std::invalid_argument("--trace-events requires a path");
      }
      options.trace_events = value;
    } else if (key == "--scheduler") {
      if (value.empty()) {
        throw std::invalid_argument("--scheduler requires a name");
      }
      options.scheduler = value;
    } else if (key == "--timeout-ms") {
      options.timeout_ms = std::stoi(value);
    } else if (key == "--retries") {
      options.retries = std::stoi(value);
    } else if (key == "--clusters") {
      options.clusters = std::stoi(value);
      if (options.clusters < 1) {
        throw std::invalid_argument("--clusters must be >= 1");
      }
    } else if (key == "--uplink-cap") {
      options.uplink_cap = std::stoll(value);
      if (options.uplink_cap < 0) {
        throw std::invalid_argument("--uplink-cap must be >= 0");
      }
    } else if (key == "--spill") {
      if (value == "on") {
        options.spill = true;
      } else if (value == "off") {
        options.spill = false;
      } else {
        throw std::invalid_argument("--spill takes on|off, got: " + value);
      }
    } else {
      throw std::invalid_argument("unknown flag: " + arg);
    }
  }
  if (!options.trace_events.empty() && !options.replay.empty()) {
    throw std::invalid_argument(
        "--trace-events cannot be combined with --replay: a replay re-runs "
        "a recorded timeline, so a wall-clock event trace of it would not "
        "describe the original run (metrics via --metrics-out still work)");
  }
  return positional;
}

/// Permanently fails the first `count` eligible fabric links.
void fail_links(topo::Network& net, std::int32_t count) {
  const fault::FaultConfig config;  // fabric_links_only by default
  std::int32_t failed = 0;
  for (topo::LinkId l = 0; l < net.link_count() && failed < count; ++l) {
    if (!fault::link_eligible(net, l, config)) continue;
    net.fail_link(l);
    ++failed;
  }
}

}  // namespace

int main(int argc, char** argv) {
  start_signal_watcher();
  try {
    Options options;
    const std::vector<std::string> args = parse_args(argc, argv, options);
    const auto arg = [&](std::size_t i, const std::string& fallback) {
      return args.size() > i ? args[i] : fallback;
    };
    const std::string mode = arg(0, "blocking");
    if (mode == "client") {
      return run_client(args, options.timeout_ms, options.retries);
    }
    const std::string topology = arg(1, "omega");
    const std::int32_t n = std::stoi(arg(2, "8"));
    const std::string scheduler_name =
        !options.scheduler.empty() ? options.scheduler : arg(3, "dinic");

    topo::Network net = topo::make_named(topology, n);
    if (options.fail_links > 0) fail_links(net, options.fail_links);

    if (mode == "dot") {
      topo::write_dot(std::cout, net);
      return 0;
    }

    // Observability: one registry + trace writer for the whole run, handed
    // down by pointer. Outputs are written after the mode finishes.
    obs::Registry registry;
    obs::TraceWriter trace_writer;
    obs::Handle obs;
    if (!options.metrics_out.empty() || !options.trace_events.empty()) {
      obs.registry = &registry;
      if (!options.trace_events.empty()) obs.trace = &trace_writer;
    }
    const auto write_obs_outputs = [&] {
      if (!options.metrics_out.empty()) {
        std::ofstream out(options.metrics_out);
        if (!out) {
          throw std::invalid_argument("cannot open " + options.metrics_out);
        }
        obs::write_json(registry.snapshot(), out);
        std::cerr << "metrics written to " << options.metrics_out << '\n';
      }
      if (!options.trace_events.empty()) {
        std::ofstream out(options.trace_events);
        if (!out) {
          throw std::invalid_argument("cannot open " + options.trace_events);
        }
        trace_writer.write_json(out);
        std::cerr << "trace events written to " << options.trace_events
                  << '\n';
      }
    };
    if (obs.enabled()) {
      // An interrupted run still flushes its observability outputs (the
      // registry is atomics and the trace writer locks internally, so
      // flushing from the signal thread mid-run is safe).
      const std::lock_guard<std::mutex> lock(g_signal_flush.mutex);
      g_signal_flush.flush = write_obs_outputs;
    }
    // Deregister before the captured locals die on a normal return.
    struct FlushGuard {
      ~FlushGuard() {
        const std::lock_guard<std::mutex> lock(g_signal_flush.mutex);
        g_signal_flush.flush = nullptr;
      }
    } flush_guard;

    if (mode == "federation") {
      // Two-level run: K independent cluster fabrics under the coflow-style
      // uplink admission layer (DESIGN.md §14). Builds its own networks, so
      // the flat `net` above is unused here.
      sim::FederatedScenario scenario;
      scenario.federation.clusters = options.clusters;
      scenario.federation.cluster.topology = topology;
      scenario.federation.cluster.n = n;
      scenario.federation.cluster.scheduler = scheduler_name;
      scenario.federation.uplink_capacity = options.uplink_cap;
      scenario.federation.spill = options.spill;
      scenario.arrival_rate = args.size() > 4 ? std::stod(args[4]) : 0.3;
      scenario.cycles = args.size() > 5 ? std::stoll(args[5]) : 400;
      scenario.validate();
      fed::Federation federation(scenario.federation);
      const sim::FederatedMetrics metrics =
          sim::drive_federation(federation, scenario);
      if (!options.metrics_out.empty()) federation.export_registry(registry);
      write_obs_outputs();
      util::Table table({"cluster", "arrivals", "spill in/out", "granted",
                         "shed", "mean response"});
      for (std::size_t c = 0; c < metrics.clusters.size(); ++c) {
        const sim::FederatedClusterMetrics& cluster = metrics.clusters[c];
        table.add("c" + std::to_string(c), cluster.arrivals,
                  std::to_string(cluster.spill_in) + " / " +
                      std::to_string(cluster.spill_out),
                  cluster.granted, cluster.shed,
                  util::fixed(cluster.mean_response, 3));
      }
      table.add("federation", metrics.offered,
                std::to_string(metrics.spill_admitted) + " / " +
                    std::to_string(metrics.spill_moved),
                metrics.granted, metrics.offered - metrics.granted,
                util::fixed(metrics.mean_response, 3));
      std::cout << table;
      return 0;
    }

    auto scheduler = make_scheduler(scheduler_name);
    if (options.deadline > 0.0) {
      scheduler = std::make_unique<core::FallbackScheduler>(
          std::move(scheduler), options.deadline);
    }
    if (mode == "blocking") {
      sim::StaticExperimentConfig config;
      config.trials = args.size() > 4 ? std::stoll(args[4]) : 2000;
      const double load = args.size() > 5 ? std::stod(args[5]) : 0.75;
      config.request_probability = load;
      config.free_probability = load;
      if (obs.enabled()) scheduler->bind_obs(obs);
      const auto result = sim::run_static_experiment(net, *scheduler, config);
      write_obs_outputs();
      util::Table table({"topology", "n", "scheduler", "trials", "load",
                         "blocking %"});
      table.add(topology, n, scheduler->name(), result.trials,
                util::fixed(load, 2),
                util::pct(result.blocking_probability()));
      std::cout << table;
      return 0;
    }
    if (mode == "system") {
      if (options.batch_window > 1) {
        // Outermost wrapper: deferral decisions apply to whatever stack
        // (deadline fallback, breaker) sits underneath.
        scheduler = std::make_unique<core::BatchingScheduler>(
            std::move(scheduler),
            core::BatchPolicy{options.batch_window, options.batch_deadline});
      }
      sim::SystemConfig config;
      config.arrival_rate = args.size() > 4 ? std::stod(args[4]) : 0.5;
      config.max_queue = options.max_queue;
      config.shed_policy = options.shed_policy;
      if (options.mttf > 0.0) {
        config.faults.link_mttf = options.mttf;
        config.faults.link_mttr = options.mttr;
        config.drop_timeout = 50.0;
      }
      config.obs = obs;
      sim::SystemMetrics metrics;
      if (!options.replay.empty()) {
        // Replay mode: the trace supplies config and inputs; the topology
        // arguments must rebuild the recorded fabric (shape-checked).
        const sim::Trace trace = sim::Trace::load_file(options.replay);
        metrics = obs.enabled() ? sim::replay_system(net, trace, obs)
                                : sim::replay_system(net, trace);
      } else if (!options.record_trace.empty()) {
        sim::TraceRecorder recorder;
        metrics = sim::simulate_system(net, *scheduler, config, recorder);
        recorder.trace().save_file(options.record_trace);
        std::cerr << "trace saved to " << options.record_trace << '\n';
      } else {
        metrics = sim::simulate_system(net, *scheduler, config);
      }
      util::Table table({"metric", "value"});
      table.add("utilization", util::fixed(metrics.resource_utilization, 3));
      table.add("blocking %", util::pct(metrics.blocking_probability));
      table.add("mean response", util::fixed(metrics.mean_response_time, 3));
      table.add("mean wait", util::fixed(metrics.mean_wait_time, 3));
      table.add("tasks completed", metrics.tasks_completed);
      if (options.mttf > 0.0 || options.fail_links > 0) {
        table.add("availability", util::fixed(metrics.availability, 4));
        table.add("faults / repairs",
                  std::to_string(metrics.faults_injected) + " / " +
                      std::to_string(metrics.repairs));
        table.add("circuits torn down", metrics.circuits_torn_down);
        table.add("retries", metrics.retries);
        table.add("tasks dropped", metrics.tasks_dropped);
      }
      if (options.deadline > 0.0) {
        table.add("degraded cycle frac",
                  util::fixed(metrics.degraded_cycle_fraction, 4));
      }
      if (options.max_queue > 0 || !options.replay.empty()) {
        table.add("tasks shed", metrics.tasks_shed);
      }
      if (options.batch_window > 1 || metrics.deferred_cycles > 0) {
        table.add("cycles solved / deferred",
                  std::to_string(metrics.scheduling_cycles) + " / " +
                      std::to_string(metrics.deferred_cycles));
      }
      write_obs_outputs();
      std::cout << table;
      return 0;
    }
    return usage();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return usage();
  }
}
