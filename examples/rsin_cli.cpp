// rsin_cli — command-line driver over the library's main entry points.
//
// Usage:
//   rsin_cli blocking [topology] [n] [scheduler] [trials] [load]
//   rsin_cli system   [topology] [n] [scheduler] [arrival_rate]
//   rsin_cli dot      [topology] [n]
//
// schedulers: dinic | ford-fulkerson | edmonds-karp | push-relabel |
//             mincost | greedy | random | token
// Every argument is optional; defaults are omega 8 dinic.
#include <iostream>
#include <memory>
#include <string>

#include "core/hetero.hpp"
#include "core/scheduler.hpp"
#include "sim/static_experiment.hpp"
#include "sim/system_sim.hpp"
#include "token/token_machine.hpp"
#include "topo/builders.hpp"
#include "topo/dot_export.hpp"
#include "util/table.hpp"

namespace {

using namespace rsin;

std::unique_ptr<core::Scheduler> make_scheduler(const std::string& name) {
  if (name == "dinic") {
    return std::make_unique<core::MaxFlowScheduler>(
        flow::MaxFlowAlgorithm::kDinic);
  }
  if (name == "ford-fulkerson") {
    return std::make_unique<core::MaxFlowScheduler>(
        flow::MaxFlowAlgorithm::kFordFulkerson);
  }
  if (name == "edmonds-karp") {
    return std::make_unique<core::MaxFlowScheduler>(
        flow::MaxFlowAlgorithm::kEdmondsKarp);
  }
  if (name == "push-relabel") {
    return std::make_unique<core::MaxFlowScheduler>(
        flow::MaxFlowAlgorithm::kPushRelabel);
  }
  if (name == "mincost") return std::make_unique<core::MinCostScheduler>();
  if (name == "greedy") return std::make_unique<core::GreedyScheduler>();
  if (name == "random") {
    return std::make_unique<core::RandomScheduler>(util::Rng(1));
  }
  if (name == "token") return std::make_unique<token::TokenScheduler>();
  if (name == "hetero-lp") return std::make_unique<core::HeteroLpScheduler>();
  throw std::invalid_argument("unknown scheduler: " + name);
}

int usage() {
  std::cerr
      << "usage: rsin_cli blocking [topology] [n] [scheduler] [trials] "
         "[load]\n"
         "       rsin_cli system   [topology] [n] [scheduler] [arrival]\n"
         "       rsin_cli dot      [topology] [n]\n"
         "topologies: omega baseline cube butterfly benes crossbar gamma\n"
         "schedulers: dinic ford-fulkerson edmonds-karp push-relabel\n"
         "            mincost greedy random token hetero-lp\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string mode = argc > 1 ? argv[1] : "blocking";
    const std::string topology = argc > 2 ? argv[2] : "omega";
    const std::int32_t n = argc > 3 ? std::stoi(argv[3]) : 8;
    const std::string scheduler_name = argc > 4 ? argv[4] : "dinic";

    const topo::Network net = topo::make_named(topology, n);

    if (mode == "dot") {
      topo::write_dot(std::cout, net);
      return 0;
    }

    const auto scheduler = make_scheduler(scheduler_name);
    if (mode == "blocking") {
      sim::StaticExperimentConfig config;
      config.trials = argc > 5 ? std::stoll(argv[5]) : 2000;
      const double load = argc > 6 ? std::stod(argv[6]) : 0.75;
      config.request_probability = load;
      config.free_probability = load;
      const auto result = sim::run_static_experiment(net, *scheduler, config);
      util::Table table({"topology", "n", "scheduler", "trials", "load",
                         "blocking %"});
      table.add(topology, n, scheduler->name(), result.trials,
                util::fixed(load, 2),
                util::pct(result.blocking_probability()));
      std::cout << table;
      return 0;
    }
    if (mode == "system") {
      sim::SystemConfig config;
      config.arrival_rate = argc > 5 ? std::stod(argv[5]) : 0.5;
      const auto metrics = sim::simulate_system(net, *scheduler, config);
      util::Table table({"metric", "value"});
      table.add("utilization", util::fixed(metrics.resource_utilization, 3));
      table.add("blocking %", util::pct(metrics.blocking_probability));
      table.add("mean response", util::fixed(metrics.mean_response_time, 3));
      table.add("mean wait", util::fixed(metrics.mean_wait_time, 3));
      table.add("tasks completed", metrics.tasks_completed);
      std::cout << table;
      return 0;
    }
    return usage();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return usage();
  }
}
