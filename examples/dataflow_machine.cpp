// Dennis-style data flow machine as a resource sharing system (Fig. 1(b)).
//
// Cell blocks emit enabled instructions; an RSIN routes each instruction to
// any free processing unit. This example runs the dynamic discrete-event
// simulation over a range of instruction arrival rates and shows how the
// scheduling discipline changes delivered throughput, utilization, and
// blocking — the system-level payoff of optimal scheduling.
#include <iostream>

#include "core/scheduler.hpp"
#include "sim/system_sim.hpp"
#include "topo/builders.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsin;

  const topo::Network network = topo::make_omega(8);
  std::cout << "Data flow machine: 8 cell blocks -> Omega RSIN -> 8 "
               "processing units\n\n";

  util::Table table({"arrival rate", "scheduler", "utilization",
                     "blocking %", "response time", "completed"});

  for (const double rate : {0.2, 0.5, 0.8}) {
    sim::SystemConfig config;
    config.arrival_rate = rate;          // enabled instructions per block
    config.transmission_time = 0.05;     // instruction packet transfer
    config.mean_service_time = 1.0;      // instruction execution
    config.cycle_interval = 0.05;
    config.warmup_time = 50.0;
    config.measure_time = 500.0;
    config.seed = 7;

    core::MaxFlowScheduler optimal;
    core::GreedyScheduler greedy;
    for (core::Scheduler* scheduler :
         {static_cast<core::Scheduler*>(&optimal),
          static_cast<core::Scheduler*>(&greedy)}) {
      const sim::SystemMetrics metrics =
          sim::simulate_system(network, *scheduler, config);
      table.add(util::fixed(rate, 1), scheduler->name(),
                util::fixed(metrics.resource_utilization, 3),
                util::pct(metrics.blocking_probability),
                util::fixed(metrics.mean_response_time, 2),
                metrics.tasks_completed);
    }
  }
  std::cout << table;
  std::cout << "\nAt light load the disciplines are indistinguishable; at\n"
               "saturating load the optimal (max-flow) scheduler packs more\n"
               "instructions per cycle and delivers them sooner (lower mean\n"
               "response time). The static benchmark bench_blocking_cube\n"
               "isolates the per-cycle blocking difference directly.\n";
  return 0;
}
