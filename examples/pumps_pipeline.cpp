// PUMPS-style heterogeneous resource sharing (the paper's Fig. 1(a)).
//
// PUMPS organizes VLSI systolic arrays — FFT units, convolvers, histogram
// units — into a pool shared by general-purpose processors through an RSIN.
// This example models a 16-terminal Omega MRSIN whose output ports carry
// three types of image-processing units, and drives one scheduling cycle
// with typed requests through the multicommodity LP scheduler
// (Section III-D) and the greedy per-type baseline.
#include <iostream>
#include <map>
#include <string>

#include "core/hetero.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace {

const char* kTypeNames[] = {"fft", "convolver", "histogram"};

}  // namespace

int main() {
  using namespace rsin;

  topo::Network network = topo::make_omega(16);

  // Resource placement: stripe the three unit types across output ports
  // and mark a few units busy with earlier tasks.
  util::Rng rng(2026);
  core::Problem problem;
  problem.network = &network;
  for (topo::ResourceId r = 0; r < network.resource_count(); ++r) {
    if (rng.bernoulli(0.25)) continue;  // unit busy with an earlier task
    core::FreeResource resource;
    resource.resource = r;
    resource.type = r % 3;
    problem.free_resources.push_back(resource);
  }

  // Ten processors each request one unit of a specific type, as a pictorial
  // query pipeline would (edge detection -> FFT -> histogram ...).
  for (topo::ProcessorId p = 0; p < 10; ++p) {
    core::Request request;
    request.processor = p;
    request.type = static_cast<std::int32_t>(rng.uniform_int(0, 2));
    problem.requests.push_back(request);
  }

  std::map<std::int32_t, int> wanted;
  for (const core::Request& request : problem.requests) ++wanted[request.type];
  std::map<std::int32_t, int> available;
  for (const core::FreeResource& resource : problem.free_resources) {
    ++available[resource.type];
  }
  std::cout << "PUMPS cycle: " << problem.requests.size() << " requests over "
            << problem.free_resources.size() << " free units\n";
  for (int t = 0; t < 3; ++t) {
    std::cout << "  " << kTypeNames[t] << ": " << wanted[t]
              << " requested, " << available[t] << " free\n";
  }

  // Optimal: integral multicommodity flow via the simplex method.
  core::HeteroLpScheduler lp;
  const core::HeteroResult lp_result = lp.schedule_detailed(problem);
  std::cout << "\n" << lp.name() << ": "
            << lp_result.schedule.allocated() << " units allocated"
            << (lp_result.lp_integral ? " (LP optimum integral)" : "")
            << ", " << lp_result.simplex_iterations << " simplex pivots\n";
  for (const core::Assignment& a : lp_result.schedule.assignments) {
    std::cout << "  p" << a.request.processor + 1 << " -> "
              << kTypeNames[a.resource.type] << " unit at port "
              << a.resource.resource + 1 << "\n";
  }

  // Baseline: schedule the types one after another (earlier types can
  // block later ones in the shared fabric).
  core::HeteroSequentialScheduler sequential;
  const core::ScheduleResult seq = sequential.schedule(problem);
  std::cout << sequential.name() << ": " << seq.allocated()
            << " units allocated\n";
  return 0;
}
