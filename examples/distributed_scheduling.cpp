// The distributed token-propagation architecture in action (Section IV).
//
// Runs one scheduling cycle of the clock-accurate token machine on an 8x8
// Omega MRSIN, printing the status-bus trace (the 7-bit wired-OR vectors of
// Table I / Fig. 10) and comparing the cycle cost against the centralized
// monitor architecture's instruction count.
#include <iostream>

#include "core/routing.hpp"
#include "token/monitor.hpp"
#include "token/token_machine.hpp"
#include "topo/builders.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsin;

  topo::Network network = topo::make_omega(8);
  // Pre-existing traffic: p2 -> r6.
  const auto busy = core::enumerate_free_paths(network, 1, 5);
  network.establish(busy.front());

  const core::Problem problem =
      core::make_problem(network, {0, 2, 4, 6, 7}, {0, 2, 4, 6, 7});
  std::cout << "Scheduling cycle: " << problem.requests.size()
            << " pending requests, " << problem.free_resources.size()
            << " ready resources\n\n";

  token::TokenMachine machine(problem);
  token::TokenStats stats;
  const core::ScheduleResult result = machine.run(&stats);

  std::cout << "status bus trace (E1..E7, LSB shown as the paper's x):\n";
  for (const token::BusSample& sample : stats.bus_trace) {
    std::cout << "  clock " << sample.clock << "  " <<
        token::bus_vector_x(sample.bits) << "  " << sample.label << "\n";
  }

  std::cout << "\ntoken machine: " << result.allocated() << "/"
            << problem.requests.size() << " requests bonded in "
            << stats.iterations << " iterations, " << stats.clock_periods
            << " clock periods, " << stats.tokens_propagated
            << " token hops\n";
  for (const core::Assignment& a : result.assignments) {
    std::cout << "  p" << a.request.processor + 1 << " == r"
              << a.resource.resource + 1 << "\n";
  }

  token::Monitor monitor;
  token::MonitorStats monitor_stats;
  const core::ScheduleResult monitor_result =
      monitor.run(problem, &monitor_stats);
  std::cout << "\nmonitor architecture: " << monitor_result.allocated()
            << " allocated using " << monitor_stats.total()
            << " instructions (" << monitor_stats.transform_instructions
            << " transform + " << monitor_stats.flow_instructions
            << " max-flow + " << monitor_stats.extract_instructions
            << " extract)\n";
  std::cout << "speedup proxy (instructions / clock periods): "
            << util::fixed(static_cast<double>(monitor_stats.total()) /
                               static_cast<double>(stats.clock_periods),
                           1)
            << "x  — and a hardware clock period is a gate delay, not an "
               "instruction cycle\n";
  return 0;
}
