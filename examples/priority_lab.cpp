// Priority and preference scheduling with Transformation 2 (Section III-C).
//
// A homogeneous MRSIN where requests carry urgency levels and resources
// carry preference values (faster units, lighter queues). Shows:
//  * the min-cost flow picking the highest-preference resources;
//  * the bypass node absorbing excess requests when demand exceeds supply;
//  * the paper's cost function versus the priority-weighted extension when
//    requests must compete (only the latter lets urgency decide who wins).
#include <iostream>

#include "core/scheduler.hpp"
#include "topo/builders.hpp"
#include "util/table.hpp"

namespace {

void print_schedule(const std::string& title,
                    const rsin::core::ScheduleResult& result) {
  std::cout << title << ": " << result.allocated() << " allocated, cost "
            << result.cost << "\n";
  for (const rsin::core::Assignment& a : result.assignments) {
    std::cout << "  p" << a.request.processor + 1 << " (priority "
              << a.request.priority << ") -> r" << a.resource.resource + 1
              << " (preference " << a.resource.preference << ")\n";
  }
}

}  // namespace

int main() {
  using namespace rsin;

  const topo::Network network = topo::make_omega(8);

  // Scenario 1 — the paper's Fig. 5 shape: three requests, five free
  // resources with distinct preferences. The optimal mapping must pick the
  // three most-preferred resources (r8, r1, r7).
  {
    core::Problem problem;
    problem.network = &network;
    problem.requests = {{2, 6, 0}, {4, 4, 0}, {7, 9, 0}};
    problem.free_resources = {
        {0, 9, 0}, {3, 2, 0}, {4, 3, 0}, {6, 8, 0}, {7, 10, 0}};
    core::MinCostScheduler scheduler(flow::MinCostFlowAlgorithm::kOutOfKilter);
    print_schedule("scenario 1 (out-of-kilter, surplus resources)",
                   scheduler.schedule(problem));
  }

  // Scenario 2 — more requests than resources: the bypass node absorbs the
  // overflow; allocation count stays maximal (Theorem 3).
  {
    core::Problem problem;
    problem.network = &network;
    problem.requests = {{0, 2, 0}, {1, 7, 0}, {2, 4, 0},
                        {4, 9, 0}, {6, 1, 0}};
    problem.free_resources = {{2, 5, 0}, {5, 8, 0}};
    core::MinCostScheduler paper_mode;
    print_schedule("\nscenario 2 (paper cost function, scarce resources)",
                   paper_mode.schedule(problem));
    core::MinCostScheduler weighted(flow::MinCostFlowAlgorithm::kSsp,
                                    core::BypassCostMode::kPriorityWeighted);
    print_schedule("scenario 2 (priority-weighted bypass)",
                   weighted.schedule(problem));
    std::cout << "with the priority-weighted extension the urgency-9 and\n"
                 "urgency-7 requests are the ones allocated.\n";
  }
  return 0;
}
