// Quickstart: build an MRSIN, pose one scheduling cycle, and compare the
// flow-based optimal scheduler with heuristic routing.
//
//   $ ./quickstart
//
// Walks through the library's three core steps:
//   1. generate a circuit-switched multistage network (8x8 Omega);
//   2. describe a scheduling instance (who requests, what is free);
//   3. schedule with max-flow (Transformation 1 + Dinic) and establish the
//      returned circuits.
#include <iostream>

#include "core/routing.hpp"
#include "core/scheduler.hpp"
#include "topo/builders.hpp"

int main() {
  using namespace rsin;

  // 1. An 8x8 Omega network: 3 stages of four 2x2 switchboxes.
  topo::Network network = topo::make_omega(8);
  std::cout << "Omega 8x8: " << network.switch_count() << " switchboxes, "
            << network.link_count() << " links\n";

  // Two circuits already occupy part of the fabric (p2->r6, p4->r4).
  for (const auto& [p, r] : {std::pair<int, int>{1, 5}, {3, 3}}) {
    const auto paths = core::enumerate_free_paths(network, p, r);
    network.establish(paths.front());
    std::cout << "pre-existing circuit p" << p + 1 << " -> r" << r + 1
              << " occupies " << paths.front().links.size() << " links\n";
  }

  // 2. The scheduling instance of the paper's Fig. 2: processors p1, p3,
  // p5, p7, p8 request one resource each; r1, r3, r5, r7, r8 are free.
  const core::Problem problem =
      core::make_problem(network, {0, 2, 4, 6, 7}, {0, 2, 4, 6, 7});

  // 3a. Optimal scheduling: Transformation 1 + Dinic's max-flow.
  core::MaxFlowScheduler optimal;
  const core::ScheduleResult best = optimal.schedule(problem);
  std::cout << "\n" << optimal.name() << " allocated " << best.allocated()
            << "/" << problem.requests.size() << " requests:\n";
  for (const core::Assignment& a : best.assignments) {
    std::cout << "  p" << a.request.processor + 1 << " -> r"
              << a.resource.resource + 1 << "  (circuit of "
              << a.circuit.links.size() << " links)\n";
  }

  // 3b. The heuristic baseline can strand requests on the same instance.
  core::GreedyScheduler greedy;
  const core::ScheduleResult heuristic = greedy.schedule(problem);
  std::cout << greedy.name() << " allocated " << heuristic.allocated() << "/"
            << problem.requests.size() << " requests\n";

  // Establish the optimal circuits for real: the network now carries them.
  core::establish_schedule(network, best);
  std::cout << "\noccupied links after establishment: "
            << network.occupied_link_count() << "\n";
  return 0;
}
