// Load balancing through an RSIN (Section I: "In a resource sharing system
// with load balancing, processors are considered as resources; requests are
// queued at the processors as well as the resources").
//
// Sixteen processors double as servers behind an Omega RSIN. Each
// scheduling cycle, overloaded nodes emit migration requests and lightly
// loaded nodes advertise as free resources; resource *preference* encodes
// how idle the receiver is, and the min-cost scheduler steers migrations to
// the idlest reachable receivers. Over rounds the load spread narrows.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "core/scheduler.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsin;

  constexpr int kNodes = 16;
  const topo::Network network = topo::make_omega(kNodes);
  util::Rng rng(9);

  // Initial imbalanced queue lengths.
  std::vector<int> load(kNodes);
  for (int& l : load) l = static_cast<int>(rng.uniform_int(0, 12));

  const auto spread = [&] {
    const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
    return *hi - *lo;
  };
  const auto mean_load = [&] {
    return static_cast<double>(
               std::accumulate(load.begin(), load.end(), 0)) /
           kNodes;
  };

  util::Table table({"round", "max-min spread", "mean load", "migrations"});
  table.add(0, spread(), util::fixed(mean_load(), 2), 0);

  core::MinCostScheduler scheduler;
  for (int round = 1; round <= 6; ++round) {
    const double mean = mean_load();
    core::Problem problem;
    problem.network = &network;
    for (int n = 0; n < kNodes; ++n) {
      if (load[static_cast<std::size_t>(n)] > mean + 1) {
        // Overloaded: ask to migrate one task; urgency = surplus.
        problem.requests.push_back(core::Request{
            n, load[static_cast<std::size_t>(n)] -
                   static_cast<std::int32_t>(mean),
            0});
      } else if (load[static_cast<std::size_t>(n)] < mean - 1) {
        // Underloaded: volunteer as a resource; preference = idleness.
        problem.free_resources.push_back(core::FreeResource{
            n, static_cast<std::int32_t>(mean) -
                   load[static_cast<std::size_t>(n)],
            0});
      }
    }
    int migrations = 0;
    if (!problem.requests.empty() && !problem.free_resources.empty()) {
      const core::ScheduleResult result = scheduler.schedule(problem);
      for (const core::Assignment& a : result.assignments) {
        --load[static_cast<std::size_t>(a.request.processor)];
        ++load[static_cast<std::size_t>(a.resource.resource)];
        ++migrations;
      }
    }
    table.add(round, spread(), util::fixed(mean_load(), 2), migrations);
  }
  std::cout << "Load balancing over an Omega RSIN (" << kNodes
            << " nodes; preference = receiver idleness):\n\n"
            << table
            << "\nthe max-min spread collapses within a few scheduling "
               "rounds while total load is conserved\n";
  return 0;
}
