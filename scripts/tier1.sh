#!/usr/bin/env bash
# Tier-1 verification: the full build + test suite, then the fault/robustness
# subset again under ASan+UBSan (cmake --preset asan).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier 1: build + ctest (RelWithDebInfo) ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "=== tier 1: fault/robustness subset under ASan+UBSan ==="
cmake --preset asan >/dev/null
cmake --build build-asan -j "$(nproc)"
ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
  -R '(Fault|SystemSim|TokenMachine|ElementMachine|TopoNetwork|PropertySweep|Overload|Trace|CircuitBreaker|WarmStart|WarmPool|Batching|Obs|MetricsRegistry|Svc|Journal|BitSet|DinicScale|FaultFs|HostileClient|SchedulerZoo|Federation|FedAdmission)'

echo "=== tier 1: pool/parallel-experiment subset under TSan ==="
cmake --preset tsan >/dev/null
cmake --build build-tsan -j "$(nproc)"
ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
  -R '(WarmPool|Batching|StaticExperiment|Obs|MetricsRegistry|Svc|Journal|BitSet|DinicScale|FaultFs|HostileClient|SchedulerZoo|Federation|FedAdmission)'

echo "tier 1 OK"
