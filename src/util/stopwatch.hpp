// Wall-clock stopwatch for coarse timing in benches and examples. The
// google-benchmark harness does its own timing; this is for one-shot
// experiment tables where a statistical benchmark run would be overkill.
#pragma once

#include <chrono>

namespace rsin::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/restart, in seconds.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rsin::util
