#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace rsin::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  RSIN_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  RSIN_REQUIRE(cells.size() == header_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  const auto rule = [&] {
    out << '+';
    for (const std::size_t w : width) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << std::left << std::setw(static_cast<int>(width[c]))
          << cells[c] << " |";
    }
    out << '\n';
  };

  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

std::ostream& operator<<(std::ostream& out, const Table& table) {
  table.print(out);
  return out;
}

std::string fixed(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string pct(double fraction, int precision) {
  return fixed(fraction * 100.0, precision);
}

}  // namespace rsin::util
