// Lightweight precondition / invariant checking for the rsin libraries.
//
// Violations of documented API preconditions throw std::invalid_argument;
// internal invariant failures throw std::logic_error. Both carry the failing
// expression and source location so that failures in deeply nested algorithm
// code (flow augmentation, token propagation) are diagnosable from the what()
// string alone.
//
// The macros are written for hot loops: the happy path is a single branch
// marked [[unlikely]] on failure, and all throw/format machinery lives in
// out-of-line cold functions (error.cpp), so a check inside a DFS or token
// round costs a compare-and-branch, not an inlined ostringstream.
#pragma once

#include <stdexcept>
#include <string>

namespace rsin::util {

/// Builds the standard "expr (file:line): message" diagnostic string.
[[nodiscard]] std::string diagnostic(const char* expr, const char* file,
                                     int line, const std::string& message);

// Cold, non-inlined throw helpers behind RSIN_REQUIRE / RSIN_ENSURE. The
// const char* overloads avoid constructing a std::string on the (already
// unlikely) failure path for literal messages; more importantly they keep
// the call sites small.
[[noreturn]] void raise_requirement(const char* expr, const char* file,
                                    int line, const char* message);
[[noreturn]] void raise_requirement(const char* expr, const char* file,
                                    int line, const std::string& message);
[[noreturn]] void raise_invariant(const char* expr, const char* file, int line,
                                  const char* message);
[[noreturn]] void raise_invariant(const char* expr, const char* file, int line,
                                  const std::string& message);

}  // namespace rsin::util

/// Validates a caller-supplied argument; throws std::invalid_argument on
/// failure. Use at public API boundaries. The message expression is only
/// evaluated when the check fails.
#define RSIN_REQUIRE(expr, message)                                      \
  do {                                                                   \
    if (!(expr)) [[unlikely]] {                                          \
      ::rsin::util::raise_requirement(#expr, __FILE__, __LINE__,         \
                                      (message));                        \
    }                                                                    \
  } while (false)

/// Validates an internal invariant; throws std::logic_error on failure.
/// A firing RSIN_ENSURE always indicates a bug in this library. The message
/// expression is only evaluated when the check fails.
#define RSIN_ENSURE(expr, message)                                       \
  do {                                                                   \
    if (!(expr)) [[unlikely]] {                                          \
      ::rsin::util::raise_invariant(#expr, __FILE__, __LINE__,           \
                                    (message));                          \
    }                                                                    \
  } while (false)
