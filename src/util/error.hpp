// Lightweight precondition / invariant checking for the rsin libraries.
//
// Violations of documented API preconditions throw std::invalid_argument;
// internal invariant failures throw std::logic_error. Both carry the failing
// expression and source location so that failures in deeply nested algorithm
// code (flow augmentation, token propagation) are diagnosable from the what()
// string alone.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rsin::util {

/// Builds the standard "expr (file:line): message" diagnostic string.
inline std::string diagnostic(const char* expr, const char* file, int line,
                              const std::string& message) {
  std::ostringstream out;
  out << expr << " (" << file << ':' << line << ')';
  if (!message.empty()) out << ": " << message;
  return out.str();
}

}  // namespace rsin::util

/// Validates a caller-supplied argument; throws std::invalid_argument on
/// failure. Use at public API boundaries.
#define RSIN_REQUIRE(expr, message)                                       \
  do {                                                                    \
    if (!(expr)) {                                                        \
      throw std::invalid_argument(                                        \
          ::rsin::util::diagnostic(#expr, __FILE__, __LINE__, (message))); \
    }                                                                     \
  } while (false)

/// Validates an internal invariant; throws std::logic_error on failure.
/// A firing RSIN_ENSURE always indicates a bug in this library.
#define RSIN_ENSURE(expr, message)                                        \
  do {                                                                    \
    if (!(expr)) {                                                        \
      throw std::logic_error(                                             \
          ::rsin::util::diagnostic(#expr, __FILE__, __LINE__, (message))); \
    }                                                                     \
  } while (false)
