// Word-packed bit set for the scheduling hot path (DESIGN.md §11).
//
// One std::uint64_t word covers 64 nodes, so BFS frontier and visited sets
// over million-node residual graphs fit in ~2 MB and reset in microseconds.
// Two properties matter for the solvers:
//
//  * lowbit / ctz iteration — for_each_set() walks only the set bits of a
//    word (clearing the lowest set bit each step), so iterating a sparse
//    frontier costs O(set bits), not O(universe);
//  * a touched-word window — set() tracks the lowest and highest dirty
//    word, and clear() zeroes only that range. A BFS layer over a
//    contiguously-numbered stage of an Omega/Clos network clears in
//    O(layer/64) regardless of how many nodes the graph has.
//
// Invariant: every set bit lies inside [lo_, hi_] (the window), and bits at
// positions >= size() are zero. Bulk and/or/and_not preserve both.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace rsin::util {

class BitSet {
 public:
  BitSet() = default;
  explicit BitSet(std::size_t n) { resize(n); }

  /// Number of addressable bits.
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Grows or shrinks to `n` bits. Surviving bits keep their values; newly
  /// exposed bits are zero. Allocation-free when shrinking or re-growing
  /// within previously reached capacity.
  void resize(std::size_t n) {
    const std::size_t w = words_for(n);
    words_.resize(w, 0);
    size_ = n;
    if (w > 0) {
      // Mask tail bits beyond size so count()/any() stay exact.
      const std::size_t tail = n % 64;
      if (tail != 0) words_[w - 1] &= (std::uint64_t{1} << tail) - 1;
    }
    if (hi_ >= w) hi_ = w == 0 ? 0 : w - 1;
    if (lo_ > hi_) reset_window();
  }

  void set(std::size_t i) {
    RSIN_REQUIRE(i < size_, "BitSet::set out of range");
    const std::size_t w = i / 64;
    words_[w] |= std::uint64_t{1} << (i % 64);
    if (!dirty_) {
      lo_ = hi_ = w;
      dirty_ = true;
    } else {
      if (w < lo_) lo_ = w;
      if (w > hi_) hi_ = w;
    }
  }

  void reset(std::size_t i) {
    RSIN_REQUIRE(i < size_, "BitSet::reset out of range");
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }

  [[nodiscard]] bool test(std::size_t i) const {
    RSIN_REQUIRE(i < size_, "BitSet::test out of range");
    return (words_[i / 64] >> (i % 64)) & 1;
  }

  /// Zeroes only the touched-word window — O(words dirtied since the last
  /// clear), the per-BFS-layer reset of the hot path.
  void clear() {
    if (dirty_) {
      for (std::size_t w = lo_; w <= hi_; ++w) words_[w] = 0;
    }
    reset_window();
  }

  /// Zeroes everything, window or not. O(size/64).
  void clear_all() {
    for (auto& w : words_) w = 0;
    reset_window();
  }

  [[nodiscard]] bool any() const {
    if (!dirty_) return false;
    for (std::size_t w = lo_; w <= hi_; ++w) {
      if (words_[w] != 0) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t total = 0;
    if (!dirty_) return 0;
    for (std::size_t w = lo_; w <= hi_; ++w) {
      total += static_cast<std::size_t>(std::popcount(words_[w]));
    }
    return total;
  }

  /// Index of the lowest set bit, or size() when empty.
  [[nodiscard]] std::size_t find_first() const {
    if (!dirty_) return size_;
    for (std::size_t w = lo_; w <= hi_; ++w) {
      if (words_[w] != 0) {
        return w * 64 + static_cast<std::size_t>(std::countr_zero(words_[w]));
      }
    }
    return size_;
  }

  /// Calls `f(index)` for every set bit in ascending order: per word,
  /// peel the lowest set bit with ctz until the word is exhausted.
  template <typename F>
  void for_each_set(F&& f) const {
    if (!dirty_) return;
    for (std::size_t w = lo_; w <= hi_; ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        f(w * 64 + bit);
        word &= word - 1;  // drop lowbit
      }
    }
  }

  /// Bulk union; windows merge. Sizes must match.
  BitSet& operator|=(const BitSet& other) {
    RSIN_REQUIRE(size_ == other.size_, "BitSet size mismatch");
    if (other.dirty_) {
      for (std::size_t w = other.lo_; w <= other.hi_; ++w) {
        words_[w] |= other.words_[w];
      }
      if (!dirty_) {
        lo_ = other.lo_, hi_ = other.hi_, dirty_ = true;
      } else {
        lo_ = std::min(lo_, other.lo_), hi_ = std::max(hi_, other.hi_);
      }
    }
    return *this;
  }

  /// Bulk intersection. Only this window can hold set bits, so it suffices
  /// to AND across it (other's words outside its own window are zero).
  BitSet& operator&=(const BitSet& other) {
    RSIN_REQUIRE(size_ == other.size_, "BitSet size mismatch");
    if (dirty_) {
      for (std::size_t w = lo_; w <= hi_; ++w) words_[w] &= other.words_[w];
    }
    return *this;
  }

  /// Bulk clear: removes every bit set in `other` (this &= ~other).
  BitSet& and_not(const BitSet& other) {
    RSIN_REQUIRE(size_ == other.size_, "BitSet size mismatch");
    if (dirty_ && other.dirty_) {
      const std::size_t from = std::max(lo_, other.lo_);
      const std::size_t to = std::min(hi_, other.hi_);
      if (from <= to) {
        for (std::size_t w = from; w <= to; ++w) words_[w] &= ~other.words_[w];
      }
    }
    return *this;
  }

  friend void swap(BitSet& a, BitSet& b) noexcept {
    std::swap(a.words_, b.words_);
    std::swap(a.size_, b.size_);
    std::swap(a.lo_, b.lo_);
    std::swap(a.hi_, b.hi_);
    std::swap(a.dirty_, b.dirty_);
  }

  /// Lowest set bit of a word (0 when none) — the lowbit idiom.
  [[nodiscard]] static constexpr std::uint64_t lowbit(std::uint64_t w) {
    return w & (~w + 1);
  }

 private:
  [[nodiscard]] static std::size_t words_for(std::size_t n) {
    return (n + 63) / 64;
  }
  void reset_window() {
    lo_ = 0;
    hi_ = 0;
    dirty_ = false;
  }

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
  // Touched-word window: meaningful only while dirty_ is true.
  std::size_t lo_ = 0;
  std::size_t hi_ = 0;
  bool dirty_ = false;
};

}  // namespace rsin::util
