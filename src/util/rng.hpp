// Deterministic random number generation for simulations and benchmarks.
//
// All stochastic components in rsin (workload generators, random scheduler
// baselines, property-test instance generators) draw from rsin::util::Rng so
// that every experiment is reproducible from a single 64-bit seed. The
// engine is xoshiro256**, seeded via splitmix64, which is both fast and has
// no observable linear artifacts in the low bits (unlike raw xorshift).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/error.hpp"

namespace rsin::util {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic xoshiro256** generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also be handed to the
/// <random> distributions if a caller needs one we do not wrap.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  /// Re-initializes the state from a single seed via splitmix64.
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent stream (for per-replication substreams).
  [[nodiscard]] Rng split(std::uint64_t stream_id) const {
    std::uint64_t sm = state_[0] ^ (0x2545f4914f6cdd1dULL * (stream_id + 1));
    return Rng(splitmix64(sm));
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    RSIN_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    // Lemire's unbiased bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * span;
    auto low = static_cast<std::uint64_t>(m);
    if (low < span) {
      const std::uint64_t threshold = (0 - span) % span;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * span;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential variate with the given rate (mean 1/rate). Requires rate>0.
  double exponential(double rate);

  /// In-place Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i)));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Raw engine state, for exact snapshot/restore of long-running
  /// deterministic components (svc::Domain journaled state). A generator
  /// restored via set_state continues the stream bit for bit.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state) {
    state_ = state;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace rsin::util
