// util::Vfs — the file-system seam every durable-state syscall goes
// through.
//
// The rsind journal and snapshot path used to call ::open/::write/
// ::fdatasync/::rename directly, which made "what happens when the disk
// fails" untestable short of filling a real partition. Vfs is the
// dependency-injection point: production code uses Vfs::real() (thin
// wrappers over the raw syscalls), tests and the fault soak install
// svc::FaultFs, which scripts ENOSPC / EIO / EINTR storms / short writes /
// mid-write power cuts against the same call sites.
//
// Error convention: every operation returns the syscall's result, with
// failures mapped to -errno (open returns a non-negative fd or -errno,
// write returns bytes written or -errno, the int-returning ops return 0 or
// -errno). Callers therefore never consult the global errno, which keeps
// fault fakes race-free and makes the injected error explicit at the call
// site. EINTR is *not* retried here — resilience to interrupt storms is
// the caller's contract, and the fault schedule tests exactly that.
//
// Fd is the RAII companion: a file descriptor bound to the Vfs that opened
// it, closed exactly once on every path out of scope (the journal and
// snapshot writers used to leak fds on their throw paths).
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <utility>

namespace rsin::util {

class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Returns a file descriptor >= 0, or -errno.
  [[nodiscard]] virtual int open(const char* path, int flags, int mode) = 0;
  /// Returns bytes read (0 = EOF), or -errno.
  [[nodiscard]] virtual ssize_t read(int fd, void* buf, std::size_t n) = 0;
  /// Returns bytes written (may be short), or -errno.
  [[nodiscard]] virtual ssize_t write(int fd, const void* buf,
                                      std::size_t n) = 0;
  /// 0 or -errno.
  [[nodiscard]] virtual int fsync(int fd) = 0;
  [[nodiscard]] virtual int fdatasync(int fd) = 0;
  [[nodiscard]] virtual int ftruncate(int fd, off_t size) = 0;
  /// Resulting offset or -errno.
  [[nodiscard]] virtual off_t lseek(int fd, off_t offset, int whence) = 0;
  [[nodiscard]] virtual int rename(const char* from, const char* to) = 0;
  [[nodiscard]] virtual int unlink(const char* path) = 0;
  virtual int close(int fd) = 0;

  /// The raw-syscall implementation (a process-lifetime singleton).
  [[nodiscard]] static Vfs& real();
};

/// RAII file descriptor owned by a Vfs. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  Fd(Vfs& vfs, int fd) : vfs_(&vfs), fd_(fd) {}
  Fd(Fd&& other) noexcept
      : vfs_(other.vfs_), fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      vfs_ = other.vfs_;
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Gives up ownership without closing.
  [[nodiscard]] int release() { return std::exchange(fd_, -1); }
  void reset() {
    if (fd_ >= 0) {
      vfs_->close(fd_);
      fd_ = -1;
    }
  }

 private:
  Vfs* vfs_ = nullptr;
  int fd_ = -1;
};

}  // namespace rsin::util
