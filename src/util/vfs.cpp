#include "util/vfs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

namespace rsin::util {
namespace {

class RealVfs final : public Vfs {
 public:
  int open(const char* path, int flags, int mode) override {
    const int fd = ::open(path, flags, mode);
    return fd >= 0 ? fd : -errno;
  }
  ssize_t read(int fd, void* buf, std::size_t n) override {
    const ssize_t r = ::read(fd, buf, n);
    return r >= 0 ? r : -errno;
  }
  ssize_t write(int fd, const void* buf, std::size_t n) override {
    const ssize_t r = ::write(fd, buf, n);
    return r >= 0 ? r : -errno;
  }
  int fsync(int fd) override { return ::fsync(fd) == 0 ? 0 : -errno; }
  int fdatasync(int fd) override {
    return ::fdatasync(fd) == 0 ? 0 : -errno;
  }
  int ftruncate(int fd, off_t size) override {
    return ::ftruncate(fd, size) == 0 ? 0 : -errno;
  }
  off_t lseek(int fd, off_t offset, int whence) override {
    const off_t r = ::lseek(fd, offset, whence);
    return r >= 0 ? r : static_cast<off_t>(-errno);
  }
  int rename(const char* from, const char* to) override {
    return std::rename(from, to) == 0 ? 0 : -errno;
  }
  int unlink(const char* path) override {
    return ::unlink(path) == 0 ? 0 : -errno;
  }
  int close(int fd) override { return ::close(fd) == 0 ? 0 : -errno; }
};

}  // namespace

Vfs& Vfs::real() {
  static RealVfs vfs;
  return vfs;
}

}  // namespace rsin::util
