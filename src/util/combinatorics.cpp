#include "util/combinatorics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rsin::util {

std::optional<std::uint64_t> checked_mul(std::uint64_t a, std::uint64_t b) {
  std::uint64_t result = 0;
  if (__builtin_mul_overflow(a, b, &result)) return std::nullopt;
  return result;
}

std::optional<std::uint64_t> binomial(unsigned n, unsigned k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  // c * (n-k+i) / i is always integral; do the product in 128 bits so a
  // representable result never trips over an intermediate overflow.
  __uint128_t c = 1;
  for (unsigned i = 1; i <= k; ++i) {
    c = c * (n - k + i) / i;
    if (c > std::numeric_limits<std::uint64_t>::max()) return std::nullopt;
  }
  return static_cast<std::uint64_t>(c);
}

std::optional<std::uint64_t> falling_factorial(unsigned n, unsigned k) {
  if (k > n) return 0;
  std::uint64_t result = 1;
  for (unsigned i = 0; i < k; ++i) {
    auto prod = checked_mul(result, n - i);
    if (!prod) return std::nullopt;
    result = *prod;
  }
  return result;
}

std::optional<std::uint64_t> exhaustive_mapping_count(unsigned requests,
                                                      unsigned resources) {
  // C(max, min) * min!  ==  P(max, min), the number of injections from the
  // smaller set into the larger one (Section III of the paper).
  const unsigned lo = std::min(requests, resources);
  const unsigned hi = std::max(requests, resources);
  return falling_factorial(hi, lo);
}

double exhaustive_mapping_count_log10(unsigned requests, unsigned resources) {
  const unsigned lo = std::min(requests, resources);
  const unsigned hi = std::max(requests, resources);
  if (lo == 0) return 0.0;
  // log10 P(hi, lo) = [lgamma(hi+1) - lgamma(hi-lo+1)] / ln(10).
  const double ln = std::lgamma(static_cast<double>(hi) + 1.0) -
                    std::lgamma(static_cast<double>(hi - lo) + 1.0);
  return ln / std::log(10.0);
}

}  // namespace rsin::util
