#include "util/rng.hpp"

#include <cmath>

namespace rsin::util {

double Rng::exponential(double rate) {
  RSIN_REQUIRE(rate > 0.0, "exponential requires rate > 0");
  // Inverse-CDF; 1 - uniform() is in (0, 1], so the log argument never hits 0.
  return -std::log(1.0 - uniform()) / rate;
}

}  // namespace rsin::util
