// Counting helpers for the scheduling-search-space analysis of Section III.
//
// The paper observes that an exhaustive scheduler must try up to
// C(x,y)*y! mappings (x requests, y resources, x >= y) or C(y,x)*x!
// (y >= x) — i.e. the number of injective maps between the smaller and the
// larger side. These helpers compute those counts with explicit saturation
// instead of silent overflow so that bench_mapping_explosion can print
// "> 2^64" honestly.
#pragma once

#include <cstdint>
#include <optional>

namespace rsin::util {

/// Saturating unsigned multiply: returns nullopt on overflow.
std::optional<std::uint64_t> checked_mul(std::uint64_t a, std::uint64_t b);

/// Binomial coefficient C(n, k); nullopt if the value overflows uint64.
std::optional<std::uint64_t> binomial(unsigned n, unsigned k);

/// Falling factorial n * (n-1) * ... * (n-k+1); nullopt on overflow.
std::optional<std::uint64_t> falling_factorial(unsigned n, unsigned k);

/// Number of candidate request->resource mappings an exhaustive scheduler
/// must consider for x requests and y free resources (Section III):
/// min(x,y) chosen from the larger side, times orderings = P(max, min).
/// Returns nullopt when the count exceeds uint64 range.
std::optional<std::uint64_t> exhaustive_mapping_count(unsigned requests,
                                                      unsigned resources);

/// log10 of the exhaustive mapping count, computed in floating point; exact
/// enough for plotting growth curves far beyond uint64 range.
double exhaustive_mapping_count_log10(unsigned requests, unsigned resources);

}  // namespace rsin::util
