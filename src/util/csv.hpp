// Minimal CSV writer for exporting experiment tables to files that plotting
// scripts can consume (the benches print human tables; pass a CsvWriter the
// same rows to keep a machine-readable copy).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rsin::util {

/// Writes RFC-4180-style CSV: fields containing commas, quotes, or
/// newlines are quoted, quotes doubled.
class CsvWriter {
 public:
  /// Writes to `out`; the header row is emitted immediately.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Appends one row; must match the header width.
  void write_row(const std::vector<std::string>& cells);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

  /// Escapes one field per RFC 4180.
  static std::string escape(const std::string& field);

 private:
  std::ostream& out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace rsin::util
