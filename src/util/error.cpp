#include "util/error.hpp"

#include <sstream>
#include <stdexcept>

namespace rsin::util {

std::string diagnostic(const char* expr, const char* file, int line,
                       const std::string& message) {
  std::ostringstream out;
  out << expr << " (" << file << ':' << line << ')';
  if (!message.empty()) out << ": " << message;
  return out.str();
}

void raise_requirement(const char* expr, const char* file, int line,
                       const char* message) {
  throw std::invalid_argument(diagnostic(expr, file, line, message));
}

void raise_requirement(const char* expr, const char* file, int line,
                       const std::string& message) {
  throw std::invalid_argument(diagnostic(expr, file, line, message));
}

void raise_invariant(const char* expr, const char* file, int line,
                     const char* message) {
  throw std::logic_error(diagnostic(expr, file, line, message));
}

void raise_invariant(const char* expr, const char* file, int line,
                     const std::string& message) {
  throw std::logic_error(diagnostic(expr, file, line, message));
}

}  // namespace rsin::util
