// Grow-only bump arena for per-cycle solver scratch (DESIGN.md §11).
//
// The warm scheduling hot path needs short-lived arrays — the CSR fill
// cursor of ResidualGraph::rebuild, the repair path of sync_capacities —
// whose lifetime is one call. Allocating them from this arena instead of
// per-call vectors means the first cycle pays the heap allocation and every
// later cycle bump-allocates out of retained chunks: reset() rewinds the
// arena without releasing memory, so a steady-state warm cycle performs
// zero heap allocations (asserted by bench_dinic_scale's heap probe).
//
// Chunks are kept in a list and never move, so spans handed out earlier in
// the same cycle stay valid while later allocations grow the arena. Only
// trivially-destructible element types are supported — reset() rewinds the
// bump pointer and never runs destructors.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace rsin::util {

class Arena {
 public:
  Arena() = default;
  // Arena contents are transient scratch: copies start empty (and a copy
  // assignment just rewinds), so owning objects stay copyable without
  // aliasing each other's chunks.
  Arena(const Arena&) {}
  Arena& operator=(const Arena&) {
    reset();
    return *this;
  }
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Uninitialized span of `n` Ts, valid until the next reset().
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T> &&
                      std::is_trivially_copyable_v<T>,
                  "arena storage is rewound, never destroyed");
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "over-aligned types are not supported");
    if (n == 0) return {};
    return {reinterpret_cast<T*>(raw(n * sizeof(T), alignof(T))), n};
  }

  /// Zero-filled span of `n` Ts.
  template <typename T>
  [[nodiscard]] std::span<T> alloc_zeroed(std::size_t n) {
    auto out = alloc<T>(n);
    if (!out.empty()) std::memset(out.data(), 0, out.size_bytes());
    return out;
  }

  /// Rewinds to empty, retaining every chunk for reuse.
  void reset() {
    chunk_ = 0;
    offset_ = 0;
  }

  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::byte* raw(std::size_t bytes, std::size_t align) {
    while (chunk_ < chunks_.size()) {
      Chunk& c = chunks_[chunk_];
      // operator new[] storage is max_align_t-aligned, so aligning the
      // offset aligns the pointer.
      const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= c.size) {
        offset_ = aligned + bytes;
        return c.data.get() + aligned;
      }
      ++chunk_;
      offset_ = 0;
    }
    const std::size_t last = chunks_.empty() ? 0 : chunks_.back().size;
    const std::size_t size = std::max({bytes, 2 * last, kMinChunkBytes});
    chunks_.push_back({std::make_unique_for_overwrite<std::byte[]>(size), size});
    chunk_ = chunks_.size() - 1;
    offset_ = bytes;
    return chunks_.back().data.get();
  }

  static constexpr std::size_t kMinChunkBytes = 4096;

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;   // chunk currently bump-allocating from
  std::size_t offset_ = 0;  // next free byte within that chunk
};

}  // namespace rsin::util
