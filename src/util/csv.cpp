#include "util/csv.hpp"

#include <ostream>

#include "util/error.hpp"

namespace rsin::util {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), columns_(header.size()) {
  RSIN_REQUIRE(columns_ > 0, "csv needs at least one column");
  write_row(header);
  rows_ = 0;  // header does not count
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  RSIN_REQUIRE(cells.size() == columns_, "csv row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace rsin::util
