// Console table rendering used by the benchmark/experiment harness to print
// paper-style result tables (aligned columns, optional markdown flavor).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace rsin::util {

/// A simple column-aligned text table.
///
/// Usage:
///   Table t({"network", "load", "blocking %"});
///   t.add_row({"omega-8x8", "0.9", "3.2"});
///   std::cout << t;
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each argument with operator<< into a cell.
  template <typename... Args>
  void add(const Args&... args) {
    add_row({format_cell(args)...});
  }

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return header_.size(); }

  /// Renders with box-drawing separators.
  void print(std::ostream& out) const;

 private:
  template <typename T>
  static std::string format_cell(const T& value);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& out, const Table& table);

/// Formats a double with the given precision (fixed notation).
std::string fixed(double value, int precision = 2);

/// Formats a fraction as a percentage string, e.g. pct(0.034) == "3.40".
std::string pct(double fraction, int precision = 2);

template <typename T>
std::string Table::format_cell(const T& value) {
  if constexpr (std::is_same_v<T, std::string>) {
    return value;
  } else if constexpr (std::is_convertible_v<T, const char*>) {
    return std::string(value);
  } else if constexpr (std::is_floating_point_v<T>) {
    return fixed(static_cast<double>(value), 3);
  } else {
    return std::to_string(value);
  }
}

}  // namespace rsin::util
