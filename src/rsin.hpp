// Umbrella header: the full rsin public API in one include.
//
//   #include "rsin.hpp"
//
// Fine-grained headers remain available (and are what the library's own
// code uses); this aggregate exists for quickstart users and examples.
#pragma once

// util — RNG, combinatorics, tables, CSV, errors.
#include "util/combinatorics.hpp"  // IWYU pragma: export
#include "util/csv.hpp"            // IWYU pragma: export
#include "util/error.hpp"          // IWYU pragma: export
#include "util/rng.hpp"            // IWYU pragma: export
#include "util/stopwatch.hpp"      // IWYU pragma: export
#include "util/table.hpp"          // IWYU pragma: export

// obs — observability: metrics registry, spans, trace events, exporters.
#include "obs/export.hpp"  // IWYU pragma: export
#include "obs/obs.hpp"     // IWYU pragma: export

// flow — networks and flow algorithms.
#include "flow/bipartite.hpp"       // IWYU pragma: export
#include "flow/decompose.hpp"       // IWYU pragma: export
#include "flow/max_flow.hpp"        // IWYU pragma: export
#include "flow/min_cost.hpp"        // IWYU pragma: export
#include "flow/min_cut.hpp"         // IWYU pragma: export
#include "flow/multicommodity.hpp"  // IWYU pragma: export
#include "flow/network.hpp"         // IWYU pragma: export
#include "flow/network_simplex.hpp"  // IWYU pragma: export
#include "flow/push_relabel.hpp"    // IWYU pragma: export
#include "flow/validate.hpp"        // IWYU pragma: export

// lp — the simplex solver.
#include "lp/simplex.hpp"  // IWYU pragma: export

// topo — interconnection networks.
#include "topo/benes_routing.hpp"    // IWYU pragma: export
#include "topo/builders.hpp"         // IWYU pragma: export
#include "topo/dot_export.hpp"       // IWYU pragma: export
#include "topo/network.hpp"          // IWYU pragma: export
#include "topo/switch_settings.hpp"  // IWYU pragma: export
#include "topo/tag_routing.hpp"      // IWYU pragma: export

// fault — seeded fault injection and schedules.
#include "fault/fault_injector.hpp"  // IWYU pragma: export

// core — the paper's transformations and schedulers.
#include "core/hetero.hpp"     // IWYU pragma: export
#include "core/problem.hpp"    // IWYU pragma: export
#include "core/routing.hpp"    // IWYU pragma: export
#include "core/schedule.hpp"   // IWYU pragma: export
#include "core/scheduler.hpp"  // IWYU pragma: export
#include "core/transform.hpp"  // IWYU pragma: export

// token — the distributed architecture.
#include "token/element_machine.hpp"  // IWYU pragma: export
#include "token/hardware_model.hpp"   // IWYU pragma: export
#include "token/monitor.hpp"          // IWYU pragma: export
#include "token/status_bus.hpp"       // IWYU pragma: export
#include "token/token_machine.hpp"    // IWYU pragma: export

// sim — experiments and system simulation.
#include "sim/analytic.hpp"           // IWYU pragma: export
#include "sim/des.hpp"                // IWYU pragma: export
#include "sim/metrics.hpp"            // IWYU pragma: export
#include "sim/static_experiment.hpp"  // IWYU pragma: export
#include "sim/system_sim.hpp"         // IWYU pragma: export
