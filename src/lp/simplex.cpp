#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace rsin::lp {

int LinearProgram::add_variable(double objective_coefficient,
                                std::string name) {
  const int index = static_cast<int>(objective_.size());
  objective_.push_back(objective_coefficient);
  if (name.empty()) name = "x" + std::to_string(index);
  names_.push_back(std::move(name));
  return index;
}

void LinearProgram::add_constraint(Constraint constraint) {
  for (const auto& [var, coeff] : constraint.terms) {
    RSIN_REQUIRE(var >= 0 && static_cast<std::size_t>(var) < objective_.size(),
                 "constraint references unknown variable");
    (void)coeff;
  }
  constraints_.push_back(std::move(constraint));
}

namespace {

/// Dense simplex tableau. Rows 0..m-1 are constraints; `z` is the objective
/// row of reduced costs; the last column is the right-hand side.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), cells_((rows + 1) * (cols + 1), 0.0) {}

  double& at(std::size_t r, std::size_t c) { return cells_[r * (cols_ + 1) + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return cells_[r * (cols_ + 1) + c];
  }
  double& rhs(std::size_t r) { return at(r, cols_); }
  double& z(std::size_t c) { return at(rows_, c); }
  double& z_value() { return at(rows_, cols_); }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  /// Gauss–Jordan pivot on (row, col), normalizing the pivot to one and
  /// clearing the column elsewhere, including the objective row.
  void pivot(std::size_t row, std::size_t col) {
    const double p = at(row, col);
    RSIN_ENSURE(std::fabs(p) > 1e-12, "pivot on (near-)zero element");
    const double inv = 1.0 / p;
    for (std::size_t c = 0; c <= cols_; ++c) at(row, c) *= inv;
    for (std::size_t r = 0; r <= rows_; ++r) {
      if (r == row) continue;
      const double factor = at(r, col);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c <= cols_; ++c) {
        at(r, c) -= factor * at(row, c);
      }
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> cells_;
};

struct PivotResult {
  SolveStatus status = SolveStatus::kOptimal;
  std::int64_t iterations = 0;
};

/// Runs simplex pivots until the objective row is non-negative (optimal),
/// unboundedness is detected, or the iteration budget is exhausted.
/// `allowed[c]` masks columns eligible to enter the basis.
PivotResult run_pivots(Tableau& tableau, std::vector<std::size_t>& basis,
                       const std::vector<char>& allowed,
                       const SimplexOptions& options) {
  PivotResult result;
  std::int64_t stalled = 0;
  double last_objective = -std::numeric_limits<double>::infinity();

  while (result.iterations < options.max_iterations) {
    const bool bland = stalled > options.bland_threshold;

    // Entering column: most negative reduced cost (Dantzig), or the first
    // negative one (Bland, anti-cycling).
    std::size_t enter = tableau.cols();
    double best = -options.tolerance;
    for (std::size_t c = 0; c < tableau.cols(); ++c) {
      if (!allowed[c]) continue;
      const double rc = tableau.z(c);
      if (rc < best) {
        enter = c;
        if (bland) break;
        best = rc;
      }
    }
    if (enter == tableau.cols()) return result;  // optimal

    // Leaving row: minimum ratio test over positive column entries.
    std::size_t leave = tableau.rows();
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < tableau.rows(); ++r) {
      const double a = tableau.at(r, enter);
      if (a <= options.tolerance) continue;
      const double ratio = tableau.rhs(r) / a;
      if (ratio < best_ratio - options.tolerance ||
          (ratio < best_ratio + options.tolerance &&
           (leave == tableau.rows() || basis[r] < basis[leave]))) {
        best_ratio = ratio;
        leave = r;
      }
    }
    if (leave == tableau.rows()) {
      result.status = SolveStatus::kUnbounded;
      return result;
    }

    tableau.pivot(leave, enter);
    basis[leave] = enter;
    ++result.iterations;

    // z_value tracks the maximized objective (it only grows across pivots).
    const double objective = tableau.z_value();
    if (objective > last_objective + options.tolerance) {
      stalled = 0;
      last_objective = objective;
    } else {
      ++stalled;
    }
  }
  result.status = SolveStatus::kIterationLimit;
  return result;
}

}  // namespace

Solution solve(const LinearProgram& program, const SimplexOptions& options) {
  const std::size_t n = program.variable_count();
  const std::size_t m = program.constraint_count();

  // Normalize rows: rhs >= 0; count the auxiliary columns needed.
  struct Row {
    std::vector<double> coeff;  // dense over structural variables
    Relation relation;
    double rhs;
  };
  std::vector<Row> rows;
  rows.reserve(m);
  std::size_t slack_count = 0;
  std::size_t artificial_count = 0;
  for (const Constraint& constraint : program.constraints()) {
    Row row{std::vector<double>(n, 0.0), constraint.relation, constraint.rhs};
    for (const auto& [var, coeff] : constraint.terms) {
      row.coeff[static_cast<std::size_t>(var)] += coeff;
    }
    if (row.rhs < 0) {
      for (double& c : row.coeff) c = -c;
      row.rhs = -row.rhs;
      row.relation = row.relation == Relation::kLessEqual
                         ? Relation::kGreaterEqual
                         : row.relation == Relation::kGreaterEqual
                               ? Relation::kLessEqual
                               : Relation::kEqual;
    }
    switch (row.relation) {
      case Relation::kLessEqual:
        ++slack_count;
        break;
      case Relation::kGreaterEqual:
        ++slack_count;  // surplus
        ++artificial_count;
        break;
      case Relation::kEqual:
        ++artificial_count;
        break;
    }
    rows.push_back(std::move(row));
  }

  const std::size_t total_cols = n + slack_count + artificial_count;
  Tableau tableau(m, total_cols);
  std::vector<std::size_t> basis(m, 0);
  std::vector<char> is_artificial(total_cols, 0);

  std::size_t next_slack = n;
  std::size_t next_artificial = n + slack_count;
  for (std::size_t r = 0; r < m; ++r) {
    const Row& row = rows[r];
    for (std::size_t c = 0; c < n; ++c) tableau.at(r, c) = row.coeff[c];
    tableau.rhs(r) = row.rhs;
    switch (row.relation) {
      case Relation::kLessEqual:
        tableau.at(r, next_slack) = 1.0;
        basis[r] = next_slack++;
        break;
      case Relation::kGreaterEqual:
        tableau.at(r, next_slack) = -1.0;
        ++next_slack;
        tableau.at(r, next_artificial) = 1.0;
        is_artificial[next_artificial] = 1;
        basis[r] = next_artificial++;
        break;
      case Relation::kEqual:
        tableau.at(r, next_artificial) = 1.0;
        is_artificial[next_artificial] = 1;
        basis[r] = next_artificial++;
        break;
    }
  }

  Solution solution;

  // Phase 1: minimize the sum of artificials, i.e. maximize -sum. The
  // z-row holds reduced costs; basic artificial columns must be priced out.
  if (artificial_count > 0) {
    for (std::size_t c = 0; c < total_cols; ++c) {
      tableau.z(c) = is_artificial[c] ? 1.0 : 0.0;
    }
    for (std::size_t r = 0; r < m; ++r) {
      if (!is_artificial[basis[r]]) continue;
      for (std::size_t c = 0; c <= total_cols; ++c) {
        tableau.z(c) -= tableau.at(r, c);
      }
    }
    std::vector<char> allowed(total_cols, 1);
    const PivotResult phase1 = run_pivots(tableau, basis, allowed, options);
    solution.iterations += phase1.iterations;
    if (phase1.status != SolveStatus::kOptimal) {
      solution.status = phase1.status;
      return solution;
    }
    if (-tableau.z_value() > options.tolerance * 100) {
      solution.status = SolveStatus::kInfeasible;
      return solution;
    }
    // Pivot any artificial still in the basis (at zero level) out of it.
    for (std::size_t r = 0; r < m; ++r) {
      if (!is_artificial[basis[r]]) continue;
      for (std::size_t c = 0; c < n + slack_count; ++c) {
        if (std::fabs(tableau.at(r, c)) > options.tolerance) {
          tableau.pivot(r, c);
          basis[r] = c;
          break;
        }
      }
      // If no pivot column exists the row is redundant; the artificial
      // stays basic at value zero, which is harmless as long as it never
      // re-enters (it is excluded from phase 2's allowed set).
    }
  }

  // Phase 2: the real objective. Rebuild the z-row: z(c) = cB·B^-1·A_c - c_c.
  for (std::size_t c = 0; c <= total_cols; ++c) tableau.z(c) = 0.0;
  for (std::size_t c = 0; c < n; ++c) tableau.z(c) = -program.objective()[c];
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t b = basis[r];
    if (b >= n) continue;  // slack/artificial: zero objective coefficient
    const double cb = program.objective()[b];
    if (cb == 0.0) continue;
    for (std::size_t c = 0; c <= total_cols; ++c) {
      tableau.z(c) += cb * tableau.at(r, c);
    }
  }
  // Basic columns must read exactly zero in the z-row.
  for (std::size_t r = 0; r < m; ++r) tableau.z(basis[r]) = 0.0;

  std::vector<char> allowed(total_cols, 1);
  for (std::size_t c = 0; c < total_cols; ++c) {
    if (is_artificial[c]) allowed[c] = 0;
  }
  const PivotResult phase2 = run_pivots(tableau, basis, allowed, options);
  solution.iterations += phase2.iterations;
  if (phase2.status != SolveStatus::kOptimal) {
    solution.status = phase2.status;
    return solution;
  }

  solution.status = SolveStatus::kOptimal;
  solution.values.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] < n) solution.values[basis[r]] = tableau.rhs(r);
  }
  solution.objective = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    solution.objective += program.objective()[c] * solution.values[c];
  }
  return solution;
}

}  // namespace rsin::lp
