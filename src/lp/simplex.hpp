// A self-contained two-phase primal simplex solver.
//
// Section III-D of the paper formulates heterogeneous (multi-resource-type)
// scheduling as multicommodity flow LPs and notes that on restricted MIN
// topologies the optimal basic solutions are integral and "the Simplex
// Method ... has been shown empirically to be a linear time algorithm".
// This module is the substrate that makes those formulations runnable.
//
// Model: maximize c^T x subject to a set of <=, >=, or == row constraints
// over non-negative variables. Internally the solver builds a dense tableau
// with slack/surplus variables, runs phase 1 with artificial variables to
// find a basic feasible solution, then phase 2 on the real objective.
// Dantzig pricing is used by default, switching to Bland's rule after a
// degeneracy threshold to guarantee termination.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rsin::lp {

enum class Relation { kLessEqual, kGreaterEqual, kEqual };

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

/// One row constraint: sum_i coefficient_i * x_{variable_i}  (rel)  rhs.
struct Constraint {
  std::vector<std::pair<int, double>> terms;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

/// A linear program over non-negative variables, built incrementally.
class LinearProgram {
 public:
  /// Adds a variable with the given objective coefficient (maximization).
  int add_variable(double objective_coefficient, std::string name = {});

  /// Adds a constraint; variable indices must already exist. Duplicate
  /// indices within one constraint are summed.
  void add_constraint(Constraint constraint);

  [[nodiscard]] std::size_t variable_count() const { return objective_.size(); }
  [[nodiscard]] std::size_t constraint_count() const {
    return constraints_.size();
  }
  [[nodiscard]] const std::vector<double>& objective() const {
    return objective_;
  }
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }
  [[nodiscard]] const std::string& variable_name(int index) const {
    return names_[static_cast<std::size_t>(index)];
  }

 private:
  std::vector<double> objective_;
  std::vector<std::string> names_;
  std::vector<Constraint> constraints_;
};

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  ///< One entry per LP variable.
  std::int64_t iterations = 0;  ///< Total simplex pivots (both phases).
};

struct SimplexOptions {
  double tolerance = 1e-9;
  std::int64_t max_iterations = 1'000'000;
  /// Switch from Dantzig to Bland pricing after this many pivots without
  /// objective improvement (anti-cycling).
  std::int64_t bland_threshold = 64;
};

/// Solves the LP; `values` is populated for kOptimal only.
Solution solve(const LinearProgram& program, const SimplexOptions& options = {});

}  // namespace rsin::lp
