#include "core/batching.hpp"

#include <string>
#include <utility>

#include "util/error.hpp"

namespace rsin::core {

BatchingScheduler::BatchingScheduler(std::unique_ptr<Scheduler> inner,
                                     BatchPolicy policy)
    : inner_(std::move(inner)), policy_(policy) {
  RSIN_REQUIRE(inner_ != nullptr, "batching needs an inner scheduler");
  RSIN_REQUIRE(policy_.window >= 1, "batch window must be >= 1");
  RSIN_REQUIRE(policy_.deadline_cycles <= 0 ||
                   policy_.deadline_cycles <= policy_.window,
               "a batch deadline beyond the window never fires; shrink the "
               "deadline or grow the window");
}

std::string BatchingScheduler::name() const {
  std::string out = "batch(w=" + std::to_string(policy_.window);
  if (policy_.deadline_cycles > 0) {
    out += ",d=" + std::to_string(policy_.deadline_cycles);
  }
  return out + "," + inner_->name() + ")";
}

void BatchingScheduler::reset() {
  queued_ = 0;
  ages_.clear();
  inner_->reset();
}

void BatchingScheduler::bind_obs(const obs::Handle& handle) {
  inner_->bind_obs(handle);
  obs_trace_ = handle.trace;
  if (!handle.enabled()) {
    obs_deferred_ = obs_drains_ = nullptr;
    obs_drain_window_ = nullptr;
    return;
  }
  obs::Registry& registry = *handle.registry;
  obs_deferred_ = &registry.counter("core.batch.deferred");
  obs_drains_ = &registry.counter("core.batch.drains");
  // Window sizes are small integers; 1..64 in powers of two is plenty.
  obs_drain_window_ = &registry.histogram(
      "core.batch.drain_window", obs::Histogram::exponential_bounds(1, 2, 7));
}

ScheduleResult BatchingScheduler::schedule(const Problem& problem) {
  ++queued_;
  // Age every pending request; a departed request (satisfied, shed, or torn
  // down between cycles) drops out because the new snapshot no longer
  // carries it.
  bool deadline_hit = false;
  if (policy_.deadline_cycles > 0) {
    scratch_ages_.clear();
    for (const Request& request : problem.requests) {
      const auto it = ages_.find(request.processor);
      const std::int32_t age = it == ages_.end() ? 1 : it->second + 1;
      scratch_ages_[request.processor] = age;
      if (age >= policy_.deadline_cycles) deadline_hit = true;
    }
    ages_.swap(scratch_ages_);
  }

  if (queued_ < policy_.window && !deadline_hit) {
    ++deferred_;
    if (obs_deferred_ != nullptr) obs_deferred_->add();
    report_ = FallbackReport{};
    report_.outcome = ScheduleOutcome::kDeferred;
    report_.batched_cycles = 0;
    return ScheduleResult{};
  }

  // Drain: one inner solve covers every cycle of the window. Reset the
  // window before the solve so an inner throw doesn't wedge us mid-window.
  const std::int32_t covered = queued_;
  queued_ = 0;
  ages_.clear();
  ++drains_;
  if (obs_drains_ != nullptr) {
    obs_drains_->add();
    obs_drain_window_->observe(covered);
  }
  if (obs_trace_ != nullptr) {
    obs_trace_->instant("batch drain (" + std::to_string(covered) + " cycles)",
                        "core");
  }
  ScheduleResult result = inner_->schedule(problem);
  if (const auto* reporting =
          dynamic_cast<const ReportingScheduler*>(inner_.get())) {
    report_ = reporting->last_report();
  } else {
    report_ = FallbackReport{};
  }
  report_.batched_cycles = covered;
  return result;
}

}  // namespace rsin::core
