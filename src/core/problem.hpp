// The resource-scheduling problem of Section II.
//
// A Problem is one scheduling-cycle snapshot of an MRSIN: the network (whose
// links may be partially occupied by previously established circuits), the
// set of processors with pending requests, and the set of free resources.
// Requests carry a priority level and resources a preference value
// (Section II, model point 3); both default to zero for the homogeneous
// equal-priority discipline. A resource *type* per request/resource supports
// the heterogeneous MRSIN of Section III-D (type 0 everywhere = homogeneous).
#pragma once

#include <cstdint>
#include <vector>

#include "topo/network.hpp"

namespace rsin::core {

struct Request {
  topo::ProcessorId processor = topo::kInvalidId;
  std::int32_t priority = 0;  ///< Higher = more urgent (y_p in the paper).
  std::int32_t type = 0;      ///< Requested resource type (heterogeneous).
};

struct FreeResource {
  topo::ResourceId resource = topo::kInvalidId;
  std::int32_t preference = 0;  ///< Higher = more desirable (q_w).
  std::int32_t type = 0;        ///< Resource type.
};

/// One scheduling-cycle instance. The network pointer is non-owning; the
/// network's current link occupancy is part of the problem.
struct Problem {
  const topo::Network* network = nullptr;
  std::vector<Request> requests;
  std::vector<FreeResource> free_resources;

  /// Highest priority level among requests (y_max), 0 when empty.
  [[nodiscard]] std::int32_t max_priority() const;
  /// Highest preference among free resources (q_max), 0 when empty.
  [[nodiscard]] std::int32_t max_preference() const;
  /// Distinct resource types appearing in requests or resources, sorted.
  [[nodiscard]] std::vector<std::int32_t> types() const;

  /// Throws std::invalid_argument when ids are out of range, a processor
  /// requests twice, a resource is listed free twice, or priorities /
  /// preferences are negative.
  void validate() const;
};

/// Convenience constructor for the homogeneous no-priority case: processors
/// in `requesting` each issue one request; `available` resources are free.
Problem make_problem(const topo::Network& network,
                     std::vector<topo::ProcessorId> requesting,
                     std::vector<topo::ResourceId> available);

}  // namespace rsin::core
