#include "core/transform.hpp"

#include <algorithm>

#include "flow/validate.hpp"
#include "util/error.hpp"

namespace rsin::core {
namespace {

using flow::FlowNetwork;
using flow::NodeId;
using topo::kInvalidId;
using topo::LinkId;
using topo::Network;
using topo::NodeKind;

/// Shared construction of the (T1)-(T3) node/arc sets. Costs are zero; the
/// Transformation 2 wrapper overlays costs and the bypass node.
struct Builder {
  const Problem& problem;
  TransformResult out;
  NodeId source = flow::kInvalidNode;
  NodeId sink = flow::kInvalidNode;
  std::vector<NodeId> processor_node;  // per processor, kInvalidNode unless requesting
  std::vector<NodeId> switch_node;     // per switch
  std::vector<NodeId> resource_node;   // per resource, kInvalidNode unless free

  explicit Builder(const Problem& p) : problem(p) {
    p.validate();
    RSIN_REQUIRE(p.types().size() <= 1,
                 "transformations 1-2 require a homogeneous problem; use the "
                 "heterogeneous scheduler for multiple types");
  }

  void add_arc(NodeId from, NodeId to, flow::Capacity capacity, LinkId link,
               topo::ProcessorId processor, topo::ResourceId resource,
               flow::Cost cost = 0) {
    out.net.add_arc(from, to, capacity, cost);
    out.arc_link.push_back(link);
    out.arc_processor.push_back(processor);
    out.arc_resource.push_back(resource);
  }

  /// (T1): node sets P, X, R plus source and sink.
  void build_nodes() {
    const Network& net = *problem.network;
    source = out.net.add_node("s");
    sink = out.net.add_node("t");
    out.net.set_source(source);
    out.net.set_sink(sink);

    processor_node.assign(static_cast<std::size_t>(net.processor_count()),
                          flow::kInvalidNode);
    for (const Request& request : problem.requests) {
      processor_node[static_cast<std::size_t>(request.processor)] =
          out.net.add_node("p" + std::to_string(request.processor + 1));
    }
    switch_node.resize(static_cast<std::size_t>(net.switch_count()));
    for (std::int32_t sw = 0; sw < net.switch_count(); ++sw) {
      switch_node[static_cast<std::size_t>(sw)] =
          out.net.add_node("x" + std::to_string(sw));
    }
    resource_node.assign(static_cast<std::size_t>(net.resource_count()),
                         flow::kInvalidNode);
    for (const FreeResource& resource : problem.free_resources) {
      resource_node[static_cast<std::size_t>(resource.resource)] =
          out.net.add_node("r" + std::to_string(resource.resource + 1));
    }
  }

  /// (T2)+(T3): arc sets S, B, T with the capacity function applied — arcs
  /// that (T3) would give zero capacity (occupied links, silent processors,
  /// busy resources) are simply never created, which also realizes (T4).
  void build_arcs(flow::Cost source_cost_base, flow::Cost sink_cost_base) {
    const Network& net = *problem.network;

    // S: source -> requesting processors. Cost y_max - y_p.
    for (const Request& request : problem.requests) {
      const flow::Cost cost =
          source_cost_base > 0 ? source_cost_base - request.priority : 0;
      add_arc(source,
              processor_node[static_cast<std::size_t>(request.processor)], 1,
              kInvalidId, request.processor, kInvalidId, cost);
    }

    // B: one arc per free physical link whose endpoints both exist.
    // link_free also excludes faulty links/switches, so a flow solution can
    // never route through a failed element.
    for (LinkId link = 0; link < net.link_count(); ++link) {
      const topo::Link& l = net.link(link);
      if (!net.link_free(link)) continue;
      NodeId from = flow::kInvalidNode;
      NodeId to = flow::kInvalidNode;
      switch (l.from.kind) {
        case NodeKind::kProcessor:
          from = processor_node[static_cast<std::size_t>(l.from.node)];
          break;
        case NodeKind::kSwitch:
          from = switch_node[static_cast<std::size_t>(l.from.node)];
          break;
        case NodeKind::kResource:
          break;
      }
      switch (l.to.kind) {
        case NodeKind::kSwitch:
          to = switch_node[static_cast<std::size_t>(l.to.node)];
          break;
        case NodeKind::kResource:
          to = resource_node[static_cast<std::size_t>(l.to.node)];
          break;
        case NodeKind::kProcessor:
          break;
      }
      if (from == flow::kInvalidNode || to == flow::kInvalidNode) continue;
      add_arc(from, to, 1, link, kInvalidId, kInvalidId, 0);
    }

    // T: free resources -> sink. Cost q_max - q_w.
    for (const FreeResource& resource : problem.free_resources) {
      const flow::Cost cost =
          sink_cost_base > 0 ? sink_cost_base - resource.preference : 0;
      add_arc(resource_node[static_cast<std::size_t>(resource.resource)], sink,
              1, kInvalidId, kInvalidId, resource.resource, cost);
    }
  }
};

}  // namespace

TransformResult transformation1(const Problem& problem) {
  Builder builder(problem);
  builder.build_nodes();
  builder.build_arcs(/*source_cost_base=*/0, /*sink_cost_base=*/0);
  builder.out.request_count =
      static_cast<flow::Capacity>(problem.requests.size());
  return std::move(builder.out);
}

TransformResult transformation2(const Problem& problem, BypassCostMode mode) {
  Builder builder(problem);
  builder.build_nodes();

  const std::int32_t y_max = problem.max_priority();
  const std::int32_t q_max = problem.max_preference();
  builder.build_arcs(/*source_cost_base=*/y_max, /*sink_cost_base=*/q_max);

  // The bypass node u and the L arcs. The paper's cost keeps bypassing
  // strictly costlier than any fabric path; the priority-weighted extension
  // additionally makes bypassing a high-priority request costlier than
  // bypassing a low-priority one.
  const flow::Cost bypass_base = std::max(y_max + 1, q_max + 1);
  builder.out.bypass = builder.out.net.add_node("u");
  for (const Request& request : problem.requests) {
    flow::Cost cost = bypass_base;
    if (mode == BypassCostMode::kPriorityWeighted) cost += request.priority;
    builder.add_arc(
        builder.processor_node[static_cast<std::size_t>(request.processor)],
        builder.out.bypass, 1, kInvalidId, kInvalidId, kInvalidId, cost);
  }
  builder.add_arc(builder.out.bypass, builder.sink,
                  static_cast<flow::Capacity>(problem.requests.size()),
                  kInvalidId, kInvalidId, kInvalidId, bypass_base);

  builder.out.request_count =
      static_cast<flow::Capacity>(problem.requests.size());
  return std::move(builder.out);
}

void PersistentTransform::build(const topo::Network& net) {
  result_ = TransformResult{};
  FlowNetwork& out = result_.net;
  const NodeId source = out.add_node("s");
  const NodeId sink = out.add_node("t");
  out.set_source(source);
  out.set_sink(sink);

  std::vector<NodeId> processor_node(
      static_cast<std::size_t>(net.processor_count()));
  std::vector<NodeId> switch_node(static_cast<std::size_t>(net.switch_count()));
  std::vector<NodeId> resource_node(
      static_cast<std::size_t>(net.resource_count()));
  for (topo::ProcessorId p = 0; p < net.processor_count(); ++p) {
    processor_node[static_cast<std::size_t>(p)] =
        out.add_node("p" + std::to_string(p + 1));
  }
  for (std::int32_t sw = 0; sw < net.switch_count(); ++sw) {
    switch_node[static_cast<std::size_t>(sw)] =
        out.add_node("x" + std::to_string(sw));
  }
  for (topo::ResourceId r = 0; r < net.resource_count(); ++r) {
    resource_node[static_cast<std::size_t>(r)] =
        out.add_node("r" + std::to_string(r + 1));
  }

  const auto add_arc = [&](NodeId from, NodeId to, LinkId link,
                           topo::ProcessorId processor,
                           topo::ResourceId resource) {
    const flow::ArcId id = out.add_arc(from, to, /*capacity=*/0);
    result_.arc_link.push_back(link);
    result_.arc_processor.push_back(processor);
    result_.arc_resource.push_back(resource);
    return id;
  };

  // S arcs: one per processor, in processor order — the same relative order
  // transformation1 emits for any requesting subset.
  processor_arc_.resize(static_cast<std::size_t>(net.processor_count()));
  for (topo::ProcessorId p = 0; p < net.processor_count(); ++p) {
    processor_arc_[static_cast<std::size_t>(p)] =
        add_arc(source, processor_node[static_cast<std::size_t>(p)],
                kInvalidId, p, kInvalidId);
  }
  // B arcs: one per mappable physical link, in link order.
  link_arc_.assign(static_cast<std::size_t>(net.link_count()),
                   flow::kInvalidArc);
  for (LinkId l = 0; l < net.link_count(); ++l) {
    const topo::Link& link = net.link(l);
    NodeId from = flow::kInvalidNode;
    NodeId to = flow::kInvalidNode;
    switch (link.from.kind) {
      case NodeKind::kProcessor:
        from = processor_node[static_cast<std::size_t>(link.from.node)];
        break;
      case NodeKind::kSwitch:
        from = switch_node[static_cast<std::size_t>(link.from.node)];
        break;
      case NodeKind::kResource:
        break;
    }
    switch (link.to.kind) {
      case NodeKind::kSwitch:
        to = switch_node[static_cast<std::size_t>(link.to.node)];
        break;
      case NodeKind::kResource:
        to = resource_node[static_cast<std::size_t>(link.to.node)];
        break;
      case NodeKind::kProcessor:
        break;
    }
    if (from == flow::kInvalidNode || to == flow::kInvalidNode) continue;
    link_arc_[static_cast<std::size_t>(l)] =
        add_arc(from, to, l, kInvalidId, kInvalidId);
  }
  // T arcs: one per resource, in resource order.
  resource_arc_.resize(static_cast<std::size_t>(net.resource_count()));
  for (topo::ResourceId r = 0; r < net.resource_count(); ++r) {
    resource_arc_[static_cast<std::size_t>(r)] =
        add_arc(resource_node[static_cast<std::size_t>(r)], sink, kInvalidId,
                kInvalidId, r);
  }

  shape_hash_ = net.shape_hash();
  built_ = true;
}

bool PersistentTransform::matches(const topo::Network& net) const {
  return built_ && shape_hash_ == net.shape_hash();
}

void PersistentTransform::update(const Problem& problem) {
  // Allocation-free equivalent of problem.validate() plus the homogeneity
  // check: validate() builds two fresh O(n) vectors and types() a sorted
  // type list per call, which on million-node skeletons made every warm
  // cycle allocate. Same checks, same messages, persistent scratch.
  RSIN_REQUIRE(problem.network != nullptr, "problem needs a network");
  const Network& net = *problem.network;
  seen_processor_.assign(static_cast<std::size_t>(net.processor_count()), 0);
  for (const Request& request : problem.requests) {
    RSIN_REQUIRE(net.valid_processor(request.processor),
                 "request names an unknown processor");
    RSIN_REQUIRE(!seen_processor_[static_cast<std::size_t>(request.processor)],
                 "a processor transmits one task at a time (model point 5)");
    seen_processor_[static_cast<std::size_t>(request.processor)] = 1;
    RSIN_REQUIRE(request.priority >= 0, "priorities must be non-negative");
  }
  seen_resource_.assign(static_cast<std::size_t>(net.resource_count()), 0);
  for (const FreeResource& resource : problem.free_resources) {
    RSIN_REQUIRE(net.valid_resource(resource.resource),
                 "free resource has an unknown id");
    RSIN_REQUIRE(!seen_resource_[static_cast<std::size_t>(resource.resource)],
                 "a resource cannot be listed free twice");
    seen_resource_[static_cast<std::size_t>(resource.resource)] = 1;
    RSIN_REQUIRE(resource.preference >= 0, "preferences must be non-negative");
  }
  bool have_type = false;
  std::int32_t type = 0;
  const auto one_type = [&](std::int32_t t) {
    if (!have_type) {
      have_type = true;
      type = t;
    }
    return t == type;
  };
  for (const Request& request : problem.requests) {
    RSIN_REQUIRE(one_type(request.type),
                 "transformations 1-2 require a homogeneous problem; use the "
                 "heterogeneous scheduler for multiple types");
  }
  for (const FreeResource& resource : problem.free_resources) {
    RSIN_REQUIRE(one_type(resource.type),
                 "transformations 1-2 require a homogeneous problem; use the "
                 "heterogeneous scheduler for multiple types");
  }
  RSIN_REQUIRE(matches(net),
               "PersistentTransform::update requires the network shape it "
               "was built for");
  FlowNetwork& out = result_.net;

  // Bulk zero, then re-enable the cycle's S/B/R arcs below. On million-node
  // skeletons the per-arc set_capacity sweep was a measurable slice of the
  // warm cycle.
  out.clear_capacities();
  for (const Request& request : problem.requests) {
    out.set_capacity(
        processor_arc_[static_cast<std::size_t>(request.processor)], 1);
  }
  for (LinkId l = 0; l < net.link_count(); ++l) {
    const flow::ArcId arc = link_arc_[static_cast<std::size_t>(l)];
    if (arc != flow::kInvalidArc && net.link_free(l)) {
      out.set_capacity(arc, 1);
    }
  }
  for (const FreeResource& resource : problem.free_resources) {
    out.set_capacity(resource_arc_[static_cast<std::size_t>(resource.resource)],
                     1);
  }
  result_.request_count =
      static_cast<flow::Capacity>(problem.requests.size());
}

ScheduleResult extract_schedule(const Problem& problem,
                                const TransformResult& transformed) {
  const FlowNetwork& net = transformed.net;
  RSIN_REQUIRE(!flow::validate_flow(net),
               "extract_schedule requires a legal flow assignment");
  // Every physical arc has unit capacity, so legality already forces 0/1
  // flow everywhere except the bypass->sink arc, which may carry one unit
  // per unallocated request.

  // Remaining flow per arc; consumed as circuits are traced so that two
  // paths sharing a node never reuse an arc.
  std::vector<flow::Capacity> remaining(net.arc_count());
  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    remaining[a] = net.arc(static_cast<flow::ArcId>(a)).flow;
  }

  ScheduleResult result;
  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    const topo::ProcessorId processor = transformed.arc_processor[a];
    if (processor == kInvalidId || remaining[a] == 0) continue;
    // This is a saturated source arc: trace its unit of flow to the sink.
    remaining[a] = 0;
    std::vector<topo::LinkId> links;
    NodeId at = net.arc(static_cast<flow::ArcId>(a)).to;
    bool bypassed = false;
    topo::ResourceId resource = kInvalidId;
    while (at != net.sink()) {
      if (at == transformed.bypass) bypassed = true;
      bool advanced = false;
      for (const flow::ArcId out : net.out_arcs(at)) {
        if (remaining[static_cast<std::size_t>(out)] == 0) continue;
        remaining[static_cast<std::size_t>(out)] -= 1;
        const std::size_t oa = static_cast<std::size_t>(out);
        if (transformed.arc_link[oa] != kInvalidId) {
          links.push_back(transformed.arc_link[oa]);
        }
        if (transformed.arc_resource[oa] != kInvalidId) {
          resource = transformed.arc_resource[oa];
        }
        at = net.arc(out).to;
        advanced = true;
        break;
      }
      RSIN_ENSURE(advanced, "flow conservation violated while tracing");
    }
    if (bypassed) continue;  // request deliberately unallocated
    RSIN_ENSURE(resource != kInvalidId, "fabric path missed the sink arc");

    Assignment assignment;
    const auto request_it =
        std::find_if(problem.requests.begin(), problem.requests.end(),
                     [&](const Request& r) { return r.processor == processor; });
    const auto resource_it = std::find_if(
        problem.free_resources.begin(), problem.free_resources.end(),
        [&](const FreeResource& r) { return r.resource == resource; });
    RSIN_ENSURE(request_it != problem.requests.end(),
                "traced flow for an unknown request");
    RSIN_ENSURE(resource_it != problem.free_resources.end(),
                "traced flow to an unknown resource");
    assignment.request = *request_it;
    assignment.resource = *resource_it;
    assignment.circuit.processor = processor;
    assignment.circuit.resource = resource;
    assignment.circuit.links = std::move(links);
    result.assignments.push_back(std::move(assignment));
  }
  result.cost = schedule_cost(problem, result);
  return result;
}

}  // namespace rsin::core
