#include "core/schedule.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "util/error.hpp"

namespace rsin::core {

bool ScheduleResult::processor_allocated(topo::ProcessorId processor) const {
  return resource_of(processor) != topo::kInvalidId;
}

topo::ResourceId ScheduleResult::resource_of(
    topo::ProcessorId processor) const {
  for (const Assignment& assignment : assignments) {
    if (assignment.request.processor == processor) {
      return assignment.resource.resource;
    }
  }
  return topo::kInvalidId;
}

std::optional<std::string> verify_schedule(const Problem& problem,
                                           const ScheduleResult& result) {
  const topo::Network& net = *problem.network;

  const auto fail = [](const std::string& message) {
    return std::optional<std::string>(message);
  };

  std::unordered_set<std::int32_t> used_processors;
  std::unordered_set<std::int32_t> used_resources;
  std::unordered_set<std::int32_t> used_links;

  for (std::size_t i = 0; i < result.assignments.size(); ++i) {
    const Assignment& assignment = result.assignments[i];
    std::ostringstream where;
    where << "assignment " << i << " (p" << assignment.request.processor + 1
          << " -> r" << assignment.resource.resource + 1 << "): ";

    // The pair must come from the problem.
    const bool request_known = std::any_of(
        problem.requests.begin(), problem.requests.end(),
        [&](const Request& r) {
          return r.processor == assignment.request.processor;
        });
    if (!request_known) return fail(where.str() + "processor not requesting");
    const bool resource_known = std::any_of(
        problem.free_resources.begin(), problem.free_resources.end(),
        [&](const FreeResource& r) {
          return r.resource == assignment.resource.resource;
        });
    if (!resource_known) return fail(where.str() + "resource not free");

    if (assignment.request.type != assignment.resource.type) {
      return fail(where.str() + "resource type mismatch");
    }
    if (!used_processors.insert(assignment.request.processor).second) {
      return fail(where.str() + "processor allocated twice");
    }
    if (!used_resources.insert(assignment.resource.resource).second) {
      return fail(where.str() + "resource allocated twice");
    }

    const topo::Circuit& circuit = assignment.circuit;
    if (circuit.processor != assignment.request.processor ||
        circuit.resource != assignment.resource.resource) {
      return fail(where.str() + "circuit endpoints disagree with assignment");
    }
    if (!net.circuit_contiguous(circuit)) {
      return fail(where.str() + "circuit is not contiguous");
    }
    if (!net.circuit_free(circuit)) {
      return fail(where.str() + "circuit uses an occupied link");
    }
    for (const topo::LinkId link : circuit.links) {
      if (!used_links.insert(link).second) {
        return fail(where.str() + "circuits share link " +
                    std::to_string(link));
      }
    }
  }
  return std::nullopt;
}

std::int64_t schedule_cost(const Problem& problem,
                           const ScheduleResult& result) {
  const std::int64_t y_max = problem.max_priority();
  const std::int64_t q_max = problem.max_preference();
  std::int64_t cost = 0;
  for (const Assignment& assignment : result.assignments) {
    cost += (y_max - assignment.request.priority) +
            (q_max - assignment.resource.preference);
  }
  return cost;
}

void establish_schedule(topo::Network& network, const ScheduleResult& result) {
  for (const Assignment& assignment : result.assignments) {
    network.establish(assignment.circuit);
  }
}

}  // namespace rsin::core
