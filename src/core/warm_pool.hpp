// WarmContextPool: a sharded pool of persistent warm-start scheduler state.
//
// PR 2 made a single scheduler's cycle loop allocation-free: one
// PersistentTransform skeleton plus one flow::ScheduleContext, repaired
// in place every cycle. What it did NOT fix is every control loop that
// creates schedulers dynamically — run_static_experiment_parallel builds a
// cold scheduler per batch, and a DES restarted per scenario rebuilds from
// scratch — throwing the warm state away exactly where the paper's
// distributed token architecture says the win is (the switchboxes keep
// their token state across establishes/teardowns; they do not re-derive it).
//
// The pool keeps {PersistentTransform, ScheduleContext} pairs alive across
// scheduler lifetimes:
//
//  * Sharded: one shard per worker thread. A worker only ever touches its
//    own shard's mutex, so checkout/return never contends in the steady
//    state; shards are padded conceptually by the per-shard mutex (no
//    global lock).
//  * Shape-keyed: idle contexts are filed under the topology shape_hash
//    they were last built for. A checkout for the same shape returns a
//    context whose skeleton already matches — the first cycle is warm. A
//    miss hands out a fresh (cold) context; correctness never depends on
//    the key, because WarmMaxFlowScheduler rebuilds on a shape mismatch
//    anyway (the hash is purely a warm-hit optimization).
//  * Leased: checkout returns a move-only RAII WarmContextLease; the
//    destructor files the context back into its shard under the shape it
//    *now* holds (which may differ from the checkout shape if the network
//    changed mid-lease). The pool must outlive every lease.
//
// Thread safety: the pool itself (checkout / give_back / stats) is safe to
// call from any thread. A leased WarmContext is exclusively owned by the
// holder and is NOT internally synchronized — exactly one thread may use a
// lease at a time, which is the sharding discipline.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/transform.hpp"
#include "flow/schedule_context.hpp"
#include "obs/obs.hpp"
#include "topo/network.hpp"

namespace rsin::core {

/// One unit of poolable warm-start state: the persistent Transformation-1
/// skeleton plus the solver's residual/scratch context. The pair must travel
/// together — the context's retained residual is only meaningful against the
/// skeleton it was solved on.
struct WarmContext {
  PersistentTransform transform;
  flow::ScheduleContext context;

  /// The shape the skeleton currently holds (0 when never built). Used by
  /// the pool to re-file returned contexts.
  [[nodiscard]] std::uint64_t shape_key() const {
    return transform.shape_hash();
  }
};

/// Aggregate pool accounting (snapshot; see WarmContextPool::stats).
struct WarmPoolStats {
  std::int64_t checkouts = 0;     ///< Total checkout() calls.
  std::int64_t warm_hits = 0;     ///< Checkouts served by a matching context.
  std::int64_t shape_misses = 0;  ///< Idle contexts existed, none matched.
  std::int64_t cold_creates = 0;  ///< Checkouts that built a fresh context.
  std::int64_t returns = 0;       ///< Contexts filed back by leases.
  std::int64_t idle = 0;          ///< Contexts currently parked in shards.
};

class WarmContextPool;

/// Move-only RAII checkout handle. Destruction (or release()) returns the
/// context to the shard it came from. An empty lease (default-constructed or
/// moved-from) is inert. The owning pool must outlive the lease.
class WarmContextLease {
 public:
  WarmContextLease() = default;
  WarmContextLease(WarmContextLease&& other) noexcept;
  WarmContextLease& operator=(WarmContextLease&& other) noexcept;
  WarmContextLease(const WarmContextLease&) = delete;
  WarmContextLease& operator=(const WarmContextLease&) = delete;
  ~WarmContextLease();

  [[nodiscard]] bool valid() const { return context_ != nullptr; }
  explicit operator bool() const { return valid(); }

  [[nodiscard]] WarmContext& operator*() { return *context_; }
  [[nodiscard]] const WarmContext& operator*() const { return *context_; }
  [[nodiscard]] WarmContext* operator->() { return context_.get(); }
  [[nodiscard]] const WarmContext* operator->() const {
    return context_.get();
  }

  /// Shard this lease checks back into.
  [[nodiscard]] std::size_t shard() const { return shard_; }

  /// Returns the context to the pool now (idempotent; the lease is empty
  /// afterwards).
  void release();

 private:
  friend class WarmContextPool;
  WarmContextLease(WarmContextPool* pool, std::size_t shard,
                   std::unique_ptr<WarmContext> context)
      : pool_(pool), shard_(shard), context_(std::move(context)) {}

  WarmContextPool* pool_ = nullptr;
  std::size_t shard_ = 0;
  std::unique_ptr<WarmContext> context_;
};

/// Sharded, shape-keyed pool of WarmContexts. See the file comment for the
/// ownership model. Typical use:
///
///   WarmContextPool pool(worker_count);
///   // worker w:
///   WarmMaxFlowScheduler scheduler(pool.checkout(w, net));
///   ... scheduler.schedule(problem) per cycle ...
///   // scheduler destruction returns the (still warm) context to shard w.
class WarmContextPool {
 public:
  explicit WarmContextPool(std::size_t shards = 1);

  // The pool hands out raw pointers to itself via leases; it must not move.
  WarmContextPool(const WarmContextPool&) = delete;
  WarmContextPool& operator=(const WarmContextPool&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Checks a context out of `shard` (indices wrap, so callers may pass a
  /// worker id directly). Prefers an idle context whose skeleton was built
  /// for `net`'s shape; falls back to any idle context (the scheduler will
  /// rebuild the skeleton — still cheaper than allocating buffers cold);
  /// creates a fresh context when the shard is empty.
  [[nodiscard]] WarmContextLease checkout(std::size_t shard,
                                          const topo::Network& net);

  /// Shape-agnostic checkout: any idle context, else a fresh one.
  [[nodiscard]] WarmContextLease checkout(std::size_t shard);

  /// Drops every idle context (outstanding leases are unaffected; they
  /// re-file into the emptied shards on return).
  void clear();

  /// Folds pool traffic into an obs registry ("core.pool.*" counters,
  /// mirroring the existing atomics). The registry must outlive the pool's
  /// checkout/return traffic; a default handle unbinds. Leased contexts
  /// always have their SolverObs detached on check-in, so a context filed
  /// back by one run can never hold pointers into a dead registry.
  void bind_obs(const obs::Handle& handle);

  [[nodiscard]] WarmPoolStats stats() const;

 private:
  friend class WarmContextLease;
  struct Shard {
    std::mutex mutex;
    std::vector<std::unique_ptr<WarmContext>> idle;
  };

  WarmContextLease take(std::size_t shard, std::uint64_t shape_key,
                        bool keyed);
  void give_back(std::size_t shard, std::unique_ptr<WarmContext> context);

  /// Cached registry instruments (null when unbound).
  struct PoolObs {
    obs::Counter* checkouts = nullptr;
    obs::Counter* warm_hits = nullptr;
    obs::Counter* shape_misses = nullptr;
    obs::Counter* cold_creates = nullptr;
    obs::Counter* returns = nullptr;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  PoolObs obs_;
  std::atomic<std::int64_t> checkouts_{0};
  std::atomic<std::int64_t> warm_hits_{0};
  std::atomic<std::int64_t> shape_misses_{0};
  std::atomic<std::int64_t> cold_creates_{0};
  std::atomic<std::int64_t> returns_{0};
};

}  // namespace rsin::core
