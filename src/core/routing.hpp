// Circuit search over the physical network.
//
// These helpers walk the switch fabric along *free* links only. They power
// the heuristic baseline schedulers (first-free-path routing, the scheme
// whose blocking the paper reports at ~20%) and the exhaustive ground-truth
// scheduler used to validate the flow-based optimum on small instances.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "topo/network.hpp"

namespace rsin::core {

/// Enumerates circuits from `processor` to `resource` that use only free
/// links, up to `limit` of them (depth-first order). Switches are not
/// revisited within one path, so the walk terminates on any topology.
std::vector<topo::Circuit> enumerate_free_paths(const topo::Network& net,
                                                topo::ProcessorId processor,
                                                topo::ResourceId resource,
                                                std::size_t limit = SIZE_MAX);

/// First free circuit (depth-first order) from `processor` to any resource
/// for which `resource_wanted(r)` is true. Returns nullopt when every such
/// resource is unreachable over free links. `operations`, when non-null,
/// accumulates the number of links inspected.
std::optional<topo::Circuit> first_free_path(
    const topo::Network& net, topo::ProcessorId processor,
    const std::function<bool(topo::ResourceId)>& resource_wanted,
    std::int64_t* operations = nullptr);

/// All resources reachable from `processor` over free links.
std::vector<topo::ResourceId> reachable_free_resources(
    const topo::Network& net, topo::ProcessorId processor);

}  // namespace rsin::core
