// Heterogeneous MRSIN scheduling (Section III-D of the paper).
//
// With k resource types the scheduling problem becomes a k-commodity flow
// problem: one source/sink pair per type superposed on the shared fabric.
// The paper notes the general integral problem is NP-hard but that MIN-class
// topologies fall in the Evans–Jarvis family whose LP optima are integral,
// so the Simplex method suffices.
//
//  * HeteroLpScheduler         — builds the multicommodity LP (max-flow form,
//    or min-cost form with per-commodity bypass nodes when priorities or
//    preferences are present) and extracts circuits from the integral
//    optimum. If the LP optimum happens to be fractional (possible outside
//    the restricted topology class), it falls back to the sequential solver
//    and records that in the result.
//  * HeteroSequentialScheduler — greedy per-type baseline: solves each type
//    with Transformation 1 + Dinic in type order, committing circuits
//    between types. Earlier types can block later ones, so it lower-bounds
//    the LP optimum.
#pragma once

#include "core/scheduler.hpp"

namespace rsin::core {

struct HeteroResult {
  ScheduleResult schedule;
  /// True when the LP optimum was integral and used directly.
  bool lp_integral = false;
  /// LP objective (total commodity value) before rounding; equals the
  /// allocation count when integral.
  double lp_value = 0.0;
  std::int64_t simplex_iterations = 0;
};

class HeteroLpScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override {
    return "hetero-lp(simplex)";
  }
  ScheduleResult schedule(const Problem& problem) override {
    return schedule_detailed(problem).schedule;
  }
  /// Full result including LP diagnostics.
  HeteroResult schedule_detailed(const Problem& problem);
};

class HeteroSequentialScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override {
    return "hetero-sequential(dinic)";
  }
  ScheduleResult schedule(const Problem& problem) override;
};

}  // namespace rsin::core
