#include "core/hetero.hpp"

#include <algorithm>
#include <cmath>

#include "flow/multicommodity.hpp"
#include "util/error.hpp"

namespace rsin::core {
namespace {

using flow::FlowNetwork;
using flow::NodeId;
using topo::kInvalidId;
using topo::LinkId;
using topo::NodeKind;

/// The superposed multicommodity network: shared fabric arcs plus one
/// source/sink (and optional bypass) per resource type.
struct HeteroNet {
  FlowNetwork net;
  std::vector<flow::Commodity> commodities;      // one per type
  std::vector<std::int32_t> commodity_type;      // type id per commodity
  std::vector<LinkId> arc_link;                  // per arc
  std::vector<topo::ProcessorId> arc_processor;  // source arcs only
  std::vector<topo::ResourceId> arc_resource;    // sink arcs only
  std::vector<NodeId> bypass;                    // per commodity (or invalid)
  bool with_costs = false;
};

HeteroNet build_hetero_net(const Problem& problem, bool with_costs) {
  problem.validate();
  const topo::Network& net = *problem.network;
  HeteroNet built;

  const std::vector<std::int32_t> types = problem.types();
  const auto commodity_of = [&](std::int32_t type) {
    const auto it = std::find(types.begin(), types.end(), type);
    return static_cast<std::size_t>(it - types.begin());
  };

  const auto y_max = static_cast<flow::Cost>(problem.max_priority());
  const auto q_max = static_cast<flow::Cost>(problem.max_preference());
  const flow::Cost bypass_cost = std::max(y_max + 1, q_max + 1);

  // Shared structural nodes.
  std::vector<NodeId> processor_node(
      static_cast<std::size_t>(net.processor_count()), flow::kInvalidNode);
  for (const Request& request : problem.requests) {
    processor_node[static_cast<std::size_t>(request.processor)] =
        built.net.add_node("p" + std::to_string(request.processor + 1));
  }
  std::vector<NodeId> switch_node(static_cast<std::size_t>(net.switch_count()));
  for (std::int32_t sw = 0; sw < net.switch_count(); ++sw) {
    switch_node[static_cast<std::size_t>(sw)] =
        built.net.add_node("x" + std::to_string(sw));
  }
  std::vector<NodeId> resource_node(
      static_cast<std::size_t>(net.resource_count()), flow::kInvalidNode);
  for (const FreeResource& resource : problem.free_resources) {
    resource_node[static_cast<std::size_t>(resource.resource)] =
        built.net.add_node("r" + std::to_string(resource.resource + 1));
  }

  const auto add_arc = [&](NodeId from, NodeId to, flow::Capacity cap,
                           LinkId link, topo::ProcessorId p,
                           topo::ResourceId r, flow::Cost cost) {
    built.net.add_arc(from, to, cap, cost);
    built.arc_link.push_back(link);
    built.arc_processor.push_back(p);
    built.arc_resource.push_back(r);
  };

  // Per-type sources/sinks (and bypass nodes when costs are in play).
  for (const std::int32_t type : types) {
    flow::Commodity commodity;
    commodity.source =
        built.net.add_node("s" + std::to_string(type));
    commodity.sink = built.net.add_node("t" + std::to_string(type));
    built.commodities.push_back(commodity);
    built.commodity_type.push_back(type);
    built.bypass.push_back(flow::kInvalidNode);
    if (with_costs) {
      built.bypass.back() = built.net.add_node("u" + std::to_string(type));
    }
  }

  // Source arcs, fabric arcs, sink arcs, bypass arcs.
  std::vector<flow::Capacity> demand(types.size(), 0);
  for (const Request& request : problem.requests) {
    const std::size_t k = commodity_of(request.type);
    ++demand[k];
    add_arc(built.commodities[k].source,
            processor_node[static_cast<std::size_t>(request.processor)], 1,
            kInvalidId, request.processor, kInvalidId,
            with_costs ? y_max - request.priority : 0);
    if (with_costs) {
      add_arc(processor_node[static_cast<std::size_t>(request.processor)],
              built.bypass[k], 1, kInvalidId, kInvalidId, kInvalidId,
              bypass_cost);
    }
  }
  for (LinkId link = 0; link < net.link_count(); ++link) {
    const topo::Link& l = net.link(link);
    if (!net.link_free(link)) continue;  // occupied or faulty
    NodeId from = flow::kInvalidNode;
    NodeId to = flow::kInvalidNode;
    if (l.from.kind == NodeKind::kProcessor) {
      from = processor_node[static_cast<std::size_t>(l.from.node)];
    } else if (l.from.kind == NodeKind::kSwitch) {
      from = switch_node[static_cast<std::size_t>(l.from.node)];
    }
    if (l.to.kind == NodeKind::kSwitch) {
      to = switch_node[static_cast<std::size_t>(l.to.node)];
    } else if (l.to.kind == NodeKind::kResource) {
      to = resource_node[static_cast<std::size_t>(l.to.node)];
    }
    if (from == flow::kInvalidNode || to == flow::kInvalidNode) continue;
    add_arc(from, to, 1, link, kInvalidId, kInvalidId, 0);
  }
  for (const FreeResource& resource : problem.free_resources) {
    const std::size_t k = commodity_of(resource.type);
    add_arc(resource_node[static_cast<std::size_t>(resource.resource)],
            built.commodities[k].sink, 1, kInvalidId, kInvalidId,
            resource.resource, with_costs ? q_max - resource.preference : 0);
  }
  for (std::size_t k = 0; k < types.size(); ++k) {
    built.commodities[k].demand = demand[k];
    if (with_costs) {
      add_arc(built.bypass[k], built.commodities[k].sink, demand[k],
              kInvalidId, kInvalidId, kInvalidId, bypass_cost);
    }
  }
  built.with_costs = with_costs;
  return built;
}

/// Traces integral per-commodity flows into assignments, mirroring
/// extract_schedule() but over the superposed network.
ScheduleResult extract_hetero(const Problem& problem, const HeteroNet& built,
                              const std::vector<std::vector<double>>& flows) {
  ScheduleResult result;
  for (std::size_t k = 0; k < built.commodities.size(); ++k) {
    std::vector<std::int64_t> remaining(built.net.arc_count(), 0);
    for (std::size_t a = 0; a < built.net.arc_count(); ++a) {
      remaining[a] = std::llround(flows[k][a]);
    }
    for (std::size_t a = 0; a < built.net.arc_count(); ++a) {
      const topo::ProcessorId processor = built.arc_processor[a];
      if (processor == kInvalidId || remaining[a] == 0) continue;
      if (built.net.arc(static_cast<flow::ArcId>(a)).from !=
          built.commodities[k].source) {
        continue;  // another commodity's source arc
      }
      remaining[a] = 0;
      std::vector<LinkId> links;
      NodeId at = built.net.arc(static_cast<flow::ArcId>(a)).to;
      bool bypassed = false;
      topo::ResourceId resource = kInvalidId;
      while (at != built.commodities[k].sink) {
        if (at == built.bypass[k]) bypassed = true;
        bool advanced = false;
        for (const flow::ArcId out : built.net.out_arcs(at)) {
          const auto oa = static_cast<std::size_t>(out);
          if (remaining[oa] == 0) continue;
          remaining[oa] -= 1;
          if (built.arc_link[oa] != kInvalidId) {
            links.push_back(built.arc_link[oa]);
          }
          if (built.arc_resource[oa] != kInvalidId) {
            resource = built.arc_resource[oa];
          }
          at = built.net.arc(out).to;
          advanced = true;
          break;
        }
        RSIN_ENSURE(advanced, "commodity flow conservation violated");
      }
      if (bypassed) continue;
      RSIN_ENSURE(resource != kInvalidId, "commodity path missed a sink arc");

      Assignment assignment;
      const auto request_it = std::find_if(
          problem.requests.begin(), problem.requests.end(),
          [&](const Request& r) { return r.processor == processor; });
      const auto resource_it = std::find_if(
          problem.free_resources.begin(), problem.free_resources.end(),
          [&](const FreeResource& r) { return r.resource == resource; });
      RSIN_ENSURE(request_it != problem.requests.end(), "unknown request");
      RSIN_ENSURE(resource_it != problem.free_resources.end(),
                  "unknown resource");
      assignment.request = *request_it;
      assignment.resource = *resource_it;
      assignment.circuit.processor = processor;
      assignment.circuit.resource = resource;
      assignment.circuit.links = std::move(links);
      result.assignments.push_back(std::move(assignment));
    }
  }
  result.cost = schedule_cost(problem, result);
  return result;
}

}  // namespace

HeteroResult HeteroLpScheduler::schedule_detailed(const Problem& problem) {
  const bool with_costs =
      problem.max_priority() > 0 || problem.max_preference() > 0;
  const HeteroNet built = build_hetero_net(problem, with_costs);

  const flow::MultiCommodityResult lp =
      with_costs
          ? flow::min_cost_multicommodity_flow(built.net, built.commodities)
          : flow::max_multicommodity_flow(built.net, built.commodities);

  HeteroResult result;
  result.simplex_iterations = lp.simplex_iterations;
  result.lp_value = lp.total_value;
  if (lp.status == lp::SolveStatus::kOptimal && lp.integral) {
    result.lp_integral = true;
    result.schedule = extract_hetero(problem, built, lp.flows);
    result.schedule.operations = lp.simplex_iterations;
    return result;
  }
  // Fractional or failed LP: fall back to the combinatorial baseline so the
  // caller always receives a realizable schedule.
  HeteroSequentialScheduler fallback;
  result.lp_integral = false;
  result.schedule = fallback.schedule(problem);
  return result;
}

ScheduleResult HeteroSequentialScheduler::schedule(const Problem& problem) {
  problem.validate();
  topo::Network net = *problem.network;  // working copy accumulates circuits

  ScheduleResult result;
  for (const std::int32_t type : problem.types()) {
    Problem sub;
    sub.network = &net;
    for (const Request& request : problem.requests) {
      if (request.type == type) sub.requests.push_back(request);
    }
    for (const FreeResource& resource : problem.free_resources) {
      if (resource.type == type) sub.free_resources.push_back(resource);
    }
    if (sub.requests.empty() || sub.free_resources.empty()) continue;

    MaxFlowScheduler inner(flow::MaxFlowAlgorithm::kDinic);
    ScheduleResult sub_result = inner.schedule(sub);
    result.operations += sub_result.operations;
    for (Assignment& assignment : sub_result.assignments) {
      net.establish(assignment.circuit);
      result.assignments.push_back(std::move(assignment));
    }
  }
  result.cost = schedule_cost(problem, result);
  return result;
}

}  // namespace rsin::core
