// BatchingScheduler: amortize warm-start repair cost across queued cycles.
//
// The DES fires one scheduling opportunity per cycle_interval and solves
// each one individually. But the warm-start solver's cost per solve is
// dominated by residual repair + re-augmentation against whatever changed
// since the last solve — solving every cycle repairs against one cycle of
// churn, N times. Draining every Nth cycle repairs against N cycles of
// churn once: strictly less repair work for the same final assignment,
// because pending requests accumulate in the Problem snapshot (an
// unscheduled request simply stays in the queue and reappears next cycle).
// That is the latency/throughput trade the paper's token architecture makes
// at the switchbox level, lifted to the scheduling policy level.
//
// State machine per schedule() call:
//
//   accumulating --(queued < window, no deadline hit)--> defer:
//       return an empty ScheduleResult, outcome kDeferred,
//       batched_cycles 0. The caller must treat the cycle as unserved
//       (no blocking/utilization accounting) — the DES does.
//   accumulating --(queued == window, or any pending request has waited
//                   deadline_cycles deferrals)--> drain:
//       run the inner scheduler once on the current snapshot (which
//       already carries every deferred cycle's surviving requests),
//       propagate the inner report, set batched_cycles = drained count,
//       restart the window.
//
// reset() clears the window as well as the inner scheduler — the DES calls
// it when the overload ladder recovers from greedy bypass (level >= 2
// bypasses the configured scheduler entirely, freezing the window; the
// reset on re-entry prevents a stale deadline clock from firing).
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "core/scheduler.hpp"
#include "topo/network.hpp"

namespace rsin::core {

/// Policy knobs of BatchingScheduler (CLI: --batch-window/--batch-deadline).
struct BatchPolicy {
  /// Cycles accumulated per drain. 1 = solve every cycle (the wrapper is
  /// then a transparent pass-through that never defers).
  std::int32_t window = 1;
  /// Latency bound: a pending request that has been present for this many
  /// consecutive schedule() calls forces a drain even mid-window. <= 0
  /// disables the bound (pure window batching).
  std::int32_t deadline_cycles = 0;
};

/// Wraps any Scheduler (typically the warm-start path or its circuit
/// breaker) with the window/deadline batching policy above. Reports every
/// cycle via ReportingScheduler: kDeferred for queued cycles, the inner
/// scheduler's outcome (weighted by batched_cycles) for drains.
class BatchingScheduler final : public ReportingScheduler {
 public:
  BatchingScheduler(std::unique_ptr<Scheduler> inner, BatchPolicy policy);

  [[nodiscard]] std::string name() const override;
  ScheduleResult schedule(const Problem& problem) override;
  void reset() override;
  void set_relaxed(bool relaxed) override { inner_->set_relaxed(relaxed); }
  /// Binds the inner scheduler plus defer/drain counters and a drain-window
  /// histogram (cycles covered per drain); drains also emit a chrome-trace
  /// instant event when the handle carries a TraceWriter.
  void bind_obs(const obs::Handle& handle) override;

  [[nodiscard]] const FallbackReport& last_report() const override {
    return report_;
  }
  [[nodiscard]] const BatchPolicy& policy() const { return policy_; }
  /// Lifetime counts (diagnostics / CLI output).
  [[nodiscard]] std::int64_t deferred_cycles() const { return deferred_; }
  [[nodiscard]] std::int64_t drains() const { return drains_; }
  [[nodiscard]] Scheduler& inner() { return *inner_; }

 private:
  std::unique_ptr<Scheduler> inner_;
  BatchPolicy policy_;
  FallbackReport report_;
  std::int32_t queued_ = 0;  ///< Cycles in the open window, incl. current.
  std::int64_t deferred_ = 0;
  std::int64_t drains_ = 0;
  /// Consecutive schedule() calls each pending processor's request has been
  /// present for (drives the deadline). Rebuilt from the snapshot each call
  /// so departed requests (satisfied elsewhere, shed, torn down) age out.
  std::map<topo::ProcessorId, std::int32_t> ages_;
  std::map<topo::ProcessorId, std::int32_t> scratch_ages_;
  obs::Counter* obs_deferred_ = nullptr;
  obs::Counter* obs_drains_ = nullptr;
  obs::Histogram* obs_drain_window_ = nullptr;
  obs::TraceWriter* obs_trace_ = nullptr;
};

}  // namespace rsin::core
