#include "core/zoo.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>

#include "core/routing.hpp"
#include "util/error.hpp"

namespace rsin::core {

namespace {

/// Scratch for building one matching proposal: a private network copy with
/// the proposal's circuits established plus the matched/used bookkeeping.
struct Proposal {
  topo::Network net;
  std::vector<char> request_matched;                // by request index
  std::vector<char> resource_used;                  // by resource id
  std::vector<const FreeResource*> resource_info;   // by resource id
  ScheduleResult result;

  explicit Proposal(const Problem& problem)
      : net(*problem.network),
        request_matched(problem.requests.size(), 0),
        resource_used(static_cast<std::size_t>(net.resource_count()), 0),
        resource_info(static_cast<std::size_t>(net.resource_count()),
                      nullptr) {
    for (const FreeResource& resource : problem.free_resources) {
      resource_info[static_cast<std::size_t>(resource.resource)] = &resource;
    }
  }
};

/// Attempts to match request `index` to exactly `resource`; on success the
/// circuit is established in the proposal's network and the pair recorded.
bool try_pair(Proposal& proposal, const Problem& problem, std::size_t index,
              topo::ResourceId resource) {
  const Request& request = problem.requests[index];
  const auto r = static_cast<std::size_t>(resource);
  const FreeResource* info = proposal.resource_info[r];
  if (info == nullptr || proposal.resource_used[r] != 0 ||
      info->type != request.type || proposal.request_matched[index] != 0) {
    return false;
  }
  auto paths = enumerate_free_paths(proposal.net, request.processor, resource,
                                    /*limit=*/1);
  proposal.result.operations +=
      static_cast<std::int64_t>(proposal.net.link_count());
  if (paths.empty()) return false;
  proposal.net.establish(paths.front());
  proposal.request_matched[index] = 1;
  proposal.resource_used[r] = 1;
  Assignment assignment;
  assignment.request = request;
  assignment.resource = *info;
  assignment.circuit = std::move(paths.front());
  proposal.result.assignments.push_back(std::move(assignment));
  return true;
}

/// Extends a proposal to a maximal matching with random choices: unmatched
/// requests are visited in a random order and each tries every compatible
/// unused resource in a random order. Because establishing circuits only
/// removes free links, a resource unreachable at its attempt stays
/// unreachable, so the end state is maximal over the visited requests.
void extend_randomly(Proposal& proposal, const Problem& problem,
                     util::Rng& rng) {
  std::vector<std::size_t> order;
  order.reserve(problem.requests.size());
  for (std::size_t i = 0; i < problem.requests.size(); ++i) {
    if (proposal.request_matched[i] == 0) order.push_back(i);
  }
  rng.shuffle(order);
  std::vector<topo::ResourceId> candidates;
  for (const std::size_t index : order) {
    const Request& request = problem.requests[index];
    candidates.clear();
    for (const FreeResource& resource : problem.free_resources) {
      if (proposal.resource_used[static_cast<std::size_t>(
              resource.resource)] == 0 &&
          resource.type == request.type) {
        candidates.push_back(resource.resource);
      }
    }
    rng.shuffle(candidates);
    for (const topo::ResourceId resource : candidates) {
      if (try_pair(proposal, problem, index, resource)) break;
    }
  }
}

}  // namespace

RandomizedMatchScheduler::RandomizedMatchScheduler(
    RandomizedMatchConfig config)
    : config_(config), rng_(config.seed) {}

void RandomizedMatchScheduler::reset() {
  retained_.clear();
  rng_.reseed(config_.seed);
}

ScheduleResult RandomizedMatchScheduler::schedule(const Problem& problem) {
  problem.validate();

  // Fresh proposal: an independent random maximal matching.
  Proposal fresh(problem);
  extend_randomly(fresh, problem, rng_);

  ScheduleResult chosen;
  std::int64_t discarded_operations = 0;
  bool retained_won = false;
  if (config_.pick_and_compare && !retained_.empty()) {
    // Compare proposal: last cycle's matching re-validated pair by pair on
    // the current problem (a pair survives only if the processor still
    // requests, the resource is still free and type-compatible, and a free
    // circuit still connects them), then completed maximally at random.
    std::vector<std::int32_t> request_of(
        static_cast<std::size_t>(problem.network->processor_count()), -1);
    for (std::size_t i = 0; i < problem.requests.size(); ++i) {
      request_of[static_cast<std::size_t>(problem.requests[i].processor)] =
          static_cast<std::int32_t>(i);
    }
    Proposal compare(problem);
    for (const auto& [processor, resource] : retained_) {
      const std::int32_t index =
          request_of[static_cast<std::size_t>(processor)];
      if (index < 0) continue;  // the processor no longer requests
      try_pair(compare, problem, static_cast<std::size_t>(index), resource);
    }
    extend_randomly(compare, problem, rng_);
    // Pick-and-compare: keep the larger matching; ties keep the retained
    // proposal so a stable matching is not churned for nothing.
    if (compare.result.allocated() >= fresh.result.allocated()) {
      discarded_operations = fresh.result.operations;
      chosen = std::move(compare.result);
      retained_won = true;
    } else {
      discarded_operations = compare.result.operations;
      chosen = std::move(fresh.result);
    }
  } else {
    chosen = std::move(fresh.result);
  }
  chosen.operations += discarded_operations;

  retained_.clear();
  for (const Assignment& assignment : chosen.assignments) {
    retained_.emplace_back(assignment.request.processor,
                           assignment.resource.resource);
  }
  chosen.cost = schedule_cost(problem, chosen);

  if (obs_cycles_ != nullptr) {
    obs_cycles_->add();
    obs_matched_->add(static_cast<std::int64_t>(chosen.allocated()));
    if (retained_won) obs_retained_wins_->add();
  }
  return chosen;
}

void RandomizedMatchScheduler::bind_obs(const obs::Handle& handle) {
  obs_cycles_ = nullptr;
  obs_matched_ = nullptr;
  obs_retained_wins_ = nullptr;
  if (!handle.enabled()) return;
  const std::string prefix = "core.zoo." + obs::metric_label(name()) + ".";
  obs_cycles_ = &handle.registry->counter(prefix + "cycles");
  obs_matched_ = &handle.registry->counter(prefix + "matched");
  obs_retained_wins_ = &handle.registry->counter(prefix + "retained_wins");
}

ThresholdScheduler::ThresholdScheduler(ThresholdConfig config)
    : config_(config) {
  RSIN_REQUIRE(config.reserve >= 0,
               "ThresholdConfig.reserve must be >= 0");
}

std::string ThresholdScheduler::name() const {
  return "threshold(reserve=" + std::to_string(config_.reserve) + ")";
}

ScheduleResult ThresholdScheduler::schedule(const Problem& problem) {
  problem.validate();
  topo::Network net = *problem.network;

  std::vector<char> resource_used(
      static_cast<std::size_t>(net.resource_count()), 0);
  std::vector<const FreeResource*> resource_info(
      static_cast<std::size_t>(net.resource_count()), nullptr);
  // Per-class admission budget: free count minus the reserve headroom.
  std::map<std::int32_t, std::int64_t> budget;
  for (const FreeResource& resource : problem.free_resources) {
    resource_info[static_cast<std::size_t>(resource.resource)] = &resource;
    ++budget[resource.type];
  }
  for (auto& [type, remaining] : budget) {
    remaining = std::max<std::int64_t>(0, remaining - config_.reserve);
  }

  // Highest priority first; problem order breaks ties (deterministic).
  std::vector<std::size_t> order(problem.requests.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return problem.requests[a].priority >
                            problem.requests[b].priority;
                   });

  ScheduleResult result;
  std::int64_t withheld = 0;
  for (const std::size_t index : order) {
    const Request& request = problem.requests[index];
    const auto it = budget.find(request.type);
    if (it == budget.end()) continue;  // no free resource of the class
    if (it->second <= 0) {
      ++withheld;  // class at its admission threshold
      continue;
    }
    auto circuit = first_free_path(
        net, request.processor,
        [&](topo::ResourceId r) {
          return resource_info[static_cast<std::size_t>(r)] != nullptr &&
                 !resource_used[static_cast<std::size_t>(r)] &&
                 resource_info[static_cast<std::size_t>(r)]->type ==
                     request.type;
        },
        &result.operations);
    if (!circuit) continue;
    net.establish(*circuit);
    resource_used[static_cast<std::size_t>(circuit->resource)] = 1;
    --it->second;
    Assignment assignment;
    assignment.request = request;
    assignment.resource =
        *resource_info[static_cast<std::size_t>(circuit->resource)];
    assignment.circuit = std::move(*circuit);
    result.assignments.push_back(std::move(assignment));
  }
  result.cost = schedule_cost(problem, result);

  if (obs_cycles_ != nullptr) {
    obs_cycles_->add();
    obs_matched_->add(static_cast<std::int64_t>(result.allocated()));
    if (withheld > 0) obs_withheld_->add(withheld);
  }
  return result;
}

void ThresholdScheduler::bind_obs(const obs::Handle& handle) {
  obs_cycles_ = nullptr;
  obs_matched_ = nullptr;
  obs_withheld_ = nullptr;
  if (!handle.enabled()) return;
  const std::string prefix = "core.zoo." + obs::metric_label(name()) + ".";
  obs_cycles_ = &handle.registry->counter(prefix + "cycles");
  obs_matched_ = &handle.registry->counter(prefix + "matched");
  obs_withheld_ = &handle.registry->counter(prefix + "withheld");
}

ScheduleResult GreedyLocalScheduler::schedule(const Problem& problem) {
  problem.validate();
  topo::Network net = *problem.network;

  std::vector<char> resource_used(
      static_cast<std::size_t>(net.resource_count()), 0);
  std::vector<const FreeResource*> resource_info(
      static_cast<std::size_t>(net.resource_count()), nullptr);
  for (const FreeResource& resource : problem.free_resources) {
    resource_info[static_cast<std::size_t>(resource.resource)] = &resource;
  }

  const std::size_t count = problem.requests.size();
  const std::size_t start =
      count > 0 ? static_cast<std::size_t>(rotation_ % count) : 0;
  ++rotation_;

  ScheduleResult result;
  for (std::size_t i = 0; i < count; ++i) {
    const Request& request = problem.requests[(start + i) % count];
    auto circuit = first_free_path(
        net, request.processor,
        [&](topo::ResourceId r) {
          return resource_info[static_cast<std::size_t>(r)] != nullptr &&
                 !resource_used[static_cast<std::size_t>(r)] &&
                 resource_info[static_cast<std::size_t>(r)]->type ==
                     request.type;
        },
        &result.operations);
    if (!circuit) continue;
    net.establish(*circuit);
    resource_used[static_cast<std::size_t>(circuit->resource)] = 1;
    Assignment assignment;
    assignment.request = request;
    assignment.resource =
        *resource_info[static_cast<std::size_t>(circuit->resource)];
    assignment.circuit = std::move(*circuit);
    result.assignments.push_back(std::move(assignment));
  }
  result.cost = schedule_cost(problem, result);

  if (obs_cycles_ != nullptr) {
    obs_cycles_->add();
    obs_matched_->add(static_cast<std::int64_t>(result.allocated()));
  }
  return result;
}

void GreedyLocalScheduler::bind_obs(const obs::Handle& handle) {
  obs_cycles_ = nullptr;
  obs_matched_ = nullptr;
  if (!handle.enabled()) return;
  const std::string prefix = "core.zoo." + obs::metric_label(name()) + ".";
  obs_cycles_ = &handle.registry->counter(prefix + "cycles");
  obs_matched_ = &handle.registry->counter(prefix + "matched");
}

std::unique_ptr<Scheduler> make_named_scheduler(const std::string& name,
                                                std::uint64_t seed) {
  if (name == "dinic") {
    return std::make_unique<MaxFlowScheduler>(flow::MaxFlowAlgorithm::kDinic);
  }
  if (name == "ford-fulkerson") {
    return std::make_unique<MaxFlowScheduler>(
        flow::MaxFlowAlgorithm::kFordFulkerson);
  }
  if (name == "edmonds-karp") {
    return std::make_unique<MaxFlowScheduler>(
        flow::MaxFlowAlgorithm::kEdmondsKarp);
  }
  if (name == "push-relabel") {
    return std::make_unique<MaxFlowScheduler>(
        flow::MaxFlowAlgorithm::kPushRelabel);
  }
  if (name == "mincost") return std::make_unique<MinCostScheduler>();
  if (name == "greedy") return std::make_unique<GreedyScheduler>();
  if (name == "greedy-local") return std::make_unique<GreedyLocalScheduler>();
  if (name == "random") {
    return std::make_unique<RandomScheduler>(util::Rng(seed));
  }
  if (name == "randomized-match") {
    return std::make_unique<RandomizedMatchScheduler>(
        RandomizedMatchConfig{seed, /*pick_and_compare=*/true});
  }
  if (name == "threshold") return std::make_unique<ThresholdScheduler>();
  if (name == "warm") return std::make_unique<WarmMaxFlowScheduler>();
  if (name == "breaker") {
    return std::make_unique<CircuitBreakerScheduler>();
  }
  std::string known;
  for (const std::string& candidate : scheduler_names()) {
    if (!known.empty()) known += ' ';
    known += candidate;
  }
  throw std::invalid_argument("unknown scheduler: " + name +
                              " (expected one of: " + known + ")");
}

const std::vector<std::string>& scheduler_names() {
  static const std::vector<std::string> names = {
      "dinic",  "ford-fulkerson", "edmonds-karp",     "push-relabel",
      "mincost", "greedy",        "greedy-local",     "random",
      "randomized-match", "threshold", "warm", "breaker"};
  return names;
}

}  // namespace rsin::core
