#include "core/routing.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rsin::core {
namespace {

using topo::kInvalidId;
using topo::LinkId;
using topo::Network;
using topo::NodeKind;

/// Depth-first walk from a processor over free links. `visit_resource` is
/// called with the circuit each time a resource is reached; returning true
/// stops the whole search. With `persistent_visited` each switch is entered
/// at most once overall (reachability semantics); without it, marks are
/// undone on backtrack so every simple path is explored (enumeration
/// semantics). Either way a switch never repeats within one path, so the
/// walk terminates on any topology.
bool dfs_walk(const Network& net, topo::ProcessorId processor,
              const std::function<bool(const topo::Circuit&)>& visit_resource,
              std::int64_t* operations, bool persistent_visited) {
  const LinkId start = net.processor_link(processor);
  if (start == kInvalidId || !net.link_free(start)) return false;

  std::vector<char> visited(static_cast<std::size_t>(net.switch_count()), 0);
  std::vector<LinkId> path;

  const std::function<bool(LinkId)> descend = [&](LinkId link) -> bool {
    if (operations) ++*operations;
    path.push_back(link);
    const topo::Link& l = net.link(link);
    bool stop = false;
    if (l.to.kind == NodeKind::kResource) {
      topo::Circuit circuit;
      circuit.processor = processor;
      circuit.resource = l.to.node;
      circuit.links = path;
      stop = visit_resource(circuit);
    } else {
      const topo::SwitchId sw = l.to.node;
      if (!visited[static_cast<std::size_t>(sw)]) {
        visited[static_cast<std::size_t>(sw)] = 1;
        for (const LinkId out : net.switch_out_links(sw)) {
          if (out == kInvalidId || !net.link_free(out)) continue;
          if (descend(out)) {
            stop = true;
            break;
          }
        }
        if (!persistent_visited) visited[static_cast<std::size_t>(sw)] = 0;
      }
    }
    path.pop_back();
    return stop;
  };

  return descend(start);
}

}  // namespace

std::vector<topo::Circuit> enumerate_free_paths(const Network& net,
                                                topo::ProcessorId processor,
                                                topo::ResourceId resource,
                                                std::size_t limit) {
  RSIN_REQUIRE(net.valid_processor(processor), "unknown processor");
  RSIN_REQUIRE(net.valid_resource(resource), "unknown resource");
  std::vector<topo::Circuit> found;
  if (limit == 0) return found;
  dfs_walk(
      net, processor,
      [&](const topo::Circuit& circuit) {
        if (circuit.resource == resource) {
          found.push_back(circuit);
          if (found.size() >= limit) return true;
        }
        return false;
      },
      nullptr, /*persistent_visited=*/false);
  return found;
}

std::optional<topo::Circuit> first_free_path(
    const Network& net, topo::ProcessorId processor,
    const std::function<bool(topo::ResourceId)>& resource_wanted,
    std::int64_t* operations) {
  RSIN_REQUIRE(net.valid_processor(processor), "unknown processor");
  std::optional<topo::Circuit> found;
  dfs_walk(
      net, processor,
      [&](const topo::Circuit& circuit) {
        if (resource_wanted(circuit.resource)) {
          found = circuit;
          return true;
        }
        return false;
      },
      operations, /*persistent_visited=*/true);
  return found;
}

std::vector<topo::ResourceId> reachable_free_resources(
    const Network& net, topo::ProcessorId processor) {
  RSIN_REQUIRE(net.valid_processor(processor), "unknown processor");
  std::vector<char> seen(static_cast<std::size_t>(net.resource_count()), 0);
  dfs_walk(
      net, processor,
      [&](const topo::Circuit& circuit) {
        seen[static_cast<std::size_t>(circuit.resource)] = 1;
        return false;
      },
      nullptr, /*persistent_visited=*/true);
  std::vector<topo::ResourceId> result;
  for (std::size_t r = 0; r < seen.size(); ++r) {
    if (seen[r]) result.push_back(static_cast<topo::ResourceId>(r));
  }
  return result;
}

}  // namespace rsin::core
