// Scheduling results and their verification.
//
// A ScheduleResult is a request-resource mapping together with the physical
// circuits realizing it. verify_schedule() checks *realizability*: every
// circuit is contiguous, uses only links free in the problem's network, all
// circuits are pairwise link-disjoint, each request/resource is used at most
// once, and resource types match. These are exactly the feasibility
// conditions Theorems 1-2 equate with legal integral flows.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/problem.hpp"

namespace rsin::core {

/// One allocated pair plus the circuit that realizes it.
struct Assignment {
  Request request;
  FreeResource resource;
  topo::Circuit circuit;
};

struct ScheduleResult {
  std::vector<Assignment> assignments;
  /// The paper's allocation cost: sum over assignments of
  /// (y_max - y_p) + (q_max - q_w); lower is better. Zero for the
  /// no-priority discipline.
  std::int64_t cost = 0;
  /// Elementary operations the scheduler performed (algorithm-specific;
  /// used as the monitor architecture's instruction-count proxy).
  std::int64_t operations = 0;

  [[nodiscard]] std::size_t allocated() const { return assignments.size(); }

  /// True when `processor` received a resource in this schedule.
  [[nodiscard]] bool processor_allocated(topo::ProcessorId processor) const;
  /// Resource allocated to `processor`, or kInvalidId.
  [[nodiscard]] topo::ResourceId resource_of(topo::ProcessorId processor) const;
};

/// Returns std::nullopt when the schedule is realizable for the problem;
/// otherwise a description of the first violated condition.
std::optional<std::string> verify_schedule(const Problem& problem,
                                           const ScheduleResult& result);

/// Computes the paper's allocation cost of a schedule under the problem's
/// priority/preference levels.
std::int64_t schedule_cost(const Problem& problem,
                           const ScheduleResult& result);

/// Establishes every circuit of the schedule in the network (occupying
/// links). The schedule must verify cleanly first.
void establish_schedule(topo::Network& network, const ScheduleResult& result);

}  // namespace rsin::core
