// Transformations 1 and 2 (Section III of the paper): MRSIN -> flow network.
//
// Transformation 1 (homogeneous, no priorities): source -> requesting
// processors -> free-link fabric -> free resources -> sink, all arcs unit
// capacity. Theorem 2: the number of resources an MRSIN mapping can allocate
// equals the value of an integral flow here, so a maximum flow yields the
// optimal request-resource mapping.
//
// Transformation 2 (priorities/preferences): adds a bypass node u reachable
// from every requesting processor, with arc costs chosen so that
// (a) bypassing is always costlier than any real path (count-optimality
// first, Theorem 3) and (b) among count-optimal mappings the cheaper
// priorities/preferences win. The exact cost function of the paper makes
// request priorities cost-neutral when F0 equals the number of requests
// (every source arc is saturated either way); the kPriorityWeighted mode is
// a documented extension that adds the request's priority to its bypass arc
// so that, when not every request fits, high-priority requests are the ones
// allocated. The paper itself licenses this ("any cost function that is
// inversely related to priorities and preferences can be used").
#pragma once

#include <cstdint>
#include <vector>

#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "flow/network.hpp"

namespace rsin::core {

/// A transformed flow network plus the bookkeeping needed to pull circuits
/// back out of a flow assignment.
struct TransformResult {
  flow::FlowNetwork net;
  flow::NodeId bypass = flow::kInvalidNode;  ///< Set by Transformation 2.
  /// For every flow arc: the physical link it models, or kInvalidId for the
  /// synthetic source/sink/bypass arcs.
  std::vector<topo::LinkId> arc_link;
  /// For source->processor arcs: the requesting processor; else kInvalidId.
  std::vector<topo::ProcessorId> arc_processor;
  /// For resource->sink arcs: the resource; else kInvalidId.
  std::vector<topo::ResourceId> arc_resource;
  /// F0 of Transformation 2: the number of pending requests.
  flow::Capacity request_count = 0;
};

/// Transformation 1. The problem must be homogeneous (single type).
TransformResult transformation1(const Problem& problem);

enum class BypassCostMode {
  kPaper,             ///< w(L) = max(y_max+1, q_max+1) on both bypass arcs.
  kPriorityWeighted,  ///< w(p->u) additionally grows with p's priority.
};

/// Transformation 2. The problem must be homogeneous (single type).
TransformResult transformation2(const Problem& problem,
                                BypassCostMode mode = BypassCostMode::kPaper);

/// Persistent Transformation 1 for the per-cycle scheduling hot path.
///
/// Where transformation1() rebuilds the flow network from scratch for every
/// scheduling cycle, a PersistentTransform builds one *full-topology*
/// skeleton — nodes for the source, sink, and every processor, switch, and
/// resource; arcs for every source->processor, fabric link, and
/// resource->sink, at fixed ids — and then per cycle only overwrites arc
/// capacities from the Problem snapshot: 1 on the arcs of requesting
/// processors, free links, and free resources; 0 everywhere else. Arcs the
/// cold transformation would omit are instead present with capacity 0,
/// which is invisible to the solvers (they skip zero-residual edges in the
/// same order), so the per-cycle flow and schedule are identical to the
/// cold path's while the graph itself is never reallocated — the structural
/// basis of the warm-start scheduler.
class PersistentTransform {
 public:
  /// (Re)builds the skeleton for `net`'s topology. All capacities start 0.
  void build(const topo::Network& net);

  /// True when the skeleton was built for a network of this exact shape
  /// (same processor/switch/resource counts and link endpoints); failed or
  /// occupied elements do not affect the shape.
  [[nodiscard]] bool matches(const topo::Network& net) const;

  /// Overwrites the capacities for one scheduling cycle. The problem must
  /// be homogeneous and its network must match the built skeleton. Flow
  /// currently assigned in the network is left untouched (the warm-start
  /// residual repair reconciles it against the new capacities).
  void update(const Problem& problem);

  /// The persistent network plus the arc bookkeeping extract_schedule needs.
  [[nodiscard]] TransformResult& result() { return result_; }

  /// Shape the skeleton was built for (0 when never built). The pool files
  /// returned contexts under this key so the next same-shape checkout
  /// starts warm.
  [[nodiscard]] std::uint64_t shape_hash() const {
    return built_ ? shape_hash_ : 0;
  }

 private:
  TransformResult result_;
  std::vector<flow::ArcId> processor_arc_;  // per processor; the S arc
  std::vector<flow::ArcId> link_arc_;       // per link; kInvalidArc if unmapped
  std::vector<flow::ArcId> resource_arc_;   // per resource; the T arc
  // Persistent validation scratch so the per-cycle update never allocates
  // (Problem::validate builds fresh O(n) vectors on every call).
  std::vector<char> seen_processor_;
  std::vector<char> seen_resource_;
  std::uint64_t shape_hash_ = 0;
  bool built_ = false;
};

/// Converts the flow currently assigned in `transformed.net` into a
/// schedule: one assignment (with its physical circuit) per unit of flow
/// that reaches the sink through the fabric. Flow through the bypass node
/// produces no assignment. The flow must be legal and 0/1-valued.
ScheduleResult extract_schedule(const Problem& problem,
                                const TransformResult& transformed);

}  // namespace rsin::core
