// Transformations 1 and 2 (Section III of the paper): MRSIN -> flow network.
//
// Transformation 1 (homogeneous, no priorities): source -> requesting
// processors -> free-link fabric -> free resources -> sink, all arcs unit
// capacity. Theorem 2: the number of resources an MRSIN mapping can allocate
// equals the value of an integral flow here, so a maximum flow yields the
// optimal request-resource mapping.
//
// Transformation 2 (priorities/preferences): adds a bypass node u reachable
// from every requesting processor, with arc costs chosen so that
// (a) bypassing is always costlier than any real path (count-optimality
// first, Theorem 3) and (b) among count-optimal mappings the cheaper
// priorities/preferences win. The exact cost function of the paper makes
// request priorities cost-neutral when F0 equals the number of requests
// (every source arc is saturated either way); the kPriorityWeighted mode is
// a documented extension that adds the request's priority to its bypass arc
// so that, when not every request fits, high-priority requests are the ones
// allocated. The paper itself licenses this ("any cost function that is
// inversely related to priorities and preferences can be used").
#pragma once

#include <vector>

#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "flow/network.hpp"

namespace rsin::core {

/// A transformed flow network plus the bookkeeping needed to pull circuits
/// back out of a flow assignment.
struct TransformResult {
  flow::FlowNetwork net;
  flow::NodeId bypass = flow::kInvalidNode;  ///< Set by Transformation 2.
  /// For every flow arc: the physical link it models, or kInvalidId for the
  /// synthetic source/sink/bypass arcs.
  std::vector<topo::LinkId> arc_link;
  /// For source->processor arcs: the requesting processor; else kInvalidId.
  std::vector<topo::ProcessorId> arc_processor;
  /// For resource->sink arcs: the resource; else kInvalidId.
  std::vector<topo::ResourceId> arc_resource;
  /// F0 of Transformation 2: the number of pending requests.
  flow::Capacity request_count = 0;
};

/// Transformation 1. The problem must be homogeneous (single type).
TransformResult transformation1(const Problem& problem);

enum class BypassCostMode {
  kPaper,             ///< w(L) = max(y_max+1, q_max+1) on both bypass arcs.
  kPriorityWeighted,  ///< w(p->u) additionally grows with p's priority.
};

/// Transformation 2. The problem must be homogeneous (single type).
TransformResult transformation2(const Problem& problem,
                                BypassCostMode mode = BypassCostMode::kPaper);

/// Converts the flow currently assigned in `transformed.net` into a
/// schedule: one assignment (with its physical circuit) per unit of flow
/// that reaches the sink through the fabric. Flow through the bypass node
/// produces no assignment. The flow must be legal and 0/1-valued.
ScheduleResult extract_schedule(const Problem& problem,
                                const TransformResult& transformed);

}  // namespace rsin::core
