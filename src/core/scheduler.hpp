// Scheduler interface and the concrete scheduling disciplines.
//
// The paper's thesis is that optimal request-resource mapping is a network
// flow computation; the baselines here are the schemes it argues against:
//  * MaxFlowScheduler   — Transformation 1 + max-flow (optimal count;
//                         Section III-B; the scheme with ~2% blocking).
//  * MinCostScheduler   — Transformation 2 + min-cost flow (optimal count,
//                         then priorities/preferences; Section III-C).
//  * GreedyScheduler    — heuristic routing: route each request along the
//                         first free path found, never reconsidering
//                         (the ~20%-blocking heuristic of Section II).
//  * RandomScheduler    — conventional address mapping: pick a random free
//                         resource first, then try to route to exactly that
//                         destination; no rerouting on blockage.
//  * ExhaustiveScheduler— ground truth by backtracking over all mappings
//                         and path choices (exponential; small instances
//                         only; used to validate Theorems 1-2 in tests).
//
// All schedulers are stateless with respect to the network: they never
// mutate the problem's network; establishing the returned circuits is the
// caller's decision (core/schedule.hpp).
#pragma once

#include <memory>
#include <string>

#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "core/transform.hpp"
#include "flow/max_flow.hpp"
#include "flow/min_cost.hpp"
#include "flow/schedule_context.hpp"
#include "util/rng.hpp"

namespace rsin::core {

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Computes a realizable schedule for the problem. Implementations must
  /// return results that pass verify_schedule().
  virtual ScheduleResult schedule(const Problem& problem) = 0;
  /// Drops any cross-cycle solver state (warm-start residuals, caches).
  /// Stateless schedulers ignore it; control loops call it after a solve
  /// was abandoned or the network changed under the scheduler.
  virtual void reset() {}
};

/// Optimal allocation count via Transformation 1 + a max-flow algorithm.
class MaxFlowScheduler final : public Scheduler {
 public:
  explicit MaxFlowScheduler(
      flow::MaxFlowAlgorithm algorithm = flow::MaxFlowAlgorithm::kDinic)
      : algorithm_(algorithm) {}
  [[nodiscard]] std::string name() const override;
  ScheduleResult schedule(const Problem& problem) override;

 private:
  flow::MaxFlowAlgorithm algorithm_;
};

/// Optimal allocation count like MaxFlowScheduler(kDinic), but on the
/// warm-start hot path: a PersistentTransform skeleton mutated in place
/// each cycle plus a ScheduleContext whose residual flow is repaired and
/// re-augmented instead of recomputed — zero allocations per cycle once
/// warm. With `verify` (the default in debug builds) every cycle also runs
/// the cold transformation1 + Dinic solve and RSIN_ENSUREs the warm-start
/// max-flow value matches — the differential check that guards the
/// incremental path against drift.
class WarmMaxFlowScheduler final : public Scheduler {
 public:
  explicit WarmMaxFlowScheduler(bool verify = kVerifyDefault);
  [[nodiscard]] std::string name() const override;
  ScheduleResult schedule(const Problem& problem) override;
  void reset() override;

  /// Warm/cold cycle accounting of the underlying ScheduleContext.
  [[nodiscard]] const flow::WarmStats& warm_stats() const {
    return context_.stats;
  }

#ifdef NDEBUG
  static constexpr bool kVerifyDefault = false;
#else
  static constexpr bool kVerifyDefault = true;
#endif

 private:
  PersistentTransform transform_;
  flow::ScheduleContext context_;
  bool verify_;
};

/// Optimal count + minimal priority/preference cost via Transformation 2.
class MinCostScheduler final : public Scheduler {
 public:
  explicit MinCostScheduler(
      flow::MinCostFlowAlgorithm algorithm = flow::MinCostFlowAlgorithm::kSsp,
      BypassCostMode mode = BypassCostMode::kPaper)
      : algorithm_(algorithm), mode_(mode) {}
  [[nodiscard]] std::string name() const override;
  ScheduleResult schedule(const Problem& problem) override;

 private:
  flow::MinCostFlowAlgorithm algorithm_;
  BypassCostMode mode_;
};

/// Heuristic routing baseline: requests in problem order, each takes the
/// first free path (depth-first) to any unused free resource of its type.
class GreedyScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "greedy"; }
  ScheduleResult schedule(const Problem& problem) override;
};

/// Address-mapping baseline: each request draws a uniformly random free
/// resource of its type and attempts the first free path to exactly that
/// resource; a blocked path means the request fails (no rerouting).
///
/// With `independent_destinations` the draws are with replacement, so two
/// requests can target the same resource and collide — the conventional
/// random-address regime modeled analytically by sim::banyan_blocking.
/// Without it (default) a centralized allocator hands out distinct
/// resources, isolating pure link blocking.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(util::Rng rng, bool independent_destinations = false)
      : rng_(rng), independent_destinations_(independent_destinations) {}
  [[nodiscard]] std::string name() const override {
    return independent_destinations_ ? "address-mapped(independent)"
                                     : "address-mapped";
  }
  ScheduleResult schedule(const Problem& problem) override;

 private:
  util::Rng rng_;
  bool independent_destinations_;
};

/// How a FallbackScheduler cycle was served.
enum class ScheduleOutcome : std::uint8_t {
  kOptimal,   ///< The primary (optimal) scheduler answered within deadline.
  kDegraded,  ///< Primary failed or timed out; greedy fallback answered.
  kPartial,   ///< Both failed; an empty (but valid) schedule was returned.
};

[[nodiscard]] const char* to_string(ScheduleOutcome outcome);

/// Diagnosis of the most recent FallbackScheduler cycle.
struct FallbackReport {
  ScheduleOutcome outcome = ScheduleOutcome::kOptimal;
  double primary_seconds = 0.0;  ///< Wall time the primary attempt took.
  std::string detail;            ///< Exception / timeout description.
};

/// Degraded-mode wrapper: runs an optimal scheduler under a per-cycle wall
/// clock deadline and falls back to GreedyScheduler when the primary throws
/// or overruns. Never throws out of schedule(): in the worst case it
/// returns an empty schedule and reports kPartial, so a control loop (the
/// DES scheduling cycle) keeps running through solver failures. The
/// deadline is *soft* — the primary is not interrupted mid-solve; its
/// result is discarded after the fact — which is the right semantic for a
/// simulated per-cycle time budget.
class FallbackScheduler final : public Scheduler {
 public:
  explicit FallbackScheduler(std::unique_ptr<Scheduler> primary,
                             double deadline_seconds = 0.0);
  [[nodiscard]] std::string name() const override;
  ScheduleResult schedule(const Problem& problem) override;

  [[nodiscard]] const FallbackReport& last_report() const { return report_; }
  [[nodiscard]] std::int64_t cycles() const { return cycles_; }
  [[nodiscard]] std::int64_t degraded_cycles() const { return degraded_; }

 private:
  std::unique_ptr<Scheduler> primary_;
  GreedyScheduler fallback_;
  double deadline_seconds_;
  FallbackReport report_;
  std::int64_t cycles_ = 0;
  std::int64_t degraded_ = 0;
};

/// Exponential ground truth: maximizes allocation count (tie-broken by
/// minimal cost) over every mapping and every path choice. Throws
/// std::runtime_error if the search exceeds `work_limit` recursion steps.
class ExhaustiveScheduler final : public Scheduler {
 public:
  explicit ExhaustiveScheduler(std::int64_t work_limit = 50'000'000)
      : work_limit_(work_limit) {}
  [[nodiscard]] std::string name() const override { return "exhaustive"; }
  ScheduleResult schedule(const Problem& problem) override;

 private:
  std::int64_t work_limit_;
};

}  // namespace rsin::core
