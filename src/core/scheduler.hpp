// Scheduler interface and the concrete scheduling disciplines.
//
// The paper's thesis is that optimal request-resource mapping is a network
// flow computation; the baselines here are the schemes it argues against:
//  * MaxFlowScheduler   — Transformation 1 + max-flow (optimal count;
//                         Section III-B; the scheme with ~2% blocking).
//  * MinCostScheduler   — Transformation 2 + min-cost flow (optimal count,
//                         then priorities/preferences; Section III-C).
//  * GreedyScheduler    — heuristic routing: route each request along the
//                         first free path found, never reconsidering
//                         (the ~20%-blocking heuristic of Section II).
//  * RandomScheduler    — conventional address mapping: pick a random free
//                         resource first, then try to route to exactly that
//                         destination; no rerouting on blockage.
//  * ExhaustiveScheduler— ground truth by backtracking over all mappings
//                         and path choices (exponential; small instances
//                         only; used to validate Theorems 1-2 in tests).
//
// All schedulers are stateless with respect to the network: they never
// mutate the problem's network; establishing the returned circuits is the
// caller's decision (core/schedule.hpp).
#pragma once

#include <memory>
#include <string>

#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "core/transform.hpp"
#include "core/warm_pool.hpp"
#include "flow/max_flow.hpp"
#include "flow/min_cost.hpp"
#include "flow/schedule_context.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace rsin::core {

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Computes a realizable schedule for the problem. Implementations must
  /// return results that pass verify_schedule().
  virtual ScheduleResult schedule(const Problem& problem) = 0;
  /// Drops any cross-cycle solver state (warm-start residuals, caches).
  /// Stateless schedulers ignore it; control loops call it after a solve
  /// was abandoned or the network changed under the scheduler.
  virtual void reset() {}
  /// Overload hint from a control loop: while relaxed, the scheduler may
  /// suspend *optional self-checks* (differential verification, redundant
  /// cross-validation) to shed per-cycle cost. Results must stay correct —
  /// only their double-checking is skipped. Default: ignored.
  virtual void set_relaxed(bool /*relaxed*/) {}
  /// Attaches observability instruments (obs/obs.hpp). Implementations
  /// resolve registry names once here and cache raw instrument pointers, so
  /// schedule() pays a null check per cycle, never a registry lookup. The
  /// handle's registry/trace must outlive the scheduler (or be unbound by a
  /// fresh bind_obs({})). Observation-only: binding must never change any
  /// schedule. Wrappers forward to their inner schedulers. Default: ignored.
  virtual void bind_obs(const obs::Handle& /*handle*/) {}
};

/// Optimal allocation count via Transformation 1 + a max-flow algorithm.
class MaxFlowScheduler final : public Scheduler {
 public:
  explicit MaxFlowScheduler(
      flow::MaxFlowAlgorithm algorithm = flow::MaxFlowAlgorithm::kDinic)
      : algorithm_(algorithm) {}
  [[nodiscard]] std::string name() const override;
  ScheduleResult schedule(const Problem& problem) override;
  void bind_obs(const obs::Handle& handle) override;

 private:
  flow::MaxFlowAlgorithm algorithm_;
  obs::Counter* obs_solves_ = nullptr;
  obs::Counter* obs_augmentations_ = nullptr;
  obs::Counter* obs_phases_ = nullptr;
  obs::Counter* obs_operations_ = nullptr;
};

/// Optimal allocation count like MaxFlowScheduler(kDinic), but on the
/// warm-start hot path: a PersistentTransform skeleton mutated in place
/// each cycle plus a ScheduleContext whose residual flow is repaired and
/// re-augmented instead of recomputed — zero allocations per cycle once
/// warm. With `verify` (the default in debug builds) every cycle also runs
/// the cold transformation1 + Dinic solve and RSIN_ENSUREs the warm-start
/// max-flow value matches — the differential check that guards the
/// incremental path against drift.
///
/// `canonical` trades the warm-start augmentation win for bitwise
/// reproducibility (ROADMAP E17b): each cycle clears the skeleton's flow and
/// runs the allocation-free *cold* context solve instead of repairing the
/// retained residual. Because PersistentTransform emits arcs in the same
/// relative order as transformation1 (zero-capacity arcs are invisible to
/// the solver), the flow assignment — and therefore the extracted schedule —
/// is identical to MaxFlowScheduler(kDinic), while still allocating nothing
/// per cycle.
class WarmMaxFlowScheduler final : public Scheduler {
 public:
  explicit WarmMaxFlowScheduler(bool verify = kVerifyDefault,
                                bool canonical = false);
  /// Pool-backed construction: operates on the leased WarmContext instead
  /// of private state, so the skeleton and retained residual survive this
  /// scheduler's destruction (the lease files them back into the pool).
  /// The pool must outlive the scheduler.
  explicit WarmMaxFlowScheduler(WarmContextLease lease,
                                bool verify = kVerifyDefault,
                                bool canonical = false);
  [[nodiscard]] std::string name() const override;
  ScheduleResult schedule(const Problem& problem) override;
  void reset() override;
  /// Relaxed mode suspends the per-cycle differential check (the schedule
  /// itself is still the optimal solve). Used by the overload controller.
  void set_relaxed(bool relaxed) override { relaxed_ = relaxed; }
  /// Binds the underlying ScheduleContext's SolverObs ("flow.*" counters).
  /// Pool-backed: the binding rides the leased context and is detached by
  /// the pool on check-in, so it never dangles across runs.
  void bind_obs(const obs::Handle& handle) override;

  [[nodiscard]] bool canonical() const { return canonical_; }
  [[nodiscard]] bool pooled() const { return lease_.valid(); }

  /// Warm/cold cycle accounting of the underlying ScheduleContext.
  [[nodiscard]] const flow::WarmStats& warm_stats() const {
    return state().context.stats;
  }

#ifdef NDEBUG
  static constexpr bool kVerifyDefault = false;
#else
  static constexpr bool kVerifyDefault = true;
#endif

 private:
  [[nodiscard]] WarmContext& state() {
    return lease_.valid() ? *lease_ : owned_;
  }
  [[nodiscard]] const WarmContext& state() const {
    return lease_.valid() ? *lease_ : owned_;
  }

  WarmContextLease lease_;  ///< Engaged when pool-backed.
  WarmContext owned_;       ///< Used when not pool-backed.
  bool verify_;
  bool canonical_;
  bool relaxed_ = false;
};

/// Optimal count + minimal priority/preference cost via Transformation 2.
class MinCostScheduler final : public Scheduler {
 public:
  explicit MinCostScheduler(
      flow::MinCostFlowAlgorithm algorithm = flow::MinCostFlowAlgorithm::kSsp,
      BypassCostMode mode = BypassCostMode::kPaper)
      : algorithm_(algorithm), mode_(mode) {}
  [[nodiscard]] std::string name() const override;
  ScheduleResult schedule(const Problem& problem) override;

 private:
  flow::MinCostFlowAlgorithm algorithm_;
  BypassCostMode mode_;
};

/// Heuristic routing baseline: requests in problem order, each takes the
/// first free path (depth-first) to any unused free resource of its type.
class GreedyScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "greedy"; }
  ScheduleResult schedule(const Problem& problem) override;
};

/// Address-mapping baseline: each request draws a uniformly random free
/// resource of its type and attempts the first free path to exactly that
/// resource; a blocked path means the request fails (no rerouting).
///
/// With `independent_destinations` the draws are with replacement, so two
/// requests can target the same resource and collide — the conventional
/// random-address regime modeled analytically by sim::banyan_blocking.
/// Without it (default) a centralized allocator hands out distinct
/// resources, isolating pure link blocking.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(util::Rng rng, bool independent_destinations = false)
      : rng_(rng), independent_destinations_(independent_destinations) {}
  [[nodiscard]] std::string name() const override {
    return independent_destinations_ ? "address-mapped(independent)"
                                     : "address-mapped";
  }
  ScheduleResult schedule(const Problem& problem) override;

 private:
  util::Rng rng_;
  bool independent_destinations_;
};

/// How a wrapped (FallbackScheduler / CircuitBreakerScheduler) cycle was
/// served.
enum class ScheduleOutcome : std::uint8_t {
  kOptimal,   ///< The primary (optimal) scheduler answered within deadline.
  kDegraded,  ///< Primary failed or timed out; greedy fallback answered.
  kPartial,   ///< Both failed; an empty (but valid) schedule was returned.
  kColdFallback,  ///< Warm path tripped/open; optimal cold solver answered.
  kDeferred,  ///< BatchingScheduler queued the cycle; no solve was run and
              ///< the empty result must not be accounted as a served cycle.
  kSpilled,   ///< Request left this scheduling domain: the federation layer
              ///< admitted it across an uplink to a sibling cluster, which
              ///< serves it under its own outcome accounting.
};

[[nodiscard]] const char* to_string(ScheduleOutcome outcome);

/// Circuit-breaker state of a CircuitBreakerScheduler (kClosed for wrappers
/// without a breaker, i.e. FallbackScheduler).
enum class BreakerState : std::uint8_t {
  kClosed,    ///< Warm path in service.
  kOpen,      ///< Warm path out of service; cooling down on the cold solver.
  kHalfOpen,  ///< Cooldown elapsed; next cycle probes the warm path once.
};

[[nodiscard]] const char* to_string(BreakerState state);

/// Diagnosis of the most recent wrapped scheduling cycle.
struct FallbackReport {
  ScheduleOutcome outcome = ScheduleOutcome::kOptimal;
  double primary_seconds = 0.0;  ///< Wall time the primary attempt took.
  std::string detail;            ///< Exception / timeout description.
  BreakerState breaker = BreakerState::kClosed;
  /// Consecutive primary failures observed so far (resets on success).
  std::int32_t consecutive_failures = 0;
  /// Scheduling cycles this report covers: 1 for ordinary schedulers, the
  /// drained window size for a BatchingScheduler drain (>= 1), and 0 for a
  /// kDeferred cycle (no solve ran). Metrics that average "per served
  /// cycle" must weight by this instead of assuming one outcome per cycle.
  std::int32_t batched_cycles = 1;
};

/// Schedulers that diagnose how each cycle was served. Control loops (the
/// DES) use this single interface to count degraded cycles regardless of
/// the concrete wrapper.
class ReportingScheduler : public Scheduler {
 public:
  [[nodiscard]] virtual const FallbackReport& last_report() const = 0;
};

/// Degraded-mode wrapper: runs an optimal scheduler under a per-cycle wall
/// clock deadline and falls back to GreedyScheduler when the primary throws
/// or overruns. Never throws out of schedule(): in the worst case it
/// returns an empty schedule and reports kPartial, so a control loop (the
/// DES scheduling cycle) keeps running through solver failures. The
/// deadline is *soft* — the primary is not interrupted mid-solve; its
/// result is discarded after the fact — which is the right semantic for a
/// simulated per-cycle time budget.
class FallbackScheduler final : public ReportingScheduler {
 public:
  explicit FallbackScheduler(std::unique_ptr<Scheduler> primary,
                             double deadline_seconds = 0.0);
  [[nodiscard]] std::string name() const override;
  ScheduleResult schedule(const Problem& problem) override;
  void reset() override { primary_->reset(); }
  void set_relaxed(bool relaxed) override { primary_->set_relaxed(relaxed); }
  void bind_obs(const obs::Handle& handle) override;

  [[nodiscard]] const FallbackReport& last_report() const override {
    return report_;
  }
  [[nodiscard]] std::int64_t cycles() const { return cycles_; }
  [[nodiscard]] std::int64_t degraded_cycles() const { return degraded_; }

 private:
  std::unique_ptr<Scheduler> primary_;
  GreedyScheduler fallback_;
  double deadline_seconds_;
  FallbackReport report_;
  std::int64_t cycles_ = 0;
  std::int64_t degraded_ = 0;
  obs::Counter* obs_degraded_ = nullptr;
  obs::Counter* obs_partial_ = nullptr;
};

/// Tuning of CircuitBreakerScheduler.
struct BreakerConfig {
  /// Consecutive warm-path failures that trip the breaker open.
  std::int32_t failure_threshold = 3;
  /// Cycles served cold before the breaker goes half-open to probe.
  std::int32_t cooldown_cycles = 16;
  /// Soft-failure trigger: a single warm cycle shedding more than this many
  /// flow units during residual repair counts as a failure even though the
  /// solve succeeded (cost blowup — the warm path is no longer paying for
  /// itself). <= 0 disables the soft trigger.
  std::int64_t repair_cancel_limit = 0;
};

/// Circuit breaker around the warm-start hot path (WarmMaxFlowScheduler).
///
/// Both paths are *optimal* — the cold MaxFlowScheduler(kDinic) fallback
/// computes the same maximum allocation — so unlike FallbackScheduler this
/// wrapper never degrades schedule quality; it trades the warm path's speed
/// for the cold path's simplicity when the warm path misbehaves:
///
///  * closed:    serve warm. A thrown solve (including a failed
///               differential check) or a repair-cost blowup counts one
///               consecutive failure; `failure_threshold` of them trip to
///               open. A throwing cycle is re-served by the cold solver
///               (kColdFallback), so schedule() never throws solver errors.
///  * open:      serve cold for `cooldown_cycles` cycles, then half-open.
///  * half-open: probe the warm path once; success closes the breaker,
///               failure re-opens it for another cooldown.
class CircuitBreakerScheduler final : public ReportingScheduler {
 public:
  explicit CircuitBreakerScheduler(BreakerConfig config = {},
                                   bool verify = WarmMaxFlowScheduler::
                                       kVerifyDefault);
  /// Wraps an arbitrary primary instead of the warm-start scheduler (test
  /// seam / extension point). The soft repair-cost trigger only applies
  /// when the primary is a WarmMaxFlowScheduler.
  CircuitBreakerScheduler(BreakerConfig config,
                          std::unique_ptr<Scheduler> primary);
  /// Pool-backed warm primary: breaker semantics (including the soft
  /// repair-cost trigger) on a leased WarmContext, so the warm state
  /// survives the breaker's lifetime.
  CircuitBreakerScheduler(BreakerConfig config, WarmContextLease lease,
                          bool verify = WarmMaxFlowScheduler::kVerifyDefault);
  [[nodiscard]] std::string name() const override;
  ScheduleResult schedule(const Problem& problem) override;
  void reset() override;
  void set_relaxed(bool relaxed) override { primary_->set_relaxed(relaxed); }
  /// Binds the primary plus breaker counters; state transitions also emit
  /// chrome-trace instant events when the handle carries a TraceWriter.
  void bind_obs(const obs::Handle& handle) override;

  [[nodiscard]] const FallbackReport& last_report() const override {
    return report_;
  }
  [[nodiscard]] BreakerState state() const { return state_; }
  /// Times the breaker has tripped closed -> open (lifetime).
  [[nodiscard]] std::int64_t trips() const { return trips_; }
  [[nodiscard]] std::int64_t cold_cycles() const { return cold_cycles_; }
  /// Warm/cold accounting when the primary is the warm-start scheduler
  /// (empty stats otherwise).
  [[nodiscard]] flow::WarmStats warm_stats() const {
    return warm_ != nullptr ? warm_->warm_stats() : flow::WarmStats{};
  }

 private:
  ScheduleResult serve_cold(const Problem& problem);
  void note_failure(const std::string& detail);
  void note_transition(BreakerState from, BreakerState to);

  BreakerConfig config_;
  std::unique_ptr<Scheduler> primary_;
  WarmMaxFlowScheduler* warm_ = nullptr;  ///< primary_, when warm-start.
  MaxFlowScheduler cold_;
  BreakerState state_ = BreakerState::kClosed;
  FallbackReport report_;
  std::int32_t consecutive_failures_ = 0;
  std::int32_t cooldown_remaining_ = 0;
  std::int64_t last_repair_cancelled_ = 0;
  std::int64_t trips_ = 0;
  std::int64_t cold_cycles_ = 0;
  obs::Counter* obs_trips_ = nullptr;
  obs::Counter* obs_cold_cycles_ = nullptr;
  obs::TraceWriter* obs_trace_ = nullptr;
};

/// Exponential ground truth: maximizes allocation count (tie-broken by
/// minimal cost) over every mapping and every path choice. Throws
/// std::runtime_error if the search exceeds `work_limit` recursion steps.
class ExhaustiveScheduler final : public Scheduler {
 public:
  explicit ExhaustiveScheduler(std::int64_t work_limit = 50'000'000)
      : work_limit_(work_limit) {}
  [[nodiscard]] std::string name() const override { return "exhaustive"; }
  ScheduleResult schedule(const Problem& problem) override;

 private:
  std::int64_t work_limit_;
};

}  // namespace rsin::core
