#include "core/scheduler.hpp"

#include <algorithm>

#include "core/routing.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace rsin::core {

std::string MaxFlowScheduler::name() const {
  switch (algorithm_) {
    case flow::MaxFlowAlgorithm::kFordFulkerson:
      return "max-flow(ford-fulkerson)";
    case flow::MaxFlowAlgorithm::kEdmondsKarp:
      return "max-flow(edmonds-karp)";
    case flow::MaxFlowAlgorithm::kDinic:
      return "max-flow(dinic)";
    case flow::MaxFlowAlgorithm::kCapacityScaling:
      return "max-flow(capacity-scaling)";
    case flow::MaxFlowAlgorithm::kPushRelabel:
      return "max-flow(push-relabel)";
  }
  return "max-flow";
}

ScheduleResult MaxFlowScheduler::schedule(const Problem& problem) {
  TransformResult transformed = transformation1(problem);
  const flow::MaxFlowResult stats = flow::max_flow(transformed.net, algorithm_);
  ScheduleResult result = extract_schedule(problem, transformed);
  RSIN_ENSURE(static_cast<flow::Capacity>(result.allocated()) == stats.value,
              "allocation count must equal the max-flow value (Theorem 2)");
  result.operations = stats.operations;
  if (obs_solves_ != nullptr) {
    obs_solves_->add();
    obs_augmentations_->add(stats.augmentations);
    obs_phases_->add(stats.phases);
    obs_operations_->add(stats.operations);
  }
  return result;
}

void MaxFlowScheduler::bind_obs(const obs::Handle& handle) {
  if (!handle.enabled()) {
    obs_solves_ = obs_augmentations_ = obs_phases_ = obs_operations_ = nullptr;
    return;
  }
  obs::Registry& registry = *handle.registry;
  obs_solves_ = &registry.counter("flow.solves");
  obs_augmentations_ = &registry.counter("flow.augmentations");
  obs_phases_ = &registry.counter("flow.bfs_phases");
  obs_operations_ = &registry.counter("flow.operations");
}

WarmMaxFlowScheduler::WarmMaxFlowScheduler(bool verify, bool canonical)
    : verify_(verify), canonical_(canonical) {}

WarmMaxFlowScheduler::WarmMaxFlowScheduler(WarmContextLease lease, bool verify,
                                           bool canonical)
    : lease_(std::move(lease)), verify_(verify), canonical_(canonical) {
  RSIN_REQUIRE(lease_.valid(),
               "pool-backed warm scheduler needs a live lease");
}

std::string WarmMaxFlowScheduler::name() const {
  return canonical_ ? "max-flow(dinic,canonical)" : "max-flow(dinic,warm)";
}

void WarmMaxFlowScheduler::reset() { state().context.invalidate(); }

void WarmMaxFlowScheduler::bind_obs(const obs::Handle& handle) {
  if (!handle.enabled()) {
    state().context.obs.clear();
    return;
  }
  state().context.obs.bind(*handle.registry);
}

ScheduleResult WarmMaxFlowScheduler::schedule(const Problem& problem) {
  PersistentTransform& transform = state().transform;
  flow::ScheduleContext& context = state().context;
  try {
    if (!transform.matches(*problem.network)) {
      transform.build(*problem.network);
      context.invalidate();
    }
    transform.update(problem);
    flow::FlowNetwork& net = transform.result().net;
    // Canonical mode (ROADMAP E17b): a clean allocation-free cold solve on
    // the persistent skeleton every cycle. Same arc order as
    // transformation1, empty starting flow — the resulting assignment (and
    // extracted schedule) is bitwise identical to MaxFlowScheduler(kDinic).
    // Warm mode: on a cold (re)start the residual is derived from the
    // network's flow assignment, which is stale; warm cycles ignore it.
    if (canonical_ || !context.warm_valid) net.clear_flow();
    const flow::MaxFlowResult stats =
        canonical_ ? flow::max_flow_dinic(net, context)
                   : flow::warm_max_flow_dinic(net, context);
    ScheduleResult result = extract_schedule(problem, transform.result());
    RSIN_ENSURE(static_cast<flow::Capacity>(result.allocated()) == stats.value,
                "allocation count must equal the max-flow value (Theorem 2)");
    if (verify_ && !relaxed_) {
      // Differential check: a cold Transformation 1 + Dinic solve of the
      // same cycle must reach the same max-flow value.
      TransformResult cold = transformation1(problem);
      const flow::MaxFlowResult cold_stats = flow::max_flow_dinic(cold.net);
      RSIN_ENSURE(cold_stats.value == stats.value,
                  "warm-start Dinic diverged from the cold solve");
    }
    result.operations = stats.operations;
    return result;
  } catch (...) {
    // A half-mutated context must not poison the next cycle.
    context.invalidate();
    throw;
  }
}

std::string MinCostScheduler::name() const {
  std::string base;
  switch (algorithm_) {
    case flow::MinCostFlowAlgorithm::kSsp:
      base = "min-cost(ssp)";
      break;
    case flow::MinCostFlowAlgorithm::kCycleCancel:
      base = "min-cost(cycle-cancel)";
      break;
    case flow::MinCostFlowAlgorithm::kOutOfKilter:
      base = "min-cost(out-of-kilter)";
      break;
    case flow::MinCostFlowAlgorithm::kNetworkSimplex:
      base = "min-cost(network-simplex)";
      break;
  }
  if (mode_ == BypassCostMode::kPriorityWeighted) base += "+priority";
  return base;
}

ScheduleResult MinCostScheduler::schedule(const Problem& problem) {
  TransformResult transformed = transformation2(problem, mode_);
  const flow::MinCostFlowResult stats =
      flow::min_cost_flow(transformed.net, transformed.request_count,
                          algorithm_);
  RSIN_ENSURE(stats.feasible,
              "Transformation 2 always admits F0 via the bypass node");
  ScheduleResult result = extract_schedule(problem, transformed);
  result.operations = stats.operations;
  return result;
}

ScheduleResult GreedyScheduler::schedule(const Problem& problem) {
  problem.validate();
  // Work on a private copy of the network so established trial circuits
  // never leak into the caller's state.
  topo::Network net = *problem.network;

  std::vector<char> resource_used(
      static_cast<std::size_t>(net.resource_count()), 0);
  std::vector<std::int32_t> resource_type(
      static_cast<std::size_t>(net.resource_count()), -1);
  std::vector<const FreeResource*> resource_info(
      static_cast<std::size_t>(net.resource_count()), nullptr);
  for (const FreeResource& resource : problem.free_resources) {
    resource_type[static_cast<std::size_t>(resource.resource)] = resource.type;
    resource_info[static_cast<std::size_t>(resource.resource)] = &resource;
  }

  ScheduleResult result;
  for (const Request& request : problem.requests) {
    auto circuit = first_free_path(
        net, request.processor,
        [&](topo::ResourceId r) {
          return resource_info[static_cast<std::size_t>(r)] != nullptr &&
                 !resource_used[static_cast<std::size_t>(r)] &&
                 resource_type[static_cast<std::size_t>(r)] == request.type;
        },
        &result.operations);
    if (!circuit) continue;
    net.establish(*circuit);
    resource_used[static_cast<std::size_t>(circuit->resource)] = 1;
    Assignment assignment;
    assignment.request = request;
    assignment.resource =
        *resource_info[static_cast<std::size_t>(circuit->resource)];
    assignment.circuit = std::move(*circuit);
    result.assignments.push_back(std::move(assignment));
  }
  result.cost = schedule_cost(problem, result);
  return result;
}

ScheduleResult RandomScheduler::schedule(const Problem& problem) {
  problem.validate();
  topo::Network net = *problem.network;

  std::vector<char> resource_used(
      static_cast<std::size_t>(net.resource_count()), 0);
  std::vector<const FreeResource*> resource_info(
      static_cast<std::size_t>(net.resource_count()), nullptr);
  for (const FreeResource& resource : problem.free_resources) {
    resource_info[static_cast<std::size_t>(resource.resource)] = &resource;
  }

  ScheduleResult result;
  for (const Request& request : problem.requests) {
    // The address-mapping step: pick a random free resource of the right
    // type, unaware of the network state. With independent destinations
    // the draw ignores earlier picks, so collisions are possible (only the
    // first request to claim a resource wins).
    std::vector<const FreeResource*> candidates;
    for (const FreeResource& resource : problem.free_resources) {
      if ((independent_destinations_ ||
           !resource_used[static_cast<std::size_t>(resource.resource)]) &&
          resource.type == request.type) {
        candidates.push_back(&resource);
      }
    }
    if (candidates.empty()) continue;
    const FreeResource& chosen = *candidates[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
    if (independent_destinations_ &&
        resource_used[static_cast<std::size_t>(chosen.resource)]) {
      continue;  // destination collision: request lost this cycle
    }

    // The network then routes to that exact destination or blocks.
    auto paths = enumerate_free_paths(net, request.processor, chosen.resource,
                                      /*limit=*/1);
    result.operations += static_cast<std::int64_t>(net.link_count());
    // The resource is committed by the address mapping even if routing
    // fails: a blocked circuit still leaves the resource assigned-but-
    // unreachable for this cycle.
    resource_used[static_cast<std::size_t>(chosen.resource)] = 1;
    if (paths.empty()) continue;
    net.establish(paths.front());
    Assignment assignment;
    assignment.request = request;
    assignment.resource = chosen;
    assignment.circuit = std::move(paths.front());
    result.assignments.push_back(std::move(assignment));
  }
  result.cost = schedule_cost(problem, result);
  return result;
}

const char* to_string(ScheduleOutcome outcome) {
  switch (outcome) {
    case ScheduleOutcome::kOptimal:
      return "optimal";
    case ScheduleOutcome::kDegraded:
      return "degraded";
    case ScheduleOutcome::kPartial:
      return "partial";
    case ScheduleOutcome::kColdFallback:
      return "cold-fallback";
    case ScheduleOutcome::kDeferred:
      return "deferred";
    case ScheduleOutcome::kSpilled:
      return "spilled";
  }
  return "unknown";
}

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

FallbackScheduler::FallbackScheduler(std::unique_ptr<Scheduler> primary,
                                     double deadline_seconds)
    : primary_(std::move(primary)), deadline_seconds_(deadline_seconds) {
  RSIN_REQUIRE(primary_ != nullptr, "fallback needs a primary scheduler");
}

std::string FallbackScheduler::name() const {
  return "fallback(" + primary_->name() + "->" + fallback_.name() + ")";
}

ScheduleResult FallbackScheduler::schedule(const Problem& problem) {
  ++cycles_;
  report_ = FallbackReport{};
  util::Stopwatch watch;
  try {
    ScheduleResult result = primary_->schedule(problem);
    report_.primary_seconds = watch.seconds();
    if (deadline_seconds_ <= 0.0 ||
        report_.primary_seconds <= deadline_seconds_) {
      report_.outcome = ScheduleOutcome::kOptimal;
      return result;
    }
    report_.detail = "primary exceeded the per-cycle deadline";
  } catch (const std::exception& error) {
    report_.primary_seconds = watch.seconds();
    report_.detail = error.what();
  }
  // The primary's solve is being abandoned (timeout or exception); drop any
  // warm-start state it carried so the next cycle starts from a clean slate.
  primary_->reset();
  ++degraded_;
  if (obs_degraded_ != nullptr) obs_degraded_->add();
  try {
    ScheduleResult result = fallback_.schedule(problem);
    report_.outcome = ScheduleOutcome::kDegraded;
    return result;
  } catch (const std::exception& error) {
    report_.outcome = ScheduleOutcome::kPartial;
    report_.detail += std::string("; fallback also failed: ") + error.what();
    if (obs_partial_ != nullptr) obs_partial_->add();
    return ScheduleResult{};
  }
}

void FallbackScheduler::bind_obs(const obs::Handle& handle) {
  primary_->bind_obs(handle);
  if (!handle.enabled()) {
    obs_degraded_ = obs_partial_ = nullptr;
    return;
  }
  obs_degraded_ = &handle.registry->counter("core.fallback.degraded");
  obs_partial_ = &handle.registry->counter("core.fallback.partial");
}

CircuitBreakerScheduler::CircuitBreakerScheduler(BreakerConfig config,
                                                 bool verify)
    : CircuitBreakerScheduler(config,
                              std::make_unique<WarmMaxFlowScheduler>(verify)) {
}

CircuitBreakerScheduler::CircuitBreakerScheduler(BreakerConfig config,
                                                 WarmContextLease lease,
                                                 bool verify)
    : CircuitBreakerScheduler(
          config,
          std::make_unique<WarmMaxFlowScheduler>(std::move(lease), verify)) {}

CircuitBreakerScheduler::CircuitBreakerScheduler(
    BreakerConfig config, std::unique_ptr<Scheduler> primary)
    : config_(config), primary_(std::move(primary)) {
  RSIN_REQUIRE(primary_ != nullptr, "breaker needs a primary scheduler");
  RSIN_REQUIRE(config.failure_threshold > 0,
               "breaker failure threshold must be positive");
  RSIN_REQUIRE(config.cooldown_cycles > 0,
               "breaker cooldown must be positive");
  warm_ = dynamic_cast<WarmMaxFlowScheduler*>(primary_.get());
}

std::string CircuitBreakerScheduler::name() const {
  return "breaker(" + primary_->name() + "->" + cold_.name() + ")";
}

void CircuitBreakerScheduler::reset() { primary_->reset(); }

void CircuitBreakerScheduler::bind_obs(const obs::Handle& handle) {
  primary_->bind_obs(handle);
  cold_.bind_obs(handle);
  obs_trace_ = handle.trace;
  if (!handle.enabled()) {
    obs_trips_ = obs_cold_cycles_ = nullptr;
    return;
  }
  obs_trips_ = &handle.registry->counter("core.breaker.trips");
  obs_cold_cycles_ = &handle.registry->counter("core.breaker.cold_cycles");
}

ScheduleResult CircuitBreakerScheduler::serve_cold(const Problem& problem) {
  ++cold_cycles_;
  if (obs_cold_cycles_ != nullptr) obs_cold_cycles_->add();
  return cold_.schedule(problem);
}

void CircuitBreakerScheduler::note_transition(BreakerState from,
                                              BreakerState to) {
  if (from == to) return;
  if (to == BreakerState::kOpen && obs_trips_ != nullptr) obs_trips_->add();
  if (obs_trace_ != nullptr) {
    obs_trace_->instant(std::string("breaker ") + to_string(from) + " -> " +
                            to_string(to),
                        "core");
  }
}

void CircuitBreakerScheduler::note_failure(const std::string& detail) {
  ++consecutive_failures_;
  report_.detail = detail;
  // A failed half-open probe re-opens immediately; in the closed state the
  // breaker tolerates failure_threshold - 1 consecutive failures first.
  if (state_ == BreakerState::kHalfOpen ||
      consecutive_failures_ >= config_.failure_threshold) {
    note_transition(state_, BreakerState::kOpen);
    state_ = BreakerState::kOpen;
    cooldown_remaining_ = config_.cooldown_cycles;
    ++trips_;
  }
}

ScheduleResult CircuitBreakerScheduler::schedule(const Problem& problem) {
  report_ = FallbackReport{};
  util::Stopwatch watch;

  if (state_ == BreakerState::kOpen) {
    ScheduleResult result = serve_cold(problem);
    if (--cooldown_remaining_ <= 0) {
      note_transition(state_, BreakerState::kHalfOpen);
      state_ = BreakerState::kHalfOpen;
    }
    report_.primary_seconds = watch.seconds();
    report_.outcome = ScheduleOutcome::kColdFallback;
    report_.breaker = state_;
    report_.consecutive_failures = consecutive_failures_;
    return result;
  }

  // Closed, or half-open probing: attempt the warm path.
  try {
    ScheduleResult result = primary_->schedule(problem);
    report_.primary_seconds = watch.seconds();
    const std::int64_t cancelled =
        warm_ != nullptr ? warm_->warm_stats().repair_cancelled : 0;
    const std::int64_t shed = cancelled - last_repair_cancelled_;
    last_repair_cancelled_ = cancelled;
    if (config_.repair_cancel_limit > 0 &&
        shed > config_.repair_cancel_limit) {
      // Soft failure: the solve succeeded (the result is still optimal and
      // returned as such) but residual repair shed so much flow that the
      // warm path stopped paying for itself.
      note_failure("warm repair shed " + std::to_string(shed) +
                   " flow units (limit " +
                   std::to_string(config_.repair_cancel_limit) + ")");
      if (state_ == BreakerState::kOpen) primary_->reset();
    } else {
      consecutive_failures_ = 0;
      note_transition(state_, BreakerState::kClosed);
      state_ = BreakerState::kClosed;
    }
    report_.outcome = ScheduleOutcome::kOptimal;
    report_.breaker = state_;
    report_.consecutive_failures = consecutive_failures_;
    return result;
  } catch (const std::exception& error) {
    report_.primary_seconds = watch.seconds();
    // The primary attempt is abandoned: drop its (possibly poisoned) state
    // and resynchronize the soft-failure baseline before the next attempt.
    primary_->reset();
    last_repair_cancelled_ =
        warm_ != nullptr ? warm_->warm_stats().repair_cancelled : 0;
    note_failure(error.what());
    ScheduleResult result = serve_cold(problem);
    report_.outcome = ScheduleOutcome::kColdFallback;
    report_.breaker = state_;
    report_.consecutive_failures = consecutive_failures_;
    return result;
  }
}

namespace {

/// Backtracking search used by ExhaustiveScheduler.
struct ExhaustiveSearch {
  const Problem& problem;
  topo::Network net;  // mutable working copy
  std::vector<char> resource_used;
  std::int64_t work_limit;
  std::int64_t work = 0;

  std::vector<Assignment> current;
  std::vector<Assignment> best;
  std::int64_t best_cost = 0;

  explicit ExhaustiveSearch(const Problem& p, std::int64_t limit)
      : problem(p),
        net(*p.network),
        resource_used(static_cast<std::size_t>(p.network->resource_count()),
                      0),
        work_limit(limit) {}

  void run() { recurse(0); }

  void consider_current() {
    const std::int64_t cost = [&] {
      ScheduleResult tmp;
      tmp.assignments = current;
      return schedule_cost(problem, tmp);
    }();
    if (current.size() > best.size() ||
        (current.size() == best.size() && cost < best_cost)) {
      best = current;
      best_cost = cost;
    }
  }

  void recurse(std::size_t request_index) {
    if (++work > work_limit) {
      throw std::runtime_error(
          "exhaustive scheduler exceeded its work limit; use a flow-based "
          "scheduler for instances of this size");
    }
    if (request_index == problem.requests.size()) {
      consider_current();
      return;
    }
    // Upper-bound prune: even allocating every remaining request cannot
    // beat the incumbent.
    const std::size_t remaining = problem.requests.size() - request_index;
    if (current.size() + remaining < best.size()) return;

    const Request& request = problem.requests[request_index];
    for (const FreeResource& resource : problem.free_resources) {
      if (resource.type != request.type ||
          resource_used[static_cast<std::size_t>(resource.resource)]) {
        continue;
      }
      // Try every free path to this resource under current occupancy.
      const auto paths =
          enumerate_free_paths(net, request.processor, resource.resource);
      for (const topo::Circuit& circuit : paths) {
        net.establish(circuit);
        resource_used[static_cast<std::size_t>(resource.resource)] = 1;
        Assignment assignment;
        assignment.request = request;
        assignment.resource = resource;
        assignment.circuit = circuit;
        current.push_back(std::move(assignment));

        recurse(request_index + 1);

        current.pop_back();
        resource_used[static_cast<std::size_t>(resource.resource)] = 0;
        net.release(circuit);
      }
    }
    // Option: leave this request unallocated.
    recurse(request_index + 1);
  }
};

}  // namespace

ScheduleResult ExhaustiveScheduler::schedule(const Problem& problem) {
  problem.validate();
  ExhaustiveSearch search(problem, work_limit_);
  search.run();
  ScheduleResult result;
  result.assignments = std::move(search.best);
  result.cost = schedule_cost(problem, result);
  result.operations = search.work;
  return result;
}

}  // namespace rsin::core
