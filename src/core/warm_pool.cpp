#include "core/warm_pool.hpp"

#include <utility>

#include "util/error.hpp"

namespace rsin::core {

WarmContextLease::WarmContextLease(WarmContextLease&& other) noexcept
    : pool_(other.pool_),
      shard_(other.shard_),
      context_(std::move(other.context_)) {
  other.pool_ = nullptr;
}

WarmContextLease& WarmContextLease::operator=(
    WarmContextLease&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = other.pool_;
    shard_ = other.shard_;
    context_ = std::move(other.context_);
    other.pool_ = nullptr;
  }
  return *this;
}

WarmContextLease::~WarmContextLease() { release(); }

void WarmContextLease::release() {
  if (pool_ != nullptr && context_ != nullptr) {
    pool_->give_back(shard_, std::move(context_));
  }
  pool_ = nullptr;
  context_.reset();
}

WarmContextPool::WarmContextPool(std::size_t shards) {
  RSIN_REQUIRE(shards >= 1, "a warm-context pool needs at least one shard");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

WarmContextLease WarmContextPool::checkout(std::size_t shard,
                                           const topo::Network& net) {
  return take(shard, net.shape_hash(), /*keyed=*/true);
}

WarmContextLease WarmContextPool::checkout(std::size_t shard) {
  return take(shard, 0, /*keyed=*/false);
}

WarmContextLease WarmContextPool::take(std::size_t shard,
                                       std::uint64_t shape_key, bool keyed) {
  const std::size_t index = shard % shards_.size();
  Shard& s = *shards_[index];
  checkouts_.fetch_add(1, std::memory_order_relaxed);
  if (obs_.checkouts != nullptr) obs_.checkouts->add();
  std::unique_ptr<WarmContext> context;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.idle.empty()) {
      std::size_t pick = s.idle.size();  // sentinel: no shape match
      if (keyed) {
        for (std::size_t i = 0; i < s.idle.size(); ++i) {
          if (s.idle[i]->shape_key() == shape_key) {
            pick = i;
            break;
          }
        }
      }
      if (pick < s.idle.size()) {
        warm_hits_.fetch_add(1, std::memory_order_relaxed);
        if (obs_.warm_hits != nullptr) obs_.warm_hits->add();
      } else {
        // No matching skeleton: hand out the most recently returned context
        // anyway. The scheduler rebuilds it for the new shape, which still
        // reuses the context's solver buffers.
        if (keyed) {
          shape_misses_.fetch_add(1, std::memory_order_relaxed);
          if (obs_.shape_misses != nullptr) obs_.shape_misses->add();
        }
        pick = s.idle.size() - 1;
      }
      context = std::move(s.idle[pick]);
      s.idle.erase(s.idle.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  if (context == nullptr) {
    cold_creates_.fetch_add(1, std::memory_order_relaxed);
    if (obs_.cold_creates != nullptr) obs_.cold_creates->add();
    context = std::make_unique<WarmContext>();
  }
  context->context.stats.leases += 1;
  return WarmContextLease(this, index, std::move(context));
}

void WarmContextPool::bind_obs(const obs::Handle& handle) {
  if (!handle.enabled()) {
    obs_ = PoolObs{};
    return;
  }
  obs::Registry& registry = *handle.registry;
  obs_.checkouts = &registry.counter("core.pool.checkouts");
  obs_.warm_hits = &registry.counter("core.pool.warm_hits");
  obs_.shape_misses = &registry.counter("core.pool.shape_misses");
  obs_.cold_creates = &registry.counter("core.pool.cold_creates");
  obs_.returns = &registry.counter("core.pool.returns");
}

void WarmContextPool::give_back(std::size_t shard,
                                std::unique_ptr<WarmContext> context) {
  returns_.fetch_add(1, std::memory_order_relaxed);
  if (obs_.returns != nullptr) obs_.returns->add();
  // A parked context must never keep instrument pointers: the registry the
  // lease holder bound may be gone by the next checkout.
  context->context.obs.clear();
  Shard& s = *shards_[shard % shards_.size()];
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.idle.push_back(std::move(context));
}

void WarmContextPool::clear() {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->idle.clear();
  }
}

WarmPoolStats WarmContextPool::stats() const {
  WarmPoolStats out;
  out.checkouts = checkouts_.load(std::memory_order_relaxed);
  out.warm_hits = warm_hits_.load(std::memory_order_relaxed);
  out.shape_misses = shape_misses_.load(std::memory_order_relaxed);
  out.cold_creates = cold_creates_.load(std::memory_order_relaxed);
  out.returns = returns_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    out.idle += static_cast<std::int64_t>(shard->idle.size());
  }
  return out;
}

}  // namespace rsin::core
