// Scheduler zoo: production-style scheduling disciplines that trade the
// paper's per-cycle optimality for constant-factor speed, distributability,
// or heavy-traffic stability, plus the name-based factory behind
// `--scheduler=NAME` and the optimality-gap harness (bench_scheduler_zoo).
//
//  * RandomizedMatchScheduler — seeded randomized maximal matching with the
//    Shah–Shin pick-and-compare refinement (arXiv 0908.3670): each cycle a
//    fresh random maximal proposal competes against last cycle's matching
//    re-validated and maximally extended on the current network; the larger
//    one wins and is retained. Low-complexity and distributable — the real
//    intermediate rung of the sim's degradation ladder between the optimal
//    flow solve and blind first-fit greedy.
//  * ThresholdScheduler — simple-form per-resource-class admission
//    thresholds in the Budhiraja–Johnson heavy-traffic style (arXiv
//    2312.14982): within each resource class it admits requests (highest
//    priority first) only while the class keeps `reserve` free resources
//    back, trading a bounded amount of immediate throughput for headroom
//    against bursts.
//  * GreedyLocalScheduler — an iSLIP-flavoured rotating first-fit baseline:
//    like GreedyScheduler it routes each request along the first free path,
//    but the scan starts at a per-cycle rotating offset so no processor is
//    structurally favoured across cycles. Distinct from the existing
//    problem-order GreedyScheduler fallback.
//
// Invariants every zoo scheduler upholds (property-tested in
// tests/test_scheduler_zoo.cpp):
//  * feasibility — results always pass verify_schedule(): link-disjoint
//    free circuits, no double-booked request or resource, types match;
//  * determinism — a fixed seed (where applicable) and a fixed problem
//    sequence reproduce bitwise-identical schedules; reset() returns the
//    scheduler to its freshly constructed behavior;
//  * maximality — RandomizedMatch and GreedyLocal proposals are maximal
//    (no request left unmatched that could still reach an unused compatible
//    resource over free links), which empirically keeps their matched count
//    within 2x of the optimal flow solve on the gap sweeps.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/scheduler.hpp"

namespace rsin::core {

struct RandomizedMatchConfig {
  std::uint64_t seed = 1;
  /// Shah–Shin pick-and-compare: re-validate the retained matching against
  /// the current problem, extend it maximally, and keep whichever of
  /// {retained, fresh random proposal} matches more pairs. Without it every
  /// cycle is an independent random maximal matching.
  bool pick_and_compare = true;
};

/// Seeded randomized maximal matching with pick-and-compare retention.
class RandomizedMatchScheduler final : public Scheduler {
 public:
  explicit RandomizedMatchScheduler(RandomizedMatchConfig config = {});
  [[nodiscard]] std::string name() const override {
    return "randomized-match";
  }
  ScheduleResult schedule(const Problem& problem) override;
  /// Drops the retained matching and reseeds the generator: after reset()
  /// the scheduler behaves exactly like a freshly constructed instance.
  void reset() override;
  void bind_obs(const obs::Handle& handle) override;

  /// Request-resource pairs retained for next cycle's compare step.
  [[nodiscard]] const std::vector<std::pair<topo::ProcessorId,
                                            topo::ResourceId>>&
  retained() const {
    return retained_;
  }

 private:
  RandomizedMatchConfig config_;
  util::Rng rng_;
  std::vector<std::pair<topo::ProcessorId, topo::ResourceId>> retained_;
  obs::Counter* obs_cycles_ = nullptr;
  obs::Counter* obs_matched_ = nullptr;
  obs::Counter* obs_retained_wins_ = nullptr;
};

struct ThresholdConfig {
  /// Free resources each class keeps back from allocation this cycle
  /// (admission headroom). 0 admits up to every free resource — the
  /// work-conserving limit, maximal within each class.
  std::int32_t reserve = 1;
};

/// Per-resource-class admission thresholds: highest-priority requests are
/// admitted first and each class stops allocating once only `reserve` of
/// its free resources remain. Stateless and deterministic.
class ThresholdScheduler final : public Scheduler {
 public:
  explicit ThresholdScheduler(ThresholdConfig config = {});
  [[nodiscard]] std::string name() const override;
  ScheduleResult schedule(const Problem& problem) override;
  void bind_obs(const obs::Handle& handle) override;

 private:
  ThresholdConfig config_;
  obs::Counter* obs_cycles_ = nullptr;
  obs::Counter* obs_matched_ = nullptr;
  obs::Counter* obs_withheld_ = nullptr;
};

/// Rotating first-fit: greedy routing whose request scan starts at an
/// offset that advances every cycle, so persistent contention is spread
/// across processors instead of always starving the same tail.
class GreedyLocalScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "greedy-local"; }
  ScheduleResult schedule(const Problem& problem) override;
  /// Rewinds the rotation to the freshly constructed offset.
  void reset() override { rotation_ = 0; }
  void bind_obs(const obs::Handle& handle) override;

 private:
  std::uint64_t rotation_ = 0;
  obs::Counter* obs_cycles_ = nullptr;
  obs::Counter* obs_matched_ = nullptr;
};

/// Constructs a scheduler by its stable name. Knows every core discipline:
/// "dinic", "ford-fulkerson", "edmonds-karp", "push-relabel", "mincost",
/// "greedy", "greedy-local", "random", "warm", "breaker",
/// "randomized-match", "threshold". `seed` feeds the stochastic schedulers
/// (random, randomized-match). Throws std::invalid_argument for an unknown
/// name, listing the valid ones.
[[nodiscard]] std::unique_ptr<Scheduler> make_named_scheduler(
    const std::string& name, std::uint64_t seed = 1);

/// Stable names accepted by make_named_scheduler, in display order.
[[nodiscard]] const std::vector<std::string>& scheduler_names();

}  // namespace rsin::core
