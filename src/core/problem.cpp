#include "core/problem.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rsin::core {

std::int32_t Problem::max_priority() const {
  std::int32_t best = 0;
  for (const Request& request : requests) {
    best = std::max(best, request.priority);
  }
  return best;
}

std::int32_t Problem::max_preference() const {
  std::int32_t best = 0;
  for (const FreeResource& resource : free_resources) {
    best = std::max(best, resource.preference);
  }
  return best;
}

std::vector<std::int32_t> Problem::types() const {
  std::vector<std::int32_t> result;
  for (const Request& request : requests) result.push_back(request.type);
  for (const FreeResource& resource : free_resources) {
    result.push_back(resource.type);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

void Problem::validate() const {
  RSIN_REQUIRE(network != nullptr, "problem needs a network");
  std::vector<char> seen_processor(
      static_cast<std::size_t>(network->processor_count()), 0);
  for (const Request& request : requests) {
    RSIN_REQUIRE(network->valid_processor(request.processor),
                 "request names an unknown processor");
    RSIN_REQUIRE(!seen_processor[static_cast<std::size_t>(request.processor)],
                 "a processor transmits one task at a time (model point 5)");
    seen_processor[static_cast<std::size_t>(request.processor)] = 1;
    RSIN_REQUIRE(request.priority >= 0, "priorities must be non-negative");
  }
  std::vector<char> seen_resource(
      static_cast<std::size_t>(network->resource_count()), 0);
  for (const FreeResource& resource : free_resources) {
    RSIN_REQUIRE(network->valid_resource(resource.resource),
                 "free resource has an unknown id");
    RSIN_REQUIRE(!seen_resource[static_cast<std::size_t>(resource.resource)],
                 "a resource cannot be listed free twice");
    seen_resource[static_cast<std::size_t>(resource.resource)] = 1;
    RSIN_REQUIRE(resource.preference >= 0, "preferences must be non-negative");
  }
}

Problem make_problem(const topo::Network& network,
                     std::vector<topo::ProcessorId> requesting,
                     std::vector<topo::ResourceId> available) {
  Problem problem;
  problem.network = &network;
  problem.requests.reserve(requesting.size());
  for (const topo::ProcessorId p : requesting) {
    problem.requests.push_back(Request{p, 0, 0});
  }
  problem.free_resources.reserve(available.size());
  for (const topo::ResourceId r : available) {
    problem.free_resources.push_back(FreeResource{r, 0, 0});
  }
  problem.validate();
  return problem;
}

}  // namespace rsin::core
