// Exporters for registry snapshots, plus a minimal JSON reader.
//
// Two stable output formats:
//  - Prometheus text exposition (write_prometheus): counters as
//    `<name> <value>` with `# TYPE` headers, histograms as the standard
//    `_bucket{le="..."}` / `_sum` / `_count` triple. Instrument names are
//    sanitized to the Prometheus charset ('.'/'-'/':' become '_').
//  - JSON (write_json): one object with "counters" / "gauges" /
//    "histograms" maps. Histograms carry count/sum/min/max/p50/p95/p99 and
//    a bucket array of {"le": bound-or-"+Inf", "count": n}. This is the
//    BENCH_*.json shape benches emit, so a metrics dump diffs cleanly
//    against the bench trajectory.
//
// obs::json is a deliberately small strict parser (objects, arrays,
// strings, numbers, bools, null — no comments, no trailing commas) so the
// test suite and the CLI smoke test can round-trip what the exporters wrote
// without growing a third-party dependency.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace rsin::obs {

void write_prometheus(const Registry::Snapshot& snap, std::ostream& out);
void write_json(const Registry::Snapshot& snap, std::ostream& out);

[[nodiscard]] std::string to_prometheus(const Registry::Snapshot& snap);
[[nodiscard]] std::string to_json(const Registry::Snapshot& snap);

namespace json {

/// A parsed JSON value. Containers use std::map / std::vector directly;
/// this is a test/tooling reader, not a performance surface.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  /// Object member access; throws std::invalid_argument when absent or when
  /// this value is not an object.
  [[nodiscard]] const Value& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;
};

/// Parses exactly one JSON document (trailing whitespace allowed). Throws
/// std::invalid_argument with an offset-bearing message on malformed input.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace json

}  // namespace rsin::obs
