#include "obs/trace_writer.hpp"

#include <charconv>
#include <cmath>
#include <ostream>

#include "obs/metrics.hpp"

namespace rsin::obs {

namespace {

/// JSON string escaping for event names (categories are trusted literals).
void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u0000";  // control chars never appear in our names
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Shortest-round-trip double, JSON-safe (non-finite clamps to 0).
void write_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << 0;
    return;
  }
  char buffer[32];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), v);
  out.write(buffer, ptr - buffer);
}

}  // namespace

void TraceWriter::push(Event event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceWriter::complete(std::string name, const char* category,
                           double ts_us, double dur_us) {
  push(Event{std::move(name), category, 'X', ts_us, dur_us, 0.0,
             static_cast<std::uint32_t>(detail::thread_slot())});
}

void TraceWriter::instant(std::string name, const char* category) {
  push(Event{std::move(name), category, 'i', now_us(), 0.0, 0.0,
             static_cast<std::uint32_t>(detail::thread_slot())});
}

void TraceWriter::counter(std::string name, const char* category,
                          double value) {
  push(Event{std::move(name), category, 'C', now_us(), 0.0, value,
             static_cast<std::uint32_t>(detail::thread_slot())});
}

std::size_t TraceWriter::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceWriter::write_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":";
    write_escaped(out, e.name);
    out << ",\"cat\":\"" << e.category << "\",\"ph\":\"" << e.phase
        << "\",\"ts\":";
    write_number(out, e.ts_us);
    if (e.phase == 'X') {
      out << ",\"dur\":";
      write_number(out, e.dur_us);
    }
    if (e.phase == 'i') out << ",\"s\":\"t\"";
    if (e.phase == 'C') {
      out << ",\"args\":{\"value\":";
      write_number(out, e.value);
      out << '}';
    }
    out << ",\"pid\":1,\"tid\":" << e.tid << '}';
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace rsin::obs
