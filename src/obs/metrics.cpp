#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace rsin::obs {

namespace detail {

std::size_t thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

namespace {

bool valid_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == ':' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void atomic_add_double(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

bool valid_label_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == ':' ||
         c == '-';
}

}  // namespace

std::string metric_label(std::string_view raw) {
  std::string label;
  label.reserve(raw.size());
  for (const char c : raw) {
    if (valid_label_char(c)) {
      label.push_back(c);
    } else if (!label.empty() && label.back() != '-') {
      label.push_back('-');
    }
  }
  while (!label.empty() && label.back() == '-') label.pop_back();
  if (label.empty()) return "unnamed";
  return label;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  RSIN_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    RSIN_REQUIRE(std::isfinite(bounds_[i]),
                 "histogram bucket bounds must be finite");
    RSIN_REQUIRE(i == 0 || bounds_[i - 1] < bounds_[i],
                 "histogram bucket bounds must be strictly increasing");
  }
}

void Histogram::observe(double v) noexcept {
  // Non-finite observations (NaN, inf) land in the overflow bucket; they
  // must not poison the bucket search.
  std::size_t index = bounds_.size();
  if (v == v) {  // not NaN
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    index = static_cast<std::size_t>(it - bounds_.begin());
  }
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
  atomic_min_double(min_, v);
  atomic_max_double(max_, v);
}

std::int64_t Histogram::bucket_count(std::size_t i) const {
  RSIN_REQUIRE(i < buckets_.size(), "histogram bucket index out of range");
  return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::min() const noexcept {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::max() const noexcept {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::percentile(double p) const {
  RSIN_REQUIRE(p >= 0.0 && p <= 100.0, "percentile wants p in [0, 100]");
  const std::int64_t total = count();
  if (total == 0) return 0.0;
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(p / 100.0 * static_cast<double>(total))));
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) return bounds_[i];
  }
  return max();  // overflow bucket: no finite upper bound, report the max
}

void Histogram::merge(const Histogram& other) {
  RSIN_REQUIRE(bounds_ == other.bounds_,
               "histogram merge requires identical bucket bounds");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  const std::int64_t other_count =
      other.count_.load(std::memory_order_relaxed);
  if (other_count == 0) return;
  count_.fetch_add(other_count, std::memory_order_relaxed);
  atomic_add_double(sum_, other.sum_.load(std::memory_order_relaxed));
  atomic_min_double(min_, other.min_.load(std::memory_order_relaxed));
  atomic_max_double(max_, other.max_.load(std::memory_order_relaxed));
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  int n) {
  RSIN_REQUIRE(start > 0 && std::isfinite(start),
               "exponential bounds need a positive finite start");
  RSIN_REQUIRE(factor > 1.0 && std::isfinite(factor),
               "exponential bounds need factor > 1");
  RSIN_REQUIRE(n >= 1, "exponential bounds need at least one bucket");
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(n));
  double bound = start;
  for (int i = 0; i < n; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

const std::vector<double>& Histogram::default_latency_bounds_us() {
  // 1us .. ~1s in powers of two: 21 buckets + overflow covers everything
  // from a warm solve (microseconds) to a stuck cold cycle.
  static const std::vector<double> bounds = exponential_bounds(1.0, 2.0, 21);
  return bounds;
}

Counter& Registry::counter(std::string_view name) {
  RSIN_REQUIRE(valid_name(name),
               "instrument names must be non-empty [A-Za-z0-9_.:-]+");
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  RSIN_REQUIRE(valid_name(name),
               "instrument names must be non-empty [A-Za-z0-9_.:-]+");
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  RSIN_REQUIRE(valid_name(name),
               "instrument names must be non-empty [A-Za-z0-9_.:-]+");
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    RSIN_REQUIRE(it->second.bounds() == bounds,
                 "histogram re-registered with different bucket bounds: " +
                     std::string(name));
    return it->second;
  }
  return histograms_.try_emplace(std::string(name), std::move(bounds))
      .first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  return histogram(name, Histogram::default_latency_bounds_us());
}

void Registry::merge(const Registry& other) {
  if (&other == this) return;  // self-merge would double-count (and deadlock)
  const std::scoped_lock lock(mutex_, other.mutex_);
  for (const auto& [name, c] : other.counters_) {
    counters_.try_emplace(name).first->second.add(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauges_.try_emplace(name).first->second.add(g.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histograms_.try_emplace(name, h.bounds()).first->second.merge(h);
  }
}

void Registry::merge(const Registry& other, std::string_view prefix) {
  if (prefix.empty()) {
    merge(other);
    return;
  }
  RSIN_REQUIRE(&other != this,
               "prefixed self-merge would mutate the map being iterated");
  RSIN_REQUIRE(valid_name(prefix),
               "merge prefix must be a non-empty [A-Za-z0-9_.:-]+ fragment");
  const std::scoped_lock lock(mutex_, other.mutex_);
  for (const auto& [name, c] : other.counters_) {
    counters_.try_emplace(std::string(prefix) + name)
        .first->second.add(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauges_.try_emplace(std::string(prefix) + name)
        .first->second.add(g.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histograms_.try_emplace(std::string(prefix) + name, h.bounds())
        .first->second.merge(h);
  }
}

Registry::Snapshot Registry::snapshot() const {
  Snapshot snap;
  const std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c.value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g.value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h.bounds();
    hs.buckets.resize(hs.bounds.size() + 1);
    for (std::size_t i = 0; i < hs.buckets.size(); ++i) {
      hs.buckets[i] = h.bucket_count(i);
    }
    hs.count = h.count();
    hs.sum = h.sum();
    hs.min = h.min();
    hs.max = h.max();
    hs.p50 = h.percentile(50.0);
    hs.p95 = h.percentile(95.0);
    hs.p99 = h.percentile(99.0);
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

}  // namespace rsin::obs
