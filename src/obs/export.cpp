#include "obs/export.hpp"

#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace rsin::obs {

namespace {

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; our registry
/// names also use '.' and '-', which map to '_'.
std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    out.push_back((c == '.' || c == '-') ? '_' : c);
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

void format_double(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << (v > 0 ? "+Inf" : (v < 0 ? "-Inf" : "NaN"));
    return;
  }
  char buffer[32];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), v);
  out.write(buffer, ptr - buffer);
}

void json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      default:
        out << c;  // registry names are [A-Za-z0-9_.:-], nothing to escape
    }
  }
  out << '"';
}

}  // namespace

void write_prometheus(const Registry::Snapshot& snap, std::ostream& out) {
  for (const auto& [name, value] : snap.counters) {
    const std::string pname = prometheus_name(name);
    out << "# TYPE " << pname << " counter\n";
    out << pname << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string pname = prometheus_name(name);
    out << "# TYPE " << pname << " gauge\n";
    out << pname << ' ';
    format_double(out, value);
    out << '\n';
  }
  for (const Registry::HistogramSnapshot& h : snap.histograms) {
    const std::string pname = prometheus_name(h.name);
    out << "# TYPE " << pname << " histogram\n";
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      out << pname << "_bucket{le=\"";
      if (i < h.bounds.size()) {
        format_double(out, h.bounds[i]);
      } else {
        out << "+Inf";
      }
      out << "\"} " << cumulative << '\n';
    }
    out << pname << "_sum ";
    format_double(out, h.sum);
    out << '\n';
    out << pname << "_count " << h.count << '\n';
  }
}

void write_json(const Registry::Snapshot& snap, std::ostream& out) {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out << ',';
    first = false;
    json_string(out, name);
    out << ':' << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out << ',';
    first = false;
    json_string(out, name);
    out << ':';
    format_double(out, std::isfinite(value) ? value : 0.0);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const Registry::HistogramSnapshot& h : snap.histograms) {
    if (!first) out << ',';
    first = false;
    json_string(out, h.name);
    out << ":{\"count\":" << h.count << ",\"sum\":";
    format_double(out, h.sum);
    out << ",\"min\":";
    format_double(out, h.min);
    out << ",\"max\":";
    format_double(out, h.max);
    out << ",\"p50\":";
    format_double(out, h.p50);
    out << ",\"p95\":";
    format_double(out, h.p95);
    out << ",\"p99\":";
    format_double(out, h.p99);
    out << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out << ',';
      out << "{\"le\":";
      if (i < h.bounds.size()) {
        format_double(out, h.bounds[i]);
      } else {
        out << "\"+Inf\"";
      }
      out << ",\"count\":" << h.buckets[i] << '}';
    }
    out << "]}";
  }
  out << "}}\n";
}

std::string to_prometheus(const Registry::Snapshot& snap) {
  std::ostringstream out;
  write_prometheus(snap, out);
  return out.str();
}

std::string to_json(const Registry::Snapshot& snap) {
  std::ostringstream out;
  write_json(snap, out);
  return out.str();
}

namespace json {

const Value& Value::at(const std::string& key) const {
  RSIN_REQUIRE(kind == Kind::kObject, "json: at() on a non-object value");
  const auto it = object.find(key);
  RSIN_REQUIRE(it != object.end(), "json: missing object key: " + key);
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return kind == Kind::kObject && object.find(key) != object.end();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    RSIN_REQUIRE(pos_ == text_.size(),
                 "json: trailing garbage at offset " + std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default:
        return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.kind = Value::Kind::kBool;
    v.boolean = b;
    return v;
  }

  Value parse_object() {
    Value v;
    v.kind = Value::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    Value v;
    v.kind = Value::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            // Exporter output never emits \u escapes beyond ASCII; decode
            // the BMP code point as a single char when it fits, else '?'.
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
              }
            }
            out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
            break;
          }
          default:
            fail("bad escape");
        }
        continue;
      }
      out.push_back(c);
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool numeric = (c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                           c == 'E' || c == '-' || c == '+';
      if (!numeric) break;
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.kind = Value::Kind::kNumber;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, v.number);
    if (ec != std::errc{} || ptr != text_.data() + pos_) fail("bad number");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace json

}  // namespace rsin::obs
