// Chrome-trace-format event collection (chrome://tracing / Perfetto).
//
// A TraceWriter buffers timing events — complete spans ("ph":"X"), instant
// markers ("ph":"i"), and counter samples ("ph":"C") — and serializes them
// as the Trace Event Format JSON object that chrome://tracing, Perfetto,
// and speedscope all load. Timestamps are microseconds on the writer's own
// steady-clock timebase (t=0 at construction), thread ids are the small
// per-thread slots the metrics shards use, and the pid is fixed.
//
// Thread safety: record calls append under one mutex. Tracing is opt-in
// diagnostics (an overload storm, a batching drain pattern), not the
// always-on hot path — the ≤2% overhead budget is carried by the
// histogram-only Span; a null TraceWriter costs a branch.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace rsin::obs {

class TraceWriter {
 public:
  TraceWriter() : t0_(std::chrono::steady_clock::now()) {}
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Microseconds since construction (the event timebase).
  [[nodiscard]] double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

  /// A span that started at `ts_us` (writer timebase) and lasted `dur_us`.
  void complete(std::string name, const char* category, double ts_us,
                double dur_us);
  /// A point-in-time marker (fault hit, breaker transition, drain).
  void instant(std::string name, const char* category);
  /// A sampled counter track (queue depth over time).
  void counter(std::string name, const char* category, double value);

  [[nodiscard]] std::size_t size() const;

  /// Serializes {"traceEvents":[...]} — loadable by chrome://tracing.
  void write_json(std::ostream& out) const;

 private:
  struct Event {
    std::string name;
    const char* category;
    char phase;  // 'X' complete, 'i' instant, 'C' counter
    double ts_us;
    double dur_us;   // complete events only
    double value;    // counter events only
    std::uint32_t tid;
  };

  void push(Event event);

  std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

}  // namespace rsin::obs
