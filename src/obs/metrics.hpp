// Thread-safe metrics primitives for the observability subsystem.
//
// The runtime this repo grew into (warm-start hot path, sharded pools,
// batching, overload ladders) had no way to *see* itself: solver stats were
// ad-hoc structs and sim::SystemMetrics a flat end-of-run snapshot. This
// module is the measurement substrate — named counters, gauges, and
// fixed-bucket histograms behind a Registry, designed around two rules:
//
//  1. Observation only. Nothing in here is ever read back by the code being
//     measured, so determinism and record/replay stay bitwise regardless of
//     whether a registry is attached (the zero-cost-when-disabled handle in
//     obs/obs.hpp enforces the "disabled" half).
//  2. TSan-clean under the pooled multi-thread sweeps. Counters are sharded
//     atomics (one padded cell per hardware-ish thread slot), histograms
//     use relaxed atomic buckets, and the registry's name maps are
//     mutex-protected with node-stable references, so hot paths cache
//     Counter*/Histogram* once and never touch the lock again.
//
// Percentiles come from the histogram buckets (p50/p95/p99 extraction);
// per-worker registries aggregate with merge() — the same discipline as
// sim::RunningStat::merge for moments.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace rsin::obs {

namespace detail {
/// Stable small index for the calling thread, used to spread counter
/// increments over shards. Round-robin assignment at first use.
[[nodiscard]] std::size_t thread_slot() noexcept;
}  // namespace detail

/// Monotone event counter. add() is wait-free (one relaxed fetch_add on the
/// calling thread's shard); value() sums the shards and may observe a
/// mid-flight increment — exact once writers are quiescent.
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  void add(std::int64_t n = 1) noexcept {
    cells_[detail::thread_slot() % kShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    std::int64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Folds another counter in (per-worker aggregation). The source should
  /// be quiescent; concurrent add()s on it may or may not be included.
  void merge(const Counter& other) noexcept { add(other.value()); }

 private:
  struct alignas(64) Cell {
    std::atomic<std::int64_t> value{0};
  };
  std::array<Cell, kShards> cells_{};
};

/// Last-written instantaneous value (queue depth, pool size). set() and
/// add() are atomic; merge() adds (per-worker gauges hold partial totals).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void merge(const Gauge& other) noexcept { add(other.value()); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus "le" semantics: bucket i counts
/// observations v <= bound[i]; one implicit overflow bucket counts the
/// rest. Bounds are strictly increasing and fixed at construction, so
/// observe() is a branch-light search plus relaxed atomic increments, and
/// two histograms with equal bounds merge bucket-wise.
class Histogram {
 public:
  /// Throws std::invalid_argument unless bounds are finite, non-empty, and
  /// strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  [[nodiscard]] std::int64_t bucket_count(std::size_t i) const;
  [[nodiscard]] std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Smallest / largest observation (0 when empty).
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

  /// Bucket-resolution percentile, p in [0, 100]: the upper bound of the
  /// bucket holding the ceil(p% * count)-th observation. Observations in
  /// the overflow bucket report max() (there is no finite upper bound).
  /// An empty histogram reports 0.0 for every percentile.
  [[nodiscard]] double percentile(double p) const;

  /// Adds another histogram's buckets into this one.
  ///
  /// Precondition: both histograms were built with *identical* bounds
  /// vectors — bucket-wise merge is meaningless otherwise, so a bounds
  /// mismatch throws std::invalid_argument and leaves this histogram
  /// unchanged. Cross-registry aggregation (per-worker registries,
  /// fed::Federation::export_registry) relies on this check: every site
  /// that creates a shared-name histogram must use the same bounds, and a
  /// drifted site fails fast at merge time instead of corrupting buckets.
  void merge(const Histogram& other);

  /// `n` exponential bounds: start, start*factor, start*factor^2, ...
  [[nodiscard]] static std::vector<double> exponential_bounds(double start,
                                                              double factor,
                                                              int n);
  /// The registry-wide default for latency histograms: 1us .. ~1s, x2.
  [[nodiscard]] static const std::vector<double>& default_latency_bounds_us();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Sanitizes an arbitrary label (a scheduler name like "threshold(reserve=1)")
/// into a legal metric-name segment: characters outside [A-Za-z0-9_.:-] become
/// '-', runs of '-' collapse, and leading/trailing '-' are stripped. An input
/// with no legal character at all yields "unnamed" so the result is always a
/// valid Registry name segment. Used for per-scheduler labeled instrument
/// families ("core.zoo.<label>.matched").
[[nodiscard]] std::string metric_label(std::string_view raw);

/// Named instrument directory. Lookup takes a mutex and is meant for setup
/// paths (bind once, cache the pointer); the returned references are
/// node-stable for the registry's lifetime. Re-requesting a name returns
/// the same instrument; a histogram re-request must agree on bounds.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Instrument names: [A-Za-z0-9_.:-]+ (enforced; exporters rely on it).
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<double> bounds);
  /// Latency histogram with the default microsecond bounds.
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Folds another registry in by name: counters/gauges add, histograms
  /// merge bucket-wise (creating any missing instrument). Per-worker
  /// aggregation; `other` should be quiescent. Histograms sharing a name
  /// must share bounds (see Histogram::merge) — a mismatch throws
  /// std::invalid_argument.
  void merge(const Registry& other);

  /// Labeled fold: like merge(other), but every instrument lands under
  /// `prefix` + name ("fed.c3." + "fed.cluster.granted", ...). Used for
  /// per-source views (one federation export carrying per-cluster series)
  /// alongside the unprefixed aggregate. The prefix must itself be a legal
  /// metric-name fragment ([A-Za-z0-9_.:-]*).
  void merge(const Registry& other, std::string_view prefix);

  // --- exporter snapshot ---------------------------------------------------
  struct HistogramSnapshot {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::int64_t> buckets;  ///< bounds.size() + 1 (overflow last)
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  struct Snapshot {
    std::vector<std::pair<std::string, std::int64_t>> counters;  // name-sorted
    std::vector<std::pair<std::string, double>> gauges;          // name-sorted
    std::vector<HistogramSnapshot> histograms;                   // name-sorted
  };
  /// Consistent-enough copy for exporters: each instrument is read
  /// atomically per-field; cross-instrument skew is possible while writers
  /// are live (exporters run at quiescent points anyway).
  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace rsin::obs
