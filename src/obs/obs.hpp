// Umbrella header and the zero-cost-when-disabled handle.
//
// Instrumented layers accept an obs::Handle — two raw pointers, both null by
// default. A default Handle is "observability off": every instrumented call
// site checks enabled() (or a cached instrument pointer) before doing any
// work, so the uninstrumented configuration pays one predictable branch and
// the bench gate in bench_obs_overhead keeps the instrumented one ≤ 2%.
//
// The handle is runtime-only plumbing: it is never serialized, never hashed,
// and TraceRecorder strips it from recorded configs, so record/replay and
// the pooled determinism sweeps stay bitwise with or without it.
#pragma once

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_writer.hpp"

namespace rsin::obs {

struct Handle {
  Registry* registry = nullptr;
  TraceWriter* trace = nullptr;

  [[nodiscard]] bool enabled() const noexcept { return registry != nullptr; }
  [[nodiscard]] bool tracing() const noexcept { return trace != nullptr; }
};

}  // namespace rsin::obs
