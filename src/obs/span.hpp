// RAII timing spans: the one primitive hot paths touch.
//
// A Span reads steady_clock at construction and, on destruction (or an
// explicit finish()), feeds the elapsed microseconds into a Histogram and —
// when a TraceWriter is attached — emits a chrome://tracing complete event.
// Both sinks are optional pointers; a Span with neither costs two clock
// reads and nothing else, and call sites guard construction behind
// Handle::enabled() so the disabled configuration does not even pay those.
//
// Spans never expose their measured duration to the caller: timing is
// observation-only, which is what keeps DES determinism and record/replay
// bitwise regardless of instrumentation (DESIGN.md §9).
#pragma once

#include <chrono>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace_writer.hpp"

namespace rsin::obs {

class Span {
 public:
  /// Starts timing. Either sink may be null; `name`/`category` are only
  /// used (and `name` only copied) when `trace` is set.
  Span(Histogram* histogram, TraceWriter* trace, std::string name,
       const char* category)
      : histogram_(histogram),
        trace_(trace),
        name_(trace ? std::move(name) : std::string()),
        category_(category),
        start_(std::chrono::steady_clock::now()),
        start_us_(trace ? trace->now_us() : 0.0) {}

  /// Histogram-only span (no trace event, no string copy).
  explicit Span(Histogram* histogram)
      : Span(histogram, nullptr, std::string(), "") {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  Span(Span&& other) noexcept
      : histogram_(std::exchange(other.histogram_, nullptr)),
        trace_(std::exchange(other.trace_, nullptr)),
        name_(std::move(other.name_)),
        category_(other.category_),
        start_(other.start_),
        start_us_(other.start_us_) {}
  Span& operator=(Span&&) = delete;

  ~Span() { finish(); }

  /// Stops the clock and records; idempotent (the destructor then no-ops).
  void finish() noexcept {
    if (histogram_ == nullptr && trace_ == nullptr) return;
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    if (histogram_ != nullptr) histogram_->observe(us);
    if (trace_ != nullptr) {
      trace_->complete(std::move(name_), category_, start_us_, us);
    }
    histogram_ = nullptr;
    trace_ = nullptr;
  }

 private:
  Histogram* histogram_;
  TraceWriter* trace_;
  std::string name_;
  const char* category_;
  std::chrono::steady_clock::time_point start_;
  double start_us_;
};

}  // namespace rsin::obs
