// Seeded fault injection for RSIN fabrics.
//
// The paper's conclusion argues that redundant-path RSINs matter because the
// fabric can *fail*; this module makes failure a first-class, reproducible
// input. A FaultInjector turns MTTF/MTTR parameters into a deterministic
// schedule of fail/repair events over a time horizon: every eligible element
// (fabric link or switchbox) alternates exponentially distributed up-times
// (mean = MTTF) and down-times (mean = MTTR), each element drawing from its
// own derived RNG stream so the schedule is independent of iteration order
// and stable under topology-preserving changes elsewhere.
//
// Consumers: the discrete-event system simulation replays the schedule as
// failure/repair events (sim/system_sim.hpp); benches and tests apply events
// directly via apply_event(). Transient faults (repairs scheduled) model
// recoverable glitches; `transient = false` models permanent hard faults.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/network.hpp"

namespace rsin::fault {

enum class FaultKind : std::uint8_t {
  kLinkFail,
  kLinkRepair,
  kSwitchFail,
  kSwitchRepair,
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// One scheduled fault transition. `element` is a LinkId for link events and
/// a SwitchId for switch events.
struct FaultEvent {
  double time = 0.0;
  FaultKind kind = FaultKind::kLinkFail;
  std::int32_t element = topo::kInvalidId;
};

struct FaultConfig {
  /// Mean time to failure per fabric link; <= 0 disables link faults.
  double link_mttf = 0.0;
  /// Mean time to repair a failed link.
  double link_mttr = 1.0;
  /// Mean time to failure per switchbox; <= 0 disables switch faults.
  double switch_mttf = 0.0;
  double switch_mttr = 1.0;
  /// Schedule length; events are generated in [0, horizon).
  double horizon = 0.0;
  /// Schedule repairs (transient faults). false = permanent: each element
  /// fails at most once and never recovers.
  bool transient = true;
  /// Only links between two switchboxes fail (keeps terminals attached, so
  /// experiments measure routing redundancy rather than amputation).
  bool fabric_links_only = true;
  std::uint64_t seed = 1;

  /// Rejects non-finite or inconsistent parameters (NaN rates, negative
  /// MTTR with faults enabled, missing horizon) with std::invalid_argument.
  /// FaultInjector and sim::SystemConfig::validate call this on entry.
  void validate() const;
};

/// Deterministic fail/repair schedule generator. Stateless: make_schedule
/// always produces the same events for the same config and network shape.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Generates the time-sorted fault schedule for `net`'s elements.
  [[nodiscard]] std::vector<FaultEvent> make_schedule(
      const topo::Network& net) const;

 private:
  FaultConfig config_;
};

/// Applies one event to the network. Fail events return the established
/// circuits torn down by the failure (already released); repair events
/// return an empty vector.
std::vector<topo::Circuit> apply_event(topo::Network& net,
                                       const FaultEvent& event);

/// True when the link may appear in a schedule under `config` (fabric-only
/// filtering).
[[nodiscard]] bool link_eligible(const topo::Network& net, topo::LinkId id,
                                 const FaultConfig& config);

}  // namespace rsin::fault
