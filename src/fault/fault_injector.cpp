#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace rsin::fault {
namespace {

/// Stream tags keep link and switch streams disjoint and stable.
constexpr std::uint64_t kLinkStreamBase = 0x10000;
constexpr std::uint64_t kSwitchStreamBase = 0x20000000;

/// Appends the alternating fail/repair sequence of one element.
void generate_element(const FaultConfig& config, double mttf, double mttr,
                      FaultKind fail_kind, FaultKind repair_kind,
                      std::int32_t element, std::uint64_t stream,
                      std::vector<FaultEvent>& out) {
  util::Rng rng = util::Rng(config.seed).split(stream);
  const double fail_rate = 1.0 / mttf;
  const double repair_rate = 1.0 / std::max(mttr, 1e-12);
  double t = rng.exponential(fail_rate);
  while (t < config.horizon) {
    out.push_back(FaultEvent{t, fail_kind, element});
    if (!config.transient) break;
    const double repaired = t + rng.exponential(repair_rate);
    if (repaired >= config.horizon) break;
    out.push_back(FaultEvent{repaired, repair_kind, element});
    t = repaired + rng.exponential(fail_rate);
  }
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkFail:
      return "link-fail";
    case FaultKind::kLinkRepair:
      return "link-repair";
    case FaultKind::kSwitchFail:
      return "switch-fail";
    case FaultKind::kSwitchRepair:
      return "switch-repair";
  }
  return "unknown";
}

void FaultConfig::validate() const {
  const auto finite = [](double v) { return std::isfinite(v); };
  RSIN_REQUIRE(finite(link_mttf), "FaultConfig.link_mttf must be finite");
  RSIN_REQUIRE(finite(link_mttr), "FaultConfig.link_mttr must be finite");
  RSIN_REQUIRE(finite(switch_mttf), "FaultConfig.switch_mttf must be finite");
  RSIN_REQUIRE(finite(switch_mttr), "FaultConfig.switch_mttr must be finite");
  RSIN_REQUIRE(finite(horizon), "FaultConfig.horizon must be finite");
  RSIN_REQUIRE(link_mttf <= 0 || link_mttr > 0,
               "link MTTR must be positive when link faults are enabled");
  RSIN_REQUIRE(switch_mttf <= 0 || switch_mttr > 0,
               "switch MTTR must be positive when switch faults are enabled");
  RSIN_REQUIRE((link_mttf <= 0 && switch_mttf <= 0) || horizon > 0,
               "fault injection needs a positive horizon");
}

FaultInjector::FaultInjector(const FaultConfig& config) : config_(config) {
  config.validate();
}

bool link_eligible(const topo::Network& net, topo::LinkId id,
                   const FaultConfig& config) {
  if (!config.fabric_links_only) return true;
  const topo::Link& l = net.link(id);
  return l.from.kind == topo::NodeKind::kSwitch &&
         l.to.kind == topo::NodeKind::kSwitch;
}

std::vector<FaultEvent> FaultInjector::make_schedule(
    const topo::Network& net) const {
  std::vector<FaultEvent> events;
  if (config_.horizon <= 0) return events;
  if (config_.link_mttf > 0) {
    for (topo::LinkId l = 0; l < net.link_count(); ++l) {
      if (!link_eligible(net, l, config_)) continue;
      generate_element(config_, config_.link_mttf, config_.link_mttr,
                       FaultKind::kLinkFail, FaultKind::kLinkRepair, l,
                       kLinkStreamBase + static_cast<std::uint64_t>(l),
                       events);
    }
  }
  if (config_.switch_mttf > 0) {
    for (topo::SwitchId sw = 0; sw < net.switch_count(); ++sw) {
      generate_element(config_, config_.switch_mttf, config_.switch_mttr,
                       FaultKind::kSwitchFail, FaultKind::kSwitchRepair, sw,
                       kSwitchStreamBase + static_cast<std::uint64_t>(sw),
                       events);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.element < b.element;
            });
  return events;
}

std::vector<topo::Circuit> apply_event(topo::Network& net,
                                       const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kLinkFail:
      return net.fail_link(event.element);
    case FaultKind::kLinkRepair:
      net.repair_link(event.element);
      return {};
    case FaultKind::kSwitchFail:
      return net.fail_switch(event.element);
    case FaultKind::kSwitchRepair:
      net.repair_switch(event.element);
      return {};
  }
  return {};
}

}  // namespace rsin::fault
