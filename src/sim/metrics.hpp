// Streaming statistics for simulation outputs.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/error.hpp"

namespace rsin::sim {

/// Welford-style running mean/variance over observations.
class RunningStat {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  /// Folds another accumulator in (Chan et al.'s parallel-variance
  /// combination): the result is as if every observation of `other` had
  /// been add()ed here. Used to aggregate per-worker stats after a join.
  void merge(const RunningStat& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
  }

  /// Exact accumulator state for snapshot/restore of long-running runs
  /// (svc::Domain checkpoints). Restoring continues the stream bit for bit,
  /// which is what keeps recovered-service metrics bitwise identical.
  struct State {
    std::int64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
  };
  [[nodiscard]] State state() const { return State{count_, mean_, m2_}; }
  void restore(const State& s) {
    count_ = s.count;
    mean_ = s.mean;
    m2_ = s.m2;
  }

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  /// Half-width of the ~95% normal confidence interval of the mean.
  [[nodiscard]] double ci95_half_width() const {
    if (count_ < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
  }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal (e.g. number of
/// busy resources), for utilization measurements.
class TimeWeightedStat {
 public:
  explicit TimeWeightedStat(double start_time = 0.0, double value = 0.0)
      : last_time_(start_time), value_(value) {}

  /// Records that the signal changed to `value` at time `time`.
  void update(double time, double value) {
    RSIN_REQUIRE(time >= last_time_, "time must be non-decreasing");
    integral_ += value_ * (time - last_time_);
    last_time_ = time;
    value_ = value;
  }

  /// Restarts measurement at `time` (e.g. at the end of warmup).
  void reset(double time) {
    last_time_ = time;
    start_time_ = time;
    integral_ = 0.0;
  }

  /// Average value over [reset_time, end_time].
  [[nodiscard]] double average(double end_time) const {
    const double span = end_time - start_time_;
    if (span <= 0.0) return 0.0;
    return (integral_ + value_ * (end_time - last_time_)) / span;
  }

  [[nodiscard]] double current() const { return value_; }

  /// Exact integrator state for snapshot/restore (see RunningStat::State).
  struct State {
    double last_time = 0.0;
    double start_time = 0.0;
    double value = 0.0;
    double integral = 0.0;
  };
  [[nodiscard]] State state() const {
    return State{last_time_, start_time_, value_, integral_};
  }
  void restore(const State& s) {
    last_time_ = s.last_time;
    start_time_ = s.start_time;
    value_ = s.value;
    integral_ = s.integral;
  }

 private:
  double last_time_ = 0.0;
  double start_time_ = 0.0;
  double value_ = 0.0;
  double integral_ = 0.0;
};

}  // namespace rsin::sim
