#include "sim/system_sim.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "core/schedule.hpp"
#include "sim/des.hpp"
#include "util/error.hpp"

namespace rsin::sim {
namespace {

struct Task {
  double arrival = 0.0;
  std::int32_t type = 0;
  std::int32_t priority = 0;
};

/// Full mutable state of the simulated system.
struct SystemState {
  topo::Network net;
  util::Rng rng;
  EventQueue events;

  std::vector<std::deque<Task>> queue;      // per processor
  std::vector<char> transmitting;           // per processor
  std::vector<char> resource_busy;          // per resource
  std::vector<std::int32_t> resource_type;  // fixed per resource
  std::vector<std::int32_t> resource_pref;  // fixed per resource

  TimeWeightedStat busy_resources;
  TimeWeightedStat queued_tasks;
  RunningStat response_time;
  RunningStat wait_time;
  std::map<std::int32_t, RunningStat> wait_by_priority;
  std::int64_t opportunities = 0;
  std::int64_t allocated = 0;
  std::int64_t tasks_arrived = 0;
  std::int64_t tasks_completed = 0;
  std::int64_t cycles = 0;
  bool measuring = false;

  explicit SystemState(const topo::Network& base, const SystemConfig& config)
      : net(base), rng(config.seed) {
    net.release_all();
    queue.resize(static_cast<std::size_t>(net.processor_count()));
    transmitting.assign(static_cast<std::size_t>(net.processor_count()), 0);
    resource_busy.assign(static_cast<std::size_t>(net.resource_count()), 0);
    resource_type.resize(static_cast<std::size_t>(net.resource_count()));
    resource_pref.resize(static_cast<std::size_t>(net.resource_count()));
    for (std::size_t r = 0; r < resource_type.size(); ++r) {
      // Types striped round-robin so every type is equally provisioned.
      resource_type[r] =
          static_cast<std::int32_t>(r) % std::max(1, config.resource_types);
      resource_pref[r] =
          config.priority_levels > 0
              ? static_cast<std::int32_t>(
                    rng.uniform_int(1, config.priority_levels))
              : 0;
    }
  }

  [[nodiscard]] double total_queued() const {
    double total = 0;
    for (const auto& q : queue) total += static_cast<double>(q.size());
    return total;
  }
};

void schedule_arrival(SystemState& state, const SystemConfig& config,
                      topo::ProcessorId p);

void run_scheduling_cycle(SystemState& state, const SystemConfig& config,
                          core::Scheduler& scheduler) {
  // Snapshot: head-of-queue task of every non-transmitting processor is a
  // pending request; resources not busy are free.
  core::Problem problem;
  problem.network = &state.net;
  double oldest_wait = 0.0;
  for (std::size_t p = 0; p < state.queue.size(); ++p) {
    if (state.transmitting[p] || state.queue[p].empty()) continue;
    const Task& task = state.queue[p].front();
    oldest_wait = std::max(oldest_wait, state.events.now() - task.arrival);
    problem.requests.push_back(core::Request{
        static_cast<topo::ProcessorId>(p), task.priority, task.type});
  }
  // Batching (Fig. 10's wait states): hold off until enough requests have
  // accumulated, unless one has already waited past the override.
  const bool batch_ready =
      static_cast<std::int32_t>(problem.requests.size()) >=
          config.min_pending_requests ||
      (config.max_batch_wait > 0.0 && oldest_wait >= config.max_batch_wait);
  if (!batch_ready) problem.requests.clear();
  for (std::size_t r = 0; r < state.resource_busy.size(); ++r) {
    if (state.resource_busy[r]) continue;
    problem.free_resources.push_back(
        core::FreeResource{static_cast<topo::ResourceId>(r),
                           state.resource_pref[r], state.resource_type[r]});
  }
  if (!problem.requests.empty() && !problem.free_resources.empty()) {
    std::map<std::int32_t, std::pair<std::int64_t, std::int64_t>> by_type;
    for (const core::Request& rq : problem.requests) ++by_type[rq.type].first;
    for (const core::FreeResource& fr : problem.free_resources) {
      ++by_type[fr.type].second;
    }
    std::int64_t opportunities = 0;
    for (const auto& [type, counts] : by_type) {
      opportunities += std::min(counts.first, counts.second);
    }

    const core::ScheduleResult result = scheduler.schedule(problem);
    const auto violation = core::verify_schedule(problem, result);
    RSIN_ENSURE(!violation, "scheduler produced an unrealizable schedule: " +
                                violation.value_or(""));

    if (state.measuring) {
      state.opportunities += opportunities;
      state.allocated += static_cast<std::int64_t>(result.allocated());
      ++state.cycles;
    }

    const double now = state.events.now();
    for (const core::Assignment& assignment : result.assignments) {
      const auto p = static_cast<std::size_t>(assignment.request.processor);
      const auto r = static_cast<std::size_t>(assignment.resource.resource);
      Task task = state.queue[p].front();
      state.queue[p].pop_front();
      state.queued_tasks.update(now, state.total_queued());
      state.transmitting[p] = 1;
      state.resource_busy[r] = 1;
      state.busy_resources.update(
          now, std::count(state.resource_busy.begin(),
                          state.resource_busy.end(), char{1}));
      if (state.measuring) {
        state.wait_time.add(now - task.arrival);
        if (task.priority > 0) {
          state.wait_by_priority[task.priority].add(now - task.arrival);
        }
      }

      // Circuit released after transmission; resource completes after
      // transmission + service.
      const topo::Circuit circuit = assignment.circuit;
      state.net.establish(circuit);
      state.events.schedule_in(config.transmission_time, [&state, circuit] {
        state.net.release(circuit);
        state.transmitting[static_cast<std::size_t>(circuit.processor)] = 0;
      });
      const double service =
          state.rng.exponential(1.0 / config.mean_service_time);
      state.events.schedule_in(
          config.transmission_time + service, [&state, r, task] {
            state.resource_busy[r] = 0;
            state.busy_resources.update(
                state.events.now(),
                std::count(state.resource_busy.begin(),
                           state.resource_busy.end(), char{1}));
            ++state.tasks_completed;
            if (state.measuring) {
              state.response_time.add(state.events.now() - task.arrival);
            }
          });
    }
  }
  state.events.schedule_in(config.cycle_interval, [&state, &config,
                                                   &scheduler] {
    run_scheduling_cycle(state, config, scheduler);
  });
}

void schedule_arrival(SystemState& state, const SystemConfig& config,
                      topo::ProcessorId p) {
  const double gap = state.rng.exponential(config.arrival_rate);
  state.events.schedule_in(gap, [&state, &config, p] {
    Task task;
    task.arrival = state.events.now();
    task.type = config.resource_types > 1
                    ? static_cast<std::int32_t>(
                          state.rng.uniform_int(0, config.resource_types - 1))
                    : 0;
    task.priority = config.priority_levels > 0
                        ? static_cast<std::int32_t>(state.rng.uniform_int(
                              1, config.priority_levels))
                        : 0;
    state.queue[static_cast<std::size_t>(p)].push_back(task);
    state.queued_tasks.update(state.events.now(), state.total_queued());
    ++state.tasks_arrived;
    schedule_arrival(state, config, p);
  });
}

}  // namespace

SystemMetrics simulate_system(const topo::Network& net,
                              core::Scheduler& scheduler,
                              const SystemConfig& config) {
  RSIN_REQUIRE(config.arrival_rate > 0, "arrival rate must be positive");
  RSIN_REQUIRE(config.cycle_interval > 0, "cycle interval must be positive");
  SystemState state(net, config);

  for (topo::ProcessorId p = 0; p < state.net.processor_count(); ++p) {
    schedule_arrival(state, config, p);
  }
  state.events.schedule_in(config.cycle_interval, [&state, &config,
                                                   &scheduler] {
    run_scheduling_cycle(state, config, scheduler);
  });

  state.events.run_until(config.warmup_time);
  state.measuring = true;
  state.busy_resources.reset(state.events.now());
  state.queued_tasks.reset(state.events.now());
  state.tasks_arrived = 0;
  state.tasks_completed = 0;

  const double end_time = config.warmup_time + config.measure_time;
  state.events.run_until(end_time);

  SystemMetrics metrics;
  metrics.resource_utilization =
      state.busy_resources.average(end_time) /
      static_cast<double>(state.net.resource_count());
  metrics.mean_response_time = state.response_time.mean();
  metrics.mean_wait_time = state.wait_time.mean();
  metrics.blocking_probability =
      state.opportunities > 0
          ? 1.0 - static_cast<double>(state.allocated) /
                      static_cast<double>(state.opportunities)
          : 0.0;
  metrics.mean_queue_length = state.queued_tasks.average(end_time);
  for (const auto& [priority, stat] : state.wait_by_priority) {
    metrics.mean_wait_by_priority[priority] = stat.mean();
  }
  metrics.tasks_arrived = state.tasks_arrived;
  metrics.tasks_completed = state.tasks_completed;
  metrics.scheduling_cycles = state.cycles;
  return metrics;
}

}  // namespace rsin::sim
