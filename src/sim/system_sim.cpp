#include "sim/system_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>

#include "core/schedule.hpp"
#include "sim/des.hpp"
#include "util/error.hpp"

namespace rsin::sim {
namespace {

struct Task {
  double arrival = 0.0;
  std::int32_t type = 0;
  std::int32_t priority = 0;
  double eligible_after = 0.0;  ///< Backoff gate after a teardown retry.
  std::int32_t attempts = 0;    ///< Transmissions started (and interrupted).
};

/// Full mutable state of the simulated system.
struct SystemState {
  topo::Network net;
  util::Rng rng;
  EventQueue events;

  std::vector<std::deque<Task>> queue;      // per processor
  std::vector<char> transmitting;           // per processor
  std::vector<Task> in_flight;              // per processor; valid while
                                            // transmitting
  std::vector<char> resource_busy;          // per resource
  std::vector<std::int32_t> resource_type;  // fixed per resource
  std::vector<std::int32_t> resource_pref;  // fixed per resource

  // Epoch guards: the event queue cannot cancel events, so the pending
  // release/completion events of a transmission capture the epoch at
  // scheduling time; a mid-service teardown bumps the epoch, turning the
  // stale events into no-ops.
  std::vector<std::int64_t> proc_epoch;  // per processor
  std::vector<std::int64_t> res_epoch;   // per resource

  // Scheduling-cycle scratch, reused every opportunity so the per-event hot
  // path performs no vector allocations (the scheduler side of the same
  // discipline is flow::ScheduleContext).
  core::Problem problem;

  TimeWeightedStat busy_resources;
  TimeWeightedStat queued_tasks;
  TimeWeightedStat faulty_links;
  RunningStat response_time;
  RunningStat wait_time;
  std::map<std::int32_t, RunningStat> wait_by_priority;
  std::int64_t opportunities = 0;
  std::int64_t allocated = 0;
  std::int64_t tasks_arrived = 0;
  std::int64_t tasks_completed = 0;
  std::int64_t cycles = 0;
  std::int64_t degraded_cycles = 0;
  std::int64_t faults_injected = 0;
  std::int64_t repairs = 0;
  std::int64_t circuits_torn_down = 0;
  std::int64_t retries = 0;
  std::int64_t tasks_dropped = 0;
  bool measuring = false;

  explicit SystemState(const topo::Network& base, const SystemConfig& config)
      : net(base), rng(config.seed) {
    net.release_all();
    queue.resize(static_cast<std::size_t>(net.processor_count()));
    transmitting.assign(static_cast<std::size_t>(net.processor_count()), 0);
    in_flight.resize(static_cast<std::size_t>(net.processor_count()));
    proc_epoch.assign(static_cast<std::size_t>(net.processor_count()), 0);
    res_epoch.assign(static_cast<std::size_t>(net.resource_count()), 0);
    resource_busy.assign(static_cast<std::size_t>(net.resource_count()), 0);
    resource_type.resize(static_cast<std::size_t>(net.resource_count()));
    resource_pref.resize(static_cast<std::size_t>(net.resource_count()));
    for (std::size_t r = 0; r < resource_type.size(); ++r) {
      // Types striped round-robin so every type is equally provisioned.
      resource_type[r] =
          static_cast<std::int32_t>(r) % std::max(1, config.resource_types);
      resource_pref[r] =
          config.priority_levels > 0
              ? static_cast<std::int32_t>(
                    rng.uniform_int(1, config.priority_levels))
              : 0;
    }
  }

  [[nodiscard]] double total_queued() const {
    double total = 0;
    for (const auto& q : queue) total += static_cast<double>(q.size());
    return total;
  }
};

void schedule_arrival(SystemState& state, const SystemConfig& config,
                      topo::ProcessorId p);

/// Replays one injector event: applies the fail/repair to the network and
/// recovers every transmission whose circuit the failure tore down — the
/// victim task is re-queued at the head of its queue under exponential
/// backoff and the stale release/completion events are invalidated.
void handle_fault_event(SystemState& state, const SystemConfig& config,
                        const fault::FaultEvent& event) {
  const double now = state.events.now();
  const std::vector<topo::Circuit> victims =
      fault::apply_event(state.net, event);
  const bool fail = event.kind == fault::FaultKind::kLinkFail ||
                    event.kind == fault::FaultKind::kSwitchFail;
  if (state.measuring) {
    if (fail) {
      ++state.faults_injected;
    } else {
      ++state.repairs;
    }
    state.circuits_torn_down += static_cast<std::int64_t>(victims.size());
  }
  state.faulty_links.update(now, state.net.faulty_link_count());

  for (const topo::Circuit& circuit : victims) {
    const auto p = static_cast<std::size_t>(circuit.processor);
    const auto r = static_cast<std::size_t>(circuit.resource);
    // The network already released the circuit's links; invalidate the
    // pending release/completion events and roll the sim state back.
    ++state.proc_epoch[p];
    ++state.res_epoch[r];
    state.transmitting[p] = 0;
    state.resource_busy[r] = 0;
    state.busy_resources.update(
        now, std::count(state.resource_busy.begin(),
                        state.resource_busy.end(), char{1}));

    Task task = state.in_flight[p];
    ++task.attempts;
    const double backoff =
        std::min(config.retry_backoff_base * std::ldexp(1.0, task.attempts - 1),
                 config.retry_backoff_max);
    task.eligible_after = now + backoff;
    state.queue[p].push_front(task);
    state.queued_tasks.update(now, state.total_queued());
    if (state.measuring) ++state.retries;
  }
}

void run_scheduling_cycle(SystemState& state, const SystemConfig& config,
                          core::Scheduler& scheduler) {
  // Snapshot: head-of-queue task of every non-transmitting processor is a
  // pending request; resources not busy are free.
  core::Problem& problem = state.problem;
  problem.requests.clear();
  problem.free_resources.clear();
  problem.network = &state.net;
  const double now_snapshot = state.events.now();
  double oldest_wait = 0.0;
  bool dropped_any = false;
  for (std::size_t p = 0; p < state.queue.size(); ++p) {
    if (state.transmitting[p]) continue;
    // Abandon tasks that have waited past the drop timeout (repeated
    // teardown retries on a degraded fabric eventually give up).
    if (config.drop_timeout > 0.0) {
      while (!state.queue[p].empty() &&
             now_snapshot - state.queue[p].front().arrival >
                 config.drop_timeout) {
        state.queue[p].pop_front();
        dropped_any = true;
        if (state.measuring) ++state.tasks_dropped;
      }
    }
    if (state.queue[p].empty()) continue;
    const Task& task = state.queue[p].front();
    if (task.eligible_after > now_snapshot) continue;  // still backing off
    oldest_wait = std::max(oldest_wait, now_snapshot - task.arrival);
    problem.requests.push_back(core::Request{
        static_cast<topo::ProcessorId>(p), task.priority, task.type});
  }
  if (dropped_any) {
    state.queued_tasks.update(now_snapshot, state.total_queued());
  }
  // Batching (Fig. 10's wait states): hold off until enough requests have
  // accumulated, unless one has already waited past the override.
  const bool batch_ready =
      static_cast<std::int32_t>(problem.requests.size()) >=
          config.min_pending_requests ||
      (config.max_batch_wait > 0.0 && oldest_wait >= config.max_batch_wait);
  if (!batch_ready) problem.requests.clear();
  for (std::size_t r = 0; r < state.resource_busy.size(); ++r) {
    if (state.resource_busy[r]) continue;
    problem.free_resources.push_back(
        core::FreeResource{static_cast<topo::ResourceId>(r),
                           state.resource_pref[r], state.resource_type[r]});
  }
  if (!problem.requests.empty() && !problem.free_resources.empty()) {
    std::map<std::int32_t, std::pair<std::int64_t, std::int64_t>> by_type;
    for (const core::Request& rq : problem.requests) ++by_type[rq.type].first;
    for (const core::FreeResource& fr : problem.free_resources) {
      ++by_type[fr.type].second;
    }
    std::int64_t opportunities = 0;
    for (const auto& [type, counts] : by_type) {
      opportunities += std::min(counts.first, counts.second);
    }

    const core::ScheduleResult result = scheduler.schedule(problem);
    const auto violation = core::verify_schedule(problem, result);
    RSIN_ENSURE(!violation, "scheduler produced an unrealizable schedule: " +
                                violation.value_or(""));

    if (state.measuring) {
      state.opportunities += opportunities;
      state.allocated += static_cast<std::int64_t>(result.allocated());
      ++state.cycles;
      if (const auto* fallback =
              dynamic_cast<const core::FallbackScheduler*>(&scheduler);
          fallback != nullptr &&
          fallback->last_report().outcome != core::ScheduleOutcome::kOptimal) {
        ++state.degraded_cycles;
      }
    }

    const double now = state.events.now();
    for (const core::Assignment& assignment : result.assignments) {
      const auto p = static_cast<std::size_t>(assignment.request.processor);
      const auto r = static_cast<std::size_t>(assignment.resource.resource);
      Task task = state.queue[p].front();
      state.queue[p].pop_front();
      state.queued_tasks.update(now, state.total_queued());
      state.transmitting[p] = 1;
      state.in_flight[p] = task;
      state.resource_busy[r] = 1;
      state.busy_resources.update(
          now, std::count(state.resource_busy.begin(),
                          state.resource_busy.end(), char{1}));
      if (state.measuring) {
        state.wait_time.add(now - task.arrival);
        if (task.priority > 0) {
          state.wait_by_priority[task.priority].add(now - task.arrival);
        }
      }

      // Circuit released after transmission; resource completes after
      // transmission + service.
      const topo::Circuit circuit = assignment.circuit;
      state.net.establish(circuit);
      const std::int64_t proc_epoch = state.proc_epoch[p];
      state.events.schedule_in(
          config.transmission_time, [&state, circuit, proc_epoch] {
            const auto proc = static_cast<std::size_t>(circuit.processor);
            if (state.proc_epoch[proc] != proc_epoch) return;  // torn down
            state.net.release(circuit);
            state.transmitting[proc] = 0;
          });
      const double service =
          state.rng.exponential(1.0 / config.mean_service_time);
      const std::int64_t res_epoch = state.res_epoch[r];
      state.events.schedule_in(
          config.transmission_time + service, [&state, r, res_epoch, task] {
            if (state.res_epoch[r] != res_epoch) return;  // torn down
            state.resource_busy[r] = 0;
            state.busy_resources.update(
                state.events.now(),
                std::count(state.resource_busy.begin(),
                           state.resource_busy.end(), char{1}));
            ++state.tasks_completed;
            if (state.measuring) {
              state.response_time.add(state.events.now() - task.arrival);
            }
          });
    }
  }
  state.events.schedule_in(config.cycle_interval, [&state, &config,
                                                   &scheduler] {
    run_scheduling_cycle(state, config, scheduler);
  });
}

void schedule_arrival(SystemState& state, const SystemConfig& config,
                      topo::ProcessorId p) {
  const double gap = state.rng.exponential(config.arrival_rate);
  state.events.schedule_in(gap, [&state, &config, p] {
    Task task;
    task.arrival = state.events.now();
    task.type = config.resource_types > 1
                    ? static_cast<std::int32_t>(
                          state.rng.uniform_int(0, config.resource_types - 1))
                    : 0;
    task.priority = config.priority_levels > 0
                        ? static_cast<std::int32_t>(state.rng.uniform_int(
                              1, config.priority_levels))
                        : 0;
    state.queue[static_cast<std::size_t>(p)].push_back(task);
    state.queued_tasks.update(state.events.now(), state.total_queued());
    ++state.tasks_arrived;
    schedule_arrival(state, config, p);
  });
}

}  // namespace

SystemMetrics simulate_system(const topo::Network& net,
                              core::Scheduler& scheduler,
                              const SystemConfig& config) {
  RSIN_REQUIRE(config.arrival_rate > 0, "arrival rate must be positive");
  RSIN_REQUIRE(config.cycle_interval > 0, "cycle interval must be positive");
  SystemState state(net, config);

  // Replay the injector's deterministic fail/repair stream as events.
  if (config.faults.link_mttf > 0 || config.faults.switch_mttf > 0) {
    fault::FaultConfig fault_config = config.faults;
    if (fault_config.horizon <= 0) {
      fault_config.horizon = config.warmup_time + config.measure_time;
    }
    const fault::FaultInjector injector(fault_config);
    for (const fault::FaultEvent& event : injector.make_schedule(state.net)) {
      state.events.schedule(event.time, [&state, &config, event] {
        handle_fault_event(state, config, event);
      });
    }
  }

  for (topo::ProcessorId p = 0; p < state.net.processor_count(); ++p) {
    schedule_arrival(state, config, p);
  }
  state.events.schedule_in(config.cycle_interval, [&state, &config,
                                                   &scheduler] {
    run_scheduling_cycle(state, config, scheduler);
  });

  state.events.run_until(config.warmup_time);
  state.measuring = true;
  state.busy_resources.reset(state.events.now());
  state.queued_tasks.reset(state.events.now());
  state.faulty_links.reset(state.events.now());
  state.faulty_links.update(state.events.now(), state.net.faulty_link_count());
  state.tasks_arrived = 0;
  state.tasks_completed = 0;

  const double end_time = config.warmup_time + config.measure_time;
  state.events.run_until(end_time);

  SystemMetrics metrics;
  metrics.resource_utilization =
      state.busy_resources.average(end_time) /
      static_cast<double>(state.net.resource_count());
  metrics.mean_response_time = state.response_time.mean();
  metrics.mean_wait_time = state.wait_time.mean();
  metrics.blocking_probability =
      state.opportunities > 0
          ? 1.0 - static_cast<double>(state.allocated) /
                      static_cast<double>(state.opportunities)
          : 0.0;
  metrics.mean_queue_length = state.queued_tasks.average(end_time);
  for (const auto& [priority, stat] : state.wait_by_priority) {
    metrics.mean_wait_by_priority[priority] = stat.mean();
  }
  metrics.tasks_arrived = state.tasks_arrived;
  metrics.tasks_completed = state.tasks_completed;
  metrics.scheduling_cycles = state.cycles;
  metrics.availability =
      state.net.link_count() > 0
          ? 1.0 - state.faulty_links.average(end_time) /
                      static_cast<double>(state.net.link_count())
          : 1.0;
  metrics.degraded_cycle_fraction =
      state.cycles > 0 ? static_cast<double>(state.degraded_cycles) /
                             static_cast<double>(state.cycles)
                       : 0.0;
  metrics.faults_injected = state.faults_injected;
  metrics.repairs = state.repairs;
  metrics.circuits_torn_down = state.circuits_torn_down;
  metrics.retries = state.retries;
  metrics.tasks_dropped = state.tasks_dropped;
  return metrics;
}

}  // namespace rsin::sim
