#include "sim/system_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>

#include "core/schedule.hpp"
#include "core/zoo.hpp"
#include "sim/des.hpp"
#include "sim/trace.hpp"
#include "util/error.hpp"

namespace rsin::sim {

const char* to_string(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kDropTail:
      return "drop-tail";
    case ShedPolicy::kOldestFirst:
      return "oldest-first";
  }
  return "unknown";
}

const char* to_string(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kOptimal:
      return "optimal";
    case DegradationLevel::kRelaxed:
      return "relaxed";
    case DegradationLevel::kRandomizedMatch:
      return "randomized-match";
    case DegradationLevel::kGreedy:
      return "greedy";
  }
  return "unknown";
}

void SystemConfig::validate() const {
  const auto finite = [](double v) { return std::isfinite(v); };
  RSIN_REQUIRE(finite(arrival_rate) && arrival_rate > 0,
               "SystemConfig.arrival_rate must be finite and positive");
  RSIN_REQUIRE(finite(transmission_time) && transmission_time >= 0,
               "SystemConfig.transmission_time must be finite and >= 0");
  RSIN_REQUIRE(finite(mean_service_time) && mean_service_time > 0,
               "SystemConfig.mean_service_time must be finite and positive");
  RSIN_REQUIRE(finite(cycle_interval) && cycle_interval > 0,
               "SystemConfig.cycle_interval must be finite and positive");
  RSIN_REQUIRE(finite(warmup_time) && warmup_time >= 0,
               "SystemConfig.warmup_time must be finite and >= 0");
  RSIN_REQUIRE(finite(measure_time) && measure_time > 0,
               "SystemConfig.measure_time must be finite and positive");
  RSIN_REQUIRE(resource_types >= 1,
               "SystemConfig.resource_types must be >= 1");
  RSIN_REQUIRE(priority_levels >= 0,
               "SystemConfig.priority_levels must be >= 0");
  RSIN_REQUIRE(min_pending_requests >= 1,
               "SystemConfig.min_pending_requests must be >= 1");
  RSIN_REQUIRE(finite(max_batch_wait),
               "SystemConfig.max_batch_wait must be finite");
  RSIN_REQUIRE(finite(retry_backoff_base) && retry_backoff_base > 0,
               "SystemConfig.retry_backoff_base must be finite and positive");
  RSIN_REQUIRE(finite(retry_backoff_max) && retry_backoff_max > 0,
               "SystemConfig.retry_backoff_max must be finite and positive");
  RSIN_REQUIRE(finite(drop_timeout),
               "SystemConfig.drop_timeout must be finite");
  RSIN_REQUIRE(max_queue >= 0, "SystemConfig.max_queue must be >= 0");
  RSIN_REQUIRE(finite(overload_on) && overload_on >= 0,
               "SystemConfig.overload_on must be finite and >= 0");
  if (overload_on > 0) {
    RSIN_REQUIRE(finite(overload_off_fraction) && overload_off_fraction > 0 &&
                     overload_off_fraction <= 1,
                 "SystemConfig.overload_off_fraction must be in (0, 1]");
    RSIN_REQUIRE(finite(overload_window) && overload_window > 0,
                 "SystemConfig.overload_window must be finite and positive");
    RSIN_REQUIRE(overload_dwell_cycles >= 1,
                 "SystemConfig.overload_dwell_cycles must be >= 1");
  }
  RSIN_REQUIRE(finite(burst_multiplier) && burst_multiplier > 0,
               "SystemConfig.burst_multiplier must be finite and positive");
  RSIN_REQUIRE(finite(burst_start) && burst_start >= 0,
               "SystemConfig.burst_start must be finite and >= 0");
  RSIN_REQUIRE(finite(burst_duration) && burst_duration >= 0,
               "SystemConfig.burst_duration must be finite and >= 0");
  // In a SystemConfig, a zero fault horizon means "the whole run".
  fault::FaultConfig resolved = faults;
  if (resolved.horizon <= 0) resolved.horizon = warmup_time + measure_time;
  resolved.validate();
}

namespace {

struct Task {
  double arrival = 0.0;
  std::int32_t type = 0;
  std::int32_t priority = 0;
  double eligible_after = 0.0;  ///< Backoff gate after a teardown retry.
  std::int32_t attempts = 0;    ///< Transmissions started (and interrupted).
  /// Arrival index of the task (order of arrival events). In workload-replay
  /// mode the service time is a pure function of (config.seed, id), so every
  /// scheduler compared on the trace sees the same marked point process.
  std::int64_t id = 0;
};

/// Instrument pointers resolved once per run from SystemConfig.obs (all
/// null when observability is off). Observation-only: nothing here is read
/// back by the simulation, so metrics and replay stay bitwise identical.
struct SimObs {
  obs::Histogram* solve_us = nullptr;  ///< Per-cycle scheduler solve latency.
  obs::Gauge* queue_depth = nullptr;   ///< Tasks queued at processors.
  obs::Counter* solved_cycles = nullptr;
  obs::Counter* deferred_cycles = nullptr;
  obs::Counter* degraded_cycles = nullptr;
  obs::Counter* tasks_shed = nullptr;
  obs::Counter* tasks_dropped = nullptr;
  obs::Counter* faults = nullptr;
  obs::Counter* teardowns = nullptr;
  obs::TraceWriter* trace = nullptr;

  void bind(const obs::Handle& handle) {
    trace = handle.trace;
    if (!handle.enabled()) return;
    obs::Registry& registry = *handle.registry;
    solve_us = &registry.histogram("sim.cycle.solve_us");
    queue_depth = &registry.gauge("sim.queue_depth");
    solved_cycles = &registry.counter("sim.cycles.solved");
    deferred_cycles = &registry.counter("sim.cycles.deferred");
    degraded_cycles = &registry.counter("sim.cycles.degraded");
    tasks_shed = &registry.counter("sim.tasks.shed");
    tasks_dropped = &registry.counter("sim.tasks.dropped");
    faults = &registry.counter("sim.faults.injected");
    teardowns = &registry.counter("sim.faults.teardowns");
  }
};

/// Seed for the ladder's randomized-matching rung, derived from the run
/// seed so the matcher's stream is independent of the arrival/service RNG.
std::uint64_t matcher_seed(std::uint64_t seed) {
  std::uint64_t sm = seed ^ 0x6d61746368657221ULL;  // "matcher!"
  return util::splitmix64(sm);
}

/// Full mutable state of the simulated system.
struct SystemState {
  topo::Network net;
  util::Rng rng;
  EventQueue events;

  std::vector<std::deque<Task>> queue;      // per processor
  std::vector<char> transmitting;           // per processor
  std::vector<Task> in_flight;              // per processor; valid while
                                            // transmitting
  std::vector<char> resource_busy;          // per resource
  std::vector<std::int32_t> resource_type;  // fixed per resource
  std::vector<std::int32_t> resource_pref;  // fixed per resource

  // Epoch guards: the event queue cannot cancel events, so the pending
  // release/completion events of a transmission capture the epoch at
  // scheduling time; a mid-service teardown bumps the epoch, turning the
  // stale events into no-ops.
  std::vector<std::int64_t> proc_epoch;  // per processor
  std::vector<std::int64_t> res_epoch;   // per resource

  // Scheduling-cycle scratch, reused every opportunity so the per-event hot
  // path performs no vector allocations (the scheduler side of the same
  // discipline is flow::ScheduleContext).
  core::Problem problem;

  // Degraded scheduling rungs: randomized maximal matching at
  // kRandomizedMatch, first-fit greedy (stateless) at kGreedy. The matcher
  // draws from its own seeded generator, never from `rng`, so the recorded
  // arrival/service streams stay independent of ladder position.
  core::RandomizedMatchScheduler matcher;
  core::GreedyScheduler greedy;

  // Record/replay plumbing (either may be null).
  TraceRecorder* recorder = nullptr;
  const Trace* replay = nullptr;
  std::size_t replay_cycle = 0;
  bool halted = false;  ///< Crashed-trace replay reached its crash point.

  // Workload-replay mode (simulate_workload): arrivals and faults come from
  // this trace while the scheduler runs live; null otherwise.
  const Trace* workload = nullptr;
  std::int64_t next_arrival_id = 0;

  SimObs obs;  ///< Observability instruments (null members when off).

  TimeWeightedStat busy_resources;
  TimeWeightedStat queued_tasks;
  TimeWeightedStat faulty_links;
  RunningStat response_time;
  std::vector<double> response_samples;  ///< Measured; backs the p99 rank.
  RunningStat wait_time;
  std::map<std::int32_t, RunningStat> wait_by_priority;
  std::int64_t opportunities = 0;
  std::int64_t allocated = 0;
  std::int64_t tasks_arrived = 0;
  std::int64_t tasks_completed = 0;
  std::int64_t cycles = 0;
  std::int64_t degraded_cycles = 0;
  std::int64_t deferred_cycles = 0;
  std::int64_t faults_injected = 0;
  std::int64_t repairs = 0;
  std::int64_t circuits_torn_down = 0;
  std::int64_t retries = 0;
  std::int64_t tasks_dropped = 0;
  std::int64_t tasks_shed = 0;
  bool measuring = false;

  // From-t=0 totals (never reset at the warmup boundary) backing the
  // conservation invariant: every task that ever arrived is completed,
  // dropped, shed, queued, or in service — exactly one of them.
  std::int64_t arrived_total = 0;
  std::int64_t completed_total = 0;
  std::int64_t dropped_total = 0;
  std::int64_t shed_total = 0;

  // Overload detector / degradation controller.
  std::int32_t level = 0;
  double ewma_queue = 0.0;
  std::int32_t cycles_since_transition = 0;
  double level_clock = 0.0;  ///< When the current level was entered.
  std::array<double, kDegradationLevels> time_in_level{};
  std::int64_t level_transitions = 0;   // measured
  std::vector<std::int32_t> level_path; // measured ladder walk

  explicit SystemState(const topo::Network& base, const SystemConfig& config)
      : net(base),
        rng(config.seed),
        matcher(core::RandomizedMatchConfig{matcher_seed(config.seed),
                                            /*pick_and_compare=*/true}) {
    net.release_all();
    queue.resize(static_cast<std::size_t>(net.processor_count()));
    transmitting.assign(static_cast<std::size_t>(net.processor_count()), 0);
    in_flight.resize(static_cast<std::size_t>(net.processor_count()));
    proc_epoch.assign(static_cast<std::size_t>(net.processor_count()), 0);
    res_epoch.assign(static_cast<std::size_t>(net.resource_count()), 0);
    resource_busy.assign(static_cast<std::size_t>(net.resource_count()), 0);
    resource_type.resize(static_cast<std::size_t>(net.resource_count()));
    resource_pref.resize(static_cast<std::size_t>(net.resource_count()));
    for (std::size_t r = 0; r < resource_type.size(); ++r) {
      // Types striped round-robin so every type is equally provisioned.
      resource_type[r] =
          static_cast<std::int32_t>(r) % std::max(1, config.resource_types);
      resource_pref[r] =
          config.priority_levels > 0
              ? static_cast<std::int32_t>(
                    rng.uniform_int(1, config.priority_levels))
              : 0;
    }
  }

  [[nodiscard]] double total_queued() const {
    double total = 0;
    for (const auto& q : queue) total += static_cast<double>(q.size());
    return total;
  }

  [[nodiscard]] std::int64_t busy_resource_count() const {
    return std::count(resource_busy.begin(), resource_busy.end(), char{1});
  }
};

void schedule_arrival(SystemState& state, const SystemConfig& config,
                      topo::ProcessorId p);

/// Arrival rate in effect at `now` (overload-burst windows multiply it).
double arrival_rate_at(const SystemConfig& config, double now) {
  if (config.burst_multiplier != 1.0 && now >= config.burst_start &&
      now < config.burst_start + config.burst_duration) {
    return config.arrival_rate * config.burst_multiplier;
  }
  return config.arrival_rate;
}

void count_shed(SystemState& state) {
  ++state.shed_total;
  if (state.measuring) ++state.tasks_shed;
  if (state.obs.tasks_shed != nullptr) state.obs.tasks_shed->add();
}

/// Admission control: enqueue `task` at processor `p`, shedding per policy
/// when the bounded queue is full. The arrival itself was already counted.
void admit_task(SystemState& state, const SystemConfig& config, std::size_t p,
                Task task) {
  auto& q = state.queue[p];
  if (config.max_queue > 0 &&
      static_cast<std::int32_t>(q.size()) >= config.max_queue) {
    if (config.shed_policy == ShedPolicy::kDropTail) {
      count_shed(state);
      return;
    }
    // kOldestFirst: evict the queued task closest to its drop deadline (the
    // earliest arrival; ties keep the earlier position).
    auto victim = q.begin();
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (it->arrival < victim->arrival) victim = it;
    }
    q.erase(victim);
    count_shed(state);
  }
  q.push_back(task);
}

/// The hysteretic degradation controller, stepped once per scheduling
/// cycle. Consumes no randomness, so replay recomputes it identically.
void update_overload(SystemState& state, const SystemConfig& config,
                     core::Scheduler* scheduler) {
  if (config.overload_on <= 0) return;
  const double now = state.events.now();
  const double per_proc =
      state.total_queued() / static_cast<double>(state.net.processor_count());
  const double alpha =
      1.0 - std::exp(-config.cycle_interval / config.overload_window);
  state.ewma_queue += alpha * (per_proc - state.ewma_queue);

  ++state.cycles_since_transition;
  if (state.cycles_since_transition < config.overload_dwell_cycles) return;

  std::int32_t target = state.level;
  if (state.ewma_queue > config.overload_on &&
      state.level < static_cast<std::int32_t>(kDegradationLevels) - 1) {
    target = state.level + 1;
  } else if (state.ewma_queue <
                 config.overload_on * config.overload_off_fraction &&
             state.level > 0) {
    target = state.level - 1;
  }
  if (target == state.level) return;

  state.time_in_level[static_cast<std::size_t>(state.level)] +=
      now - state.level_clock;
  state.level_clock = now;
  if (state.measuring) {
    ++state.level_transitions;
    state.level_path.push_back(target);
  }
  const std::int32_t old = state.level;
  state.level = target;
  state.cycles_since_transition = 0;

  if (scheduler != nullptr) {
    if (old == 0 && target == 1) scheduler->set_relaxed(true);
    if (old == 1 && target == 0) scheduler->set_relaxed(false);
    // Re-entering the primary scheduler's era: its warm-start state is
    // stale (it did not observe the degraded cycles' network churn), and
    // the matcher's retained pairs are from a closed chapter too — drop
    // both so each rung starts its next era fresh.
    if (old == 2 && target == 1) {
      scheduler->reset();
      state.matcher.reset();
    }
  }
}

/// Per-cycle runtime invariant sweep (config.validate_invariants).
void check_invariants(const SystemState& state, const SystemConfig& config) {
  // No leaked circuits: a processor holds an established circuit exactly
  // while transmitting, and every occupied link belongs to such a circuit.
  std::int32_t expected_links = 0;
  for (topo::ProcessorId p = 0; p < state.net.processor_count(); ++p) {
    const topo::Circuit* circuit = state.net.established_circuit(p);
    RSIN_ENSURE(
        (circuit != nullptr) ==
            (state.transmitting[static_cast<std::size_t>(p)] != 0),
        "invariant violated: transmitting flag and established circuit "
        "disagree for processor " +
            std::to_string(p));
    if (circuit != nullptr) {
      expected_links += static_cast<std::int32_t>(circuit->links.size());
    }
  }
  RSIN_ENSURE(state.net.occupied_link_count() == expected_links,
              "invariant violated: occupied links (" +
                  std::to_string(state.net.occupied_link_count()) +
                  ") != links of established circuits (" +
                  std::to_string(expected_links) + ") — leaked circuit");

  // Availability bookkeeping: a faulty element never carries a circuit
  // (failures tear down their circuits; establishment refuses faulty links).
  for (topo::LinkId id = 0; id < state.net.link_count(); ++id) {
    RSIN_ENSURE(!(state.net.link(id).occupied && state.net.link_faulty(id)),
                "invariant violated: link " + std::to_string(id) +
                    " is both occupied and faulty");
  }

  // Admission control: bounded queues stay bounded.
  if (config.max_queue > 0) {
    for (std::size_t p = 0; p < state.queue.size(); ++p) {
      RSIN_ENSURE(static_cast<std::int32_t>(state.queue[p].size()) <=
                      config.max_queue,
                  "invariant violated: queue of processor " +
                      std::to_string(p) + " exceeds max_queue");
    }
  }

  // Task conservation: every arrival is accounted for exactly once.
  const std::int64_t live = static_cast<std::int64_t>(state.total_queued()) +
                            state.busy_resource_count();
  RSIN_ENSURE(state.arrived_total == state.completed_total +
                                         state.dropped_total +
                                         state.shed_total + live,
              "invariant violated: task conservation (" +
                  std::to_string(state.arrived_total) + " arrived != " +
                  std::to_string(state.completed_total) + " completed + " +
                  std::to_string(state.dropped_total) + " dropped + " +
                  std::to_string(state.shed_total) + " shed + " +
                  std::to_string(live) + " live)");
}

/// Replays one injector event: applies the fail/repair to the network and
/// recovers every transmission whose circuit the failure tore down — the
/// victim task is re-queued at the head of its queue under exponential
/// backoff and the stale release/completion events are invalidated.
void handle_fault_event(SystemState& state, const SystemConfig& config,
                        const fault::FaultEvent& event) {
  const double now = state.events.now();
  if (state.recorder != nullptr) state.recorder->fault(event);
  const std::vector<topo::Circuit> victims =
      fault::apply_event(state.net, event);
  const bool fail = event.kind == fault::FaultKind::kLinkFail ||
                    event.kind == fault::FaultKind::kSwitchFail;
  if (fail && state.obs.faults != nullptr) state.obs.faults->add();
  if (state.obs.teardowns != nullptr && !victims.empty()) {
    state.obs.teardowns->add(static_cast<std::int64_t>(victims.size()));
  }
  if (state.obs.trace != nullptr) {
    state.obs.trace->instant(
        std::string(fail ? "fault " : "repair ") + to_string(event.kind) +
            " (tore down " + std::to_string(victims.size()) + ")",
        "fault");
  }
  if (state.measuring) {
    if (fail) {
      ++state.faults_injected;
    } else {
      ++state.repairs;
    }
    state.circuits_torn_down += static_cast<std::int64_t>(victims.size());
  }
  state.faulty_links.update(now, state.net.faulty_link_count());

  for (const topo::Circuit& circuit : victims) {
    const auto p = static_cast<std::size_t>(circuit.processor);
    const auto r = static_cast<std::size_t>(circuit.resource);
    // The network already released the circuit's links; invalidate the
    // pending release/completion events and roll the sim state back.
    ++state.proc_epoch[p];
    ++state.res_epoch[r];
    state.transmitting[p] = 0;
    state.resource_busy[r] = 0;
    state.busy_resources.update(now, state.busy_resource_count());

    Task task = state.in_flight[p];
    ++task.attempts;
    const double backoff =
        std::min(config.retry_backoff_base * std::ldexp(1.0, task.attempts - 1),
                 config.retry_backoff_max);
    task.eligible_after = now + backoff;
    // Head-of-queue re-queue: the interrupted task keeps its place. If that
    // overflows a bounded queue, the youngest queued task is shed so the
    // bound holds.
    state.queue[p].push_front(task);
    if (config.max_queue > 0 &&
        static_cast<std::int32_t>(state.queue[p].size()) > config.max_queue) {
      state.queue[p].pop_back();
      count_shed(state);
    }
    state.queued_tasks.update(now, state.total_queued());
    if (state.measuring) ++state.retries;
  }
}

/// Starts one granted transmission: pops the head task of the circuit's
/// processor, establishes the circuit, and schedules the release and
/// completion events. Shared verbatim by the live path (scheduler result +
/// fresh service draw) and the replay path (recorded circuit + service).
void apply_assignment(SystemState& state, const SystemConfig& config,
                      const topo::Circuit& circuit, double service) {
  const auto p = static_cast<std::size_t>(circuit.processor);
  const auto r = static_cast<std::size_t>(circuit.resource);
  RSIN_ENSURE(p < state.queue.size() && !state.queue[p].empty(),
              "assignment names a processor with no pending task (replay "
              "divergence or scheduler bug)");
  const double now = state.events.now();
  Task task = state.queue[p].front();
  state.queue[p].pop_front();
  state.queued_tasks.update(now, state.total_queued());
  state.transmitting[p] = 1;
  state.in_flight[p] = task;
  state.resource_busy[r] = 1;
  state.busy_resources.update(now, state.busy_resource_count());
  if (state.measuring) {
    state.wait_time.add(now - task.arrival);
    if (task.priority > 0) {
      state.wait_by_priority[task.priority].add(now - task.arrival);
    }
  }

  // Circuit released after transmission; resource completes after
  // transmission + service.
  state.net.establish(circuit);
  const std::int64_t proc_epoch = state.proc_epoch[p];
  state.events.schedule_in(
      config.transmission_time, [&state, circuit, proc_epoch] {
        const auto proc = static_cast<std::size_t>(circuit.processor);
        if (state.proc_epoch[proc] != proc_epoch) return;  // torn down
        state.net.release(circuit);
        state.transmitting[proc] = 0;
      });
  const std::int64_t res_epoch = state.res_epoch[r];
  state.events.schedule_in(
      config.transmission_time + service, [&state, r, res_epoch, task] {
        if (state.res_epoch[r] != res_epoch) return;  // torn down
        state.resource_busy[r] = 0;
        state.busy_resources.update(state.events.now(),
                                    state.busy_resource_count());
        ++state.tasks_completed;
        ++state.completed_total;
        if (state.measuring) {
          const double response = state.events.now() - task.arrival;
          state.response_time.add(response);
          state.response_samples.push_back(response);
        }
      });
}

void run_scheduling_cycle(SystemState& state, const SystemConfig& config,
                          core::Scheduler* scheduler) {
  if (state.halted) return;
  update_overload(state, config, scheduler);

  // Snapshot: head-of-queue task of every non-transmitting processor is a
  // pending request; resources not busy are free.
  core::Problem& problem = state.problem;
  problem.requests.clear();
  problem.free_resources.clear();
  problem.network = &state.net;
  const double now = state.events.now();
  double oldest_wait = 0.0;
  bool dropped_any = false;
  for (std::size_t p = 0; p < state.queue.size(); ++p) {
    if (state.transmitting[p]) continue;
    // Abandon tasks that have waited past the drop timeout (repeated
    // teardown retries on a degraded fabric eventually give up).
    if (config.drop_timeout > 0.0) {
      while (!state.queue[p].empty() &&
             now - state.queue[p].front().arrival > config.drop_timeout) {
        state.queue[p].pop_front();
        dropped_any = true;
        ++state.dropped_total;
        if (state.measuring) ++state.tasks_dropped;
        if (state.obs.tasks_dropped != nullptr) state.obs.tasks_dropped->add();
      }
    }
    if (state.queue[p].empty()) continue;
    const Task& task = state.queue[p].front();
    if (task.eligible_after > now) continue;  // still backing off
    oldest_wait = std::max(oldest_wait, now - task.arrival);
    problem.requests.push_back(core::Request{
        static_cast<topo::ProcessorId>(p), task.priority, task.type});
  }
  if (dropped_any) {
    state.queued_tasks.update(now, state.total_queued());
  }
  // Batching (Fig. 10's wait states): hold off until enough requests have
  // accumulated, unless one has already waited past the override.
  const bool batch_ready =
      static_cast<std::int32_t>(problem.requests.size()) >=
          config.min_pending_requests ||
      (config.max_batch_wait > 0.0 && oldest_wait >= config.max_batch_wait);
  if (!batch_ready) problem.requests.clear();
  for (std::size_t r = 0; r < state.resource_busy.size(); ++r) {
    if (state.resource_busy[r]) continue;
    problem.free_resources.push_back(
        core::FreeResource{static_cast<topo::ResourceId>(r),
                           state.resource_pref[r], state.resource_type[r]});
  }
  if (!problem.requests.empty() && !problem.free_resources.empty()) {
    std::map<std::int32_t, std::pair<std::int64_t, std::int64_t>> by_type;
    for (const core::Request& rq : problem.requests) ++by_type[rq.type].first;
    for (const core::FreeResource& fr : problem.free_resources) {
      ++by_type[fr.type].second;
    }
    std::int64_t opportunities = 0;
    for (const auto& [type, counts] : by_type) {
      opportunities += std::min(counts.first, counts.second);
    }

    core::ScheduleOutcome outcome = core::ScheduleOutcome::kOptimal;
    std::int64_t granted = 0;

    if (state.replay != nullptr) {
      // Replay path: consume the next recorded cycle instead of scheduling.
      if (state.replay_cycle >= state.replay->cycles.size()) {
        RSIN_ENSURE(state.replay->crashed,
                    "replay diverged: the live run recorded no scheduler "
                    "cycle at t=" +
                        std::to_string(now));
        state.halted = true;  // prefix of a crashed run fully replayed
        return;
      }
      const TraceCycle& recorded =
          state.replay->cycles[state.replay_cycle++];
      RSIN_ENSURE(recorded.time == now,
                  "replay diverged: recorded cycle at t=" +
                      std::to_string(recorded.time) +
                      " but replay scheduled at t=" + std::to_string(now));
      outcome = recorded.outcome;
      granted = static_cast<std::int64_t>(recorded.assignments.size());
      for (const TraceAssignment& asg : recorded.assignments) {
        apply_assignment(state, config, asg.circuit, asg.service_time);
      }
    } else {
      // Live path: the overload controller picks the scheduling discipline —
      // the configured scheduler up to kRelaxed, the randomized-matching
      // rung at kRandomizedMatch, first-fit greedy at the bottom.
      core::Scheduler* active = scheduler;
      if (state.level >= 3) {
        active = &state.greedy;
      } else if (state.level == 2) {
        active = &state.matcher;
      }
      // The span (solve-latency histogram + optional trace event) closes
      // after the solve returns but before the result is applied — the
      // timed region is exactly the scheduler call.
      const core::ScheduleResult result = [&] {
        obs::Span span(state.obs.solve_us, state.obs.trace, "schedule", "sim");
        return active->schedule(problem);
      }();
      if (state.level == 0) {
        const auto violation = core::verify_schedule(problem, result);
        RSIN_ENSURE(!violation,
                    "scheduler produced an unrealizable schedule: " +
                        violation.value_or(""));
      }
      if (state.level >= 2) {
        outcome = core::ScheduleOutcome::kDegraded;
      } else if (const auto* reporting =
                     dynamic_cast<const core::ReportingScheduler*>(active);
                 reporting != nullptr) {
        outcome = reporting->last_report().outcome;
      }
      granted = static_cast<std::int64_t>(result.allocated());

      if (state.recorder != nullptr) {
        state.recorder->begin_cycle(now, outcome);
      }
      for (const core::Assignment& assignment : result.assignments) {
        // Workload-replay mode derives each task's service time from its
        // arrival index so the marked process is identical under every
        // scheduler; the ordinary live path draws from the run stream.
        double service = 0.0;
        if (state.workload != nullptr) {
          const auto p =
              static_cast<std::size_t>(assignment.circuit.processor);
          RSIN_ENSURE(p < state.queue.size() && !state.queue[p].empty(),
                      "assignment names a processor with no pending task");
          std::uint64_t sm =
              config.seed ^
              (0x9e3779b97f4a7c15ULL *
               (static_cast<std::uint64_t>(state.queue[p].front().id) + 1));
          util::Rng task_rng(util::splitmix64(sm));
          service = task_rng.exponential(1.0 / config.mean_service_time);
        } else {
          service = state.rng.exponential(1.0 / config.mean_service_time);
        }
        if (state.recorder != nullptr) {
          state.recorder->assignment(assignment.circuit, service);
        }
        apply_assignment(state, config, assignment.circuit, service);
      }
      if (state.recorder != nullptr) state.recorder->commit_cycle();
    }

    if (outcome == core::ScheduleOutcome::kDeferred) {
      if (state.obs.deferred_cycles != nullptr) {
        state.obs.deferred_cycles->add();
      }
    } else if (state.obs.solved_cycles != nullptr) {
      state.obs.solved_cycles->add();
      if (outcome != core::ScheduleOutcome::kOptimal) {
        state.obs.degraded_cycles->add();
      }
    }
    if (state.measuring) {
      if (outcome == core::ScheduleOutcome::kDeferred) {
        // A deferred cycle ran no solve: its requests stay queued and are
        // still scheduling opportunities for the drain cycle. Counting the
        // empty result here would overstate blocking and dilute
        // degraded_cycle_fraction (the FallbackReport-per-cycle assumption
        // BatchingScheduler broke).
        ++state.deferred_cycles;
      } else {
        state.opportunities += opportunities;
        state.allocated += granted;
        ++state.cycles;
        if (outcome != core::ScheduleOutcome::kOptimal) {
          ++state.degraded_cycles;
        }
      }
    }
  }
  if (state.obs.queue_depth != nullptr) {
    const double depth = state.total_queued();
    state.obs.queue_depth->set(depth);
    if (state.obs.trace != nullptr) {
      state.obs.trace->counter("queue_depth", "sim", depth);
    }
  }
  if (config.validate_invariants) check_invariants(state, config);
  state.events.schedule_in(config.cycle_interval, [&state, &config,
                                                   scheduler] {
    run_scheduling_cycle(state, config, scheduler);
  });
}

void schedule_arrival(SystemState& state, const SystemConfig& config,
                      topo::ProcessorId p) {
  const double gap =
      state.rng.exponential(arrival_rate_at(config, state.events.now()));
  state.events.schedule_in(gap, [&state, &config, p] {
    Task task;
    task.id = state.next_arrival_id++;
    task.arrival = state.events.now();
    task.type = config.resource_types > 1
                    ? static_cast<std::int32_t>(
                          state.rng.uniform_int(0, config.resource_types - 1))
                    : 0;
    task.priority = config.priority_levels > 0
                        ? static_cast<std::int32_t>(state.rng.uniform_int(
                              1, config.priority_levels))
                        : 0;
    if (state.recorder != nullptr) {
      state.recorder->arrival(task.arrival, p, task.type, task.priority);
    }
    ++state.tasks_arrived;
    ++state.arrived_total;
    admit_task(state, config, static_cast<std::size_t>(p), task);
    state.queued_tasks.update(state.events.now(), state.total_queued());
    schedule_arrival(state, config, p);
  });
}

SystemMetrics run_simulation(const topo::Network& base,
                             core::Scheduler* scheduler,
                             const SystemConfig& config,
                             TraceRecorder* recorder, const Trace* replay,
                             const Trace* workload = nullptr) {
  config.validate();
  SystemState state(base, config);
  state.recorder = recorder;
  state.replay = replay;
  state.workload = workload;
  state.obs.bind(config.obs);
  if (scheduler != nullptr && config.obs.enabled()) {
    scheduler->bind_obs(config.obs);
  }
  if (recorder != nullptr) recorder->begin(config, state.net.shape_hash());

  try {
    // Replay and workload modes both drive the run off a recorded trace;
    // replay additionally re-applies recorded decisions (scheduler == null),
    // workload re-schedules the recorded offered load with a live scheduler.
    const Trace* external = replay != nullptr ? replay : workload;
    if (external != nullptr) {
      // External inputs come from the trace: recorded faults, then recorded
      // arrivals (admission control re-runs deterministically on them).
      for (const fault::FaultEvent& event : external->faults) {
        state.events.schedule(event.time, [&state, &config, event] {
          handle_fault_event(state, config, event);
        });
      }
      for (const TraceArrival& arrival : external->arrivals) {
        state.events.schedule(arrival.time, [&state, &config, arrival] {
          Task task;
          task.id = state.next_arrival_id++;
          task.arrival = arrival.time;
          task.type = arrival.type;
          task.priority = arrival.priority;
          ++state.tasks_arrived;
          ++state.arrived_total;
          admit_task(state, config,
                     static_cast<std::size_t>(arrival.processor), task);
          state.queued_tasks.update(state.events.now(), state.total_queued());
        });
      }
    } else {
      // Replay the injector's deterministic fail/repair stream as events.
      if (config.faults.link_mttf > 0 || config.faults.switch_mttf > 0) {
        fault::FaultConfig fault_config = config.faults;
        if (fault_config.horizon <= 0) {
          fault_config.horizon = config.warmup_time + config.measure_time;
        }
        const fault::FaultInjector injector(fault_config);
        for (const fault::FaultEvent& event :
             injector.make_schedule(state.net)) {
          state.events.schedule(event.time, [&state, &config, event] {
            handle_fault_event(state, config, event);
          });
        }
      }
      for (topo::ProcessorId p = 0; p < state.net.processor_count(); ++p) {
        schedule_arrival(state, config, p);
      }
    }
    state.events.schedule_in(config.cycle_interval, [&state, &config,
                                                     scheduler] {
      run_scheduling_cycle(state, config, scheduler);
    });

    // A crashed trace replays its prefix: stop where the live run stopped.
    double warmup_end = config.warmup_time;
    double end_time = config.warmup_time + config.measure_time;
    if (replay != nullptr && replay->crashed) {
      warmup_end = std::min(warmup_end, replay->crash_time);
      end_time = std::min(end_time, replay->crash_time);
    }

    state.events.run_until(warmup_end);
    state.measuring = true;
    state.busy_resources.reset(state.events.now());
    state.queued_tasks.reset(state.events.now());
    state.faulty_links.reset(state.events.now());
    state.faulty_links.update(state.events.now(),
                              state.net.faulty_link_count());
    state.tasks_arrived = 0;
    state.tasks_completed = 0;
    state.time_in_level.fill(0.0);
    state.level_clock = state.events.now();
    state.level_path.assign(1, state.level);

    state.events.run_until(end_time);

    // Task conservation must hold at any instant; check it once per run
    // even when the per-cycle sweep is off (it is cheap here).
    check_invariants(state, config);

    const double span = end_time - warmup_end;
    state.time_in_level[static_cast<std::size_t>(state.level)] +=
        end_time - state.level_clock;

    SystemMetrics metrics;
    metrics.resource_utilization =
        state.busy_resources.average(end_time) /
        static_cast<double>(state.net.resource_count());
    metrics.mean_response_time = state.response_time.mean();
    if (!state.response_samples.empty()) {
      // Exact rank selection (not an approximate sketch) so replays stay
      // bitwise identical.
      std::vector<double> samples = state.response_samples;
      std::size_t rank = (samples.size() * 99) / 100;
      if (rank >= samples.size()) rank = samples.size() - 1;
      std::nth_element(samples.begin(),
                       samples.begin() + static_cast<std::ptrdiff_t>(rank),
                       samples.end());
      metrics.p99_response_time = samples[rank];
    }
    metrics.mean_wait_time = state.wait_time.mean();
    metrics.blocking_probability =
        state.opportunities > 0
            ? 1.0 - static_cast<double>(state.allocated) /
                        static_cast<double>(state.opportunities)
            : 0.0;
    metrics.mean_queue_length = state.queued_tasks.average(end_time);
    for (const auto& [priority, stat] : state.wait_by_priority) {
      metrics.mean_wait_by_priority[priority] = stat.mean();
    }
    metrics.tasks_arrived = state.tasks_arrived;
    metrics.tasks_completed = state.tasks_completed;
    metrics.scheduling_cycles = state.cycles;
    metrics.deferred_cycles = state.deferred_cycles;
    metrics.availability =
        state.net.link_count() > 0
            ? 1.0 - state.faulty_links.average(end_time) /
                        static_cast<double>(state.net.link_count())
            : 1.0;
    metrics.degraded_cycle_fraction =
        state.cycles > 0 ? static_cast<double>(state.degraded_cycles) /
                               static_cast<double>(state.cycles)
                         : 0.0;
    metrics.faults_injected = state.faults_injected;
    metrics.repairs = state.repairs;
    metrics.circuits_torn_down = state.circuits_torn_down;
    metrics.retries = state.retries;
    metrics.tasks_dropped = state.tasks_dropped;
    metrics.tasks_shed = state.tasks_shed;
    metrics.requests_granted = state.allocated;
    metrics.grant_opportunities = state.opportunities;
    if (span > 0) {
      for (std::size_t level = 0; level < kDegradationLevels; ++level) {
        metrics.time_in_level[level] = state.time_in_level[level] / span;
      }
      metrics.overload_fraction = 0.0;
      for (std::size_t level = 1; level < kDegradationLevels; ++level) {
        metrics.overload_fraction += metrics.time_in_level[level];
      }
    }
    metrics.degradation_transitions = state.level_transitions;
    metrics.final_level = static_cast<DegradationLevel>(state.level);
    metrics.level_path = state.level_path;

    if (recorder != nullptr) {
      recorder->note_metric("tasks_arrived",
                            std::to_string(metrics.tasks_arrived));
      recorder->note_metric("tasks_completed",
                            std::to_string(metrics.tasks_completed));
      recorder->note_metric("tasks_shed", std::to_string(metrics.tasks_shed));
      recorder->note_metric("tasks_dropped",
                            std::to_string(metrics.tasks_dropped));
      recorder->note_metric("scheduling_cycles",
                            std::to_string(metrics.scheduling_cycles));
      recorder->note_metric("deferred_cycles",
                            std::to_string(metrics.deferred_cycles));
      recorder->note_metric("final_level", to_string(metrics.final_level));
    }
    return metrics;
  } catch (const std::exception& error) {
    // Repro bundle: freeze the trace at the crash point and, if configured,
    // dump it to disk before propagating the failure.
    if (recorder != nullptr) {
      recorder->crash(state.events.now(), error.what());
      if (!config.trace_on_violation.empty()) {
        recorder->trace().save_file(config.trace_on_violation);
      }
    }
    throw;
  }
}

}  // namespace

SystemMetrics simulate_system(const topo::Network& net,
                              core::Scheduler& scheduler,
                              const SystemConfig& config) {
  if (!config.trace_on_violation.empty()) {
    // The caller wants a repro bundle on failure but no trace otherwise:
    // record internally so a crash still has everything to dump.
    TraceRecorder recorder;
    return run_simulation(net, &scheduler, config, &recorder, nullptr);
  }
  return run_simulation(net, &scheduler, config, nullptr, nullptr);
}

SystemMetrics simulate_system(const topo::Network& net,
                              core::Scheduler& scheduler,
                              const SystemConfig& config,
                              TraceRecorder& recorder) {
  return run_simulation(net, &scheduler, config, &recorder, nullptr);
}

SystemMetrics simulate_workload(const topo::Network& net,
                                core::Scheduler& scheduler,
                                const Trace& workload,
                                const SystemConfig& config) {
  RSIN_REQUIRE(net.shape_hash() == workload.shape_hash,
               "workload: network shape does not match the recorded trace");
  return run_simulation(net, &scheduler, config, nullptr, nullptr, &workload);
}

SystemMetrics replay_system(const topo::Network& net, const Trace& trace) {
  RSIN_REQUIRE(net.shape_hash() == trace.shape_hash,
               "replay: network shape does not match the recorded trace");
  return run_simulation(net, nullptr, trace.config, nullptr, &trace);
}

SystemMetrics replay_system(const topo::Network& net, const Trace& trace,
                            const obs::Handle& obs) {
  RSIN_REQUIRE(net.shape_hash() == trace.shape_hash,
               "replay: network shape does not match the recorded trace");
  // Recorded configs carry no handle (TraceRecorder strips it); attach the
  // caller's for this replay only.
  SystemConfig config = trace.config;
  config.obs = obs;
  return run_simulation(net, nullptr, config, nullptr, &trace);
}

}  // namespace rsin::sim
