// Dynamic (discrete-event) simulation of a resource-sharing multiprocessor
// driven through an RSIN.
//
// The model follows Section II's assumptions:
//  * each processor generates tasks (Poisson arrivals) and transmits one
//    task at a time; tasks arriving during a transmission are queued at the
//    processor (model point 5);
//  * a scheduling cycle runs periodically; requests received or resources
//    released during a cycle wait for the next one (Section IV);
//  * an allocated circuit is held for the task transmission time, then
//    released while the resource stays busy until the task completes.
//
// Outputs: resource utilization, mean response time (arrival to completion),
// mean waiting time (arrival to circuit establishment), and the per-cycle
// blocking probability (allocation opportunities lost to circuit blocking).
//
// Faults: when the config carries a fault::FaultConfig with a positive MTTF,
// the injector's deterministic fail/repair stream is replayed as events. A
// failure tears down the circuits crossing it mid-transmission; each victim
// task is re-queued at the head of its processor's queue with bounded
// exponential backoff (and eventually dropped if a drop timeout is set), and
// the availability / retry / teardown metrics record the damage.
//
// Overload: per-processor queues can be bounded (`max_queue`) with a
// configurable shed policy, and an optional hysteretic overload detector
// steps the runtime through degradation levels (optimal scheduling →
// checks-off fast path → randomized maximal matching → greedy) so the
// system stays stable through
// arrival bursts (`burst_*`) and fault storms, recovering when load drops.
// Heavy-traffic resource-sharing networks need exactly these simple-form
// control policies to remain stable (Budhiraja & Johnson; Shah & Shin).
//
// Record/replay: a sim::TraceRecorder captures every external input of a
// run (arrivals, faults, per-cycle scheduler decisions and service draws);
// replay_system() re-executes a recorded trace with bitwise identical
// metrics and no scheduler at all — the repro-bundle mechanism behind the
// chaos soak harness (see sim/trace.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "fault/fault_injector.hpp"
#include "obs/obs.hpp"
#include "sim/metrics.hpp"
#include "topo/network.hpp"
#include "util/rng.hpp"

namespace rsin::sim {

/// What happens when a task arrives at a full bounded queue.
enum class ShedPolicy : std::uint8_t {
  kDropTail,     ///< Reject the arriving task.
  kOldestFirst,  ///< Evict the queued task closest to its drop deadline
                 ///< (the oldest arrival) and admit the new one.
};

[[nodiscard]] const char* to_string(ShedPolicy policy);

/// Degradation ladder of the overload controller. Levels are ordered by
/// decreasing per-cycle cost; the detector escalates one level at a time
/// under sustained overload and de-escalates hysteretically.
enum class DegradationLevel : std::uint8_t {
  kOptimal = 0,  ///< Configured scheduler, all self-checks on.
  kRelaxed = 1,  ///< Configured scheduler, optional self-checks suspended
                 ///< (warm differential check, per-cycle verify_schedule).
  kRandomizedMatch = 2,  ///< Randomized maximal matching (Shah–Shin
                         ///< pick-and-compare) — near-optimal matched
                         ///< counts at a fraction of the solve cost.
  kGreedy = 3,   ///< First-fit greedy scheduling only (last resort).
};

inline constexpr std::size_t kDegradationLevels = 4;

[[nodiscard]] const char* to_string(DegradationLevel level);

struct SystemConfig {
  double arrival_rate = 0.5;       ///< Tasks per time unit per processor.
  double transmission_time = 0.2;  ///< Circuit hold time per task.
  double mean_service_time = 1.0;  ///< Exponential resource busy time.
  double cycle_interval = 0.1;     ///< Time between scheduling cycles.
  double warmup_time = 100.0;      ///< Discarded transient.
  double measure_time = 1000.0;    ///< Measured horizon after warmup.
  std::int32_t resource_types = 1;
  std::int32_t priority_levels = 0;
  /// Batching policy (the wait states of Fig. 10): a scheduling cycle only
  /// fires once at least this many requests are pending — "the MRSIN may
  /// choose to wait for more requests to arrive ... before entering a
  /// scheduling cycle". 1 = schedule whenever anything is pending.
  std::int32_t min_pending_requests = 1;
  /// Anti-starvation override: if any pending request has waited longer
  /// than this, the cycle fires regardless of the batch threshold
  /// (<= 0 disables the override).
  double max_batch_wait = 0.0;
  std::uint64_t seed = 1;

  /// Fault injection: MTTF <= 0 for both element classes disables it. A
  /// zero horizon defaults to warmup_time + measure_time.
  fault::FaultConfig faults;
  /// A task whose circuit is torn down by a failure is re-queued at the
  /// head of its queue and becomes eligible again after
  /// min(retry_backoff_base * 2^(attempts - 1), retry_backoff_max).
  double retry_backoff_base = 0.05;
  double retry_backoff_max = 0.8;
  /// Pending tasks older than this are dropped (<= 0: never drop).
  double drop_timeout = 0.0;

  // --- admission control (bounded queues) --------------------------------
  /// Per-processor queue bound; 0 = unbounded (the seed behavior). A task
  /// arriving at a full queue is shed per `shed_policy`; a teardown victim
  /// re-queued into a full queue evicts the youngest queued task instead,
  /// so the bound always holds.
  std::int32_t max_queue = 0;
  ShedPolicy shed_policy = ShedPolicy::kDropTail;

  // --- overload detector / degradation controller ------------------------
  /// Escalation threshold on the time-smoothed mean queue length per
  /// processor; <= 0 disables the controller (system stays at kOptimal).
  double overload_on = 0.0;
  /// De-escalation threshold as a fraction of `overload_on` (hysteresis):
  /// the controller steps back down only once the smoothed queue falls
  /// below overload_on * overload_off_fraction.
  double overload_off_fraction = 0.5;
  /// Time constant of the queue-length EWMA the detector watches.
  double overload_window = 5.0;
  /// Minimum scheduling cycles between level transitions (debounce).
  std::int32_t overload_dwell_cycles = 20;

  // --- overload burst (E20 storm experiments) ----------------------------
  /// Arrival-rate multiplier applied during [burst_start, burst_start +
  /// burst_duration); 1 = no burst.
  double burst_multiplier = 1.0;
  double burst_start = 0.0;
  double burst_duration = 0.0;

  // --- robustness runtime ------------------------------------------------
  /// Run the per-cycle runtime invariant sweep (circuit-leak check,
  /// occupancy/availability bookkeeping, queue bounds). Cheap but not free;
  /// on by default in the chaos soak, off in production sweeps.
  bool validate_invariants = false;
  /// When non-empty and an invariant trips mid-run, the simulator dumps a
  /// replayable trace of the run so far to this path (recording is enabled
  /// internally if the caller did not pass a recorder) and rethrows.
  std::string trace_on_violation;

  // --- observability -----------------------------------------------------
  /// Optional instrumentation (obs/obs.hpp): a per-cycle solve-latency
  /// histogram, queue-depth gauge, shed/deferred counters, and — when the
  /// handle carries a TraceWriter — chrome-trace events for cycles, drains,
  /// breaker transitions, and faults. The pointed-to registry/trace must
  /// outlive the run. Runtime-only plumbing: never serialized (TraceRecorder
  /// strips it) and strictly observation-only, so metrics and record/replay
  /// are bitwise identical with or without it.
  obs::Handle obs;

  /// Validates every field (finite, in range); throws std::invalid_argument
  /// with the offending field named. simulate_system calls this on entry.
  void validate() const;
};

struct SystemMetrics {
  double resource_utilization = 0.0;  ///< Busy fraction of the pool.
  double mean_response_time = 0.0;    ///< Arrival -> task completion.
  /// 99th percentile of per-task response times over the measured horizon
  /// (0 when nothing completed). Deterministic: computed by rank selection
  /// over the exact sample set, so record/replay reproduces it bitwise.
  double p99_response_time = 0.0;
  double mean_wait_time = 0.0;        ///< Arrival -> circuit established.
  /// Mean wait per priority level (only filled when priority_levels > 0);
  /// shows whether the scheduling discipline differentiates service.
  std::map<std::int32_t, double> mean_wait_by_priority;
  double blocking_probability = 0.0;  ///< Lost opportunities per cycle.
  double mean_queue_length = 0.0;     ///< Tasks queued at processors.
  std::int64_t tasks_arrived = 0;
  std::int64_t tasks_completed = 0;
  /// Cycles on which a solve actually ran. Cycles a BatchingScheduler
  /// deferred (outcome kDeferred) are counted in deferred_cycles instead,
  /// so blocking_probability and degraded_cycle_fraction are per *served*
  /// cycle — a deferred cycle's requests stay queued and are re-offered to
  /// the drain cycle, not lost.
  std::int64_t scheduling_cycles = 0;
  std::int64_t deferred_cycles = 0;
  /// Raw grant accounting behind blocking_probability: circuits granted and
  /// per-cycle matchable opportunities over the served cycles. The
  /// optimality-gap harness compares requests_granted across schedulers on
  /// an identical replayed workload.
  std::int64_t requests_granted = 0;
  std::int64_t grant_opportunities = 0;

  // Fault / degraded-mode metrics (trivial on a fault-free run).
  double availability = 1.0;  ///< Time-weighted fraction of non-faulty links.
  /// Fraction of scheduling cycles served by a degraded or fallback path
  /// (nonzero only when the scheduler reports, i.e. is a
  /// core::ReportingScheduler such as FallbackScheduler or
  /// CircuitBreakerScheduler, or when the overload controller ran greedy).
  double degraded_cycle_fraction = 0.0;
  std::int64_t faults_injected = 0;    ///< Fail events during measurement.
  std::int64_t repairs = 0;            ///< Repair events during measurement.
  std::int64_t circuits_torn_down = 0; ///< Transmissions killed by failures.
  std::int64_t retries = 0;            ///< Victim tasks re-queued.
  std::int64_t tasks_dropped = 0;      ///< Tasks abandoned past drop_timeout.

  // Overload / admission metrics (trivial when admission control and the
  // overload controller are disabled).
  std::int64_t tasks_shed = 0;  ///< Admission-control rejections/evictions.
  /// Time-weighted fraction of the measured horizon above kOptimal.
  double overload_fraction = 0.0;
  /// Time-weighted fraction of the measured horizon in each level.
  std::array<double, kDegradationLevels> time_in_level = {1.0, 0.0, 0.0, 0.0};
  std::int64_t degradation_transitions = 0;  ///< Level changes (measured).
  /// Degradation level when measurement ended (recovery checks).
  DegradationLevel final_level = DegradationLevel::kOptimal;
  /// Ladder walk over the measured horizon: the level at measurement start
  /// followed by every level entered, in order. The controller only steps
  /// one level at a time, so consecutive entries differ by exactly 1 — the
  /// monotone-transition property the ladder tests assert.
  std::vector<std::int32_t> level_path;
};

class TraceRecorder;  // sim/trace.hpp
struct Trace;         // sim/trace.hpp

/// Simulates the system on a private copy of `net`; the scheduler is called
/// once per scheduling cycle with the current snapshot.
SystemMetrics simulate_system(const topo::Network& net,
                              core::Scheduler& scheduler,
                              const SystemConfig& config);

/// As above, additionally recording every external input (arrivals, faults,
/// scheduler decisions, service draws) into `recorder` for exact replay.
SystemMetrics simulate_system(const topo::Network& net,
                              core::Scheduler& scheduler,
                              const SystemConfig& config,
                              TraceRecorder& recorder);

/// Replays a recorded trace's *workload* — its arrival and fault streams —
/// through a live `scheduler` (the optimality-gap harness mode). Unlike
/// replay_system, scheduling decisions are made fresh each cycle, so
/// different schedulers can be compared on an identical marked arrival
/// process: each task's service time is derived deterministically from
/// (config.seed, arrival index) instead of the live RNG stream, making the
/// workload common random numbers across schedulers. `config` supplies the
/// run parameters (typically trace.config with obs attached); throws
/// std::invalid_argument when `net`'s shape does not match the trace.
SystemMetrics simulate_workload(const topo::Network& net,
                                core::Scheduler& scheduler,
                                const Trace& workload,
                                const SystemConfig& config);

/// Re-executes a recorded run from its trace: same config, same arrival and
/// fault streams, and the recorded per-cycle decisions instead of a live
/// scheduler. Produces bitwise identical SystemMetrics for a complete
/// trace; a crashed trace replays its prefix up to the crash time. Throws
/// std::invalid_argument when `net`'s shape does not match the trace.
SystemMetrics replay_system(const topo::Network& net, const Trace& trace);

/// Replay with observability attached: identical to replay_system(net,
/// trace) — bitwise identical SystemMetrics, instrumentation is
/// observation-only — but the replayed run feeds `obs` (the acceptance
/// check behind DESIGN.md §9's determinism contract).
SystemMetrics replay_system(const topo::Network& net, const Trace& trace,
                            const obs::Handle& obs);

}  // namespace rsin::sim
