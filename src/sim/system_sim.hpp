// Dynamic (discrete-event) simulation of a resource-sharing multiprocessor
// driven through an RSIN.
//
// The model follows Section II's assumptions:
//  * each processor generates tasks (Poisson arrivals) and transmits one
//    task at a time; tasks arriving during a transmission are queued at the
//    processor (model point 5);
//  * a scheduling cycle runs periodically; requests received or resources
//    released during a cycle wait for the next one (Section IV);
//  * an allocated circuit is held for the task transmission time, then
//    released while the resource stays busy until the task completes.
//
// Outputs: resource utilization, mean response time (arrival to completion),
// mean waiting time (arrival to circuit establishment), and the per-cycle
// blocking probability (allocation opportunities lost to circuit blocking).
//
// Faults: when the config carries a fault::FaultConfig with a positive MTTF,
// the injector's deterministic fail/repair stream is replayed as events. A
// failure tears down the circuits crossing it mid-transmission; each victim
// task is re-queued at the head of its processor's queue with bounded
// exponential backoff (and eventually dropped if a drop timeout is set), and
// the availability / retry / teardown metrics record the damage.
#pragma once

#include <cstdint>
#include <map>

#include "core/scheduler.hpp"
#include "fault/fault_injector.hpp"
#include "sim/metrics.hpp"
#include "topo/network.hpp"
#include "util/rng.hpp"

namespace rsin::sim {

struct SystemConfig {
  double arrival_rate = 0.5;       ///< Tasks per time unit per processor.
  double transmission_time = 0.2;  ///< Circuit hold time per task.
  double mean_service_time = 1.0;  ///< Exponential resource busy time.
  double cycle_interval = 0.1;     ///< Time between scheduling cycles.
  double warmup_time = 100.0;      ///< Discarded transient.
  double measure_time = 1000.0;    ///< Measured horizon after warmup.
  std::int32_t resource_types = 1;
  std::int32_t priority_levels = 0;
  /// Batching policy (the wait states of Fig. 10): a scheduling cycle only
  /// fires once at least this many requests are pending — "the MRSIN may
  /// choose to wait for more requests to arrive ... before entering a
  /// scheduling cycle". 1 = schedule whenever anything is pending.
  std::int32_t min_pending_requests = 1;
  /// Anti-starvation override: if any pending request has waited longer
  /// than this, the cycle fires regardless of the batch threshold
  /// (<= 0 disables the override).
  double max_batch_wait = 0.0;
  std::uint64_t seed = 1;

  /// Fault injection: MTTF <= 0 for both element classes disables it. A
  /// zero horizon defaults to warmup_time + measure_time.
  fault::FaultConfig faults;
  /// A task whose circuit is torn down by a failure is re-queued at the
  /// head of its queue and becomes eligible again after
  /// min(retry_backoff_base * 2^(attempts - 1), retry_backoff_max).
  double retry_backoff_base = 0.05;
  double retry_backoff_max = 0.8;
  /// Pending tasks older than this are dropped (<= 0: never drop).
  double drop_timeout = 0.0;
};

struct SystemMetrics {
  double resource_utilization = 0.0;  ///< Busy fraction of the pool.
  double mean_response_time = 0.0;    ///< Arrival -> task completion.
  double mean_wait_time = 0.0;        ///< Arrival -> circuit established.
  /// Mean wait per priority level (only filled when priority_levels > 0);
  /// shows whether the scheduling discipline differentiates service.
  std::map<std::int32_t, double> mean_wait_by_priority;
  double blocking_probability = 0.0;  ///< Lost opportunities per cycle.
  double mean_queue_length = 0.0;     ///< Tasks queued at processors.
  std::int64_t tasks_arrived = 0;
  std::int64_t tasks_completed = 0;
  std::int64_t scheduling_cycles = 0;

  // Fault / degraded-mode metrics (trivial on a fault-free run).
  double availability = 1.0;  ///< Time-weighted fraction of non-faulty links.
  /// Fraction of scheduling cycles served by the degraded path (only
  /// nonzero when the scheduler is a core::FallbackScheduler).
  double degraded_cycle_fraction = 0.0;
  std::int64_t faults_injected = 0;    ///< Fail events during measurement.
  std::int64_t repairs = 0;            ///< Repair events during measurement.
  std::int64_t circuits_torn_down = 0; ///< Transmissions killed by failures.
  std::int64_t retries = 0;            ///< Victim tasks re-queued.
  std::int64_t tasks_dropped = 0;      ///< Tasks abandoned past drop_timeout.
};

/// Simulates the system on a private copy of `net`; the scheduler is called
/// once per scheduling cycle with the current snapshot.
SystemMetrics simulate_system(const topo::Network& net,
                              core::Scheduler& scheduler,
                              const SystemConfig& config);

}  // namespace rsin::sim
