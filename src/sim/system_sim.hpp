// Dynamic (discrete-event) simulation of a resource-sharing multiprocessor
// driven through an RSIN.
//
// The model follows Section II's assumptions:
//  * each processor generates tasks (Poisson arrivals) and transmits one
//    task at a time; tasks arriving during a transmission are queued at the
//    processor (model point 5);
//  * a scheduling cycle runs periodically; requests received or resources
//    released during a cycle wait for the next one (Section IV);
//  * an allocated circuit is held for the task transmission time, then
//    released while the resource stays busy until the task completes.
//
// Outputs: resource utilization, mean response time (arrival to completion),
// mean waiting time (arrival to circuit establishment), and the per-cycle
// blocking probability (allocation opportunities lost to circuit blocking).
#pragma once

#include <cstdint>
#include <map>

#include "core/scheduler.hpp"
#include "sim/metrics.hpp"
#include "topo/network.hpp"
#include "util/rng.hpp"

namespace rsin::sim {

struct SystemConfig {
  double arrival_rate = 0.5;       ///< Tasks per time unit per processor.
  double transmission_time = 0.2;  ///< Circuit hold time per task.
  double mean_service_time = 1.0;  ///< Exponential resource busy time.
  double cycle_interval = 0.1;     ///< Time between scheduling cycles.
  double warmup_time = 100.0;      ///< Discarded transient.
  double measure_time = 1000.0;    ///< Measured horizon after warmup.
  std::int32_t resource_types = 1;
  std::int32_t priority_levels = 0;
  /// Batching policy (the wait states of Fig. 10): a scheduling cycle only
  /// fires once at least this many requests are pending — "the MRSIN may
  /// choose to wait for more requests to arrive ... before entering a
  /// scheduling cycle". 1 = schedule whenever anything is pending.
  std::int32_t min_pending_requests = 1;
  /// Anti-starvation override: if any pending request has waited longer
  /// than this, the cycle fires regardless of the batch threshold
  /// (<= 0 disables the override).
  double max_batch_wait = 0.0;
  std::uint64_t seed = 1;
};

struct SystemMetrics {
  double resource_utilization = 0.0;  ///< Busy fraction of the pool.
  double mean_response_time = 0.0;    ///< Arrival -> task completion.
  double mean_wait_time = 0.0;        ///< Arrival -> circuit established.
  /// Mean wait per priority level (only filled when priority_levels > 0);
  /// shows whether the scheduling discipline differentiates service.
  std::map<std::int32_t, double> mean_wait_by_priority;
  double blocking_probability = 0.0;  ///< Lost opportunities per cycle.
  double mean_queue_length = 0.0;     ///< Tasks queued at processors.
  std::int64_t tasks_arrived = 0;
  std::int64_t tasks_completed = 0;
  std::int64_t scheduling_cycles = 0;
};

/// Simulates the system on a private copy of `net`; the scheduler is called
/// once per scheduling cycle with the current snapshot.
SystemMetrics simulate_system(const topo::Network& net,
                              core::Scheduler& scheduler,
                              const SystemConfig& config);

}  // namespace rsin::sim
