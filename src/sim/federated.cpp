#include "sim/federated.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace rsin::sim {

namespace {

constexpr std::uint64_t kCycleSalt = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kTenantSalt = 0x517cc1b727220a95ULL;
constexpr std::uint64_t kProcSalt = 0x6669642d70726f63ULL;

/// Uniform [0, 1) as a pure function of the key (splitmix64 finalizer).
double hash01(std::uint64_t key) {
  return static_cast<double>(util::splitmix64(key) >> 11) * 0x1.0p-53;
}

/// Service time as a pure function of (seed, task id) — the simulate_workload
/// common-random-number discipline: the draw never depends on which cluster
/// (or which discipline) serves the task.
std::int32_t service_cycles(std::uint64_t seed, std::uint64_t id,
                            double mean_service) {
  std::uint64_t sm = seed ^ (kCycleSalt * (id + 1));
  util::Rng rng(util::splitmix64(sm));
  const double extra = rng.exponential(1.0 / std::max(1e-9, mean_service - 1.0));
  return 1 + static_cast<std::int32_t>(std::min(63.0, std::floor(extra)));
}

}  // namespace

void FederatedScenario::validate() const {
  federation.validate();
  RSIN_REQUIRE(cycles >= 1, "scenario needs at least one cycle");
  RSIN_REQUIRE(arrival_rate >= 0.0, "arrival_rate must be >= 0");
  RSIN_REQUIRE(mean_service >= 1.0, "mean_service must be >= 1 cycle");
  RSIN_REQUIRE(tenants_per_cluster >= 1, "need at least one tenant");
  RSIN_REQUIRE(zipf_s >= 0.0, "zipf_s must be >= 0");
  RSIN_REQUIRE(burst_factor >= 0.0, "burst_factor must be >= 0");
  const std::int32_t k = federation.clusters;
  RSIN_REQUIRE(burst_cluster < k, "burst_cluster out of range");
  RSIN_REQUIRE(kill_cluster < k, "kill_cluster out of range");
  RSIN_REQUIRE(partition_cluster < k, "partition_cluster out of range");
}

FederatedMetrics drive_federation(fed::Federation& federation,
                                  const FederatedScenario& scenario,
                                  bool flatten) {
  scenario.validate();
  const std::int32_t k = scenario.federation.clusters;
  const std::int32_t n = scenario.federation.cluster.n;
  const std::int32_t tenants = k * scenario.tenants_per_cluster;
  if (flatten) {
    RSIN_REQUIRE(federation.clusters() == 1 &&
                     federation.cluster(0).network().processor_count() == k * n,
                 "flat baseline needs one cluster of clusters * n terminals");
  } else {
    RSIN_REQUIRE(federation.clusters() == k,
                 "federation does not match the scenario geometry");
  }

  // Zipf weights over tenant rank; per-tenant arrival probability is scaled
  // so the expected total per cycle is arrival_rate * k * n regardless of
  // skew (clamped per-tenant — one arrival per tenant per cycle).
  std::vector<double> weight(static_cast<std::size_t>(tenants));
  double weight_sum = 0.0;
  for (std::int32_t t = 0; t < tenants; ++t) {
    weight[static_cast<std::size_t>(t)] =
        1.0 / std::pow(static_cast<double>(t + 1), scenario.zipf_s);
    weight_sum += weight[static_cast<std::size_t>(t)];
  }
  const double offered_per_cycle =
      scenario.arrival_rate * static_cast<double>(k) * static_cast<double>(n);

  FederatedMetrics metrics;
  std::uint64_t next_id = 0;
  for (std::int64_t cycle = 0; cycle < scenario.cycles; ++cycle) {
    if (!flatten) {
      if (scenario.kill_cluster >= 0 && cycle == scenario.kill_at) {
        federation.kill_cluster(scenario.kill_cluster);
      }
      if (scenario.kill_cluster >= 0 && cycle == scenario.rejoin_at) {
        federation.rejoin_cluster(scenario.kill_cluster);
      }
      if (scenario.partition_cluster >= 0 && cycle == scenario.partition_at) {
        federation.partition_cluster(scenario.partition_cluster);
      }
      if (scenario.partition_cluster >= 0 && cycle == scenario.heal_at) {
        federation.heal_cluster(scenario.partition_cluster);
      }
    }

    // Burst reweighting is applied per cycle (the window shifts mass onto
    // the bursting cluster's tenants without changing other cycles).
    double cycle_weight_sum = weight_sum;
    const bool burst_now = scenario.burst_cluster >= 0 &&
                           cycle >= scenario.burst_from &&
                           cycle < scenario.burst_until;
    if (burst_now) {
      cycle_weight_sum = 0.0;
      for (std::int32_t t = 0; t < tenants; ++t) {
        const double w = weight[static_cast<std::size_t>(t)];
        cycle_weight_sum +=
            (t % k == scenario.burst_cluster) ? w * scenario.burst_factor : w;
      }
    }

    for (std::int32_t tenant = 0; tenant < tenants; ++tenant) {
      double w = weight[static_cast<std::size_t>(tenant)];
      if (burst_now && tenant % k == scenario.burst_cluster) {
        w *= scenario.burst_factor;
      }
      const double prob =
          std::min(0.95, offered_per_cycle * w / cycle_weight_sum);
      const std::uint64_t key =
          scenario.seed ^ (kCycleSalt * (static_cast<std::uint64_t>(cycle) + 1)) ^
          (kTenantSalt * (static_cast<std::uint64_t>(tenant) + 1));
      if (hash01(key) >= prob) continue;

      fed::Task task;
      task.id = next_id++;
      task.tenant = tenant;
      task.birth_cycle = cycle;
      task.service_cycles =
          service_cycles(scenario.seed, task.id, scenario.mean_service);
      std::uint64_t pkey = scenario.seed ^ (kProcSalt * (task.id + 1));
      const auto proc =
          static_cast<std::int32_t>(util::splitmix64(pkey) %
                                    static_cast<std::uint64_t>(n));
      const std::int32_t home = tenant % k;
      task.processor = flatten ? home * n + proc : proc;
      if (flatten) task.tenant = 0;  // single home on the flat fabric
      ++metrics.offered;
      (void)federation.submit(task);
    }
    federation.run_cycle();
  }

  metrics.granted = federation.total_granted();
  metrics.completed = federation.total_completed_by(scenario.cycles);
  metrics.spill_demand = federation.stats().spill_demand;
  metrics.spill_admitted = federation.stats().spill_admitted;
  metrics.spill_moved = federation.stats().spill_moved;
  double response_sum = 0.0;
  for (std::int32_t i = 0; i < federation.clusters(); ++i) {
    const fed::ClusterStats& stats = federation.cluster(i).stats();
    FederatedClusterMetrics cm;
    cm.arrivals = stats.arrivals;
    cm.spill_in = stats.spill_in;
    cm.spill_out = stats.spill_out;
    cm.granted = stats.granted;
    cm.completed = federation.cluster(i).completed_by(scenario.cycles);
    cm.shed = stats.shed;
    cm.lost_inflight = stats.lost_inflight;
    cm.max_level = stats.max_level;
    cm.mean_wait =
        stats.granted > 0 ? stats.wait_sum / static_cast<double>(stats.granted)
                          : 0.0;
    cm.mean_response = stats.granted > 0
                           ? stats.response_sum /
                                 static_cast<double>(stats.granted)
                           : 0.0;
    cm.schedule_hash = federation.cluster(i).schedule_hash();
    response_sum += stats.response_sum;
    metrics.clusters.push_back(cm);
  }
  metrics.grant_rate =
      metrics.offered > 0
          ? static_cast<double>(metrics.granted) /
                static_cast<double>(metrics.offered)
          : 0.0;
  metrics.mean_response =
      metrics.granted > 0
          ? response_sum / static_cast<double>(metrics.granted)
          : 0.0;
  return metrics;
}

FederatedMetrics run_federated_experiment(const FederatedScenario& scenario) {
  scenario.validate();
  fed::Federation federation(scenario.federation);
  return drive_federation(federation, scenario, /*flatten=*/false);
}

FederatedMetrics run_flat_baseline(const FederatedScenario& scenario) {
  scenario.validate();
  fed::FederationConfig flat = scenario.federation;
  flat.clusters = 1;
  flat.cluster.n = scenario.federation.clusters * scenario.federation.cluster.n;
  flat.spill = false;
  fed::Federation federation(flat);
  return drive_federation(federation, scenario, /*flatten=*/true);
}

}  // namespace rsin::sim
