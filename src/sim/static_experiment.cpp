#include "sim/static_experiment.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <thread>

#include "core/routing.hpp"
#include "core/schedule.hpp"
#include "sim/metrics.hpp"
#include "util/error.hpp"

namespace rsin::sim {
namespace {

/// Runs `trials` trials with a dedicated RNG stream, accumulating into a
/// fresh partial result (batch_blocking gets exactly one entry).
StaticExperimentResult run_batch(const topo::Network& net,
                                 core::Scheduler& scheduler,
                                 const StaticExperimentConfig& config,
                                 util::Rng rng, std::int64_t trials) {
  StaticExperimentResult result;
  for (std::int64_t trial = 0; trial < trials; ++trial) {
    topo::Network work = net;  // fresh free network each trial
    work.release_all();

    // Draw the instance.
    std::vector<topo::ProcessorId> requesting;
    std::vector<topo::ProcessorId> silent;
    for (topo::ProcessorId p = 0; p < work.processor_count(); ++p) {
      (rng.bernoulli(config.request_probability) ? requesting : silent)
          .push_back(p);
    }
    std::vector<topo::ResourceId> free_resources;
    std::vector<topo::ResourceId> busy_resources;
    for (topo::ResourceId r = 0; r < work.resource_count(); ++r) {
      (rng.bernoulli(config.free_probability) ? free_resources
                                              : busy_resources)
          .push_back(r);
    }

    // Background traffic: circuits between silent processors and busy
    // resources, routed greedily over the still-free fabric.
    std::int32_t placed = 0;
    rng.shuffle(silent);
    rng.shuffle(busy_resources);
    for (std::size_t i = 0;
         placed < config.background_circuits &&
         i < std::min(silent.size(), busy_resources.size());
         ++i) {
      const auto circuit = core::first_free_path(
          work, silent[i],
          [&](topo::ResourceId r) { return r == busy_resources[i]; });
      if (!circuit) continue;
      work.establish(*circuit);
      ++placed;
    }

    // Assemble the problem with random types/priorities.
    core::Problem problem;
    problem.network = &work;
    for (const topo::ProcessorId p : requesting) {
      core::Request request;
      request.processor = p;
      request.type = static_cast<std::int32_t>(
          rng.uniform_int(0, config.resource_types - 1));
      if (config.priority_levels > 0) {
        request.priority = static_cast<std::int32_t>(
            rng.uniform_int(1, config.priority_levels));
      }
      problem.requests.push_back(request);
    }
    for (const topo::ResourceId r : free_resources) {
      core::FreeResource resource;
      resource.resource = r;
      resource.type = static_cast<std::int32_t>(
          rng.uniform_int(0, config.resource_types - 1));
      if (config.priority_levels > 0) {
        resource.preference = static_cast<std::int32_t>(
            rng.uniform_int(1, config.priority_levels));
      }
      problem.free_resources.push_back(resource);
    }

    // Per-type allocation opportunities: sum of min(requests, resources).
    std::map<std::int32_t, std::pair<std::int64_t, std::int64_t>> by_type;
    for (const core::Request& request : problem.requests) {
      ++by_type[request.type].first;
    }
    for (const core::FreeResource& resource : problem.free_resources) {
      ++by_type[resource.type].second;
    }
    std::int64_t opportunities = 0;
    for (const auto& [type, counts] : by_type) {
      opportunities += std::min(counts.first, counts.second);
    }

    const core::ScheduleResult schedule = scheduler.schedule(problem);
    const auto violation = core::verify_schedule(problem, schedule);
    RSIN_ENSURE(!violation, "scheduler produced an unrealizable schedule: " +
                                violation.value_or(""));

    result.total_requests += static_cast<std::int64_t>(problem.requests.size());
    result.total_free_resources +=
        static_cast<std::int64_t>(problem.free_resources.size());
    result.total_opportunities += opportunities;
    result.total_allocated += static_cast<std::int64_t>(schedule.allocated());
    result.total_cost += schedule.cost;
    ++result.trials;
  }
  if (result.total_opportunities > 0) {
    result.batch_blocking.push_back(
        1.0 - static_cast<double>(result.total_allocated) /
                  static_cast<double>(result.total_opportunities));
  }
  return result;
}

void merge(StaticExperimentResult& into, const StaticExperimentResult& part) {
  into.trials += part.trials;
  into.total_requests += part.total_requests;
  into.total_free_resources += part.total_free_resources;
  into.total_opportunities += part.total_opportunities;
  into.total_allocated += part.total_allocated;
  into.total_cost += part.total_cost;
  into.batch_blocking.insert(into.batch_blocking.end(),
                             part.batch_blocking.begin(),
                             part.batch_blocking.end());
}

/// Splits trials into ~10 equal batches (the batch-means granularity).
std::vector<std::int64_t> batch_sizes(std::int64_t trials) {
  const std::int64_t batches = std::min<std::int64_t>(10, trials);
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(batches),
                                  trials / batches);
  for (std::int64_t i = 0; i < trials % batches; ++i) {
    ++sizes[static_cast<std::size_t>(i)];
  }
  return sizes;
}

void validate(const StaticExperimentConfig& config) {
  RSIN_REQUIRE(config.trials > 0, "experiment needs at least one trial");
  RSIN_REQUIRE(config.resource_types >= 1, "need at least one resource type");
}

}  // namespace

double StaticExperimentResult::blocking_ci95() const {
  if (batch_blocking.size() < 2) return 0.0;
  double mean = 0.0;
  for (const double b : batch_blocking) mean += b;
  mean /= static_cast<double>(batch_blocking.size());
  double variance = 0.0;
  for (const double b : batch_blocking) variance += (b - mean) * (b - mean);
  variance /= static_cast<double>(batch_blocking.size() - 1);
  return 1.96 * std::sqrt(variance /
                          static_cast<double>(batch_blocking.size()));
}

StaticExperimentResult run_static_experiment(
    const topo::Network& net, core::Scheduler& scheduler,
    const StaticExperimentConfig& config) {
  validate(config);
  const util::Rng root(config.seed);
  StaticExperimentResult result;
  const auto sizes = batch_sizes(config.trials);
  for (std::size_t batch = 0; batch < sizes.size(); ++batch) {
    merge(result, run_batch(net, scheduler, config, root.split(batch),
                            sizes[batch]));
  }
  return result;
}

StaticExperimentResult run_static_experiment_parallel(
    const topo::Network& net, const SchedulerFactory& factory,
    const StaticExperimentConfig& config, int threads) {
  validate(config);
  RSIN_REQUIRE(threads >= 1, "need at least one worker");
  const util::Rng root(config.seed);
  const auto sizes = batch_sizes(config.trials);

  std::vector<StaticExperimentResult> parts(sizes.size());
  std::vector<std::thread> workers;
  std::atomic<std::size_t> next_batch{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t batch = next_batch.fetch_add(1);
      if (batch >= sizes.size()) break;
      // One scheduler instance per batch: stateful schedulers then behave
      // identically no matter which worker picks the batch up.
      const auto scheduler = factory();
      parts[batch] = run_batch(net, *scheduler, config, root.split(batch),
                               sizes[batch]);
    }
  };
  const auto worker_count = std::min<std::size_t>(
      static_cast<std::size_t>(threads), sizes.size());
  workers.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) workers.emplace_back(worker);
  for (std::thread& thread : workers) thread.join();

  // Deterministic combination in batch order, independent of scheduling.
  StaticExperimentResult result;
  for (const StaticExperimentResult& part : parts) merge(result, part);
  return result;
}

StaticExperimentResult run_static_experiment_pooled(
    const topo::Network& net, core::WarmContextPool& pool,
    const StaticExperimentConfig& config, int threads, bool canonical,
    bool verify, const obs::Handle& obs) {
  validate(config);
  RSIN_REQUIRE(threads >= 1, "need at least one worker");
  // Bit-identical aggregation across thread counts relies on every batch
  // total being history-independent; only the max-flow *value* is (the
  // realizing assignment may differ with warm history), so priorities and
  // preferences — the fields whose cost depends on the assignment — must
  // be off. Transformation 1 requires homogeneity anyway.
  RSIN_REQUIRE(config.resource_types == 1,
               "pooled warm scheduling requires a homogeneous experiment "
               "(resource_types == 1)");
  RSIN_REQUIRE(config.priority_levels == 0,
               "pooled warm scheduling requires priority_levels == 0 (cost "
               "would depend on warm-start assignment history)");
  const util::Rng root(config.seed);
  const auto sizes = batch_sizes(config.trials);

  pool.bind_obs(obs);
  std::vector<StaticExperimentResult> parts(sizes.size());
  std::vector<std::thread> workers;
  std::atomic<std::size_t> next_batch{0};
  const auto worker_count = std::min<std::size_t>(
      static_cast<std::size_t>(threads), sizes.size());
  // Per-worker batch wall times, merged after the join (RunningStat::merge)
  // — observation-only, and timed at all only when a registry is attached.
  std::vector<RunningStat> batch_stats(worker_count);
  const auto worker = [&](std::size_t index) {
    // One lease — one scheduler — per worker for the whole sweep: the
    // skeleton and residual carry over between batches, which is the win
    // over the factory variant's per-batch cold scheduler.
    core::WarmMaxFlowScheduler scheduler(pool.checkout(index, net), verify,
                                         canonical);
    if (obs.enabled()) scheduler.bind_obs(obs);
    while (true) {
      const std::size_t batch = next_batch.fetch_add(1);
      if (batch >= sizes.size()) break;
      if (obs.enabled()) {
        const auto start = std::chrono::steady_clock::now();
        parts[batch] = run_batch(net, scheduler, config, root.split(batch),
                                 sizes[batch]);
        batch_stats[index].add(std::chrono::duration<double, std::micro>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
      } else {
        parts[batch] = run_batch(net, scheduler, config, root.split(batch),
                                 sizes[batch]);
      }
    }
  };
  workers.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) {
    workers.emplace_back(worker, w);
  }
  for (std::thread& thread : workers) thread.join();

  if (obs.enabled()) {
    RunningStat all_batches;
    for (const RunningStat& stat : batch_stats) all_batches.merge(stat);
    obs::Registry& registry = *obs.registry;
    registry.gauge("static_pooled.batch_us.mean").set(all_batches.mean());
    registry.gauge("static_pooled.batch_us.stddev").set(all_batches.stddev());
    registry.gauge("static_pooled.batch_us.count")
        .set(static_cast<double>(all_batches.count()));
  }
  // The caller's registry may die before the pool does; detach.
  pool.bind_obs({});

  StaticExperimentResult result;
  for (const StaticExperimentResult& part : parts) merge(result, part);
  return result;
}

}  // namespace rsin::sim
