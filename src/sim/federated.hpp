// Cluster-granular federation scenarios under common random numbers.
//
// Extends the simulate_workload discipline (system_sim.hpp) to the
// two-level federation: the offered load is a pure function of the
// scenario seed — per-tenant Bernoulli arrivals with Zipf skew, and
// per-task service times a pure function of (seed, task id) — so every
// discipline under comparison (spill on/off, different uplink capacities,
// the flat single-fabric baseline) sees the *identical* workload and
// differences in the curves are differences between disciplines, not
// between random draws.
//
// Scenarios cover what a single flat network cannot express: whole-cluster
// loss and rejoin, uplink partition, cross-cluster burst imbalance, and
// tenant skew concentrating load on some home clusters. The flat baseline
// (run_flat_baseline) maps the same arrival stream onto one fabric of
// K * n terminals — the "flat-network optimum" the E25 gate compares
// federated admission against.
#pragma once

#include <cstdint>
#include <vector>

#include "fed/federation.hpp"

namespace rsin::sim {

struct FederatedScenario {
  fed::FederationConfig federation;
  std::int64_t cycles = 400;

  /// Offered load: expected arrivals per processor per cycle across the
  /// whole federation (split over tenants by the Zipf weights).
  double arrival_rate = 0.35;
  /// Mean service time in cycles (>= 1; exponential, shifted by 1).
  double mean_service = 3.0;
  /// Tenants per cluster; tenant t homes at cluster t mod K, so the tenant
  /// space is clusters * tenants_per_cluster.
  std::int32_t tenants_per_cluster = 8;
  /// Zipf exponent over tenant ranks (tenant 0 hottest). 0 = uniform; a
  /// positive value skews load toward low-numbered tenants and therefore
  /// toward their home clusters (cluster 0 first) — the tenant-skew
  /// scenario.
  double zipf_s = 0.0;

  /// Cross-cluster burst imbalance: multiply the arrival weight of every
  /// tenant homed at `burst_cluster` by `burst_factor` during
  /// [burst_from, burst_until). -1 disables.
  std::int32_t burst_cluster = -1;
  double burst_factor = 1.0;
  std::int64_t burst_from = 0;
  std::int64_t burst_until = 0;

  /// Whole-cluster loss: kill_cluster's fabric dies at kill_at and rejoins
  /// at rejoin_at (-1 = never). -1 disables.
  std::int32_t kill_cluster = -1;
  std::int64_t kill_at = 0;
  std::int64_t rejoin_at = -1;

  /// Uplink partition (fabric stays up, uplinks sever) over
  /// [partition_at, heal_at). -1 disables.
  std::int32_t partition_cluster = -1;
  std::int64_t partition_at = 0;
  std::int64_t heal_at = -1;

  std::uint64_t seed = 1;

  void validate() const;
};

struct FederatedClusterMetrics {
  std::int64_t arrivals = 0;
  std::int64_t spill_in = 0;
  std::int64_t spill_out = 0;
  std::int64_t granted = 0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t lost_inflight = 0;
  std::int32_t max_level = 0;
  double mean_wait = 0.0;
  double mean_response = 0.0;
  std::uint64_t schedule_hash = 0;
};

struct FederatedMetrics {
  std::vector<FederatedClusterMetrics> clusters;
  std::int64_t offered = 0;   ///< Tasks generated (== submitted).
  std::int64_t granted = 0;
  std::int64_t completed = 0; ///< Completions within the horizon.
  std::int64_t spill_demand = 0;
  std::int64_t spill_admitted = 0;
  std::int64_t spill_moved = 0;
  double grant_rate = 0.0;      ///< granted / offered (0 when no offer).
  double mean_response = 0.0;   ///< Cycles, birth -> completion, over grants.
};

/// Drives an existing federation through the scenario's workload. With
/// `flatten`, the federation must be a single cluster of clusters * n
/// terminals, and each arrival lands on processor home * n + p — the same
/// stream reshaped onto the flat fabric. Cluster fault/partition events
/// only apply to the federated (non-flat) geometry.
FederatedMetrics drive_federation(fed::Federation& federation,
                                  const FederatedScenario& scenario,
                                  bool flatten = false);

/// Builds a Federation from the scenario and runs it. The E25 main path.
FederatedMetrics run_federated_experiment(const FederatedScenario& scenario);

/// Same workload on one flat fabric of clusters * n terminals with spill
/// disabled — the flat-network optimum reference curve.
FederatedMetrics run_flat_baseline(const FederatedScenario& scenario);

}  // namespace rsin::sim
