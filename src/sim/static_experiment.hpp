// Monte-Carlo blocking-probability experiment (the setting behind the
// paper's Section II numbers).
//
// Each trial draws a random scheduling instance: every processor requests
// with probability `request_probability`, every resource is free with
// probability `free_probability`, and (optionally) some background circuits
// already occupy links. A scheduler then maps requests to resources. With
// x requests and y free resources, at most min(x, y) allocations are
// possible even on a nonblocking fabric, so the *blocking probability* is
//
//   1 - (allocations made) / (sum over trials of min(x, y)),
//
// i.e. the fraction of allocation opportunities lost to circuit blocking —
// the quantity the paper reports as "average blocking probability" (~2% for
// the optimal scheduler on an 8x8 cube, ~20% for heuristic routing, <5% on
// an Omega).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/scheduler.hpp"
#include "obs/obs.hpp"
#include "topo/network.hpp"
#include "util/rng.hpp"

namespace rsin::sim {

struct StaticExperimentConfig {
  std::int64_t trials = 1000;
  double request_probability = 0.5;
  double free_probability = 0.5;
  /// Number of background circuits established before each trial between
  /// non-requesting processors and busy resources (Section II's "network is
  /// not completely free" discussion). Circuits that cannot be routed are
  /// skipped.
  std::int32_t background_circuits = 0;
  /// Number of distinct resource types; requests/resources draw types
  /// uniformly. 1 = homogeneous.
  std::int32_t resource_types = 1;
  /// When > 0, priorities/preferences are drawn uniformly from
  /// [1, priority_levels]; otherwise everything has priority 0.
  std::int32_t priority_levels = 0;
  std::uint64_t seed = 1;
};

struct StaticExperimentResult {
  std::int64_t trials = 0;
  std::int64_t total_requests = 0;
  std::int64_t total_free_resources = 0;
  std::int64_t total_opportunities = 0;  ///< sum of per-type min(x, y)
  std::int64_t total_allocated = 0;
  std::int64_t total_cost = 0;
  /// Per-batch blocking probabilities (trials split into ~10 batches) for
  /// the batch-means confidence interval below.
  std::vector<double> batch_blocking;

  /// Half-width of the ~95% batch-means confidence interval of the
  /// blocking probability (0 when fewer than 2 batches have data).
  [[nodiscard]] double blocking_ci95() const;
  /// 1 - allocated / opportunities.
  [[nodiscard]] double blocking_probability() const {
    if (total_opportunities == 0) return 0.0;
    return 1.0 - static_cast<double>(total_allocated) /
                     static_cast<double>(total_opportunities);
  }
  /// allocated / free resources (how full the resource pool was driven).
  [[nodiscard]] double resource_allocation_ratio() const {
    if (total_free_resources == 0) return 0.0;
    return static_cast<double>(total_allocated) /
           static_cast<double>(total_free_resources);
  }
};

/// Runs the experiment on (a private copy of) `net` with `scheduler`,
/// single-threaded. Trials are processed in batches of ~trials/10, each
/// batch with its own derived RNG stream, so results depend only on the
/// seed (and match run_static_experiment_parallel with any thread count
/// when the scheduler is stateless).
StaticExperimentResult run_static_experiment(
    const topo::Network& net, core::Scheduler& scheduler,
    const StaticExperimentConfig& config);

/// Creates one scheduler per worker; must be callable concurrently.
using SchedulerFactory = std::function<std::unique_ptr<core::Scheduler>()>;

/// Parallel variant: batches are distributed over `threads` workers, each
/// with its own scheduler instance (from `factory`) and its own derived RNG
/// stream. The aggregate result is bit-identical for every thread count —
/// batch k always uses stream k — which the tests verify.
StaticExperimentResult run_static_experiment_parallel(
    const topo::Network& net, const SchedulerFactory& factory,
    const StaticExperimentConfig& config, int threads);

/// Sharded warm-context variant: each worker leases one WarmContext from
/// its pool shard (shard = worker index mod shard_count) and runs one
/// WarmMaxFlowScheduler across *all* the batches it drains, so the
/// Transformation-1 skeleton and the solver residual stay warm for the
/// whole sweep instead of being rebuilt per batch (ROADMAP "sharded
/// schedulers"). Contexts return to the pool on completion, so back-to-back
/// sweeps over the same topology start warm too.
///
/// The aggregate is bit-identical to run_static_experiment /
/// run_static_experiment_parallel with a MaxFlowScheduler(kDinic) factory
/// for every thread count: trial instances depend only on the per-batch RNG
/// stream, the warm solve's *value* provably equals the cold solve's
/// regardless of residual history, and with priorities disabled no other
/// field depends on which assignment realizes that value. Hence the
/// homogeneity requirements: throws unless `config.resource_types == 1`
/// and `config.priority_levels == 0` (Transformation 1's domain).
/// `obs`: optional instrumentation. Workers bind their schedulers to the
/// (thread-safe, sharded) registry, pool traffic is counted under
/// "core.pool.*", and each worker's per-batch wall time feeds a private
/// sim::RunningStat merged after the join (Chan's formula) and published as
/// "static_pooled.batch_us.{mean,stddev,count}" gauges. Observation-only:
/// the aggregate result stays bit-identical with or without a handle, for
/// every thread count. The pool's binding is detached before returning.
StaticExperimentResult run_static_experiment_pooled(
    const topo::Network& net, core::WarmContextPool& pool,
    const StaticExperimentConfig& config, int threads,
    bool canonical = false,
    bool verify = core::WarmMaxFlowScheduler::kVerifyDefault,
    const obs::Handle& obs = {});

}  // namespace rsin::sim
