// Closed-form blocking model for delta/banyan networks (Patel's analysis,
// reference [37] of the paper).
//
// For an m-stage network of a x b crossbars under *independent uniform*
// random routing, the probability that an output link of stage i carries a
// request follows the recurrence
//
//     p_{i+1} = 1 - (1 - p_i * a / b)^a        (2x2: 1 - (1 - p_i/2)^2)
//
// with p_0 the per-input offered load. The acceptance ratio p_m / p_0 is
// the throughput of conventional random address mapping when destination
// collisions are possible — the regime the RSIN's distributed scheduling is
// designed to beat. bench_analytic_model compares this curve against the
// measured address-mapped baseline with independent destinations.
#pragma once

namespace rsin::sim {

/// One step of the recurrence for an a x b crossbar stage.
double delta_stage_rate(double input_rate, int fan_in, int fan_out);

/// Probability an output of the final stage carries a request, for an
/// m-stage network of 2x2 switches with per-input offered load p0 in [0,1].
double banyan_output_rate(double input_rate, int stages);

/// Expected fraction of offered requests accepted: p_m / p_0 (1 when p0=0).
double banyan_acceptance(double input_rate, int stages);

/// 1 - acceptance: the analytic blocking probability of random routing.
double banyan_blocking(double input_rate, int stages);

}  // namespace rsin::sim
