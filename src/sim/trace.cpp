#include "sim/trace.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "util/error.hpp"

namespace rsin::sim {
namespace {

// Doubles are written with std::to_chars (shortest round-trip form) and read
// back with std::from_chars, so save -> load -> replay reproduces the exact
// bit pattern of every recorded time. Formatted iostream output would lose
// the low bits and break bitwise replay.
std::string fmt(double value) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  RSIN_ENSURE(ec == std::errc{}, "double formatting failed");
  return std::string(buf, ptr);
}

double parse_double(const std::string& token, const char* what) {
  double value = 0.0;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  RSIN_REQUIRE(ec == std::errc{} && ptr == last,
               std::string("trace: bad double for ") + what + ": " + token);
  return value;
}

std::int64_t parse_int(const std::string& token, const char* what) {
  std::int64_t value = 0;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  RSIN_REQUIRE(ec == std::errc{} && ptr == last,
               std::string("trace: bad integer for ") + what + ": " + token);
  return value;
}

std::uint64_t parse_uint(const std::string& token, const char* what) {
  std::uint64_t value = 0;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  RSIN_REQUIRE(ec == std::errc{} && ptr == last,
               std::string("trace: bad unsigned for ") + what + ": " + token);
  return value;
}

void save_config(std::ostream& out, const SystemConfig& c) {
  out << "cfg arrival_rate " << fmt(c.arrival_rate) << '\n'
      << "cfg transmission_time " << fmt(c.transmission_time) << '\n'
      << "cfg mean_service_time " << fmt(c.mean_service_time) << '\n'
      << "cfg cycle_interval " << fmt(c.cycle_interval) << '\n'
      << "cfg warmup_time " << fmt(c.warmup_time) << '\n'
      << "cfg measure_time " << fmt(c.measure_time) << '\n'
      << "cfg resource_types " << c.resource_types << '\n'
      << "cfg priority_levels " << c.priority_levels << '\n'
      << "cfg min_pending_requests " << c.min_pending_requests << '\n'
      << "cfg max_batch_wait " << fmt(c.max_batch_wait) << '\n'
      << "cfg seed " << c.seed << '\n'
      << "cfg retry_backoff_base " << fmt(c.retry_backoff_base) << '\n'
      << "cfg retry_backoff_max " << fmt(c.retry_backoff_max) << '\n'
      << "cfg drop_timeout " << fmt(c.drop_timeout) << '\n'
      << "cfg max_queue " << c.max_queue << '\n'
      << "cfg shed_policy " << static_cast<int>(c.shed_policy) << '\n'
      << "cfg overload_on " << fmt(c.overload_on) << '\n'
      << "cfg overload_off_fraction " << fmt(c.overload_off_fraction) << '\n'
      << "cfg overload_window " << fmt(c.overload_window) << '\n'
      << "cfg overload_dwell_cycles " << c.overload_dwell_cycles << '\n'
      << "cfg burst_multiplier " << fmt(c.burst_multiplier) << '\n'
      << "cfg burst_start " << fmt(c.burst_start) << '\n'
      << "cfg burst_duration " << fmt(c.burst_duration) << '\n'
      << "cfg validate_invariants " << (c.validate_invariants ? 1 : 0) << '\n'
      << "cfg fault_link_mttf " << fmt(c.faults.link_mttf) << '\n'
      << "cfg fault_link_mttr " << fmt(c.faults.link_mttr) << '\n'
      << "cfg fault_switch_mttf " << fmt(c.faults.switch_mttf) << '\n'
      << "cfg fault_switch_mttr " << fmt(c.faults.switch_mttr) << '\n'
      << "cfg fault_horizon " << fmt(c.faults.horizon) << '\n'
      << "cfg fault_transient " << (c.faults.transient ? 1 : 0) << '\n'
      << "cfg fault_fabric_links_only " << (c.faults.fabric_links_only ? 1 : 0)
      << '\n'
      << "cfg fault_seed " << c.faults.seed << '\n';
}

void apply_config_field(SystemConfig& c, const std::string& key,
                        const std::string& value) {
  const auto d = [&] { return parse_double(value, key.c_str()); };
  const auto i = [&] {
    return static_cast<std::int32_t>(parse_int(value, key.c_str()));
  };
  const auto u = [&] { return parse_uint(value, key.c_str()); };
  const auto b = [&] { return parse_int(value, key.c_str()) != 0; };
  if (key == "arrival_rate") {
    c.arrival_rate = d();
  } else if (key == "transmission_time") {
    c.transmission_time = d();
  } else if (key == "mean_service_time") {
    c.mean_service_time = d();
  } else if (key == "cycle_interval") {
    c.cycle_interval = d();
  } else if (key == "warmup_time") {
    c.warmup_time = d();
  } else if (key == "measure_time") {
    c.measure_time = d();
  } else if (key == "resource_types") {
    c.resource_types = i();
  } else if (key == "priority_levels") {
    c.priority_levels = i();
  } else if (key == "min_pending_requests") {
    c.min_pending_requests = i();
  } else if (key == "max_batch_wait") {
    c.max_batch_wait = d();
  } else if (key == "seed") {
    c.seed = u();
  } else if (key == "retry_backoff_base") {
    c.retry_backoff_base = d();
  } else if (key == "retry_backoff_max") {
    c.retry_backoff_max = d();
  } else if (key == "drop_timeout") {
    c.drop_timeout = d();
  } else if (key == "max_queue") {
    c.max_queue = i();
  } else if (key == "shed_policy") {
    const std::int64_t raw = parse_int(value, key.c_str());
    RSIN_REQUIRE(raw >= 0 && raw <= 1, "trace: bad shed_policy: " + value);
    c.shed_policy = static_cast<ShedPolicy>(raw);
  } else if (key == "overload_on") {
    c.overload_on = d();
  } else if (key == "overload_off_fraction") {
    c.overload_off_fraction = d();
  } else if (key == "overload_window") {
    c.overload_window = d();
  } else if (key == "overload_dwell_cycles") {
    c.overload_dwell_cycles = i();
  } else if (key == "burst_multiplier") {
    c.burst_multiplier = d();
  } else if (key == "burst_start") {
    c.burst_start = d();
  } else if (key == "burst_duration") {
    c.burst_duration = d();
  } else if (key == "validate_invariants") {
    c.validate_invariants = b();
  } else if (key == "fault_link_mttf") {
    c.faults.link_mttf = d();
  } else if (key == "fault_link_mttr") {
    c.faults.link_mttr = d();
  } else if (key == "fault_switch_mttf") {
    c.faults.switch_mttf = d();
  } else if (key == "fault_switch_mttr") {
    c.faults.switch_mttr = d();
  } else if (key == "fault_horizon") {
    c.faults.horizon = d();
  } else if (key == "fault_transient") {
    c.faults.transient = b();
  } else if (key == "fault_fabric_links_only") {
    c.faults.fabric_links_only = b();
  } else if (key == "fault_seed") {
    c.faults.seed = u();
  } else {
    RSIN_REQUIRE(false, "trace: unknown config key: " + key);
  }
}

}  // namespace

TraceParseError::TraceParseError(std::size_t line, const std::string& reason)
    : std::invalid_argument("trace: parse error at line " +
                            std::to_string(line) + ": " + reason),
      line_(line),
      reason_(reason) {}

void Trace::save(std::ostream& out) const {
  out << "RSINTRACE " << kVersion << '\n';
  save_config(out, config);
  out << "shape " << shape_hash << '\n';
  for (const TraceArrival& a : arrivals) {
    out << "A " << fmt(a.time) << ' ' << a.processor << ' ' << a.type << ' '
        << a.priority << '\n';
  }
  for (const fault::FaultEvent& f : faults) {
    out << "F " << fmt(f.time) << ' ' << static_cast<int>(f.kind) << ' '
        << f.element << '\n';
  }
  for (const TraceCycle& cycle : cycles) {
    out << "C " << fmt(cycle.time) << ' ' << static_cast<int>(cycle.outcome)
        << ' ' << cycle.assignments.size() << '\n';
    for (const TraceAssignment& asg : cycle.assignments) {
      out << "G " << asg.circuit.processor << ' ' << asg.circuit.resource
          << ' ' << fmt(asg.service_time) << ' ' << asg.circuit.links.size();
      for (const topo::LinkId id : asg.circuit.links) out << ' ' << id;
      out << '\n';
    }
  }
  if (crashed) {
    out << "X " << fmt(crash_time) << ' ' << crash_reason << '\n';
  }
  for (const auto& [key, value] : summary) {
    out << "M " << key << ' ' << value << '\n';
  }
  out << "END\n";
  RSIN_ENSURE(static_cast<bool>(out), "trace: write failed");
}

void Trace::save_file(const std::string& path) const {
  std::ofstream out(path);
  RSIN_REQUIRE(out.is_open(), "trace: cannot open for writing: " + path);
  save(out);
  out.flush();
  RSIN_REQUIRE(static_cast<bool>(out), "trace: write failed: " + path);
}

namespace {

/// Body of Trace::load; `line_no` is kept current so any parse failure —
/// including RSIN_REQUIRE failures in nested field parsers — can be rewrapped
/// with the offending line attached.
Trace load_impl(std::istream& in, std::size_t& line_no) {
  Trace trace;
  std::string line;

  if (!std::getline(in, line)) {
    throw TraceParseError(1, "empty stream (no RSINTRACE header)");
  }
  line_no = 1;
  {
    std::istringstream header(line);
    std::string magic;
    std::int32_t version = 0;
    header >> magic >> version;
    if (magic != "RSINTRACE") {
      throw TraceParseError(line_no, "bad magic (expected RSINTRACE): " +
                                         line);
    }
    if (version != Trace::kVersion) {
      throw TraceParseError(
          line_no, "unsupported trace version " + std::to_string(version) +
                       " (this build reads version " +
                       std::to_string(Trace::kVersion) +
                       "); re-record the trace with the current binary");
    }
  }

  bool saw_end = false;
  TraceCycle* open_cycle = nullptr;
  std::size_t expected_assignments = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (open_cycle != nullptr &&
        open_cycle->assignments.size() < expected_assignments) {
      RSIN_REQUIRE(tag == "G",
                   "trace: cycle truncated (expected assignment): " + line);
    }
    if (tag == "cfg") {
      std::string key;
      std::string value;
      fields >> key >> value;
      RSIN_REQUIRE(static_cast<bool>(fields), "trace: bad cfg line: " + line);
      apply_config_field(trace.config, key, value);
    } else if (tag == "shape") {
      std::string value;
      fields >> value;
      RSIN_REQUIRE(static_cast<bool>(fields),
                   "trace: bad shape line: " + line);
      trace.shape_hash = parse_uint(value, "shape");
    } else if (tag == "A") {
      std::string time;
      TraceArrival a;
      fields >> time >> a.processor >> a.type >> a.priority;
      RSIN_REQUIRE(static_cast<bool>(fields),
                   "trace: bad arrival line: " + line);
      a.time = parse_double(time, "arrival time");
      trace.arrivals.push_back(a);
    } else if (tag == "F") {
      std::string time;
      int kind = 0;
      fault::FaultEvent event;
      fields >> time >> kind >> event.element;
      RSIN_REQUIRE(static_cast<bool>(fields),
                   "trace: bad fault line: " + line);
      RSIN_REQUIRE(kind >= 0 && kind <= 3, "trace: bad fault kind: " + line);
      event.time = parse_double(time, "fault time");
      event.kind = static_cast<fault::FaultKind>(kind);
      trace.faults.push_back(event);
    } else if (tag == "C") {
      std::string time;
      int outcome = 0;
      std::size_t count = 0;
      fields >> time >> outcome >> count;
      RSIN_REQUIRE(static_cast<bool>(fields),
                   "trace: bad cycle line: " + line);
      RSIN_REQUIRE(outcome >= 0 &&
                       outcome <= static_cast<int>(
                                      core::ScheduleOutcome::kDeferred),
                   "trace: bad cycle outcome: " + line);
      TraceCycle cycle;
      cycle.time = parse_double(time, "cycle time");
      cycle.outcome = static_cast<core::ScheduleOutcome>(outcome);
      cycle.assignments.reserve(count);
      trace.cycles.push_back(std::move(cycle));
      open_cycle = &trace.cycles.back();
      expected_assignments = count;
    } else if (tag == "G") {
      RSIN_REQUIRE(open_cycle != nullptr &&
                       open_cycle->assignments.size() < expected_assignments,
                   "trace: assignment outside a cycle: " + line);
      std::string service;
      std::size_t n_links = 0;
      TraceAssignment asg;
      fields >> asg.circuit.processor >> asg.circuit.resource >> service >>
          n_links;
      RSIN_REQUIRE(static_cast<bool>(fields),
                   "trace: bad assignment line: " + line);
      asg.service_time = parse_double(service, "service time");
      asg.circuit.links.reserve(n_links);
      for (std::size_t i = 0; i < n_links; ++i) {
        topo::LinkId id = topo::kInvalidId;
        fields >> id;
        RSIN_REQUIRE(static_cast<bool>(fields),
                     "trace: assignment link list truncated: " + line);
        asg.circuit.links.push_back(id);
      }
      open_cycle->assignments.push_back(std::move(asg));
    } else if (tag == "X") {
      std::string time;
      fields >> time;
      RSIN_REQUIRE(static_cast<bool>(fields),
                   "trace: bad crash line: " + line);
      trace.crashed = true;
      trace.crash_time = parse_double(time, "crash time");
      std::getline(fields, trace.crash_reason);
      if (!trace.crash_reason.empty() && trace.crash_reason.front() == ' ') {
        trace.crash_reason.erase(0, 1);
      }
    } else if (tag == "M") {
      std::string key;
      fields >> key;
      RSIN_REQUIRE(static_cast<bool>(fields),
                   "trace: bad summary line: " + line);
      std::string value;
      std::getline(fields, value);
      if (!value.empty() && value.front() == ' ') value.erase(0, 1);
      trace.summary.emplace_back(std::move(key), std::move(value));
    } else if (tag == "END") {
      saw_end = true;
      break;
    } else {
      RSIN_REQUIRE(false, "trace: unknown record: " + line);
    }
  }
  if (!saw_end) {
    throw TraceParseError(line_no + 1,
                          "missing END marker (file truncated after " +
                              std::to_string(line_no) + " lines)");
  }
  if (open_cycle != nullptr &&
      open_cycle->assignments.size() != expected_assignments) {
    throw TraceParseError(
        line_no, "last cycle truncated: expected " +
                     std::to_string(expected_assignments) +
                     " assignments, found " +
                     std::to_string(open_cycle->assignments.size()));
  }
  return trace;
}

}  // namespace

Trace Trace::load(std::istream& in) {
  std::size_t line_no = 0;
  try {
    return load_impl(in, line_no);
  } catch (const TraceParseError&) {
    throw;
  } catch (const std::invalid_argument& error) {
    // Field-level failures (bad double, unknown key, truncated record) from
    // the nested parsers; attach the line so a corrupt file is diagnosable
    // without a hex dump. No partial Trace ever escapes.
    throw TraceParseError(line_no, error.what());
  }
}

Trace Trace::load_file(const std::string& path) {
  std::ifstream in(path);
  RSIN_REQUIRE(in.is_open(), "trace: cannot open for reading: " + path);
  try {
    return load(in);
  } catch (const TraceParseError& error) {
    throw TraceParseError(error.line(), path + ": " + error.reason());
  }
}

void TraceRecorder::begin(const SystemConfig& config,
                          std::uint64_t shape_hash) {
  trace_ = Trace{};
  trace_.config = config;
  // A replayed run must not re-arm the crash dump: the bundle is the dump.
  trace_.config.trace_on_violation.clear();
  // Observability handles are runtime-only pointers; a recorded config must
  // never carry them (they would dangle in any later replay).
  trace_.config.obs = {};
  trace_.shape_hash = shape_hash;
  pending_ = TraceCycle{};
  cycle_open_ = false;
}

void TraceRecorder::arrival(double time, topo::ProcessorId processor,
                            std::int32_t type, std::int32_t priority) {
  trace_.arrivals.push_back(TraceArrival{time, processor, type, priority});
}

void TraceRecorder::fault(const fault::FaultEvent& event) {
  trace_.faults.push_back(event);
}

void TraceRecorder::begin_cycle(double time, core::ScheduleOutcome outcome) {
  pending_ = TraceCycle{};
  pending_.time = time;
  pending_.outcome = outcome;
  cycle_open_ = true;
}

void TraceRecorder::assignment(const topo::Circuit& circuit,
                               double service_time) {
  RSIN_ENSURE(cycle_open_, "TraceRecorder: assignment outside a cycle");
  pending_.assignments.push_back(TraceAssignment{circuit, service_time});
}

void TraceRecorder::commit_cycle() {
  RSIN_ENSURE(cycle_open_, "TraceRecorder: no cycle to commit");
  trace_.cycles.push_back(std::move(pending_));
  pending_ = TraceCycle{};
  cycle_open_ = false;
}

void TraceRecorder::crash(double time, const std::string& reason) {
  // Discard any half-recorded cycle: replay re-raises at crash_time instead.
  pending_ = TraceCycle{};
  cycle_open_ = false;
  trace_.crashed = true;
  trace_.crash_time = time;
  // Keep the reason single-line; the format is line-oriented.
  std::string clean = reason;
  for (char& ch : clean) {
    if (ch == '\n' || ch == '\r') ch = ' ';
  }
  trace_.crash_reason = clean;
}

void TraceRecorder::note_metric(const std::string& key,
                                const std::string& value) {
  trace_.summary.emplace_back(key, value);
}

}  // namespace rsin::sim
