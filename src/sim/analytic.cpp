#include "sim/analytic.hpp"

#include <cmath>

#include "util/error.hpp"

namespace rsin::sim {

double delta_stage_rate(double input_rate, int fan_in, int fan_out) {
  RSIN_REQUIRE(input_rate >= 0.0 && input_rate <= 1.0,
               "input rate must be a probability");
  RSIN_REQUIRE(fan_in > 0 && fan_out > 0, "crossbar dimensions are positive");
  // Each of the fan_out outputs receives a given input's request with
  // probability input_rate / fan_out; it is busy unless all fan_in inputs
  // miss it.
  return 1.0 - std::pow(1.0 - input_rate / static_cast<double>(fan_out),
                        static_cast<double>(fan_in));
}

double banyan_output_rate(double input_rate, int stages) {
  RSIN_REQUIRE(stages >= 0, "stage count must be non-negative");
  double rate = input_rate;
  for (int s = 0; s < stages; ++s) rate = delta_stage_rate(rate, 2, 2);
  return rate;
}

double banyan_acceptance(double input_rate, int stages) {
  if (input_rate <= 0.0) return 1.0;
  return banyan_output_rate(input_rate, stages) / input_rate;
}

double banyan_blocking(double input_rate, int stages) {
  return 1.0 - banyan_acceptance(input_rate, stages);
}

}  // namespace rsin::sim
