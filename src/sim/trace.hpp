// Deterministic record/replay traces for the system simulation.
//
// A Trace captures every external input of one simulate_system run — the
// arrival stream (with types/priorities), the injector's fault events, and
// the per-cycle scheduler decisions (assigned circuits plus the service
// times drawn for them) — together with the full SystemConfig and a hash of
// the network shape. replay_system() re-executes the run from the trace
// alone: no scheduler, no RNG draws after initialization, and bitwise
// identical SystemMetrics (the DES between those inputs is deterministic).
//
// Traces are the repro-bundle currency of the robustness runtime: when an
// invariant trips mid-run, the recorder dumps everything up to the crash
// (`crashed` / `crash_reason`), and the chaos soak harness shrinks and saves
// failing traces for offline replay. The on-disk format is a versioned,
// line-oriented text file; doubles are serialized via std::to_chars
// (shortest round-trip), so a reloaded trace replays exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/scheduler.hpp"
#include "fault/fault_injector.hpp"
#include "sim/system_sim.hpp"
#include "topo/network.hpp"

namespace rsin::sim {

/// Structured failure from Trace::load / Trace::load_file: a truncated,
/// corrupt, or version-mismatched trace throws this instead of returning
/// partial state. `line()` is the 1-based line in the stream where parsing
/// stopped and `reason()` the specific complaint; what() carries both.
/// Derives from std::invalid_argument so pre-existing catch sites keep
/// working.
class TraceParseError : public std::invalid_argument {
 public:
  TraceParseError(std::size_t line, const std::string& reason);

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] const std::string& reason() const { return reason_; }

 private:
  std::size_t line_;
  std::string reason_;
};

/// One recorded task arrival (pre-admission: shed tasks are recorded too,
/// since admission control is deterministic and re-runs during replay).
struct TraceArrival {
  double time = 0.0;
  topo::ProcessorId processor = topo::kInvalidId;
  std::int32_t type = 0;
  std::int32_t priority = 0;
};

/// One assignment of a scheduling cycle: the circuit the scheduler granted
/// plus the service time the simulator drew for the task.
struct TraceAssignment {
  topo::Circuit circuit;
  double service_time = 0.0;
};

/// One scheduling cycle in which the scheduler was invoked.
struct TraceCycle {
  double time = 0.0;
  core::ScheduleOutcome outcome = core::ScheduleOutcome::kOptimal;
  std::vector<TraceAssignment> assignments;
};

/// A complete recorded run (or the prefix of one, up to a crash).
struct Trace {
  static constexpr std::int32_t kVersion = 1;

  SystemConfig config;
  std::uint64_t shape_hash = 0;  ///< topo::shape_hash of the simulated net.
  std::vector<TraceArrival> arrivals;
  std::vector<fault::FaultEvent> faults;
  std::vector<TraceCycle> cycles;

  /// Set when the recorded run aborted on an invariant violation; the trace
  /// then holds the prefix up to `crash_time` and replay stops there.
  bool crashed = false;
  double crash_time = 0.0;
  std::string crash_reason;

  /// Informational summary metrics of the recorded run (key, value); not
  /// consumed by replay — kept so a dumped bundle is self-describing.
  std::vector<std::pair<std::string, std::string>> summary;

  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  [[nodiscard]] static Trace load(std::istream& in);
  [[nodiscard]] static Trace load_file(const std::string& path);
};

/// Incremental builder used by simulate_system while recording. Cycle
/// records are buffered and only committed once the cycle completes, so a
/// crash mid-cycle never leaves a half-written cycle in the trace.
class TraceRecorder {
 public:
  void begin(const SystemConfig& config, std::uint64_t shape_hash);
  void arrival(double time, topo::ProcessorId processor, std::int32_t type,
               std::int32_t priority);
  void fault(const fault::FaultEvent& event);
  void begin_cycle(double time, core::ScheduleOutcome outcome);
  void assignment(const topo::Circuit& circuit, double service_time);
  void commit_cycle();
  void crash(double time, const std::string& reason);
  void note_metric(const std::string& key, const std::string& value);

  [[nodiscard]] const Trace& trace() const { return trace_; }
  [[nodiscard]] Trace take() { return std::move(trace_); }

 private:
  Trace trace_;
  TraceCycle pending_;
  bool cycle_open_ = false;
};

}  // namespace rsin::sim
