// A minimal discrete-event simulation engine.
//
// The paper's quantitative claims (blocking probability around 2% for the
// optimal scheduler vs ~20% for heuristic routing) come from the authors'
// event simulations of an MRSIN under stochastic load; this engine is the
// substrate for our reproduction of those experiments (sim/system_sim.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/error.hpp"

namespace rsin::sim {

/// Time-ordered event executor. Events scheduled for the same instant run
/// in scheduling order (stable tie-break by sequence number).
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `time` (>= now()).
  void schedule(double time, Action action) {
    RSIN_REQUIRE(time >= now_, "cannot schedule an event in the past");
    queue_.push(Event{time, next_sequence_++, std::move(action)});
  }

  /// Schedules `action` `delay` time units from now.
  void schedule_in(double delay, Action action) {
    schedule(now_ + delay, std::move(action));
  }

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::int64_t executed() const { return executed_; }

  /// Executes the earliest event; returns false when the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    // Moving out of the priority queue requires a const_cast because
    // std::priority_queue only exposes const top(); the pop immediately
    // afterwards makes this safe.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++executed_;
    event.action();
    return true;
  }

  /// Runs events until the clock passes `end_time` or the queue drains.
  void run_until(double end_time) {
    while (!queue_.empty() && queue_.top().time <= end_time) step();
    now_ = std::max(now_, end_time);
  }

 private:
  struct Event {
    double time;
    std::uint64_t sequence;
    Action action;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return sequence > other.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::int64_t executed_ = 0;
};

}  // namespace rsin::sim
