#include "fed/admission.hpp"

#include <algorithm>
#include <numeric>

#include "flow/max_flow.hpp"
#include "flow/network.hpp"

namespace rsin::fed {

UplinkGraph::UplinkGraph(std::int32_t clusters, std::int64_t uniform_capacity)
    : clusters_(clusters),
      capacity_(static_cast<std::size_t>(clusters) *
                    static_cast<std::size_t>(clusters),
                0),
      partitioned_(static_cast<std::size_t>(clusters), 0) {
  RSIN_REQUIRE(clusters >= 1, "federation needs at least one cluster");
  RSIN_REQUIRE(uniform_capacity >= 0, "uplink capacity must be >= 0");
  for (std::int32_t i = 0; i < clusters_; ++i) {
    for (std::int32_t j = 0; j < clusters_; ++j) {
      if (i != j) capacity_[index(i, j)] = uniform_capacity;
    }
  }
}

void UplinkGraph::set_capacity(std::int32_t from, std::int32_t to,
                               std::int64_t cap) {
  RSIN_REQUIRE(from != to, "uplink graph has no self-links");
  RSIN_REQUIRE(cap >= 0, "uplink capacity must be >= 0");
  capacity_[index(from, to)] = cap;
}

std::int64_t UplinkGraph::capacity(std::int32_t from, std::int32_t to) const {
  const std::size_t at = index(from, to);
  if (from == to) return 0;
  if (partitioned_[static_cast<std::size_t>(from)] != 0 ||
      partitioned_[static_cast<std::size_t>(to)] != 0) {
    return 0;
  }
  return capacity_[at];
}

void UplinkGraph::partition(std::int32_t cluster) {
  RSIN_REQUIRE(cluster >= 0 && cluster < clusters_,
               "uplink cluster id out of range");
  partitioned_[static_cast<std::size_t>(cluster)] = 1;
}

void UplinkGraph::heal(std::int32_t cluster) {
  RSIN_REQUIRE(cluster >= 0 && cluster < clusters_,
               "uplink cluster id out of range");
  partitioned_[static_cast<std::size_t>(cluster)] = 0;
}

bool UplinkGraph::partitioned(std::int32_t cluster) const {
  RSIN_REQUIRE(cluster >= 0 && cluster < clusters_,
               "uplink cluster id out of range");
  return partitioned_[static_cast<std::size_t>(cluster)] != 0;
}

namespace {

void check_instance(const UplinkGraph& uplinks,
                    const std::vector<std::int64_t>& demand,
                    const std::vector<std::int64_t>& slots) {
  const auto k = static_cast<std::size_t>(uplinks.clusters());
  RSIN_REQUIRE(demand.size() == k && slots.size() == k,
               "admission instance must have one demand and one slot entry "
               "per cluster");
  for (std::size_t i = 0; i < k; ++i) {
    RSIN_REQUIRE(demand[i] >= 0 && slots[i] >= 0,
                 "admission demands and slots must be >= 0");
  }
}

}  // namespace

AdmissionResult admit_coflow(const UplinkGraph& uplinks,
                             const std::vector<std::int64_t>& demand,
                             const std::vector<std::int64_t>& slots) {
  check_instance(uplinks, demand, slots);
  const std::int32_t k = uplinks.clusters();

  AdmissionResult result;
  result.demand = std::accumulate(demand.begin(), demand.end(),
                                  static_cast<std::int64_t>(0));
  if (result.demand == 0) return result;

  // Each source cluster's spill batch is one coflow. Its bottleneck
  // completion estimate is demand / (aggregate bandwidth it could use right
  // now); serving shortest-bottleneck coflows first is the 2604.22146-style
  // ordering that keeps small spill batches from starving behind bulk ones.
  struct Coflow {
    std::int32_t src;
    std::int64_t demand;
    std::int64_t bandwidth;  // sum_j min(cap(src,j), slots[j])
  };
  std::vector<Coflow> order;
  order.reserve(static_cast<std::size_t>(k));
  for (std::int32_t i = 0; i < k; ++i) {
    const std::int64_t d = demand[static_cast<std::size_t>(i)];
    if (d == 0) continue;
    std::int64_t bw = 0;
    for (std::int32_t j = 0; j < k; ++j) {
      bw += std::min(uplinks.capacity(i, j), slots[static_cast<std::size_t>(j)]);
    }
    order.push_back(Coflow{i, d, bw});
  }
  // demand/bandwidth ascending without division: d1*b2 < d2*b1. Zero
  // bandwidth sorts last (it cannot admit anything this cycle anyway).
  std::sort(order.begin(), order.end(), [](const Coflow& a, const Coflow& b) {
    if (a.bandwidth == 0 || b.bandwidth == 0) {
      if ((a.bandwidth == 0) != (b.bandwidth == 0)) return b.bandwidth == 0;
      return a.src < b.src;
    }
    const auto lhs = a.demand * b.bandwidth;
    const auto rhs = b.demand * a.bandwidth;
    if (lhs != rhs) return lhs < rhs;
    return a.src < b.src;
  });

  std::vector<std::int64_t> free_slots = slots;
  for (const Coflow& coflow : order) {
    std::int64_t remaining = coflow.demand;
    for (std::int32_t j = 0; j < k && remaining > 0; ++j) {
      const std::int64_t grant =
          std::min({remaining, uplinks.capacity(coflow.src, j),
                    free_slots[static_cast<std::size_t>(j)]});
      if (grant <= 0) continue;
      free_slots[static_cast<std::size_t>(j)] -= grant;
      remaining -= grant;
      result.admitted += grant;
      result.grants.push_back(SpillGrant{coflow.src, j, grant});
    }
  }
  // Maximality: a source only leaves demand behind when, for every
  // destination, either the pair's uplink or the destination's slots were
  // exhausted at its turn — and slots only shrink afterwards, so no later
  // state could admit more on that pair. Maximal => >= 1/2 of admit_exact.
  return result;
}

std::int64_t admit_exact(const UplinkGraph& uplinks,
                         const std::vector<std::int64_t>& demand,
                         const std::vector<std::int64_t>& slots) {
  check_instance(uplinks, demand, slots);
  const std::int32_t k = uplinks.clusters();

  flow::FlowNetwork net;
  const flow::NodeId source = net.add_node("s");
  const flow::NodeId sink = net.add_node("t");
  std::vector<flow::NodeId> src_nodes;
  std::vector<flow::NodeId> dst_nodes;
  for (std::int32_t i = 0; i < k; ++i) {
    src_nodes.push_back(net.add_node("src" + std::to_string(i)));
    dst_nodes.push_back(net.add_node("dst" + std::to_string(i)));
  }
  for (std::int32_t i = 0; i < k; ++i) {
    const auto at = static_cast<std::size_t>(i);
    if (demand[at] > 0) net.add_arc(source, src_nodes[at], demand[at]);
    if (slots[at] > 0) net.add_arc(dst_nodes[at], sink, slots[at]);
    for (std::int32_t j = 0; j < k; ++j) {
      const std::int64_t cap = uplinks.capacity(i, j);
      if (cap > 0) {
        net.add_arc(src_nodes[at], dst_nodes[static_cast<std::size_t>(j)], cap);
      }
    }
  }
  net.set_source(source);
  net.set_sink(sink);
  return flow::max_flow(net, flow::MaxFlowAlgorithm::kDinic).value;
}

}  // namespace rsin::fed
