// fed::Federation — the two-level cluster-of-fabrics coordinator.
//
// A Federation owns K independent Clusters and the inter-cluster uplink
// mesh. Each request is routed to its tenant's *home* cluster, where the
// cluster's own (optimal, warm-started) scheduler serves it. When a home
// cluster falls behind — overload, degradation, partition, or outright
// loss — queued requests become *spill candidates*, and the coflow-style
// approximate admission scheduler (fed/admission.hpp) decides which of them
// cross which uplinks this cycle. Admitted spills travel one cycle on the
// uplink and enter the sibling's queue the next cycle, which keeps every
// cluster's schedule a pure function of its own input sequence: the
// federation can record those inputs and replay any cluster standalone,
// bitwise (the E25 differential gate).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fed/admission.hpp"
#include "fed/cluster.hpp"
#include "obs/metrics.hpp"

namespace rsin::fed {

struct FederationConfig {
  std::int32_t clusters = 4;  ///< K.
  /// Template for every cluster; per-cluster name ("c<i>") and derived seed
  /// are stamped by the Federation.
  ClusterConfig cluster;
  /// Uplink capacity per ordered cluster pair per cycle (spilled requests).
  std::int64_t uplink_capacity = 2;
  /// Cross-cluster spill/retry on (off = K isolated fabrics).
  bool spill = true;
  /// Cycles a request must wait at home before it may spill. Requests of a
  /// dead cluster are always eligible.
  std::int64_t spill_after = 2;
  std::uint64_t seed = 1;

  void validate() const;
};

struct FederationStats {
  std::int64_t cycles = 0;
  std::int64_t submitted = 0;
  std::int64_t spill_demand = 0;   ///< Candidate-cycles offered to admission.
  std::int64_t spill_admitted = 0; ///< Grants admitted across uplinks.
  std::int64_t spill_moved = 0;    ///< Tasks actually re-homed.
};

class Federation {
 public:
  explicit Federation(const FederationConfig& config);

  [[nodiscard]] const FederationConfig& config() const { return config_; }
  [[nodiscard]] std::int32_t clusters() const {
    return static_cast<std::int32_t>(clusters_.size());
  }
  [[nodiscard]] Cluster& cluster(std::int32_t i);
  [[nodiscard]] const Cluster& cluster(std::int32_t i) const;
  [[nodiscard]] UplinkGraph& uplinks() { return uplinks_; }
  [[nodiscard]] const UplinkGraph& uplinks() const { return uplinks_; }
  [[nodiscard]] std::int64_t clock() const { return clock_; }
  [[nodiscard]] const FederationStats& stats() const { return stats_; }

  /// Tenant-affinity routing: tenant t homes at cluster t mod K.
  [[nodiscard]] std::int32_t home_of(std::int32_t tenant) const;

  /// Routes the task to its tenant's home cluster. `task.processor` is the
  /// processor index within that cluster. Returns false when the home
  /// cluster shed the task (queue bound).
  bool submit(Task task);

  /// One federation cycle: every cluster runs its own scheduling cycle
  /// (dead clusters just advance their clocks — sibling independence),
  /// then the spill phase offers laggard requests to the coflow admission
  /// scheduler and re-homes the admitted ones for next cycle.
  void run_cycle();

  /// Whole-cluster fault-domain controls (fabric loss vs uplink partition).
  void kill_cluster(std::int32_t i);
  void rejoin_cluster(std::int32_t i);
  void partition_cluster(std::int32_t i);
  void heal_cluster(std::int32_t i);

  /// Sum of per-cluster grants / horizon-bounded completions.
  [[nodiscard]] std::int64_t total_granted() const;
  [[nodiscard]] std::int64_t total_completed_by(std::int64_t horizon) const;

  /// Folds every registry into `out`: the federation's own instruments and
  /// each cluster's, twice — once unprefixed (aggregate: same-name
  /// instruments sum across clusters) and once under "fed.c<i>." (the
  /// per-cluster labeled view). One export serves both dashboards.
  void export_registry(obs::Registry& out) const;

  /// Forwards input recording to every cluster (differential replay).
  void record_inputs(bool on);

 private:
  FederationConfig config_;
  std::vector<std::unique_ptr<Cluster>> clusters_;
  UplinkGraph uplinks_;
  std::vector<std::int32_t> spill_cursor_;  // per-dst processor round-robin
  std::int64_t clock_ = 0;
  FederationStats stats_;
  obs::Registry registry_;  // federation-level instruments
  obs::Counter* obs_cycles_ = nullptr;
  obs::Counter* obs_demand_ = nullptr;
  obs::Counter* obs_admitted_ = nullptr;
  obs::Counter* obs_moved_ = nullptr;
};

}  // namespace rsin::fed
