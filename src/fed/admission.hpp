// Inter-cluster admission for the two-level RSIN federation.
//
// The paper's cost curves (Section IV) show a single flat Omega/Clos RSIN
// stops scaling long before datacenter sizes; the federation composes K
// independent cluster fabrics and moves only *spilled* requests between
// them. The inter-cluster layer is deliberately cheap: cluster fabrics run
// the optimal Dinic schedulers, while cross-cluster admission solves a tiny
// K-node transportation problem with a coflow-style greedy approximation
// (arXiv 2604.22146 flavor): each source cluster's spill batch is one
// coflow, coflows are served shortest-bottleneck-first, and each admission
// pass does O(K) work per coflow. The grant is maximal, so it is at least
// half the exact optimum (which admit_exact computes via Dinic on the same
// graph for gap measurement and CI gates).
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace rsin::fed {

/// Capacity of the inter-cluster uplink mesh: capacity(i, j) is the number
/// of spilled requests cluster i may hand to cluster j per scheduling cycle
/// (i != j; the diagonal is always zero — local traffic never touches an
/// uplink). Partition state is tracked separately from the configured
/// capacities so heal() restores exactly the pre-partition mesh.
class UplinkGraph {
 public:
  /// K clusters, every ordered pair starting at `uniform_capacity`.
  UplinkGraph(std::int32_t clusters, std::int64_t uniform_capacity);

  [[nodiscard]] std::int32_t clusters() const { return clusters_; }

  /// Overwrites one directed pair's capacity (non-negative, i != j).
  void set_capacity(std::int32_t from, std::int32_t to, std::int64_t cap);

  /// Effective capacity this cycle: 0 when i == j or either endpoint is
  /// partitioned, the configured capacity otherwise.
  [[nodiscard]] std::int64_t capacity(std::int32_t from, std::int32_t to) const;

  /// Severs every uplink touching `cluster` (both directions) until heal().
  /// The cluster's fabric keeps scheduling its local queue — partition is
  /// an inter-cluster event, not a cluster fault.
  void partition(std::int32_t cluster);
  void heal(std::int32_t cluster);
  [[nodiscard]] bool partitioned(std::int32_t cluster) const;

 private:
  [[nodiscard]] std::size_t index(std::int32_t from, std::int32_t to) const {
    RSIN_REQUIRE(from >= 0 && from < clusters_ && to >= 0 && to < clusters_,
                 "uplink cluster id out of range");
    return static_cast<std::size_t>(from) * static_cast<std::size_t>(clusters_) +
           static_cast<std::size_t>(to);
  }

  std::int32_t clusters_;
  std::vector<std::int64_t> capacity_;  // row-major K x K, diagonal 0
  std::vector<char> partitioned_;
};

/// One admitted (source, destination, count) spill grant.
struct SpillGrant {
  std::int32_t src = 0;
  std::int32_t dst = 0;
  std::int64_t count = 0;
};

struct AdmissionResult {
  /// Grants in admission order (deterministic: shortest-bottleneck source
  /// first, destination index ascending within a source).
  std::vector<SpillGrant> grants;
  std::int64_t admitted = 0;  ///< Sum of grant counts.
  std::int64_t demand = 0;    ///< Sum of the demand vector.
};

/// Coflow-style approximate admission. `demand[i]` is the number of spill
/// candidates homed at cluster i; `slots[j]` is the number of requests
/// cluster j can additionally serve this cycle. A feasible grant respects
/// g(i,j) <= capacity(i,j), sum_j g(i,j) <= demand[i], and
/// sum_i g(i,j) <= slots[j]; the returned grant is additionally *maximal*
/// (no single g(i,j) can be raised), which bounds it below by half the
/// admit_exact optimum. Deterministic: no randomness, ties broken by
/// cluster index.
[[nodiscard]] AdmissionResult admit_coflow(const UplinkGraph& uplinks,
                                           const std::vector<std::int64_t>& demand,
                                           const std::vector<std::int64_t>& slots);

/// Exact transportation optimum for the same instance (Dinic on the K-node
/// bipartite graph). Reference for tests / the E25 gap gate; the federation
/// hot path never calls it.
[[nodiscard]] std::int64_t admit_exact(const UplinkGraph& uplinks,
                                       const std::vector<std::int64_t>& demand,
                                       const std::vector<std::int64_t>& slots);

}  // namespace rsin::fed
