#include "fed/cluster.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "obs/obs.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rsin::fed {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

constexpr std::uint64_t fnv_mix(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xffULL;
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t sm = seed ^ salt;
  return util::splitmix64(sm);
}

std::uint64_t name_shard(const std::string& name) {
  std::uint64_t hash = kFnvOffset;
  for (const char ch : name) {
    hash = fnv_mix(hash, static_cast<unsigned char>(ch));
  }
  return hash;
}

constexpr std::int32_t kMaxLevel = 3;

}  // namespace

void ClusterConfig::validate() const {
  RSIN_REQUIRE(n >= 1, "cluster fabric needs at least one terminal pair");
  RSIN_REQUIRE(max_queue_per_processor >= 0,
               "max_queue_per_processor must be >= 0");
  RSIN_REQUIRE(overload_on >= 0.0 && overload_off >= 0.0,
               "overload thresholds must be >= 0");
  RSIN_REQUIRE(overload_on == 0.0 || overload_off == 0.0 ||
                   overload_off <= overload_on,
               "overload_off must not exceed overload_on");
  RSIN_REQUIRE(overload_dwell >= 0, "overload_dwell must be >= 0");
  RSIN_REQUIRE(overload_window >= 1.0, "overload_window must be >= 1 cycle");
  if (faults.link_mttf > 0.0 || faults.switch_mttf > 0.0) faults.validate();
}

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      net_(topo::make_named(config.topology, config.n)),
      pool_(1),
      matcher_(core::RandomizedMatchConfig{
          derive_seed(config.seed, 0x6665642d6d617463ULL),
          /*pick_and_compare=*/true}),
      schedule_hash_(kFnvOffset) {
  config_.validate();
  queues_.resize(static_cast<std::size_t>(net_.processor_count()));
  resource_free_at_.resize(static_cast<std::size_t>(net_.resource_count()), 0);
  resource_busy_.resize(static_cast<std::size_t>(net_.resource_count()), 0);
  if (config_.faults.link_mttf > 0.0 || config_.faults.switch_mttf > 0.0) {
    fault_schedule_ = fault::FaultInjector(config_.faults).make_schedule(net_);
  }
  pool_.bind_obs(obs::Handle{&registry_, nullptr});
  build_schedulers();
  obs_cycles_ = &registry_.counter("fed.cluster.cycles");
  obs_arrivals_ = &registry_.counter("fed.cluster.arrivals");
  obs_spill_in_ = &registry_.counter("fed.cluster.spill_in");
  obs_spill_out_ = &registry_.counter("fed.cluster.spill_out");
  obs_granted_ = &registry_.counter("fed.cluster.granted");
  obs_shed_ = &registry_.counter("fed.cluster.shed");
  obs_lost_ = &registry_.counter("fed.cluster.lost_inflight");
  obs_faults_ = &registry_.counter("fed.cluster.fault_events");
  obs_level_ = &registry_.gauge("fed.cluster.level");
  obs_wait_ = &registry_.histogram(
      "fed.cluster.wait_cycles",
      obs::Histogram::exponential_bounds(1.0, 2.0, 12));
}

void Cluster::build_schedulers() {
  // Strict verification off and canonical mode on: the warm scheduler's
  // assignments are bitwise the cold Dinic solver's, so a rejoined cluster
  // (whose warm residuals were discarded) schedules identically to one
  // that never failed — a precondition of the differential replay.
  constexpr bool kVerify = false;
  constexpr bool kCanonical = true;
  const std::size_t shard = static_cast<std::size_t>(name_shard(config_.name));
  if (config_.scheduler == "warm") {
    primary_ = std::make_unique<core::WarmMaxFlowScheduler>(
        pool_.checkout(shard, net_), kVerify, kCanonical);
  } else if (config_.scheduler == "breaker") {
    primary_ = std::make_unique<core::CircuitBreakerScheduler>(
        core::BreakerConfig{},
        std::make_unique<core::WarmMaxFlowScheduler>(pool_.checkout(shard, net_),
                                                     kVerify, kCanonical));
  } else {
    primary_ = core::make_named_scheduler(config_.scheduler, config_.seed);
  }
  const obs::Handle handle{&registry_, nullptr};
  primary_->bind_obs(handle);
  matcher_.bind_obs(handle);
  greedy_.bind_obs(handle);
  primary_->set_relaxed(level_ == 1);
}

core::Scheduler& Cluster::active_scheduler() {
  switch (level_) {
    case 0:
    case 1:
      return *primary_;
    case 2:
      return matcher_;
    default:
      return greedy_;
  }
}

void Cluster::record(ClusterInput input) {
  if (recording_) inputs_.push_back(std::move(input));
}

bool Cluster::submit(Task task) {
  task.arrival_cycle = clock_;
  {
    ClusterInput input;
    input.kind = ClusterInput::Kind::kSubmit;
    input.cycle = clock_;
    input.task = task;
    record(std::move(input));
  }
  auto& queue = queues_[static_cast<std::size_t>(task.processor)];
  if (config_.max_queue_per_processor > 0 &&
      static_cast<std::int32_t>(queue.size()) >=
          config_.max_queue_per_processor) {
    ++stats_.shed;
    obs_shed_->add(1);
    return false;
  }
  if (task.remote) {
    ++stats_.spill_in;
    obs_spill_in_->add(1);
  } else {
    ++stats_.arrivals;
    obs_arrivals_->add(1);
  }
  queue.push_back(task);
  ++queued_;
  return true;
}

void Cluster::apply_due_faults() {
  while (next_fault_ < fault_schedule_.size() &&
         fault_schedule_[next_fault_].time <= static_cast<double>(clock_)) {
    fault::apply_event(net_, fault_schedule_[next_fault_]);
    ++next_fault_;
    ++stats_.fault_events;
    obs_faults_->add(1);
  }
}

void Cluster::change_level(std::int32_t level) {
  level = std::clamp(level, 0, kMaxLevel);
  if (level == level_) return;
  level_ = level;
  last_level_change_ = clock_;
  ++stats_.level_changes;
  stats_.level = level_;
  stats_.max_level = std::max(stats_.max_level, level_);
  obs_level_->set(static_cast<double>(level_));
  primary_->set_relaxed(level_ == 1);
}

void Cluster::update_ladder() {
  if (config_.overload_on <= 0.0) return;
  const double alpha = 1.0 / config_.overload_window;
  ewma_ += alpha * (static_cast<double>(queued_) - ewma_);
  if (clock_ - last_level_change_ < config_.overload_dwell) return;
  const double off = config_.overload_off > 0.0 ? config_.overload_off
                                                : config_.overload_on / 2.0;
  if (ewma_ >= config_.overload_on && level_ < kMaxLevel) {
    change_level(level_ + 1);
  } else if (ewma_ <= off && level_ > 0) {
    change_level(level_ - 1);
  }
}

void Cluster::run_cycle() {
  apply_due_faults();
  // Service completions due this cycle free their resources.
  for (std::size_t r = 0; r < resource_busy_.size(); ++r) {
    if (resource_busy_[r] != 0 && resource_free_at_[r] <= clock_) {
      resource_busy_[r] = 0;
      ++stats_.completed;
    }
  }
  if (!alive_) {
    ++clock_;
    ++stats_.cycles;
    obs_cycles_->add(1);
    return;
  }
  update_ladder();

  core::Problem problem;
  problem.network = &net_;
  for (std::size_t p = 0; p < queues_.size(); ++p) {
    if (queues_[p].empty()) continue;
    problem.requests.push_back(
        core::Request{static_cast<topo::ProcessorId>(p), 0, 0});
  }
  for (std::size_t r = 0; r < resource_busy_.size(); ++r) {
    if (resource_busy_[r] == 0) {
      problem.free_resources.push_back(
          core::FreeResource{static_cast<topo::ResourceId>(r), 0, 0});
    }
  }
  if (!problem.requests.empty() && !problem.free_resources.empty()) {
    const core::ScheduleResult result = active_scheduler().schedule(problem);
    for (const core::Assignment& assignment : result.assignments) {
      const auto p = static_cast<std::size_t>(assignment.request.processor);
      const auto r = static_cast<std::size_t>(assignment.resource.resource);
      Task task = queues_[p].front();
      queues_[p].pop_front();
      --queued_;
      resource_busy_[r] = 1;
      resource_free_at_[r] = clock_ + task.service_cycles;
      completion_log_.push_back(clock_ + task.service_cycles);
      schedule_hash_ = fnv_mix(schedule_hash_,
                               static_cast<std::uint64_t>(clock_));
      schedule_hash_ = fnv_mix(
          schedule_hash_, static_cast<std::uint64_t>(assignment.request.processor));
      schedule_hash_ = fnv_mix(
          schedule_hash_,
          static_cast<std::uint64_t>(assignment.resource.resource));
      const double wait = static_cast<double>(clock_ - task.birth_cycle);
      stats_.wait_sum += wait;
      stats_.response_sum += wait + static_cast<double>(task.service_cycles);
      ++stats_.granted;
      obs_granted_->add(1);
      obs_wait_->observe(wait);
    }
  }
  ++clock_;
  ++stats_.cycles;
  obs_cycles_->add(1);
}

void Cluster::fail() {
  {
    ClusterInput input;
    input.kind = ClusterInput::Kind::kFail;
    input.cycle = clock_;
    record(std::move(input));
  }
  if (!alive_) return;
  alive_ = false;
  for (std::size_t r = 0; r < resource_busy_.size(); ++r) {
    if (resource_busy_[r] != 0) {
      resource_busy_[r] = 0;
      ++stats_.lost_inflight;
      obs_lost_->add(1);
    }
  }
}

void Cluster::rejoin() {
  {
    ClusterInput input;
    input.kind = ClusterInput::Kind::kRejoin;
    input.cycle = clock_;
    record(std::move(input));
  }
  if (alive_) return;
  alive_ = true;
  for (topo::LinkId id = 0; id < net_.link_count(); ++id) {
    if (net_.link_failed(id)) net_.repair_link(id);
  }
  for (topo::SwitchId sw = 0; sw < net_.switch_count(); ++sw) {
    if (net_.switch_failed(sw)) net_.repair_switch(sw);
  }
  // Stale warm residuals / retained matchings must not leak across the
  // outage: a rejoined cluster schedules like a freshly built one.
  primary_->reset();
  matcher_.reset();
  greedy_.reset();
}

void Cluster::set_level(std::int32_t level) {
  {
    ClusterInput input;
    input.kind = ClusterInput::Kind::kSetLevel;
    input.cycle = clock_;
    input.level = level;
    record(std::move(input));
  }
  change_level(level);
}

std::int64_t Cluster::spare_slots() const {
  if (!alive_) return 0;
  std::int64_t free = 0;
  for (std::size_t r = 0; r < resource_busy_.size(); ++r) {
    if (resource_busy_[r] == 0 || resource_free_at_[r] <= clock_) ++free;
  }
  return std::max<std::int64_t>(0, free - queued_);
}

std::int64_t Cluster::spillable(std::int64_t min_wait) const {
  if (!alive_) return queued_;
  std::int64_t count = 0;
  for (const auto& queue : queues_) {
    for (const Task& task : queue) {
      if (clock_ - task.arrival_cycle >= min_wait) ++count;
    }
  }
  return count;
}

std::vector<Task> Cluster::extract_spillable(std::int64_t count,
                                             std::int64_t min_wait) {
  {
    ClusterInput input;
    input.kind = ClusterInput::Kind::kExtract;
    input.cycle = clock_;
    input.count = count;
    input.min_wait = min_wait;
    record(std::move(input));
  }
  const std::int64_t threshold = alive_ ? min_wait : 0;
  std::vector<Task> extracted;
  bool took = true;
  // Oldest-first, one per processor per round: spreads extraction across
  // processors instead of draining one queue while siblings starve.
  while (static_cast<std::int64_t>(extracted.size()) < count && took) {
    took = false;
    for (std::size_t p = 0;
         p < queues_.size() &&
         static_cast<std::int64_t>(extracted.size()) < count;
         ++p) {
      auto& queue = queues_[p];
      if (queue.empty()) continue;
      if (clock_ - queue.front().arrival_cycle < threshold) continue;
      extracted.push_back(queue.front());
      queue.pop_front();
      --queued_;
      took = true;
    }
  }
  stats_.spill_out += static_cast<std::int64_t>(extracted.size());
  obs_spill_out_->add(static_cast<std::int64_t>(extracted.size()));
  return extracted;
}

std::int64_t Cluster::completed_by(std::int64_t horizon) const {
  std::int64_t count = 0;
  for (const std::int64_t completion : completion_log_) {
    if (completion <= horizon) ++count;
  }
  return count;
}

std::unique_ptr<Cluster> replay_cluster(const ClusterConfig& config,
                                        const std::vector<ClusterInput>& inputs,
                                        std::int64_t cycles) {
  auto cluster = std::make_unique<Cluster>(config);
  std::size_t next = 0;
  const auto apply_due = [&](std::int64_t cycle) {
    while (next < inputs.size() && inputs[next].cycle == cycle) {
      const ClusterInput& input = inputs[next];
      switch (input.kind) {
        case ClusterInput::Kind::kSubmit:
          (void)cluster->submit(input.task);
          break;
        case ClusterInput::Kind::kExtract:
          (void)cluster->extract_spillable(input.count, input.min_wait);
          break;
        case ClusterInput::Kind::kFail:
          cluster->fail();
          break;
        case ClusterInput::Kind::kRejoin:
          cluster->rejoin();
          break;
        case ClusterInput::Kind::kSetLevel:
          cluster->set_level(input.level);
          break;
      }
      ++next;
    }
  };
  for (std::int64_t cycle = 0; cycle < cycles; ++cycle) {
    apply_due(cycle);
    cluster->run_cycle();
  }
  // The federation's spill phase runs after the final cycle's solves, so a
  // recording can end with inputs stamped at the horizon clock; apply them
  // (they cannot affect the schedule hash — no further cycle runs).
  apply_due(cycles);
  RSIN_REQUIRE(next == inputs.size(),
               "replay_cluster: recorded inputs extend past the horizon");
  return cluster;
}

}  // namespace rsin::fed
