// One federation cluster: a private RSIN fabric plus everything needed to
// schedule it independently of its siblings.
//
// A Cluster owns its own topo::Network, its own WarmContextPool-backed
// scheduler stack, its own fault-injection schedule, its own 4-level
// degradation ladder, and its own obs::Registry — nothing here is shared
// with any other cluster, which is what makes fault domains genuinely
// independent (killing one cluster can, by construction, never block a
// sibling's scheduling loop).
//
// Clusters run a deterministic cycle-driven model: every externally driven
// mutation (submit / extract / fail / rejoin / set_level) is an *input*,
// and the schedule a cluster produces is a pure function of its input
// sequence. The Federation records each cluster's inputs; replaying them
// into a standalone Cluster must reproduce the schedule hash bitwise — the
// E25 differential gate that proves the federation adds no hidden coupling
// between clusters.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "core/warm_pool.hpp"
#include "core/zoo.hpp"
#include "fault/fault_injector.hpp"
#include "obs/metrics.hpp"
#include "topo/network.hpp"

namespace rsin::fed {

struct ClusterConfig {
  std::string name = "c0";         ///< Metric / diagnostic label segment.
  std::string topology = "omega";  ///< topo::make_named family.
  std::int32_t n = 8;              ///< Terminals per side of the fabric.
  /// Intra-cluster discipline (core::make_named_scheduler name). "warm" and
  /// "breaker" are pool-backed and run in canonical mode, so their
  /// schedules are bitwise those of the cold Dinic solver.
  std::string scheduler = "warm";
  std::uint64_t seed = 1;
  /// Per-processor queue bound; arrivals beyond it are shed. 0 = unbounded.
  std::int32_t max_queue_per_processor = 0;
  /// 4-level degradation ladder driven by an EWMA of the queued-task count:
  /// level 0 strict optimal, 1 relaxed optimal, 2 randomized matching,
  /// 3 greedy. Escalates when the EWMA reaches overload_on, de-escalates at
  /// overload_off (defaults to on/2 when 0), with `overload_dwell` cycles
  /// of hysteresis between moves. overload_on == 0 disables the ladder.
  double overload_on = 0.0;
  double overload_off = 0.0;
  std::int32_t overload_dwell = 8;
  double overload_window = 16.0;  ///< EWMA window, in cycles.
  /// Per-cluster fault schedule; times are in cycle units. Disabled by
  /// default (mttf == 0).
  fault::FaultConfig faults;

  /// Throws std::invalid_argument on nonsensical parameters.
  void validate() const;
};

/// One request flowing through the federation. `processor` is relative to
/// the cluster currently queueing the task (re-homed on spill).
struct Task {
  std::uint64_t id = 0;
  std::int32_t tenant = 0;
  topo::ProcessorId processor = 0;
  std::int32_t service_cycles = 1;
  /// Cycle of the task's first submission anywhere in the federation
  /// (response time is measured from here, across spills).
  std::int64_t birth_cycle = 0;
  /// Cycle the task entered the *current* cluster's queue (set by submit).
  std::int64_t arrival_cycle = 0;
  bool remote = false;  ///< Arrived over an uplink rather than home arrival.
};

/// One recorded external input, for the standalone differential replay.
struct ClusterInput {
  enum class Kind : std::uint8_t {
    kSubmit,
    kExtract,
    kFail,
    kRejoin,
    kSetLevel,
  };
  Kind kind = Kind::kSubmit;
  std::int64_t cycle = 0;  ///< Cluster clock value when the input landed.
  Task task;               ///< kSubmit payload.
  std::int64_t count = 0;      ///< kExtract budget.
  std::int64_t min_wait = 0;   ///< kExtract eligibility threshold.
  std::int32_t level = 0;      ///< kSetLevel payload.
};

/// Counters a cluster accumulates over its lifetime (cycle-unit times).
struct ClusterStats {
  std::int64_t cycles = 0;
  std::int64_t arrivals = 0;  ///< Home arrivals (remote == false).
  std::int64_t spill_in = 0;  ///< Tasks accepted over uplinks.
  std::int64_t spill_out = 0;  ///< Tasks extracted for siblings.
  std::int64_t granted = 0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;           ///< Arrivals dropped by the queue bound.
  std::int64_t lost_inflight = 0;  ///< In-service tasks destroyed by fail().
  std::int64_t fault_events = 0;
  std::int64_t level_changes = 0;
  std::int32_t level = 0;
  std::int32_t max_level = 0;
  double wait_sum = 0.0;      ///< Sum over grants of (grant - birth) cycles.
  double response_sum = 0.0;  ///< wait + service, per grant.
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] const topo::Network& network() const { return net_; }
  [[nodiscard]] std::int64_t clock() const { return clock_; }
  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] std::int32_t level() const { return level_; }
  [[nodiscard]] const ClusterStats& stats() const { return stats_; }
  [[nodiscard]] obs::Registry& registry() { return registry_; }
  [[nodiscard]] const obs::Registry& registry() const { return registry_; }

  /// Queues a task on its processor. Returns false (and counts a shed) when
  /// the processor's queue is at the configured bound. The task's
  /// arrival_cycle is stamped with the current clock.
  bool submit(Task task);

  /// Runs one scheduling cycle: applies due fault events, updates the
  /// ladder, solves the cycle's Problem with the ladder-selected
  /// discipline, grants circuits (held for this cycle — the paper's
  /// transmission), and advances the clock. A dead cluster only advances
  /// its clock.
  void run_cycle();

  /// Whole-cluster loss: in-service work is destroyed (lost_inflight),
  /// queued tasks stay put (the federation may extract them), and every
  /// subsequent cycle is a no-op until rejoin().
  void fail();
  /// Rejoins with a repaired fabric and reset scheduler state.
  void rejoin();

  /// Forces the degradation ladder (0..3); the EWMA controller resumes from
  /// the forced rung.
  void set_level(std::int32_t level);

  /// Tasks currently queued (all processors).
  [[nodiscard]] std::int64_t queued() const { return queued_; }

  /// Requests this cluster could additionally serve next cycle: free
  /// resources not already spoken for by queued tasks. 0 when dead.
  [[nodiscard]] std::int64_t spare_slots() const;

  /// Queued tasks whose wait (clock - arrival_cycle) is >= min_wait — the
  /// cluster's spill-candidate count. Every queued task qualifies when the
  /// cluster is dead.
  [[nodiscard]] std::int64_t spillable(std::int64_t min_wait) const;

  /// Extracts up to `count` spill candidates, oldest-first one per
  /// processor per round (deterministic). Extracted tasks leave this
  /// cluster's queue; the caller re-homes them.
  [[nodiscard]] std::vector<Task> extract_spillable(std::int64_t count,
                                                    std::int64_t min_wait);

  /// FNV-1a over every grant's (cycle, processor, resource) triple — the
  /// bitwise fingerprint the differential replay compares.
  [[nodiscard]] std::uint64_t schedule_hash() const { return schedule_hash_; }

  /// Grants with completion_cycle <= `horizon` (throughput accounting that
  /// excludes work still in flight at the horizon).
  [[nodiscard]] std::int64_t completed_by(std::int64_t horizon) const;

  /// Input recording for the standalone differential replay.
  void record_inputs(bool on) { recording_ = on; }
  [[nodiscard]] const std::vector<ClusterInput>& inputs() const {
    return inputs_;
  }

 private:
  void build_schedulers();
  [[nodiscard]] core::Scheduler& active_scheduler();
  void apply_due_faults();
  void update_ladder();
  void change_level(std::int32_t level);
  void record(ClusterInput input);

  ClusterConfig config_;
  topo::Network net_;
  // The registry must outlive the pool and schedulers below: releasing a
  // warm lease on destruction bumps pool counters that point into it.
  obs::Registry registry_;
  core::WarmContextPool pool_;
  std::unique_ptr<core::Scheduler> primary_;
  core::RandomizedMatchScheduler matcher_;
  core::GreedyScheduler greedy_;

  std::vector<std::deque<Task>> queues_;       // per processor
  std::vector<std::int64_t> resource_free_at_; // busy until this cycle
  std::vector<char> resource_busy_;
  std::vector<std::int64_t> completion_log_;   // completion cycle per grant

  std::vector<fault::FaultEvent> fault_schedule_;
  std::size_t next_fault_ = 0;

  std::int64_t clock_ = 0;
  std::int64_t queued_ = 0;
  bool alive_ = true;
  std::int32_t level_ = 0;
  double ewma_ = 0.0;
  std::int64_t last_level_change_ = 0;
  std::uint64_t schedule_hash_;
  ClusterStats stats_;

  bool recording_ = false;
  std::vector<ClusterInput> inputs_;

  // Cached registry instruments (bound once at construction).
  obs::Counter* obs_cycles_ = nullptr;
  obs::Counter* obs_arrivals_ = nullptr;
  obs::Counter* obs_spill_in_ = nullptr;
  obs::Counter* obs_spill_out_ = nullptr;
  obs::Counter* obs_granted_ = nullptr;
  obs::Counter* obs_shed_ = nullptr;
  obs::Counter* obs_lost_ = nullptr;
  obs::Counter* obs_faults_ = nullptr;
  obs::Gauge* obs_level_ = nullptr;
  obs::Histogram* obs_wait_ = nullptr;
};

/// Rebuilds a cluster from config and drives it `cycles` cycles, applying
/// the recorded inputs at their original clock values. The returned
/// cluster's schedule_hash() must equal the recording cluster's — the
/// standalone differential check.
[[nodiscard]] std::unique_ptr<Cluster> replay_cluster(
    const ClusterConfig& config, const std::vector<ClusterInput>& inputs,
    std::int64_t cycles);

}  // namespace rsin::fed
