#include "fed/federation.hpp"

#include <string>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace rsin::fed {

void FederationConfig::validate() const {
  RSIN_REQUIRE(clusters >= 1, "federation needs at least one cluster");
  RSIN_REQUIRE(uplink_capacity >= 0, "uplink capacity must be >= 0");
  RSIN_REQUIRE(spill_after >= 0, "spill_after must be >= 0");
  cluster.validate();
}

Federation::Federation(const FederationConfig& config)
    : config_(config),
      uplinks_(config.clusters, config.uplink_capacity),
      spill_cursor_(static_cast<std::size_t>(config.clusters), 0) {
  config_.validate();
  clusters_.reserve(static_cast<std::size_t>(config_.clusters));
  for (std::int32_t i = 0; i < config_.clusters; ++i) {
    ClusterConfig cc = config_.cluster;
    cc.name = "c" + std::to_string(i);
    // Per-cluster derived stream: sibling schedules stay independent of K
    // and of each other's randomness.
    std::uint64_t sm = config_.seed ^
                       (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(i) + 1));
    cc.seed = util::splitmix64(sm);
    clusters_.push_back(std::make_unique<Cluster>(cc));
  }
  obs_cycles_ = &registry_.counter("fed.cycles");
  obs_demand_ = &registry_.counter("fed.admission.demand");
  obs_admitted_ = &registry_.counter("fed.admission.admitted");
  obs_moved_ = &registry_.counter("fed.admission.moved");
}

Cluster& Federation::cluster(std::int32_t i) {
  RSIN_REQUIRE(i >= 0 && i < clusters(), "cluster id out of range");
  return *clusters_[static_cast<std::size_t>(i)];
}

const Cluster& Federation::cluster(std::int32_t i) const {
  RSIN_REQUIRE(i >= 0 && i < clusters(), "cluster id out of range");
  return *clusters_[static_cast<std::size_t>(i)];
}

std::int32_t Federation::home_of(std::int32_t tenant) const {
  RSIN_REQUIRE(tenant >= 0, "tenant id must be >= 0");
  return tenant % clusters();
}

bool Federation::submit(Task task) {
  ++stats_.submitted;
  return cluster(home_of(task.tenant)).submit(task);
}

void Federation::run_cycle() {
  // Phase 1: every cluster schedules its own queue on its own fabric.
  // Nothing a dead or degraded cluster does here can touch a sibling.
  for (auto& cluster : clusters_) cluster->run_cycle();

  // Phase 2: spill admission over the uplink mesh. Admitted tasks enter
  // the destination queue now — i.e. after every cluster already ran this
  // cycle — so they are first schedulable next cycle: the one-cycle uplink
  // latency that keeps per-cluster schedules replayable standalone.
  if (config_.spill && clusters() > 1) {
    const auto k = static_cast<std::size_t>(clusters());
    std::vector<std::int64_t> demand(k, 0);
    std::vector<std::int64_t> slots(k, 0);
    for (std::size_t i = 0; i < k; ++i) {
      if (!uplinks_.partitioned(static_cast<std::int32_t>(i))) {
        demand[i] = clusters_[i]->spillable(config_.spill_after);
      }
      slots[i] = clusters_[i]->spare_slots();
    }
    const AdmissionResult admission = admit_coflow(uplinks_, demand, slots);
    stats_.spill_demand += admission.demand;
    stats_.spill_admitted += admission.admitted;
    obs_demand_->add(admission.demand);
    obs_admitted_->add(admission.admitted);
    for (const SpillGrant& grant : admission.grants) {
      std::vector<Task> moved = cluster(grant.src).extract_spillable(
          grant.count, config_.spill_after);
      Cluster& dst = cluster(grant.dst);
      const auto dst_procs = dst.network().processor_count();
      for (Task task : moved) {
        // Re-home on a rotating destination processor so spilled load
        // spreads instead of piling on processor 0.
        auto& cursor = spill_cursor_[static_cast<std::size_t>(grant.dst)];
        task.processor = cursor;
        cursor = (cursor + 1) % dst_procs;
        task.remote = true;
        if (dst.submit(task)) {
          ++stats_.spill_moved;
          obs_moved_->add(1);
        }
      }
    }
  }
  ++clock_;
  ++stats_.cycles;
  obs_cycles_->add(1);
}

void Federation::kill_cluster(std::int32_t i) { cluster(i).fail(); }

void Federation::rejoin_cluster(std::int32_t i) { cluster(i).rejoin(); }

void Federation::partition_cluster(std::int32_t i) { uplinks_.partition(i); }

void Federation::heal_cluster(std::int32_t i) { uplinks_.heal(i); }

std::int64_t Federation::total_granted() const {
  std::int64_t total = 0;
  for (const auto& cluster : clusters_) total += cluster->stats().granted;
  return total;
}

std::int64_t Federation::total_completed_by(std::int64_t horizon) const {
  std::int64_t total = 0;
  for (const auto& cluster : clusters_) total += cluster->completed_by(horizon);
  return total;
}

void Federation::export_registry(obs::Registry& out) const {
  out.merge(registry_);
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    out.merge(clusters_[i]->registry());  // aggregate: names fold across
    out.merge(clusters_[i]->registry(),
              "fed.c" + std::to_string(i) + ".");  // labeled per-cluster view
  }
}

void Federation::record_inputs(bool on) {
  for (auto& cluster : clusters_) cluster->record_inputs(on);
}

}  // namespace rsin::fed
