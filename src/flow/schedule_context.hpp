// ScheduleContext: the preallocated per-cycle state of the scheduling hot
// path.
//
// The DES fires a scheduling opportunity every cycle_interval; rebuilding a
// FlowNetwork, a ResidualGraph, and all of Dinic's scratch vectors from
// scratch on each one is exactly the work the paper's distributed token
// architecture avoids — after a circuit is established or torn down, the
// switchboxes re-propagate tokens over the *residual* state. A
// ScheduleContext owns that residual state plus every scratch buffer the
// solver needs, so a scheduling cycle performs zero allocations once warm:
//
//  * max_flow_dinic(net, ctx)       — cold solve, reused buffers only;
//  * warm_max_flow_dinic(net, ctx)  — retains the feasible flow left in the
//    context by the previous solve, repairs it against the arcs touched by
//    arrivals/releases/faults (capacity changes), and augments to maximum.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/max_flow.hpp"
#include "flow/network.hpp"
#include "flow/residual.hpp"
#include "obs/metrics.hpp"

namespace rsin::flow {

/// Cached observability instruments for the warm/cold Dinic hot path.
/// bind() resolves the registry names once; afterwards the solvers pay a
/// null check plus relaxed increments per solve. Observation-only: nothing
/// here feeds back into scheduling decisions, so solves stay deterministic
/// with or without a binding. clear() detaches (pointers into a registry
/// must not outlive it — core::WarmContextPool clears on check-in).
struct SolverObs {
  obs::Counter* phases = nullptr;
  obs::Counter* augmentations = nullptr;
  obs::Counter* operations = nullptr;
  obs::Counter* warm_cycles = nullptr;
  obs::Counter* cold_rebuilds = nullptr;
  obs::Counter* repair_cancelled = nullptr;

  void bind(obs::Registry& registry) {
    phases = &registry.counter("flow.bfs_phases");
    augmentations = &registry.counter("flow.augmentations");
    operations = &registry.counter("flow.operations");
    warm_cycles = &registry.counter("flow.warm_cycles");
    cold_rebuilds = &registry.counter("flow.cold_rebuilds");
    repair_cancelled = &registry.counter("flow.repair_cancelled");
  }

  void clear() { *this = SolverObs{}; }

  [[nodiscard]] bool bound() const noexcept { return phases != nullptr; }
};

/// Cross-cycle accounting of the warm-start path (bench/diagnostics).
struct WarmStats {
  std::int64_t cycles = 0;         ///< warm_max_flow_dinic calls.
  std::int64_t warm_cycles = 0;    ///< Cycles that reused the residual.
  std::int64_t cold_rebuilds = 0;  ///< Cycles that rebuilt it cold.
  std::int64_t repair_cancelled = 0;  ///< Flow units shed by capacity repair.
  Capacity retained_flow = 0;  ///< Flow carried into the last warm solve.
  /// Times this context was checked out of a core::WarmContextPool. A count
  /// above 1 with cold_rebuilds == 1 is the pool working as intended: later
  /// leases resumed the residual instead of rebuilding it.
  std::int64_t leases = 0;
};

/// Reusable solver state for the per-cycle scheduling hot path. One context
/// serves one logical network; reusing it across structurally different
/// networks is safe (buffers are resized) but forfeits warm starts.
///
/// Contexts may outlive any single scheduler: core::WarmContextPool checks
/// them out and back in across scheduler lifetimes. A context carries no
/// back-pointers, so check-in/check-out is pure ownership transfer; the
/// first warm solve after a re-checkout re-syncs capacities against the
/// retained residual exactly like any other cycle.
class ScheduleContext {
 public:
  /// Forgets the retained flow; the next warm solve rebuilds cold. Call
  /// after abandoning a solve mid-way or structurally changing the network.
  void invalidate() { warm_valid = false; }

  ResidualGraph residual;   ///< Persistent across warm cycles.
  bool warm_valid = false;  ///< Residual matches the last-solved network.
  WarmStats stats;
  SolverObs obs;  ///< Optional instrument binding (observation-only).

  // Scratch buffers (owned here so solvers never allocate).
  std::vector<int> level;
  std::vector<std::size_t> next_edge;
  std::vector<ResidualGraph::EdgeId> path;
  std::vector<NodeId> bfs_queue;
};

/// Dinic's algorithm using (only) the context's buffers: functionally the
/// cold solver, but allocation-free once the context has warmed up. Honors
/// any flow already assigned in `net` and, like max_flow_dinic(net), returns
/// the flow *advanced by this call* in `value`. Leaves the context's
/// residual primed for a subsequent warm_max_flow_dinic on the same network.
MaxFlowResult max_flow_dinic(FlowNetwork& net, ScheduleContext& ctx);

/// Warm-start Dinic. If the context holds the residual of a previous solve
/// of this network (same structure; capacities may have changed), the
/// retained feasible flow is repaired against the new capacities and the
/// solver augments from there — the incremental re-propagation of the
/// paper's token architecture. Otherwise falls back to a cold (but
/// allocation-free) solve honoring `net`'s assigned flow.
///
/// Unlike the cold solvers, `value` is the TOTAL resulting flow (retained +
/// newly advanced), which is what per-cycle schedulers compare against the
/// allocation count. The final assignment is written back into `net`.
MaxFlowResult warm_max_flow_dinic(FlowNetwork& net, ScheduleContext& ctx);

}  // namespace rsin::flow
