// ScheduleContext: the preallocated per-cycle state of the scheduling hot
// path.
//
// The DES fires a scheduling opportunity every cycle_interval; rebuilding a
// FlowNetwork, a ResidualGraph, and all of Dinic's scratch vectors from
// scratch on each one is exactly the work the paper's distributed token
// architecture avoids — after a circuit is established or torn down, the
// switchboxes re-propagate tokens over the *residual* state. A
// ScheduleContext owns that residual state plus every scratch buffer the
// solver needs, so a scheduling cycle performs zero allocations once warm:
//
//  * max_flow_dinic(net, ctx)       — cold solve, reused buffers only;
//  * warm_max_flow_dinic(net, ctx)  — retains the feasible flow left in the
//    context by the previous solve, repairs it against the arcs touched by
//    arrivals/releases/faults (capacity changes), and augments to maximum.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "flow/max_flow.hpp"
#include "flow/network.hpp"
#include "flow/residual.hpp"
#include "obs/metrics.hpp"
#include "util/bitset.hpp"

namespace rsin::flow {

/// Cached observability instruments for the warm/cold Dinic hot path.
/// bind() resolves the registry names once; afterwards the solvers pay a
/// null check plus relaxed increments per solve. Observation-only: nothing
/// here feeds back into scheduling decisions, so solves stay deterministic
/// with or without a binding. clear() detaches (pointers into a registry
/// must not outlive it — core::WarmContextPool clears on check-in).
struct SolverObs {
  obs::Counter* phases = nullptr;
  obs::Counter* augmentations = nullptr;
  obs::Counter* operations = nullptr;
  obs::Counter* warm_cycles = nullptr;
  obs::Counter* cold_rebuilds = nullptr;
  obs::Counter* repair_cancelled = nullptr;

  obs::Counter* scratch_resets = nullptr;

  void bind(obs::Registry& registry) {
    phases = &registry.counter("flow.bfs_phases");
    augmentations = &registry.counter("flow.augmentations");
    operations = &registry.counter("flow.operations");
    warm_cycles = &registry.counter("flow.warm_cycles");
    cold_rebuilds = &registry.counter("flow.cold_rebuilds");
    repair_cancelled = &registry.counter("flow.repair_cancelled");
    scratch_resets = &registry.counter("flow.scratch_resets");
  }

  void clear() { *this = SolverObs{}; }

  [[nodiscard]] bool bound() const noexcept { return phases != nullptr; }
};

/// Cross-cycle accounting of the warm-start path (bench/diagnostics).
struct WarmStats {
  std::int64_t cycles = 0;         ///< warm_max_flow_dinic calls.
  std::int64_t warm_cycles = 0;    ///< Cycles that reused the residual.
  std::int64_t cold_rebuilds = 0;  ///< Cycles that rebuilt it cold.
  std::int64_t repair_cancelled = 0;  ///< Flow units shed by capacity repair.
  Capacity retained_flow = 0;  ///< Flow carried into the last warm solve.
  /// Times this context was checked out of a core::WarmContextPool. A count
  /// above 1 with cold_rebuilds == 1 is the pool working as intended: later
  /// leases resumed the residual instead of rebuilding it.
  std::int64_t leases = 0;
};

/// Reusable solver state for the per-cycle scheduling hot path. One context
/// serves one logical network; reusing it across structurally different
/// networks is safe (buffers are resized) but forfeits warm starts.
///
/// Contexts may outlive any single scheduler: core::WarmContextPool checks
/// them out and back in across scheduler lifetimes. A context carries no
/// back-pointers, so check-in/check-out is pure ownership transfer; the
/// first warm solve after a re-checkout re-syncs capacities against the
/// retained residual exactly like any other cycle.
class ScheduleContext {
 public:
  /// Forgets the retained flow; the next warm solve rebuilds cold. Call
  /// after abandoning a solve mid-way or structurally changing the network.
  void invalidate() { warm_valid = false; }

  ResidualGraph residual;   ///< Persistent across warm cycles.
  bool warm_valid = false;  ///< Residual matches the last-solved network.
  WarmStats stats;
  SolverObs obs;  ///< Optional instrument binding (observation-only).

  // --- solver scratch (owned here so solvers never allocate) -------------
  //
  // The level and next_edge arrays are epoch-stamped (DESIGN.md §11): a
  // slot is valid only while its stamp equals the current epoch, so
  // begin_bfs()/begin_phase() reset the whole array in O(1) by bumping the
  // epoch, and the per-solve cost is O(nodes touched) instead of the
  // O(n)-per-phase std::fill the scalar path pays. The BFS frontier lives
  // in word-packed bit sets, 64 nodes per word.

  std::vector<ResidualGraph::EdgeId> path;  ///< Current augmenting path.
  util::BitSet frontier;       ///< Current BFS layer, one bit per node.
  util::BitSet next_frontier;  ///< BFS layer under construction.

  /// Sizes the scratch for an n-node residual graph. O(1) when the size is
  /// unchanged (the steady-state warm case); a full O(n) re-init otherwise.
  void ensure_nodes(std::size_t n) {
    if (n == scratch_nodes_) return;
    level_.resize(n);
    next_edge_.resize(n);
    level_stamp_.assign(n, 0);
    next_stamp_.assign(n, 0);
    // An augmenting path visits each level once, so n bounds its length;
    // reserving up front keeps even the first long zig-zag path of a warm
    // solve allocation-free.
    path.reserve(n);
    bfs_epoch_ = 0;
    phase_epoch_ = 0;
    frontier.resize(n);
    frontier.clear_all();
    next_frontier.resize(n);
    next_frontier.clear_all();
    scratch_nodes_ = n;
  }

  /// Invalidates every level in O(1) (epoch bump; wrap falls back to a
  /// full stamp clear once every 2^32 BFS runs).
  void begin_bfs() {
    if (++bfs_epoch_ == 0) {
      std::fill(level_stamp_.begin(), level_stamp_.end(), 0);
      bfs_epoch_ = 1;
    }
  }

  /// Invalidates every next_edge cursor in O(1).
  void begin_phase() {
    if (++phase_epoch_ == 0) {
      std::fill(next_stamp_.begin(), next_stamp_.end(), 0);
      phase_epoch_ = 1;
    }
  }

  /// BFS level of `v` in the current epoch; -1 when unvisited.
  [[nodiscard]] int level_of(NodeId v) const {
    const auto i = static_cast<std::size_t>(v);
    return level_stamp_[i] == bfs_epoch_ ? level_[i] : -1;
  }

  void set_level(NodeId v, int level) {
    const auto i = static_cast<std::size_t>(v);
    if (level_stamp_[i] != bfs_epoch_) {
      level_stamp_[i] = bfs_epoch_;
      ++scratch_resets_;
    }
    level_[i] = level;
  }

  /// Mutable DFS resume cursor of `v` for the current phase, lazily
  /// initialized to 0 on first touch per phase.
  [[nodiscard]] std::uint32_t& next_edge_ref(NodeId v) {
    const auto i = static_cast<std::size_t>(v);
    if (next_stamp_[i] != phase_epoch_) {
      next_stamp_[i] = phase_epoch_;
      next_edge_[i] = 0;
      ++scratch_resets_;
    }
    return next_edge_[i];
  }

  /// Scratch slots stamped since the last call (feeds
  /// MaxFlowResult::scratch_resets).
  [[nodiscard]] std::int64_t take_scratch_resets() {
    const std::int64_t out = scratch_resets_;
    scratch_resets_ = 0;
    return out;
  }

 private:
  std::vector<int> level_;
  std::vector<std::uint32_t> level_stamp_;
  std::vector<std::uint32_t> next_edge_;
  std::vector<std::uint32_t> next_stamp_;
  std::uint32_t bfs_epoch_ = 0;    // level_ slots valid iff stamp matches
  std::uint32_t phase_epoch_ = 0;  // next_edge_ slots valid iff stamp matches
  std::size_t scratch_nodes_ = 0;  // size the scratch is currently built for
  std::int64_t scratch_resets_ = 0;
};

/// Dinic's algorithm using (only) the context's buffers: functionally the
/// cold solver, but allocation-free once the context has warmed up. Honors
/// any flow already assigned in `net` and, like max_flow_dinic(net), returns
/// the flow *advanced by this call* in `value`. Leaves the context's
/// residual primed for a subsequent warm_max_flow_dinic on the same network.
MaxFlowResult max_flow_dinic(FlowNetwork& net, ScheduleContext& ctx);

/// Warm-start Dinic. If the context holds the residual of a previous solve
/// of this network (same structure; capacities may have changed), the
/// retained feasible flow is repaired against the new capacities and the
/// solver augments from there — the incremental re-propagation of the
/// paper's token architecture. Otherwise falls back to a cold (but
/// allocation-free) solve honoring `net`'s assigned flow.
///
/// Unlike the cold solvers, `value` is the TOTAL resulting flow (retained +
/// newly advanced), which is what per-cycle schedulers compare against the
/// allocation count. The final assignment is written back into `net`.
MaxFlowResult warm_max_flow_dinic(FlowNetwork& net, ScheduleContext& ctx);

}  // namespace rsin::flow
