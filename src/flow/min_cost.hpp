// Minimum-cost flow solvers (Section III-C of the paper).
//
// Transformation 2 reduces priority/preference scheduling to: advance a
// fixed amount of flow F0 (the number of pending requests) from source to
// sink at minimum total cost. The paper cites Fulkerson's out-of-kilter
// method with the Edmonds–Karp scaling bound O(|V| |E|^2) for 0-1 networks;
// we provide that algorithm plus two independent solvers used for
// differential testing:
//
//  * min_cost_flow_ssp          — successive shortest paths (label-correcting
//                                 Bellman–Ford on the residual network);
//  * min_cost_flow_cycle_cancel — feasible flow first, then negative-cycle
//                                 canceling (Klein's method);
//  * min_cost_flow_out_of_kilter— Fulkerson's out-of-kilter method on the
//                                 circulation formulation (arc t->s with
//                                 lower bound = upper bound = F0).
//
// All three write the optimal assignment back into the arcs and agree on the
// optimal cost (tested). The SSP solver requires the network to contain no
// negative-cost cycle of positive capacity (true for Transformation 2, whose
// costs are all non-negative); the other two have no such restriction.
#pragma once

#include <cstdint>

#include "flow/network.hpp"

namespace rsin::flow {

struct MinCostFlowResult {
  Capacity value = 0;  ///< Amount of flow actually advanced.
  Cost cost = 0;       ///< Total cost sum_e w(e) f(e) of the assignment.
  bool feasible = false;  ///< True when value == requested target.
  std::int64_t augmentations = 0;
  std::int64_t operations = 0;  ///< Elementary edge inspections.
};

/// Successive shortest paths. Optimal for networks whose zero-flow residual
/// has no negative cycles. If fewer than `target` units fit, advances the
/// maximum possible amount (still at minimum cost for that amount).
MinCostFlowResult min_cost_flow_ssp(FlowNetwork& net, Capacity target);

/// Klein's negative-cycle canceling on top of any feasible flow of the
/// target value (found with Edmonds–Karp through a value-capped source).
MinCostFlowResult min_cost_flow_cycle_cancel(FlowNetwork& net,
                                             Capacity target);

/// Fulkerson's out-of-kilter method (the algorithm named by the paper).
MinCostFlowResult min_cost_flow_out_of_kilter(FlowNetwork& net,
                                              Capacity target);

/// Network simplex (declared in flow/network_simplex.hpp; listed here for
/// the dispatch enum).
MinCostFlowResult min_cost_flow_network_simplex(FlowNetwork& net,
                                                Capacity target);

enum class MinCostFlowAlgorithm {
  kSsp,
  kCycleCancel,
  kOutOfKilter,
  kNetworkSimplex,
};

MinCostFlowResult min_cost_flow(FlowNetwork& net, Capacity target,
                                MinCostFlowAlgorithm algorithm);

}  // namespace rsin::flow
