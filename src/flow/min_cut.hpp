// Minimum-cut extraction (max-flow/min-cut duality).
//
// After a max-flow run, the nodes reachable from the source in the residual
// graph define the source side of a minimum cut; the saturated arcs crossing
// it form the bottleneck the paper describes ("no more flow can be advanced
// since the minimum cut-set is saturated"). In an MRSIN this cut identifies
// the set of links that limit resource allocation — useful both for tests
// (value == cut capacity) and for diagnosing blocking networks.
#pragma once

#include <vector>

#include "flow/network.hpp"

namespace rsin::flow {

struct MinCut {
  /// Nodes on the source side of the cut.
  std::vector<NodeId> source_side;
  /// Arcs from the source side to the sink side (all saturated).
  std::vector<ArcId> cut_arcs;
  /// Total capacity of the cut arcs.
  Capacity capacity = 0;
};

/// Computes a minimum s-t cut from the *current* flow assignment of `net`.
/// The assignment must be a maximum flow; otherwise the returned partition
/// is still a valid cut certificate check will fail (capacity > flow value).
MinCut min_cut_from_flow(const FlowNetwork& net);

}  // namespace rsin::flow
