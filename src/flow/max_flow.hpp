// Maximum-flow solvers (Section III-B of the paper).
//
// Three algorithms are provided:
//  * Ford–Fulkerson with depth-first augmenting-path search — the primal-dual
//    scheme the paper cites from [17];
//  * Edmonds–Karp (breadth-first / shortest augmenting path);
//  * Dinic's algorithm with explicit layered networks — the algorithm the
//    paper's distributed token architecture realizes (Section IV, Fig. 7).
//
// All solvers augment on top of whatever flow is already assigned in the
// network (call FlowNetwork::clear_flow() first for a cold start) and write
// the final assignment back into the arcs. Each returns statistics that the
// monitor-architecture model (rsin::token::Monitor) uses as its sequential
// work measure.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/network.hpp"
#include "flow/residual.hpp"

namespace rsin::flow {

/// Statistics common to all max-flow runs.
struct MaxFlowResult {
  Capacity value = 0;           ///< Total flow advanced from source to sink.
  std::int64_t augmentations = 0;  ///< Number of augmenting paths used.
  std::int64_t phases = 0;         ///< Layered-network phases (Dinic only).
  std::int64_t operations = 0;     ///< Elementary edge inspections performed.
  /// Scratch slots (re)initialized across the solve — the epoch-stamped
  /// level/next_edge scratch of ScheduleContext stamps each slot on first
  /// touch per BFS/phase, so this is O(nodes touched) and must not scale
  /// with network size for localized solves (DinicScale regression tests
  /// pin that). Context-based Dinic only; 0 for the scalar solvers.
  std::int64_t scratch_resets = 0;
};

/// One layered network, as built by a Dinic phase (Section IV-A).
/// layers[0] holds the source; the last layer contains the sink when an
/// augmenting path exists. `level[v] == -1` marks unreachable nodes.
struct LayeredNetwork {
  std::vector<std::vector<NodeId>> layers;
  std::vector<int> level;
  /// Residual edges admitted as "useful links": tail one layer above head.
  std::vector<ResidualGraph::EdgeId> useful_links;
};

/// Optional trace of a Dinic run: the layered network of every phase.
struct DinicTrace {
  std::vector<LayeredNetwork> phases;
};

/// Ford–Fulkerson with DFS path search. Pseudo-polynomial in general but
/// fine on unit-capacity MRSIN networks; kept as the paper's reference
/// algorithm and as a differential-testing oracle.
MaxFlowResult max_flow_ford_fulkerson(FlowNetwork& net);

/// Edmonds–Karp: BFS shortest augmenting paths, O(V * E^2).
MaxFlowResult max_flow_edmonds_karp(FlowNetwork& net);

/// Dinic's algorithm, O(V^2 E) in general and O(V^(2/3) E) on the
/// unit-capacity networks produced by Transformation 1 (the bound quoted in
/// Section III-B). Pass `trace` to capture each phase's layered network.
MaxFlowResult max_flow_dinic(FlowNetwork& net, DinicTrace* trace = nullptr);

/// Ford–Fulkerson with capacity scaling: augments only along paths whose
/// bottleneck is at least the current threshold Delta, halving Delta until
/// it reaches one; O(E^2 log C). Degenerates to plain Ford–Fulkerson on
/// the unit-capacity MRSIN networks.
MaxFlowResult max_flow_capacity_scaling(FlowNetwork& net);

/// Algorithm selector for callers that want to parameterize.
enum class MaxFlowAlgorithm {
  kFordFulkerson,
  kEdmondsKarp,
  kDinic,
  kCapacityScaling,
  kPushRelabel,
};

MaxFlowResult max_flow(FlowNetwork& net, MaxFlowAlgorithm algorithm);

/// Builds the layered network of the current residual graph without running
/// any augmentation — used by tests and by the Fig. 8 reproduction.
LayeredNetwork build_layered_network(const ResidualGraph& residual,
                                     NodeId source, NodeId sink);

}  // namespace rsin::flow
