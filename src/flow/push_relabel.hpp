// Preflow-push (push-relabel) maximum flow, FIFO variant with the gap
// heuristic.
//
// The paper predates push-relabel, but a production flow library needs a
// non-augmenting-path solver both for performance on dense networks and as
// an algorithmically independent differential-testing oracle for the
// Ford-Fulkerson family (the tests cross-check all four max-flow solvers on
// random networks).
#pragma once

#include "flow/max_flow.hpp"

namespace rsin::flow {

/// FIFO push-relabel with gap relabeling; O(V^3). Augments on top of any
/// existing flow like the other solvers; `operations` counts push/relabel
/// steps plus edge scans.
MaxFlowResult max_flow_push_relabel(FlowNetwork& net);

}  // namespace rsin::flow
