#include "flow/min_cut.hpp"

#include <vector>

#include "flow/residual.hpp"
#include "util/bitset.hpp"

namespace rsin::flow {

MinCut min_cut_from_flow(const FlowNetwork& net) {
  RSIN_REQUIRE(net.valid_node(net.source()), "network needs a source");
  RSIN_REQUIRE(net.valid_node(net.sink()), "network needs a sink");

  const ResidualGraph residual(net);
  util::BitSet reachable(net.node_count());
  std::vector<NodeId> queue{net.source()};
  reachable.set(static_cast<std::size_t>(net.source()));
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const NodeId v = queue[i];
    for (const auto e : residual.edges_from(v)) {
      if (residual.residual(e) <= 0) continue;
      const NodeId w = residual.head(e);
      if (!reachable.test(static_cast<std::size_t>(w))) {
        reachable.set(static_cast<std::size_t>(w));
        queue.push_back(w);
      }
    }
  }

  MinCut cut;
  // lowbit/ctz iteration over the packed source side — visits only the
  // reachable nodes, in ascending id order like the scan it replaces.
  reachable.for_each_set([&](std::size_t v) {
    cut.source_side.push_back(static_cast<NodeId>(v));
  });
  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    const Arc& arc = net.arc(static_cast<ArcId>(a));
    if (reachable.test(static_cast<std::size_t>(arc.from)) &&
        !reachable.test(static_cast<std::size_t>(arc.to))) {
      cut.cut_arcs.push_back(static_cast<ArcId>(a));
      cut.capacity += arc.capacity;
    }
  }
  return cut;
}

}  // namespace rsin::flow
