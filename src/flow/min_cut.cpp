#include "flow/min_cut.hpp"

#include <deque>

#include "flow/residual.hpp"

namespace rsin::flow {

MinCut min_cut_from_flow(const FlowNetwork& net) {
  RSIN_REQUIRE(net.valid_node(net.source()), "network needs a source");
  RSIN_REQUIRE(net.valid_node(net.sink()), "network needs a sink");

  const ResidualGraph residual(net);
  std::vector<char> reachable(net.node_count(), 0);
  std::deque<NodeId> queue{net.source()};
  reachable[static_cast<std::size_t>(net.source())] = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const auto e : residual.edges_from(v)) {
      if (residual.residual(e) <= 0) continue;
      const NodeId w = residual.head(e);
      if (!reachable[static_cast<std::size_t>(w)]) {
        reachable[static_cast<std::size_t>(w)] = 1;
        queue.push_back(w);
      }
    }
  }

  MinCut cut;
  for (std::size_t v = 0; v < net.node_count(); ++v) {
    if (reachable[v]) cut.source_side.push_back(static_cast<NodeId>(v));
  }
  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    const Arc& arc = net.arc(static_cast<ArcId>(a));
    if (reachable[static_cast<std::size_t>(arc.from)] &&
        !reachable[static_cast<std::size_t>(arc.to)]) {
      cut.cut_arcs.push_back(static_cast<ArcId>(a));
      cut.capacity += arc.capacity;
    }
  }
  return cut;
}

}  // namespace rsin::flow
