// Legal-flow validation (the two constraints of Section III-A).
//
// A flow assignment is *legal* when it satisfies capacity limitation
// (0 <= f(e) <= c(e)) and flow conservation (net flow zero at every node
// except the source, which emits F, and the sink, which absorbs F). These
// checks back the library's property tests and guard the transformations.
#pragma once

#include <optional>
#include <string>

#include "flow/network.hpp"

namespace rsin::flow {

struct FlowViolation {
  enum class Kind { kCapacity, kConservation } kind;
  /// Offending arc (capacity) or node (conservation).
  std::int32_t id;
  std::string detail;
};

/// Returns the first violated constraint, or nullopt if the current flow
/// assignment of `net` is legal. `expected_value`, when given, additionally
/// requires the source to emit exactly that amount.
std::optional<FlowViolation> validate_flow(
    const FlowNetwork& net, std::optional<Capacity> expected_value = {});

/// True when every arc carries an integral... all Capacity values are
/// integers by construction here, so this checks the MRSIN-specific
/// property instead: every arc's flow is 0 or 1 (unit flows, Theorem 1).
bool is_zero_one_flow(const FlowNetwork& net);

}  // namespace rsin::flow
