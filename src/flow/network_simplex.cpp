#include "flow/network_simplex.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <deque>
#include <limits>
#include <vector>

namespace rsin::flow {
namespace {

enum class ArcState : std::uint8_t { kLower, kUpper, kTree };

struct SArc {
  std::int32_t from = 0;
  std::int32_t to = 0;
  Capacity capacity = 0;
  Cost cost = 0;
  Capacity flow = 0;
  ArcState state = ArcState::kLower;
};

/// One step of a pivot cycle: the arc and whether the cycle's augmenting
/// direction traverses it forward (from -> to).
struct CycleStep {
  std::size_t arc;
  bool forward;
};

class NetworkSimplex {
 public:
  NetworkSimplex(std::vector<SArc> arcs, std::int32_t node_count,
                 std::size_t artificial_begin)
      : arcs_(std::move(arcs)),
        nodes_(node_count),  // includes the artificial root (last id)
        root_(node_count - 1),
        artificial_begin_(artificial_begin),
        parent_(static_cast<std::size_t>(node_count), -1),
        parent_arc_(static_cast<std::size_t>(node_count), 0),
        depth_(static_cast<std::size_t>(node_count), 0),
        potential_(static_cast<std::size_t>(node_count), 0) {
    rebuild_tree();
  }

  std::int64_t solve() {
    // Generous pivot budget: network simplex needs far fewer in practice;
    // Cunningham's rule rules out cycling, so this is a pure backstop.
    const std::int64_t budget =
        1000 + 64 * static_cast<std::int64_t>(arcs_.size()) *
                   static_cast<std::int64_t>(nodes_);
    std::int64_t pivots = 0;
    std::int64_t degenerate_streak = 0;
    while (true) {
      RSIN_ENSURE(pivots < budget, "network simplex exceeded pivot budget");
      const bool bland = degenerate_streak > 64;
      const auto entering = select_entering(bland);
      if (!entering) break;
      ++pivots;
      operations_ += static_cast<std::int64_t>(arcs_.size());
      const bool degenerate = pivot(*entering);
      degenerate_streak = degenerate ? degenerate_streak + 1 : 0;
    }
    return pivots;
  }

  [[nodiscard]] const std::vector<SArc>& arcs() const { return arcs_; }
  [[nodiscard]] std::int64_t operations() const { return operations_; }

 private:
  [[nodiscard]] Cost reduced_cost(const SArc& arc) const {
    return arc.cost + potential_[static_cast<std::size_t>(arc.from)] -
           potential_[static_cast<std::size_t>(arc.to)];
  }

  /// Dantzig pricing (largest violation) or Bland (first violating index).
  std::optional<std::size_t> select_entering(bool bland) const {
    std::optional<std::size_t> best;
    Cost best_violation = 0;
    for (std::size_t a = 0; a < arcs_.size(); ++a) {
      const SArc& arc = arcs_[a];
      if (arc.state == ArcState::kTree || arc.capacity == 0) continue;
      const Cost rc = reduced_cost(arc);
      Cost violation = 0;
      if (arc.state == ArcState::kLower && rc < 0) violation = -rc;
      if (arc.state == ArcState::kUpper && rc > 0) violation = rc;
      if (violation > 0) {
        if (bland) return a;
        if (violation > best_violation) {
          best_violation = violation;
          best = a;
        }
      }
    }
    return best;
  }

  /// Executes one pivot; returns true when it was degenerate (delta == 0).
  bool pivot(std::size_t entering) {
    const SArc& e = arcs_[entering];
    const bool increase = e.state == ArcState::kLower;
    // Augmenting direction traverses `entering` forward when it enters at
    // its lower bound, backward when at its upper bound.
    const std::int32_t start = increase ? e.to : e.from;   // after e
    const std::int32_t finish = increase ? e.from : e.to;  // before e

    // Find the apex (LCA of the entering arc's endpoints).
    std::int32_t x = e.from;
    std::int32_t y = e.to;
    while (depth_[static_cast<std::size_t>(x)] >
           depth_[static_cast<std::size_t>(y)]) {
      x = parent_[static_cast<std::size_t>(x)];
    }
    while (depth_[static_cast<std::size_t>(y)] >
           depth_[static_cast<std::size_t>(x)]) {
      y = parent_[static_cast<std::size_t>(y)];
    }
    while (x != y) {
      x = parent_[static_cast<std::size_t>(x)];
      y = parent_[static_cast<std::size_t>(y)];
    }
    const std::int32_t apex = x;

    // Assemble the cycle in augmenting order starting at the apex:
    // apex -> finish (down the tree), entering arc, start -> apex (up).
    std::vector<CycleStep> cycle;
    {
      std::vector<CycleStep> down;
      for (std::int32_t v = finish; v != apex;
           v = parent_[static_cast<std::size_t>(v)]) {
        const std::size_t a = parent_arc_[static_cast<std::size_t>(v)];
        // Traversal is parent -> v; forward when the arc points that way.
        down.push_back(CycleStep{
            a, arcs_[a].from == parent_[static_cast<std::size_t>(v)]});
      }
      std::reverse(down.begin(), down.end());
      cycle = std::move(down);
      cycle.push_back(CycleStep{entering, increase});
      for (std::int32_t v = start; v != apex;
           v = parent_[static_cast<std::size_t>(v)]) {
        const std::size_t a = parent_arc_[static_cast<std::size_t>(v)];
        // Traversal is v -> parent; forward when the arc points that way.
        cycle.push_back(CycleStep{a, arcs_[a].from == v});
      }
    }

    // Bottleneck and the leaving arc (last blocking step from the apex —
    // Cunningham's strongly-feasible rule).
    Capacity delta = std::numeric_limits<Capacity>::max();
    std::size_t leaving_step = 0;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const SArc& arc = arcs_[cycle[i].arc];
      const Capacity residual =
          cycle[i].forward ? arc.capacity - arc.flow : arc.flow;
      if (residual <= delta) {
        // <= keeps the LAST minimizer.
        delta = residual;
        leaving_step = i;
      }
    }
    RSIN_ENSURE(delta < std::numeric_limits<Capacity>::max(),
                "unbounded pivot cycle");

    for (const CycleStep& step : cycle) {
      arcs_[step.arc].flow += step.forward ? delta : -delta;
    }

    const std::size_t leaving = cycle[leaving_step].arc;
    if (leaving != entering) {
      arcs_[entering].state = ArcState::kTree;
      arcs_[leaving].state =
          arcs_[leaving].flow == 0 ? ArcState::kLower : ArcState::kUpper;
      RSIN_ENSURE(arcs_[leaving].state == ArcState::kLower ||
                      arcs_[leaving].flow == arcs_[leaving].capacity,
                  "leaving arc is not at a bound");
      rebuild_tree();
    } else {
      // The entering arc blocks itself: it flips bound without entering
      // the basis (the tree is unchanged).
      arcs_[entering].state =
          arcs_[entering].flow == 0 ? ArcState::kLower : ArcState::kUpper;
    }
    return delta == 0;
  }

  /// Recomputes parents, depths, and potentials from the tree arcs.
  void rebuild_tree() {
    std::vector<std::vector<std::size_t>> adjacency(
        static_cast<std::size_t>(nodes_));
    for (std::size_t a = 0; a < arcs_.size(); ++a) {
      if (arcs_[a].state != ArcState::kTree) continue;
      adjacency[static_cast<std::size_t>(arcs_[a].from)].push_back(a);
      adjacency[static_cast<std::size_t>(arcs_[a].to)].push_back(a);
    }
    std::fill(parent_.begin(), parent_.end(), -1);
    std::vector<char> seen(static_cast<std::size_t>(nodes_), 0);
    seen[static_cast<std::size_t>(root_)] = 1;
    depth_[static_cast<std::size_t>(root_)] = 0;
    potential_[static_cast<std::size_t>(root_)] = 0;
    std::deque<std::int32_t> queue{root_};
    std::int32_t reached = 1;
    while (!queue.empty()) {
      const std::int32_t v = queue.front();
      queue.pop_front();
      for (const std::size_t a : adjacency[static_cast<std::size_t>(v)]) {
        operations_ += 1;
        const SArc& arc = arcs_[a];
        const std::int32_t w = arc.from == v ? arc.to : arc.from;
        if (seen[static_cast<std::size_t>(w)]) continue;
        seen[static_cast<std::size_t>(w)] = 1;
        ++reached;
        parent_[static_cast<std::size_t>(w)] = v;
        parent_arc_[static_cast<std::size_t>(w)] = a;
        depth_[static_cast<std::size_t>(w)] =
            depth_[static_cast<std::size_t>(v)] + 1;
        // Tree arcs have zero reduced cost: cost + pi(from) - pi(to) == 0.
        potential_[static_cast<std::size_t>(w)] =
            arc.from == v
                ? potential_[static_cast<std::size_t>(v)] + arc.cost
                : potential_[static_cast<std::size_t>(v)] - arc.cost;
        queue.push_back(w);
      }
    }
    RSIN_ENSURE(reached == nodes_, "basis is not a spanning tree");
  }

  std::vector<SArc> arcs_;
  std::int32_t nodes_;
  std::int32_t root_;
  std::size_t artificial_begin_;
  std::vector<std::int32_t> parent_;
  std::vector<std::size_t> parent_arc_;
  std::vector<std::int32_t> depth_;
  std::vector<Cost> potential_;
  std::int64_t operations_ = 0;
};

}  // namespace

MinCostFlowResult min_cost_flow_network_simplex(FlowNetwork& net,
                                                Capacity target) {
  RSIN_REQUIRE(net.valid_node(net.source()), "network needs a source");
  RSIN_REQUIRE(net.valid_node(net.sink()), "network needs a sink");
  RSIN_REQUIRE(net.source() != net.sink(), "source and sink must differ");
  RSIN_REQUIRE(target >= 0, "target flow must be non-negative");

  // Circulation formulation: return arc t->s with cost -B (B larger than
  // any simple-path cost, so value is maximized first), plus an artificial
  // root whose big-M spokes form the initial strongly feasible basis.
  Cost abs_costs = 1;
  Capacity total_capacity = target + 1;
  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    const Arc& arc = net.arc(static_cast<ArcId>(a));
    abs_costs += arc.cost < 0 ? -arc.cost : arc.cost;
    total_capacity += arc.capacity;
  }
  const Cost big_b = abs_costs;
  const Cost big_m = (abs_costs + big_b + 1);

  const auto n = static_cast<std::int32_t>(net.node_count());
  const std::int32_t root = n;  // artificial root id

  std::vector<SArc> arcs;
  arcs.reserve(net.arc_count() + 1 + static_cast<std::size_t>(n));
  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    const Arc& arc = net.arc(static_cast<ArcId>(a));
    arcs.push_back(SArc{arc.from, arc.to, arc.capacity, arc.cost, 0,
                        ArcState::kLower});
  }
  arcs.push_back(SArc{net.sink(), net.source(), target, -big_b, 0,
                      ArcState::kLower});
  const std::size_t artificial_begin = arcs.size();
  for (std::int32_t v = 0; v < n; ++v) {
    arcs.push_back(SArc{v, root, total_capacity, big_m, 0, ArcState::kTree});
  }

  NetworkSimplex solver(std::move(arcs), n + 1, artificial_begin);
  MinCostFlowResult result;
  result.augmentations = solver.solve();
  result.operations = solver.operations();

  for (std::size_t a = artificial_begin; a < solver.arcs().size(); ++a) {
    RSIN_ENSURE(solver.arcs()[a].flow == 0,
                "artificial arc carries flow at optimum");
  }
  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    net.set_flow(static_cast<ArcId>(a), solver.arcs()[a].flow);
  }
  result.value = solver.arcs()[net.arc_count()].flow;  // return arc
  result.cost = net.flow_cost();
  result.feasible = result.value == target;
  return result;
}

}  // namespace rsin::flow
