#include "flow/decompose.hpp"

#include <algorithm>
#include <limits>

#include "flow/validate.hpp"

namespace rsin::flow {

Capacity FlowDecomposition::total_path_flow() const {
  Capacity total = 0;
  for (const FlowPath& path : paths) total += path.amount;
  return total;
}

FlowDecomposition decompose_flow(const FlowNetwork& net) {
  RSIN_REQUIRE(!validate_flow(net).has_value(),
               "decomposition requires a legal flow");
  FlowDecomposition result;
  std::vector<Capacity> remaining(net.arc_count());
  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    remaining[a] = net.arc(static_cast<ArcId>(a)).flow;
  }

  const auto first_positive_out = [&](NodeId v) -> ArcId {
    for (const ArcId a : net.out_arcs(v)) {
      if (remaining[static_cast<std::size_t>(a)] > 0) return a;
    }
    return kInvalidArc;
  };

  // Phase 1: peel source->sink paths. Conservation guarantees that any
  // walk following positive arcs from the source either reaches the sink
  // or closes a cycle; cycles found on the way are peeled immediately so
  // the walk always makes progress.
  if (net.valid_node(net.source()) && net.valid_node(net.sink())) {
    while (first_positive_out(net.source()) != kInvalidArc) {
      std::vector<ArcId> walk;
      std::vector<int> position(net.node_count(), -1);
      NodeId at = net.source();
      position[static_cast<std::size_t>(at)] = 0;
      while (at != net.sink()) {
        const ArcId a = first_positive_out(at);
        RSIN_ENSURE(a != kInvalidArc,
                    "conservation violated during decomposition");
        walk.push_back(a);
        at = net.arc(a).to;
        const auto idx = static_cast<std::size_t>(at);
        if (position[idx] != -1) {
          // Found a cycle: peel it, rewind the walk, and continue.
          const auto start = static_cast<std::size_t>(position[idx]);
          FlowCycle cycle;
          cycle.arcs.assign(walk.begin() + static_cast<std::ptrdiff_t>(start),
                            walk.end());
          cycle.amount = std::numeric_limits<Capacity>::max();
          for (const ArcId arc : cycle.arcs) {
            cycle.amount = std::min(cycle.amount,
                                    remaining[static_cast<std::size_t>(arc)]);
          }
          for (const ArcId arc : cycle.arcs) {
            remaining[static_cast<std::size_t>(arc)] -= cycle.amount;
          }
          result.cycles.push_back(std::move(cycle));
          // Rewind to the cycle entry point and clear position marks.
          for (std::size_t i = start; i < walk.size(); ++i) {
            position[static_cast<std::size_t>(net.arc(walk[i]).to)] = -1;
          }
          position[idx] = static_cast<int>(start);
          walk.resize(start);
          at = walk.empty() ? net.source() : net.arc(walk.back()).to;
          continue;
        }
        position[idx] = static_cast<int>(walk.size());
      }
      FlowPath path;
      path.amount = std::numeric_limits<Capacity>::max();
      for (const ArcId arc : walk) {
        path.amount =
            std::min(path.amount, remaining[static_cast<std::size_t>(arc)]);
      }
      for (const ArcId arc : walk) {
        remaining[static_cast<std::size_t>(arc)] -= path.amount;
      }
      path.arcs = std::move(walk);
      result.paths.push_back(std::move(path));
    }
  }

  // Phase 2: peel residual cycles (circulation components).
  for (std::size_t seed = 0; seed < net.arc_count(); ++seed) {
    while (remaining[seed] > 0) {
      std::vector<ArcId> walk{static_cast<ArcId>(seed)};
      std::vector<int> position(net.node_count(), -1);
      position[static_cast<std::size_t>(net.arc(static_cast<ArcId>(seed)).from)] =
          0;
      NodeId at = net.arc(static_cast<ArcId>(seed)).to;
      while (position[static_cast<std::size_t>(at)] == -1) {
        position[static_cast<std::size_t>(at)] =
            static_cast<int>(walk.size());
        const ArcId a = first_positive_out(at);
        RSIN_ENSURE(a != kInvalidArc,
                    "conservation violated during cycle peeling");
        walk.push_back(a);
        at = net.arc(a).to;
      }
      const auto start =
          static_cast<std::size_t>(position[static_cast<std::size_t>(at)]);
      FlowCycle cycle;
      cycle.arcs.assign(walk.begin() + static_cast<std::ptrdiff_t>(start),
                        walk.end());
      cycle.amount = std::numeric_limits<Capacity>::max();
      for (const ArcId arc : cycle.arcs) {
        cycle.amount =
            std::min(cycle.amount, remaining[static_cast<std::size_t>(arc)]);
      }
      for (const ArcId arc : cycle.arcs) {
        remaining[static_cast<std::size_t>(arc)] -= cycle.amount;
      }
      result.cycles.push_back(std::move(cycle));
    }
  }
  return result;
}

void recompose_flow(FlowNetwork& net, const FlowDecomposition& decomposition) {
  net.clear_flow();
  const auto add = [&](const std::vector<ArcId>& arcs, Capacity amount) {
    for (const ArcId a : arcs) {
      net.set_flow(a, net.arc(a).flow + amount);
    }
  };
  for (const FlowPath& path : decomposition.paths) add(path.arcs, path.amount);
  for (const FlowCycle& cycle : decomposition.cycles) {
    add(cycle.arcs, cycle.amount);
  }
}

}  // namespace rsin::flow
