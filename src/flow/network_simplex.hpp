// Network simplex for minimum-cost flow.
//
// The specialization of the simplex method to flow networks: the basis is a
// spanning tree (rooted at an artificial node), non-basic arcs sit at their
// lower or upper bound, and a pivot pushes flow around the unique cycle the
// entering arc closes with the tree. This is the algorithm behind the
// "linear programming" column of the paper's Table II when applied to a
// single commodity, and the fourth independently implemented min-cost
// solver in this library (differentially tested against out-of-kilter,
// successive shortest paths, and cycle canceling).
//
// Anti-cycling: the basis is kept *strongly feasible* (every zero-flow tree
// arc points toward the root) by Cunningham's leaving-arc rule — among the
// blocking arcs of a pivot cycle, the last one encountered when walking the
// cycle in its augmenting direction starting from the apex leaves the
// basis. Entering arcs use Dantzig pricing with a Bland fallback.
#pragma once

#include "flow/min_cost.hpp"

namespace rsin::flow {

/// Same contract as the other min-cost solvers: advance up to `target`
/// units from source to sink at minimum cost (value capped by the max
/// flow), writing the assignment back into the arcs.
MinCostFlowResult min_cost_flow_network_simplex(FlowNetwork& net,
                                                Capacity target);

}  // namespace rsin::flow
