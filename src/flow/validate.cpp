#include "flow/validate.hpp"

#include <sstream>

namespace rsin::flow {

std::optional<FlowViolation> validate_flow(
    const FlowNetwork& net, std::optional<Capacity> expected_value) {
  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    const Arc& arc = net.arc(static_cast<ArcId>(a));
    if (arc.flow < 0 || arc.flow > arc.capacity) {
      std::ostringstream detail;
      detail << "arc " << a << " has flow " << arc.flow << " outside [0, "
             << arc.capacity << ']';
      return FlowViolation{FlowViolation::Kind::kCapacity,
                           static_cast<std::int32_t>(a), detail.str()};
    }
  }

  const Capacity value = expected_value
                             ? *expected_value
                             : (net.valid_node(net.source())
                                    ? net.flow_value()
                                    : 0);
  for (std::size_t v = 0; v < net.node_count(); ++v) {
    const auto node = static_cast<NodeId>(v);
    Capacity out = 0;
    Capacity in = 0;
    for (const ArcId id : net.out_arcs(node)) out += net.arc(id).flow;
    for (const ArcId id : net.in_arcs(node)) in += net.arc(id).flow;
    Capacity expected_net = 0;
    if (node == net.source()) expected_net = value;
    if (node == net.sink()) expected_net = -value;
    if (out - in != expected_net) {
      std::ostringstream detail;
      detail << "node " << net.label(node) << " violates conservation: out="
             << out << " in=" << in << " expected net=" << expected_net;
      return FlowViolation{FlowViolation::Kind::kConservation,
                           static_cast<std::int32_t>(v), detail.str()};
    }
  }
  return std::nullopt;
}

bool is_zero_one_flow(const FlowNetwork& net) {
  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    const Capacity f = net.arc(static_cast<ArcId>(a)).flow;
    if (f != 0 && f != 1) return false;
  }
  return true;
}

}  // namespace rsin::flow
