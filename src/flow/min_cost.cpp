#include "flow/min_cost.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <vector>

#include "flow/max_flow.hpp"
#include "flow/residual.hpp"

namespace rsin::flow {
namespace {

constexpr Cost kInfCost = std::numeric_limits<Cost>::max() / 4;
constexpr Capacity kInfCap = std::numeric_limits<Capacity>::max() / 4;

/// Bellman–Ford (SPFA variant) shortest path by cost over the residual
/// graph. Fills dist/parent; returns true when the sink is reachable.
bool spfa_shortest_path(const ResidualGraph& residual, NodeId source,
                        NodeId sink, std::vector<Cost>& dist,
                        std::vector<ResidualGraph::EdgeId>& parent,
                        std::int64_t& ops) {
  const std::size_t n = residual.node_count();
  dist.assign(n, kInfCost);
  parent.assign(n, -1);
  std::vector<char> in_queue(n, 0);
  dist[static_cast<std::size_t>(source)] = 0;
  std::deque<NodeId> queue{source};
  in_queue[static_cast<std::size_t>(source)] = 1;

  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    in_queue[static_cast<std::size_t>(v)] = 0;
    for (const auto e : residual.edges_from(v)) {
      ++ops;
      if (residual.residual(e) <= 0) continue;
      const NodeId w = residual.head(e);
      const Cost candidate = dist[static_cast<std::size_t>(v)] +
                             residual.cost(e);
      if (candidate < dist[static_cast<std::size_t>(w)]) {
        dist[static_cast<std::size_t>(w)] = candidate;
        parent[static_cast<std::size_t>(w)] = e;
        if (!in_queue[static_cast<std::size_t>(w)]) {
          in_queue[static_cast<std::size_t>(w)] = 1;
          queue.push_back(w);
        }
      }
    }
  }
  return dist[static_cast<std::size_t>(sink)] < kInfCost;
}

void require_st(const FlowNetwork& net) {
  RSIN_REQUIRE(net.valid_node(net.source()), "network needs a source");
  RSIN_REQUIRE(net.valid_node(net.sink()), "network needs a sink");
  RSIN_REQUIRE(net.source() != net.sink(), "source and sink must differ");
}

}  // namespace

MinCostFlowResult min_cost_flow_ssp(FlowNetwork& net, Capacity target) {
  require_st(net);
  RSIN_REQUIRE(target >= 0, "target flow must be non-negative");
  ResidualGraph residual(net);
  MinCostFlowResult result;
  std::vector<Cost> dist;
  std::vector<ResidualGraph::EdgeId> parent;

  while (result.value < target) {
    if (!spfa_shortest_path(residual, net.source(), net.sink(), dist, parent,
                            result.operations)) {
      break;  // No more augmenting paths; target not fully reachable.
    }
    // Bottleneck along the shortest path, capped by the remaining demand.
    Capacity bottleneck = target - result.value;
    for (NodeId v = net.sink(); v != net.source();
         v = residual.tail(parent[static_cast<std::size_t>(v)])) {
      bottleneck = std::min(
          bottleneck, residual.residual(parent[static_cast<std::size_t>(v)]));
    }
    for (NodeId v = net.sink(); v != net.source();) {
      const auto e = parent[static_cast<std::size_t>(v)];
      residual.push(e, bottleneck);
      v = residual.tail(e);
    }
    result.value += bottleneck;
    result.cost += bottleneck * dist[static_cast<std::size_t>(net.sink())];
    ++result.augmentations;
  }
  residual.apply_to(net);
  result.feasible = result.value == target;
  return result;
}

MinCostFlowResult min_cost_flow_cycle_cancel(FlowNetwork& net,
                                             Capacity target) {
  require_st(net);
  RSIN_REQUIRE(target >= 0, "target flow must be non-negative");

  // Phase 1: any feasible flow of min(target, maxflow) units. We build a
  // value-capped copy: a super-source with one arc of capacity `target`.
  FlowNetwork capped;
  for (std::size_t v = 0; v < net.node_count(); ++v) {
    capped.add_node(net.label(static_cast<NodeId>(v)));
  }
  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    const Arc& arc = net.arc(static_cast<ArcId>(a));
    capped.add_arc(arc.from, arc.to, arc.capacity, arc.cost);
  }
  const NodeId super = capped.add_node("super-source");
  capped.add_arc(super, net.source(), target, 0);
  capped.set_source(super);
  capped.set_sink(net.sink());

  MinCostFlowResult result;
  const MaxFlowResult feasible = max_flow_edmonds_karp(capped);
  result.operations += feasible.operations;
  result.value = feasible.value;
  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    net.set_flow(static_cast<ArcId>(a), capped.arc(static_cast<ArcId>(a)).flow);
  }

  // Phase 2: cancel negative-cost cycles in the residual graph until none
  // remain. Bellman–Ford over all residual edges; any relaxation in the
  // n-th pass exposes a cycle reachable by walking parents n times.
  while (true) {
    ResidualGraph residual(net);
    const std::size_t n = residual.node_count();
    std::vector<Cost> dist(n, 0);  // all-zero start finds any negative cycle
    std::vector<ResidualGraph::EdgeId> parent(n, -1);
    NodeId relaxed = kInvalidNode;
    for (std::size_t pass = 0; pass < n; ++pass) {
      relaxed = kInvalidNode;
      for (std::size_t v = 0; v < n; ++v) {
        for (const auto e : residual.edges_from(static_cast<NodeId>(v))) {
          ++result.operations;
          if (residual.residual(e) <= 0) continue;
          const NodeId w = residual.head(e);
          if (dist[v] + residual.cost(e) < dist[static_cast<std::size_t>(w)]) {
            dist[static_cast<std::size_t>(w)] = dist[v] + residual.cost(e);
            parent[static_cast<std::size_t>(w)] = e;
            relaxed = w;
          }
        }
      }
      if (relaxed == kInvalidNode) break;
    }
    if (relaxed == kInvalidNode) break;  // no negative cycle remains

    // Walk n parents back from the last relaxed node to land on the cycle.
    NodeId on_cycle = relaxed;
    for (std::size_t i = 0; i < n; ++i) {
      on_cycle = residual.tail(parent[static_cast<std::size_t>(on_cycle)]);
    }
    // Collect the cycle's edges and its bottleneck.
    std::vector<ResidualGraph::EdgeId> cycle;
    Capacity bottleneck = kInfCap;
    NodeId v = on_cycle;
    do {
      const auto e = parent[static_cast<std::size_t>(v)];
      cycle.push_back(e);
      bottleneck = std::min(bottleneck, residual.residual(e));
      v = residual.tail(e);
    } while (v != on_cycle);
    RSIN_ENSURE(bottleneck > 0, "negative cycle with zero bottleneck");
    for (const auto e : cycle) residual.push(e, bottleneck);
    residual.apply_to(net);
    ++result.augmentations;
  }

  result.cost = net.flow_cost();
  result.feasible = result.value == target;
  return result;
}

MinCostFlowResult min_cost_flow(FlowNetwork& net, Capacity target,
                                MinCostFlowAlgorithm algorithm) {
  switch (algorithm) {
    case MinCostFlowAlgorithm::kSsp:
      return min_cost_flow_ssp(net, target);
    case MinCostFlowAlgorithm::kCycleCancel:
      return min_cost_flow_cycle_cancel(net, target);
    case MinCostFlowAlgorithm::kOutOfKilter:
      return min_cost_flow_out_of_kilter(net, target);
    case MinCostFlowAlgorithm::kNetworkSimplex:
      return min_cost_flow_network_simplex(net, target);
  }
  RSIN_ENSURE(false, "unknown min-cost-flow algorithm");
  return {};
}

}  // namespace rsin::flow
