#include "flow/bipartite.hpp"

#include <deque>
#include <functional>
#include <limits>

namespace rsin::flow {
namespace {

constexpr std::int32_t kUnmatched = -1;
constexpr std::int32_t kInfDistance = std::numeric_limits<std::int32_t>::max();

}  // namespace

namespace {

std::size_t checked_vertex_count(std::int32_t count) {
  RSIN_REQUIRE(count >= 0, "vertex counts must be non-negative");
  return static_cast<std::size_t>(count);
}

}  // namespace

BipartiteGraph::BipartiteGraph(std::int32_t left_count,
                               std::int32_t right_count)
    : adjacency_(checked_vertex_count(left_count)),
      right_count_(right_count) {
  RSIN_REQUIRE(right_count >= 0, "vertex counts must be non-negative");
}

void BipartiteGraph::add_edge(std::int32_t left, std::int32_t right) {
  RSIN_REQUIRE(left >= 0 && static_cast<std::size_t>(left) < adjacency_.size(),
               "left vertex out of range");
  RSIN_REQUIRE(right >= 0 && right < right_count_,
               "right vertex out of range");
  adjacency_[static_cast<std::size_t>(left)].push_back(right);
}

MatchingResult hopcroft_karp(const BipartiteGraph& graph) {
  const auto n_left = static_cast<std::size_t>(graph.left_count());
  const auto n_right = static_cast<std::size_t>(graph.right_count());
  MatchingResult result;
  result.match_left.assign(n_left, kUnmatched);
  result.match_right.assign(n_right, kUnmatched);

  std::vector<std::int32_t> distance(n_left);

  // BFS layering over free left vertices; returns true when an augmenting
  // path exists (some free right vertex is reachable).
  const auto bfs = [&] {
    std::deque<std::int32_t> queue;
    bool found = false;
    for (std::size_t l = 0; l < n_left; ++l) {
      if (result.match_left[l] == kUnmatched) {
        distance[l] = 0;
        queue.push_back(static_cast<std::int32_t>(l));
      } else {
        distance[l] = kInfDistance;
      }
    }
    while (!queue.empty()) {
      const std::int32_t l = queue.front();
      queue.pop_front();
      for (const std::int32_t r : graph.neighbors(l)) {
        const std::int32_t next = result.match_right[static_cast<std::size_t>(r)];
        if (next == kUnmatched) {
          found = true;
        } else if (distance[static_cast<std::size_t>(next)] == kInfDistance) {
          distance[static_cast<std::size_t>(next)] =
              distance[static_cast<std::size_t>(l)] + 1;
          queue.push_back(next);
        }
      }
    }
    return found;
  };

  // Layered DFS augmentation.
  const std::function<bool(std::int32_t)> dfs = [&](std::int32_t l) {
    for (const std::int32_t r : graph.neighbors(l)) {
      const std::int32_t next = result.match_right[static_cast<std::size_t>(r)];
      if (next == kUnmatched ||
          (distance[static_cast<std::size_t>(next)] ==
               distance[static_cast<std::size_t>(l)] + 1 &&
           dfs(next))) {
        result.match_left[static_cast<std::size_t>(l)] = r;
        result.match_right[static_cast<std::size_t>(r)] =
            static_cast<std::int32_t>(l);
        return true;
      }
    }
    distance[static_cast<std::size_t>(l)] = kInfDistance;  // dead end
    return false;
  };

  while (bfs()) {
    ++result.phases;
    for (std::size_t l = 0; l < n_left; ++l) {
      if (result.match_left[l] == kUnmatched &&
          dfs(static_cast<std::int32_t>(l))) {
        ++result.size;
      }
    }
  }
  return result;
}

}  // namespace rsin::flow
