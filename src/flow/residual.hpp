// Residual-graph scaffolding shared by the augmenting-path algorithms.
//
// Edges are stored in partner pairs: edge 2k is a forward copy of original
// arc k and edge 2k+1 is its reverse. Pushing x units along edge e removes
// x of residual capacity from e and adds x to e^1 — exactly the "advance or
// cancel flow" rule of Section III-B of the paper. The reverse copy's
// residual capacity always equals the current flow on the original arc, so
// publishing results is a straight copy.
//
// The adjacency is a flat CSR layout (offsets + edge array) in
// structure-of-arrays form: edge properties (head, residual, cost) live in
// parallel flat arrays, and each adjacency slot additionally caches its
// edge's head (adj_head_), so the BFS/DFS inner loops stream two
// sequential arrays per node instead of chasing edge ids into a scattered
// head table. Every buffer is reusable: rebuild() refills the graph from a
// network without reallocating, and sync_capacities() adopts changed
// capacities while *retaining* the feasible flow already routed — the
// residual-state reuse the paper's distributed token architecture performs
// after a circuit is established or torn down, instead of re-deriving the
// world from scratch. Per-call scratch (the CSR fill cursor, the repair
// path) comes from a util::Arena, so both paths are allocation-free in
// steady state (DESIGN.md §11).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flow/network.hpp"
#include "util/arena.hpp"

namespace rsin::flow {

class ResidualGraph {
 public:
  using EdgeId = std::int32_t;

  /// An empty graph; call rebuild() before use.
  ResidualGraph() = default;

  /// Builds the residual graph of `net`, honoring any flow already assigned
  /// to its arcs (so algorithms can warm-start from a partial assignment).
  explicit ResidualGraph(const FlowNetwork& net) { rebuild(net); }

  /// Rebuilds from `net` (honoring its assigned flow), reusing the internal
  /// buffers — allocation-free once the buffers have grown to the size of
  /// the largest network seen.
  void rebuild(const FlowNetwork& net);

  /// Warm-start resync: keeps the flow currently routed in this residual
  /// graph but adopts `net`'s (possibly changed) arc capacities. Where the
  /// retained flow exceeds a shrunk capacity, the excess is cancelled along
  /// the flow paths running through that arc, restoring conservation, so
  /// the result is a *feasible* flow on the new capacities that a solver
  /// can augment from. `net` must have the same structure (nodes, arcs,
  /// endpoints) as the network this graph was last rebuilt from; only
  /// capacities may differ. `net`'s flow assignment is ignored — the
  /// retained flow here is authoritative.
  ///
  /// Returns false when the repair walk cannot shed the excess (possible
  /// only for flows with cyclic components); the graph is then in an
  /// unspecified state and the caller must rebuild() cold.
  [[nodiscard]] bool sync_capacities(const FlowNetwork& net);

  [[nodiscard]] std::size_t node_count() const {
    return adj_offsets_.empty() ? 0 : adj_offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t edge_count() const { return head_.size(); }

  /// Residual edges leaving `v` (both forward and reverse copies).
  [[nodiscard]] std::span<const EdgeId> edges_from(NodeId v) const {
    const auto i = static_cast<std::size_t>(v);
    return {adj_edges_.data() + adj_offsets_[i],
            adj_offsets_[i + 1] - adj_offsets_[i]};
  }

  /// Heads of the edges in edges_from(v), slot for slot: heads_from(v)[k]
  /// == head(edges_from(v)[k]), but read from a sequential array so the
  /// hot scans avoid one scattered indirection per edge.
  [[nodiscard]] std::span<const NodeId> heads_from(NodeId v) const {
    const auto i = static_cast<std::size_t>(v);
    return {adj_head_.data() + adj_offsets_[i],
            adj_offsets_[i + 1] - adj_offsets_[i]};
  }

  [[nodiscard]] NodeId head(EdgeId e) const {
    return head_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] NodeId tail(EdgeId e) const { return head(partner(e)); }
  [[nodiscard]] Capacity residual(EdgeId e) const {
    return residual_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] Cost cost(EdgeId e) const {
    return cost_[static_cast<std::size_t>(e)];
  }
  /// The partner (reverse) edge of `e`.
  [[nodiscard]] static EdgeId partner(EdgeId e) { return e ^ 1; }
  /// True for the forward copy of an original arc.
  [[nodiscard]] static bool is_forward(EdgeId e) { return (e & 1) == 0; }
  /// Original arc id underlying residual edge `e`.
  [[nodiscard]] static ArcId original_arc(EdgeId e) { return e >> 1; }

  /// Moves `amount` units of flow across residual edge `e`.
  void push(EdgeId e, Capacity amount) {
    RSIN_REQUIRE(amount >= 0 && amount <= residual(e),
                 "push exceeds residual capacity");
    residual_[static_cast<std::size_t>(e)] -= amount;
    residual_[static_cast<std::size_t>(partner(e))] += amount;
  }

  /// Current flow assigned to original arc `a` (the reverse edge residual).
  [[nodiscard]] Capacity flow_on(ArcId a) const {
    return residual_[static_cast<std::size_t>(2 * a + 1)];
  }

  /// Net flow currently leaving `v`: flow on arcs out of `v` minus flow on
  /// arcs into `v`. At the source this is the value of the retained flow.
  [[nodiscard]] Capacity net_flow_from(NodeId v) const;

  /// Publishes the accumulated flow assignment back into `net`.
  void apply_to(FlowNetwork& net) const;

 private:
  /// Cancels `excess` units of flow routed through forward edge `fwd`,
  /// walking the surplus back to `source` and the deficit on to `sink`.
  /// `repair` is arena scratch for the walked path (>= node_count + 1).
  [[nodiscard]] bool cancel_through(EdgeId fwd, Capacity excess, NodeId source,
                                    NodeId sink, std::span<EdgeId> repair);
  /// Sheds `amount` units of flow imbalance at `start` by cancelling
  /// flow-carrying paths between `start` and `terminal`. `backward` walks
  /// arcs into the current node (toward the source); otherwise arcs out of
  /// it (toward the sink).
  [[nodiscard]] bool shed(NodeId start, NodeId terminal, Capacity amount,
                          bool backward, std::span<EdgeId> repair);
  /// Per-(node, direction) adjacency resume point for shed(), stamped lazily
  /// against shed_epoch_ so each sync_capacities starts from slot 0 without
  /// an O(n) reset. Flow only ever decreases during a repair, so an edge
  /// skipped as non-carrying can be skipped forever within one sync — the
  /// cursor turns repeated hub-node walks from O(degree^2) into amortized
  /// O(degree).
  [[nodiscard]] std::uint32_t& shed_cursor(NodeId at, bool backward) {
    const std::size_t i =
        2 * static_cast<std::size_t>(at) + (backward ? 1 : 0);
    if (shed_stamp_[i] != shed_epoch_) {
      shed_stamp_[i] = shed_epoch_;
      shed_cursor_[i] = 0;
    }
    return shed_cursor_[i];
  }

  // Edge properties, structure-of-arrays, indexed by EdgeId.
  std::vector<NodeId> head_;
  std::vector<Capacity> residual_;
  std::vector<Cost> cost_;
  // CSR adjacency; adj_head_ caches the head of each slot's edge.
  std::vector<std::size_t> adj_offsets_;  // node -> first index in adj_edges_
  std::vector<EdgeId> adj_edges_;         // flat adjacency, CSR layout
  std::vector<NodeId> adj_head_;          // head per adjacency slot
  // Epoch-stamped shed cursors (2 per node: forward / backward walks).
  std::vector<std::uint32_t> shed_cursor_;
  std::vector<std::uint32_t> shed_stamp_;
  std::uint32_t shed_epoch_ = 0;
  util::Arena arena_;  // per-call scratch: rebuild cursor, repair path
};

}  // namespace rsin::flow
