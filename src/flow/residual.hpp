// Residual-graph scaffolding shared by the augmenting-path algorithms.
//
// Edges are stored in partner pairs: edge 2k is a forward copy of original
// arc k and edge 2k+1 is its reverse. Pushing x units along edge e removes
// x of residual capacity from e and adds x to e^1 — exactly the "advance or
// cancel flow" rule of Section III-B of the paper. The reverse copy's
// residual capacity always equals the current flow on the original arc, so
// publishing results is a straight copy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flow/network.hpp"

namespace rsin::flow {

class ResidualGraph {
 public:
  using EdgeId = std::int32_t;

  /// Builds the residual graph of `net`, honoring any flow already assigned
  /// to its arcs (so algorithms can warm-start from a partial assignment).
  explicit ResidualGraph(const FlowNetwork& net);

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return head_.size(); }

  /// Residual edges leaving `v` (both forward and reverse copies).
  [[nodiscard]] std::span<const EdgeId> edges_from(NodeId v) const {
    return adjacency_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] NodeId head(EdgeId e) const {
    return head_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] NodeId tail(EdgeId e) const { return head(partner(e)); }
  [[nodiscard]] Capacity residual(EdgeId e) const {
    return residual_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] Cost cost(EdgeId e) const {
    return cost_[static_cast<std::size_t>(e)];
  }
  /// The partner (reverse) edge of `e`.
  [[nodiscard]] static EdgeId partner(EdgeId e) { return e ^ 1; }
  /// True for the forward copy of an original arc.
  [[nodiscard]] static bool is_forward(EdgeId e) { return (e & 1) == 0; }
  /// Original arc id underlying residual edge `e`.
  [[nodiscard]] static ArcId original_arc(EdgeId e) { return e >> 1; }

  /// Moves `amount` units of flow across residual edge `e`.
  void push(EdgeId e, Capacity amount) {
    RSIN_REQUIRE(amount >= 0 && amount <= residual(e),
                 "push exceeds residual capacity");
    residual_[static_cast<std::size_t>(e)] -= amount;
    residual_[static_cast<std::size_t>(partner(e))] += amount;
  }

  /// Current flow assigned to original arc `a` (the reverse edge residual).
  [[nodiscard]] Capacity flow_on(ArcId a) const {
    return residual_[static_cast<std::size_t>(2 * a + 1)];
  }

  /// Publishes the accumulated flow assignment back into `net`.
  void apply_to(FlowNetwork& net) const;

 private:
  std::vector<NodeId> head_;
  std::vector<Capacity> residual_;
  std::vector<Cost> cost_;
  std::vector<std::vector<EdgeId>> adjacency_;
};

}  // namespace rsin::flow
