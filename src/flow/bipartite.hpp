// Hopcroft–Karp maximum bipartite matching.
//
// The MRSIN scheduling problem on a crossbar (single-switch) fabric is
// exactly maximum bipartite matching, and on any fabric the source/sink
// structure of Transformation 1 is bipartite-like; Hopcroft–Karp is the
// matching-specialized form of Dinic with the same O(E sqrt(V)) bound.
// The library ships it both as a fast path for pure matching workloads and
// as an algorithmically independent oracle in the max-flow property tests.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace rsin::flow {

/// A bipartite graph over `left_count` x `right_count` vertices.
class BipartiteGraph {
 public:
  BipartiteGraph(std::int32_t left_count, std::int32_t right_count);

  void add_edge(std::int32_t left, std::int32_t right);

  [[nodiscard]] std::int32_t left_count() const {
    return static_cast<std::int32_t>(adjacency_.size());
  }
  [[nodiscard]] std::int32_t right_count() const { return right_count_; }
  [[nodiscard]] const std::vector<std::int32_t>& neighbors(
      std::int32_t left) const {
    RSIN_REQUIRE(left >= 0 &&
                     static_cast<std::size_t>(left) < adjacency_.size(),
                 "left vertex out of range");
    return adjacency_[static_cast<std::size_t>(left)];
  }

 private:
  std::vector<std::vector<std::int32_t>> adjacency_;
  std::int32_t right_count_;
};

struct MatchingResult {
  /// match_left[l] = matched right vertex, or -1.
  std::vector<std::int32_t> match_left;
  /// match_right[r] = matched left vertex, or -1.
  std::vector<std::int32_t> match_right;
  std::int32_t size = 0;
  std::int64_t phases = 0;  ///< BFS/DFS rounds (O(sqrt(V)) of them).
};

/// Maximum matching in O(E sqrt(V)).
MatchingResult hopcroft_karp(const BipartiteGraph& graph);

}  // namespace rsin::flow
