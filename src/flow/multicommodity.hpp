// Multicommodity flow (Section III-D of the paper).
//
// A heterogeneous MRSIN with k resource types maps to a k-commodity flow
// network: one source/sink pair per type, all commodities sharing the
// physical links ("bundle" capacities). The paper formulates both the
// maximum-flow and the minimum-cost variants as linear programs and relies
// on the Evans–Jarvis result that restricted topologies (the MIN class)
// admit integral optimal basic solutions; the general integral problem is
// NP-hard.
//
// This module builds those LPs over a shared FlowNetwork and solves them
// with rsin::lp. A sequential per-commodity combinatorial solver is also
// provided as the natural greedy baseline (its value can be strictly worse
// than the LP optimum because early commodities can block later ones).
#pragma once

#include <vector>

#include "flow/network.hpp"
#include "lp/simplex.hpp"

namespace rsin::flow {

/// One commodity: a source/sink pair, an optional demand cap, and optional
/// per-arc costs (defaults to the arc's own cost when empty).
struct Commodity {
  NodeId source = kInvalidNode;
  NodeId sink = kInvalidNode;
  /// Upper bound on this commodity's flow value; negative = uncapped.
  Capacity demand = -1;
  /// Per-arc cost override (size must equal net.arc_count() when set).
  std::vector<Cost> costs;
};

struct MultiCommodityResult {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  /// flows[i][a] = flow of commodity i on arc a.
  std::vector<std::vector<double>> flows;
  /// Per-commodity total flow value F_i.
  std::vector<double> commodity_values;
  double total_value = 0.0;
  double total_cost = 0.0;
  /// True when every per-commodity arc flow is integral (within 1e-6) —
  /// the Evans–Jarvis property the paper leans on for MIN topologies.
  bool integral = false;
  std::int64_t simplex_iterations = 0;
};

/// Maximizes sum_i F_i subject to conservation per commodity and bundle
/// capacity per arc (the "Multicommodity Maximum Flow Problem" of the
/// paper). The network's arc capacities are the bundle capacities.
MultiCommodityResult max_multicommodity_flow(
    const FlowNetwork& net, const std::vector<Commodity>& commodities);

/// Minimizes total cost subject to each commodity advancing exactly its
/// demand (the "Multicommodity Minimum Cost Flow Problem"). Every commodity
/// must have demand >= 0.
MultiCommodityResult min_cost_multicommodity_flow(
    const FlowNetwork& net, const std::vector<Commodity>& commodities);

/// Greedy baseline: routes commodities one at a time with Dinic on the
/// remaining capacities, in the given order. Returns per-commodity values;
/// can be suboptimal because earlier commodities may block later ones.
std::vector<Capacity> sequential_multicommodity_flow(
    FlowNetwork net, const std::vector<Commodity>& commodities);

}  // namespace rsin::flow
