#include "flow/residual.hpp"

namespace rsin::flow {

ResidualGraph::ResidualGraph(const FlowNetwork& net) {
  const std::size_t n = net.node_count();
  const std::size_t m = net.arc_count();
  head_.reserve(2 * m);
  residual_.reserve(2 * m);
  cost_.reserve(2 * m);
  adjacency_.assign(n, {});

  for (std::size_t a = 0; a < m; ++a) {
    const Arc& arc = net.arc(static_cast<ArcId>(a));
    // Forward copy: remaining capacity; reverse copy: cancellable flow.
    head_.push_back(arc.to);
    residual_.push_back(arc.capacity - arc.flow);
    cost_.push_back(arc.cost);
    head_.push_back(arc.from);
    residual_.push_back(arc.flow);
    cost_.push_back(-arc.cost);

    const auto fwd = static_cast<EdgeId>(2 * a);
    adjacency_[static_cast<std::size_t>(arc.from)].push_back(fwd);
    adjacency_[static_cast<std::size_t>(arc.to)].push_back(partner(fwd));
  }
}

void ResidualGraph::apply_to(FlowNetwork& net) const {
  RSIN_REQUIRE(net.arc_count() * 2 == head_.size(),
               "residual graph was built from a different network");
  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    const auto id = static_cast<ArcId>(a);
    net.set_flow(id, flow_on(id));
  }
}

}  // namespace rsin::flow
