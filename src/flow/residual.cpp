#include "flow/residual.hpp"

#include <algorithm>
#include <limits>

namespace rsin::flow {

void ResidualGraph::rebuild(const FlowNetwork& net) {
  const std::size_t n = net.node_count();
  const std::size_t m = net.arc_count();
  head_.resize(2 * m);
  residual_.resize(2 * m);
  cost_.resize(2 * m);

  // CSR adjacency in two passes: count degrees, prefix-sum, then fill with
  // a moving cursor. Filling in arc order reproduces the insertion order of
  // a per-node edge-list build, so algorithms explore edges identically.
  adj_offsets_.assign(n + 1, 0);
  for (std::size_t a = 0; a < m; ++a) {
    const Arc& arc = net.arc(static_cast<ArcId>(a));
    ++adj_offsets_[static_cast<std::size_t>(arc.from) + 1];
    ++adj_offsets_[static_cast<std::size_t>(arc.to) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) adj_offsets_[v + 1] += adj_offsets_[v];
  adj_edges_.resize(2 * m);
  adj_head_.resize(2 * m);
  arena_.reset();
  const std::span<std::size_t> cursor = arena_.alloc<std::size_t>(n);
  std::copy(adj_offsets_.begin(), adj_offsets_.end() - 1, cursor.begin());

  for (std::size_t a = 0; a < m; ++a) {
    const Arc& arc = net.arc(static_cast<ArcId>(a));
    const auto fwd = static_cast<EdgeId>(2 * a);
    // Forward copy: remaining capacity; reverse copy: cancellable flow.
    head_[static_cast<std::size_t>(fwd)] = arc.to;
    residual_[static_cast<std::size_t>(fwd)] = arc.capacity - arc.flow;
    cost_[static_cast<std::size_t>(fwd)] = arc.cost;
    head_[static_cast<std::size_t>(fwd) + 1] = arc.from;
    residual_[static_cast<std::size_t>(fwd) + 1] = arc.flow;
    cost_[static_cast<std::size_t>(fwd) + 1] = -arc.cost;

    const std::size_t from_slot = cursor[static_cast<std::size_t>(arc.from)]++;
    adj_edges_[from_slot] = fwd;
    adj_head_[from_slot] = arc.to;
    const std::size_t to_slot = cursor[static_cast<std::size_t>(arc.to)]++;
    adj_edges_[to_slot] = partner(fwd);
    adj_head_[to_slot] = arc.from;
  }
}

bool ResidualGraph::sync_capacities(const FlowNetwork& net) {
  RSIN_REQUIRE(net.arc_count() * 2 == head_.size() &&
                   net.node_count() == node_count(),
               "sync_capacities requires the network this residual graph "
               "was built from");
  const NodeId source = net.source();
  const NodeId sink = net.sink();
  const std::size_t n = node_count();

  // Start a fresh shed-cursor epoch: every cursor reads as 0 until its
  // first use this sync, at O(1) total reset cost.
  if (shed_cursor_.size() != 2 * n) {
    shed_cursor_.assign(2 * n, 0);
    shed_stamp_.assign(2 * n, 0);
    shed_epoch_ = 0;
  }
  if (++shed_epoch_ == 0) {
    std::fill(shed_stamp_.begin(), shed_stamp_.end(), 0);
    shed_epoch_ = 1;
  }
  arena_.reset();
  const std::span<EdgeId> repair = arena_.alloc<EdgeId>(n + 1);

  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    const Arc& arc = net.arc(static_cast<ArcId>(a));
    const auto fwd = static_cast<EdgeId>(2 * a);
    const std::size_t rev = static_cast<std::size_t>(fwd) + 1;
    if (residual_[rev] > arc.capacity) {
      if (!cancel_through(fwd, residual_[rev] - arc.capacity, source, sink,
                          repair)) {
        return false;
      }
    }
    residual_[static_cast<std::size_t>(fwd)] = arc.capacity - residual_[rev];
  }
  return true;
}

bool ResidualGraph::cancel_through(EdgeId fwd, Capacity excess, NodeId source,
                                   NodeId sink, std::span<EdgeId> repair) {
  const NodeId u = tail(fwd);
  const NodeId v = head(fwd);
  push(partner(fwd), excess);  // cancel the excess on the arc itself
  // u now has surplus inflow and v an equal deficit; walk both back onto
  // flow-carrying paths and cancel, unit-chunk by unit-chunk.
  return shed(u, source, excess, /*backward=*/true, repair) &&
         shed(v, sink, excess, /*backward=*/false, repair);
}

bool ResidualGraph::shed(NodeId start, NodeId terminal, Capacity amount,
                         bool backward, std::span<EdgeId> repair) {
  constexpr Capacity kInf = std::numeric_limits<Capacity>::max();
  while (amount > 0 && start != terminal) {
    std::size_t repair_len = 0;
    NodeId at = start;
    Capacity bottleneck = kInf;
    std::size_t steps = 0;
    while (at != terminal) {
      // Flow decomposition guarantees a flow-carrying path unless the flow
      // has a cyclic component that could trap the greedy walk; a simple
      // path visits each node at most once, so more hops than nodes means
      // a cycle — abort to a cold rebuild instead of spinning.
      if (++steps > node_count()) return false;
      const auto edges = edges_from(at);
      const auto heads = heads_from(at);
      std::uint32_t& cur = shed_cursor(at, backward);
      bool advanced = false;
      while (cur < edges.size()) {
        const EdgeId e = edges[cur];
        // backward: arcs *into* `at` carrying flow are the reverse copies
        // stored at `at` (their residual equals the arc's flow and their
        // head is the arc's tail). forward: arcs *out of* `at` carrying
        // flow are forward copies whose partner holds the flow. Flow only
        // decreases during a repair, so a non-carrying edge stays
        // non-carrying and the cursor may skip it for the rest of the
        // sync; the carrying edge the walk takes is re-examined on the
        // next visit (the cursor is not advanced past it).
        const bool carries = backward
                                 ? (!is_forward(e) && residual(e) > 0)
                                 : (is_forward(e) && residual(partner(e)) > 0);
        if (!carries) {
          ++cur;
          continue;
        }
        const EdgeId flow_edge = backward ? e : partner(e);
        bottleneck = std::min(bottleneck, residual(flow_edge));
        repair[repair_len++] = flow_edge;
        at = heads[cur];
        advanced = true;
        break;
      }
      if (!advanced) return false;  // conservation violated upstream
    }
    const Capacity cancel = std::min(amount, bottleneck);
    for (std::size_t i = 0; i < repair_len; ++i) push(repair[i], cancel);
    amount -= cancel;
  }
  return true;
}

Capacity ResidualGraph::net_flow_from(NodeId v) const {
  Capacity total = 0;
  for (const EdgeId e : edges_from(v)) {
    if (is_forward(e)) {
      total += residual(partner(e));  // flow on an arc out of v
    } else {
      total -= residual(e);  // flow on an arc into v
    }
  }
  return total;
}

void ResidualGraph::apply_to(FlowNetwork& net) const {
  RSIN_REQUIRE(net.arc_count() * 2 == head_.size(),
               "residual graph was built from a different network");
  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    const auto id = static_cast<ArcId>(a);
    net.set_flow(id, flow_on(id));
  }
}

}  // namespace rsin::flow
