#include "flow/push_relabel.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <vector>

namespace rsin::flow {

MaxFlowResult max_flow_push_relabel(FlowNetwork& net) {
  RSIN_REQUIRE(net.valid_node(net.source()), "network needs a source");
  RSIN_REQUIRE(net.valid_node(net.sink()), "network needs a sink");
  RSIN_REQUIRE(net.source() != net.sink(), "source and sink must differ");

  ResidualGraph residual(net);
  MaxFlowResult result;
  const std::size_t n = residual.node_count();
  const auto s = static_cast<std::size_t>(net.source());
  const auto t = static_cast<std::size_t>(net.sink());

  std::vector<Capacity> excess(n, 0);
  std::vector<std::size_t> height(n, 0);
  std::vector<std::size_t> current(n, 0);  // current-arc pointers
  std::vector<std::size_t> height_count(2 * n + 1, 0);
  height[s] = n;
  height_count[0] = n - 1;
  height_count[n] = 1;

  std::deque<NodeId> active;
  std::vector<char> in_queue(n, 0);
  const auto activate = [&](NodeId v) {
    const auto i = static_cast<std::size_t>(v);
    if (i == s || i == t || in_queue[i] || excess[i] <= 0) return;
    in_queue[i] = 1;
    active.push_back(v);
  };

  // Saturate every residual edge out of the source.
  for (const auto e : residual.edges_from(net.source())) {
    const Capacity amount = residual.residual(e);
    if (amount <= 0) continue;
    residual.push(e, amount);
    excess[static_cast<std::size_t>(residual.head(e))] += amount;
    excess[s] -= amount;
    ++result.operations;
    activate(residual.head(e));
  }

  const auto relabel = [&](std::size_t v) {
    // Gap heuristic: if v leaves its height level empty, every node above
    // that level (below n) can never reach the sink again — lift them all.
    const std::size_t old_height = height[v];
    std::size_t best = std::numeric_limits<std::size_t>::max();
    for (const auto e : residual.edges_from(static_cast<NodeId>(v))) {
      ++result.operations;
      if (residual.residual(e) > 0) {
        best = std::min(best,
                        height[static_cast<std::size_t>(residual.head(e))]);
      }
    }
    RSIN_ENSURE(best != std::numeric_limits<std::size_t>::max(),
                "relabel of a node with no residual edges");
    --height_count[old_height];
    height[v] = best + 1;
    ++height_count[height[v]];
    current[v] = 0;
    if (height_count[old_height] == 0 && old_height < n) {
      for (std::size_t w = 0; w < n; ++w) {
        if (height[w] > old_height && height[w] <= n && w != s) {
          --height_count[height[w]];
          height[w] = n + 1;
          ++height_count[height[w]];
        }
      }
    }
  };

  while (!active.empty()) {
    const NodeId v_id = active.front();
    active.pop_front();
    const auto v = static_cast<std::size_t>(v_id);
    in_queue[v] = 0;

    // Discharge v completely.
    while (excess[v] > 0) {
      const auto edges = residual.edges_from(v_id);
      if (current[v] == edges.size()) {
        relabel(v);
        if (height[v] > 2 * n) break;  // defensive; cannot happen
        continue;
      }
      const auto e = edges[current[v]];
      ++result.operations;
      const auto w = static_cast<std::size_t>(residual.head(e));
      if (residual.residual(e) > 0 && height[v] == height[w] + 1) {
        const Capacity amount = std::min(excess[v], residual.residual(e));
        residual.push(e, amount);
        excess[v] -= amount;
        excess[w] += amount;
        activate(residual.head(e));
      } else {
        ++current[v];
      }
    }
  }

  result.value = excess[t];
  residual.apply_to(net);
  return result;
}

}  // namespace rsin::flow
