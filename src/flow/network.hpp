// Flow-network representation used by every algorithm in rsin::flow.
//
// This is the "G(V, E, s, t, c, w)" object of Section III of the paper: a
// digraph with per-arc capacities, optional per-arc costs, a distinguished
// source and sink, and a (mutable) flow assignment. The MRSIN-to-flow
// transformations in rsin::core produce these networks; the algorithms in
// ford_fulkerson.*, dinic.*, and min_cost.* consume them and write the
// resulting flow assignment back into the arcs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace rsin::flow {

using NodeId = std::int32_t;
using ArcId = std::int32_t;
using Capacity = std::int64_t;
using Cost = std::int64_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr ArcId kInvalidArc = -1;

/// A directed arc with capacity, cost-per-unit-flow, and current flow.
struct Arc {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Capacity capacity = 0;
  Cost cost = 0;
  Capacity flow = 0;
};

/// A flow network: digraph + source + sink + capacities (+ costs) + flow.
///
/// Node and arc ids are dense indices assigned in creation order, so they
/// can be used directly as vector indices by algorithms. The class keeps
/// per-node in/out adjacency (the alpha(v) / beta(v) arc sets of the paper).
class FlowNetwork {
 public:
  FlowNetwork() = default;

  /// Adds a node; `label` is kept for diagnostics and figure printing.
  NodeId add_node(std::string label = {});

  /// Adds an arc from `from` to `to`. Capacity must be non-negative.
  ArcId add_arc(NodeId from, NodeId to, Capacity capacity, Cost cost = 0);

  void set_source(NodeId s);
  void set_sink(NodeId t);

  [[nodiscard]] NodeId source() const { return source_; }
  [[nodiscard]] NodeId sink() const { return sink_; }
  [[nodiscard]] std::size_t node_count() const { return labels_.size(); }
  [[nodiscard]] std::size_t arc_count() const { return arcs_.size(); }

  [[nodiscard]] const Arc& arc(ArcId id) const {
    RSIN_REQUIRE(valid_arc(id), "arc id out of range");
    return arcs_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const std::string& label(NodeId id) const {
    RSIN_REQUIRE(valid_node(id), "node id out of range");
    return labels_[static_cast<std::size_t>(id)];
  }

  /// Outgoing arc ids of `v` — the beta(v) set of the paper.
  [[nodiscard]] std::span<const ArcId> out_arcs(NodeId v) const {
    RSIN_REQUIRE(valid_node(v), "node id out of range");
    return out_[static_cast<std::size_t>(v)];
  }
  /// Incoming arc ids of `v` — the alpha(v) set of the paper.
  [[nodiscard]] std::span<const ArcId> in_arcs(NodeId v) const {
    RSIN_REQUIRE(valid_node(v), "node id out of range");
    return in_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] bool valid_node(NodeId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < labels_.size();
  }
  [[nodiscard]] bool valid_arc(ArcId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < arcs_.size();
  }

  /// Overwrites the flow on one arc. Algorithms use this to publish results;
  /// the value must respect 0 <= flow <= capacity.
  void set_flow(ArcId id, Capacity flow);

  /// Overwrites one arc's capacity (non-negative). Used by the warm-start
  /// scheduling path to mutate a persistent network between cycles instead
  /// of rebuilding it. Lowering the capacity below the arc's current flow
  /// is allowed and leaves the flow temporarily illegal; the warm-start
  /// residual repair (ResidualGraph::sync_capacities) restores legality
  /// before the flow is read again.
  void set_capacity(ArcId id, Capacity capacity);

  /// Resets every arc's flow to zero.
  void clear_flow();

  /// Zeroes every arc's capacity in one pass (flow is untouched, so the
  /// assignment may be temporarily illegal exactly as with set_capacity).
  /// This is the bulk reset the warm scheduler's per-cycle capacity
  /// overwrite starts from — one linear sweep instead of arc_count()
  /// bounds-checked set_capacity calls.
  void clear_capacities();

  /// Total flow currently leaving the source (equals flow into the sink for
  /// any conservative assignment).
  [[nodiscard]] Capacity flow_value() const;

  /// Total cost of the current assignment: sum over arcs of cost * flow.
  [[nodiscard]] Cost flow_cost() const;

  /// True if every arc has capacity <= 1 (the MRSIN case).
  [[nodiscard]] bool is_unit_capacity() const;

  /// Finds the first node carrying `label`, or kInvalidNode.
  [[nodiscard]] NodeId find_node(const std::string& label) const;

  /// Renders a human-readable dump (one line per arc) for figure benches.
  void print(std::ostream& out) const;

 private:
  std::vector<Arc> arcs_;
  std::vector<std::string> labels_;
  std::vector<std::vector<ArcId>> out_;
  std::vector<std::vector<ArcId>> in_;
  NodeId source_ = kInvalidNode;
  NodeId sink_ = kInvalidNode;
};

std::ostream& operator<<(std::ostream& out, const FlowNetwork& net);

}  // namespace rsin::flow
