#include "flow/schedule_context.hpp"

#include <algorithm>
#include <limits>

namespace rsin::flow {
namespace {

constexpr Capacity kInf = std::numeric_limits<Capacity>::max();

void require_st(const FlowNetwork& net) {
  RSIN_REQUIRE(net.valid_node(net.source()), "network needs a source");
  RSIN_REQUIRE(net.valid_node(net.sink()), "network needs a sink");
  RSIN_REQUIRE(net.source() != net.sink(), "source and sink must differ");
}

/// Level-synchronous BFS over the residual graph into the context's
/// epoch-stamped level scratch. The frontier is a word-packed bit set
/// iterated with ctz (64 nodes per word); the per-layer reset clears only
/// the touched words and the level reset is an O(1) epoch bump, so a BFS
/// costs O(nodes + edges touched) — independent of node_count(). Returns
/// true when the sink is reachable. Expansion stops with the layer that
/// reaches the sink — deeper nodes cannot lie on a shortest augmenting
/// path — which labels exactly the nodes the scalar queue BFS labels, with
/// identical levels.
bool bfs_levels(const ResidualGraph& residual, ScheduleContext& ctx,
                NodeId source, NodeId sink, std::int64_t& ops) {
  ctx.begin_bfs();
  ctx.frontier.clear();
  ctx.next_frontier.clear();
  ctx.set_level(source, 0);
  ctx.frontier.set(static_cast<std::size_t>(source));
  int depth = 0;
  bool sink_found = false;
  while (ctx.frontier.any()) {
    ctx.frontier.for_each_set([&](std::size_t vi) {
      const auto edges = residual.edges_from(static_cast<NodeId>(vi));
      const auto heads = residual.heads_from(static_cast<NodeId>(vi));
      for (std::size_t k = 0; k < edges.size(); ++k) {
        ++ops;
        if (residual.residual(edges[k]) <= 0) continue;
        const NodeId w = heads[k];
        if (ctx.level_of(w) != -1) continue;
        ctx.set_level(w, depth + 1);
        ctx.next_frontier.set(static_cast<std::size_t>(w));
        if (w == sink) sink_found = true;
      }
    });
    if (sink_found) return true;
    swap(ctx.frontier, ctx.next_frontier);
    ctx.next_frontier.clear();
    ++depth;
  }
  return false;
}

/// One blocking-flow augmentation along the layered structure in ctx.level;
/// returns the amount pushed (0 when this phase is dry). Identical logic to
/// the cold solver's iterative DFS, reading scratch from the context.
Capacity advance_one_path(ResidualGraph& residual, ScheduleContext& ctx,
                          NodeId source, NodeId sink, std::int64_t& ops) {
  ctx.path.clear();
  NodeId v = source;
  while (true) {
    if (v == sink) {
      Capacity bottleneck = kInf;
      for (const auto e : ctx.path) {
        bottleneck = std::min(bottleneck, residual.residual(e));
      }
      for (const auto e : ctx.path) residual.push(e, bottleneck);
      return bottleneck;
    }
    const auto edges = residual.edges_from(v);
    const auto heads = residual.heads_from(v);
    bool advanced = false;
    std::uint32_t& next = ctx.next_edge_ref(v);
    while (next < edges.size()) {
      const auto e = edges[next];
      ++ops;
      const NodeId w = heads[next];
      if (residual.residual(e) > 0 &&
          ctx.level_of(w) == ctx.level_of(v) + 1) {
        ctx.path.push_back(e);
        v = w;
        advanced = true;
        break;
      }
      ++next;
    }
    if (advanced) continue;
    // Dead end: retreat (or give up if we are back at the source).
    ctx.set_level(v, -1);  // prune from this phase
    if (ctx.path.empty()) return 0;
    v = residual.tail(ctx.path.back());
    ctx.path.pop_back();
    ++ctx.next_edge_ref(v);
  }
}

/// Runs Dinic phases over the context's residual until no augmenting path
/// remains. Returns only the newly advanced flow in `value`. The
/// next_edge reset between phases is an O(1) epoch bump (begin_phase), not
/// an O(n) fill — on sparse giants the whole solve touches only the nodes
/// the BFS and DFS actually reach.
MaxFlowResult dinic_phases(ScheduleContext& ctx, NodeId source, NodeId sink) {
  MaxFlowResult result;
  ctx.ensure_nodes(ctx.residual.node_count());
  while (bfs_levels(ctx.residual, ctx, source, sink, result.operations)) {
    ctx.begin_phase();
    ++result.phases;
    while (true) {
      const Capacity pushed =
          advance_one_path(ctx.residual, ctx, source, sink, result.operations);
      if (pushed == 0) break;
      result.value += pushed;
      ++result.augmentations;
    }
  }
  result.scratch_resets = ctx.take_scratch_resets();
  return result;
}

/// Folds one solve's result into the context's bound instruments (no-op
/// when unbound). warm/cancelled cover the warm path; cold solves pass
/// warm=false, cancelled=0.
void record_solve(const SolverObs& obs, const MaxFlowResult& result, bool warm,
                  Capacity cancelled) {
  if (!obs.bound()) return;
  obs.phases->add(result.phases);
  obs.augmentations->add(result.augmentations);
  obs.operations->add(result.operations);
  obs.scratch_resets->add(result.scratch_resets);
  (warm ? obs.warm_cycles : obs.cold_rebuilds)->add(1);
  if (cancelled > 0) obs.repair_cancelled->add(cancelled);
}

}  // namespace

MaxFlowResult max_flow_dinic(FlowNetwork& net, ScheduleContext& ctx) {
  require_st(net);
  ctx.residual.rebuild(net);
  MaxFlowResult result = dinic_phases(ctx, net.source(), net.sink());
  ctx.residual.apply_to(net);
  ctx.warm_valid = true;
  record_solve(ctx.obs, result, /*warm=*/false, /*cancelled=*/0);
  return result;
}

MaxFlowResult warm_max_flow_dinic(FlowNetwork& net, ScheduleContext& ctx) {
  require_st(net);
  ++ctx.stats.cycles;
  ctx.stats.retained_flow = 0;

  const bool structure_matches =
      ctx.warm_valid && ctx.residual.node_count() == net.node_count() &&
      ctx.residual.edge_count() == 2 * net.arc_count();
  bool warm = false;
  Capacity cancelled = 0;
  if (structure_matches) {
    const Capacity before = ctx.residual.net_flow_from(net.source());
    if (ctx.residual.sync_capacities(net)) {
      const Capacity retained = ctx.residual.net_flow_from(net.source());
      ctx.stats.retained_flow = retained;
      cancelled = before - retained;
      ctx.stats.repair_cancelled += cancelled;
      warm = true;
    } else {
      // Repair hit a cyclic flow component; the residual is unusable and
      // net's stale assignment may violate the new capacities — restart
      // from an empty flow.
      net.clear_flow();
    }
  }
  if (!warm) {
    // Cold rebuild honors net's assigned flow — unless a capacity was
    // lowered below it, which only an empty start can repair.
    for (std::size_t a = 0; a < net.arc_count(); ++a) {
      const Arc& arc = net.arc(static_cast<ArcId>(a));
      if (arc.flow > arc.capacity) {
        net.clear_flow();
        break;
      }
    }
    ctx.residual.rebuild(net);
    ctx.stats.retained_flow = ctx.residual.net_flow_from(net.source());
    ++ctx.stats.cold_rebuilds;
  } else {
    ++ctx.stats.warm_cycles;
  }

  MaxFlowResult result = dinic_phases(ctx, net.source(), net.sink());
  result.value += ctx.stats.retained_flow;  // report the TOTAL flow value
  ctx.residual.apply_to(net);
  ctx.warm_valid = true;
  record_solve(ctx.obs, result, warm, cancelled);
  return result;
}

}  // namespace rsin::flow
