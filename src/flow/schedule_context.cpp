#include "flow/schedule_context.hpp"

#include <algorithm>
#include <limits>

namespace rsin::flow {
namespace {

constexpr Capacity kInf = std::numeric_limits<Capacity>::max();

void require_st(const FlowNetwork& net) {
  RSIN_REQUIRE(net.valid_node(net.source()), "network needs a source");
  RSIN_REQUIRE(net.valid_node(net.sink()), "network needs a sink");
  RSIN_REQUIRE(net.source() != net.sink(), "source and sink must differ");
}

/// BFS level assignment over the residual graph into ctx.level. Returns
/// true when the sink is reachable. Expansion stops at the sink's layer —
/// deeper nodes cannot lie on a shortest augmenting path.
bool bfs_levels(const ResidualGraph& residual, ScheduleContext& ctx,
                NodeId source, NodeId sink, std::int64_t& ops) {
  const std::size_t n = residual.node_count();
  ctx.level.resize(n);
  std::fill(ctx.level.begin(), ctx.level.end(), -1);
  ctx.bfs_queue.clear();
  ctx.bfs_queue.push_back(source);
  ctx.level[static_cast<std::size_t>(source)] = 0;
  int sink_level = -1;
  for (std::size_t i = 0; i < ctx.bfs_queue.size(); ++i) {
    const NodeId v = ctx.bfs_queue[i];
    const int lv = ctx.level[static_cast<std::size_t>(v)];
    if (sink_level != -1 && lv + 1 > sink_level) break;
    for (const auto e : residual.edges_from(v)) {
      ++ops;
      if (residual.residual(e) <= 0) continue;
      const NodeId w = residual.head(e);
      if (ctx.level[static_cast<std::size_t>(w)] != -1) continue;
      ctx.level[static_cast<std::size_t>(w)] = lv + 1;
      if (w == sink) sink_level = lv + 1;
      ctx.bfs_queue.push_back(w);
    }
  }
  return sink_level != -1;
}

/// One blocking-flow augmentation along the layered structure in ctx.level;
/// returns the amount pushed (0 when this phase is dry). Identical logic to
/// the cold solver's iterative DFS, reading scratch from the context.
Capacity advance_one_path(ResidualGraph& residual, ScheduleContext& ctx,
                          NodeId source, NodeId sink, std::int64_t& ops) {
  ctx.path.clear();
  NodeId v = source;
  while (true) {
    if (v == sink) {
      Capacity bottleneck = kInf;
      for (const auto e : ctx.path) {
        bottleneck = std::min(bottleneck, residual.residual(e));
      }
      for (const auto e : ctx.path) residual.push(e, bottleneck);
      return bottleneck;
    }
    const auto edges = residual.edges_from(v);
    bool advanced = false;
    while (ctx.next_edge[static_cast<std::size_t>(v)] < edges.size()) {
      const auto e = edges[ctx.next_edge[static_cast<std::size_t>(v)]];
      ++ops;
      const NodeId w = residual.head(e);
      if (residual.residual(e) > 0 &&
          ctx.level[static_cast<std::size_t>(w)] ==
              ctx.level[static_cast<std::size_t>(v)] + 1) {
        ctx.path.push_back(e);
        v = w;
        advanced = true;
        break;
      }
      ++ctx.next_edge[static_cast<std::size_t>(v)];
    }
    if (advanced) continue;
    // Dead end: retreat (or give up if we are back at the source).
    ctx.level[static_cast<std::size_t>(v)] = -1;  // prune from this phase
    if (ctx.path.empty()) return 0;
    v = residual.tail(ctx.path.back());
    ctx.path.pop_back();
    ++ctx.next_edge[static_cast<std::size_t>(v)];
  }
}

/// Runs Dinic phases over the context's residual until no augmenting path
/// remains. Returns only the newly advanced flow in `value`.
MaxFlowResult dinic_phases(ScheduleContext& ctx, NodeId source, NodeId sink) {
  MaxFlowResult result;
  const std::size_t n = ctx.residual.node_count();
  ctx.next_edge.resize(n);
  while (bfs_levels(ctx.residual, ctx, source, sink, result.operations)) {
    std::fill(ctx.next_edge.begin(), ctx.next_edge.end(), 0);
    ++result.phases;
    while (true) {
      const Capacity pushed =
          advance_one_path(ctx.residual, ctx, source, sink, result.operations);
      if (pushed == 0) break;
      result.value += pushed;
      ++result.augmentations;
    }
  }
  return result;
}

/// Folds one solve's result into the context's bound instruments (no-op
/// when unbound). warm/cancelled cover the warm path; cold solves pass
/// warm=false, cancelled=0.
void record_solve(const SolverObs& obs, const MaxFlowResult& result, bool warm,
                  Capacity cancelled) {
  if (!obs.bound()) return;
  obs.phases->add(result.phases);
  obs.augmentations->add(result.augmentations);
  obs.operations->add(result.operations);
  (warm ? obs.warm_cycles : obs.cold_rebuilds)->add(1);
  if (cancelled > 0) obs.repair_cancelled->add(cancelled);
}

}  // namespace

MaxFlowResult max_flow_dinic(FlowNetwork& net, ScheduleContext& ctx) {
  require_st(net);
  ctx.residual.rebuild(net);
  MaxFlowResult result = dinic_phases(ctx, net.source(), net.sink());
  ctx.residual.apply_to(net);
  ctx.warm_valid = true;
  record_solve(ctx.obs, result, /*warm=*/false, /*cancelled=*/0);
  return result;
}

MaxFlowResult warm_max_flow_dinic(FlowNetwork& net, ScheduleContext& ctx) {
  require_st(net);
  ++ctx.stats.cycles;
  ctx.stats.retained_flow = 0;

  const bool structure_matches =
      ctx.warm_valid && ctx.residual.node_count() == net.node_count() &&
      ctx.residual.edge_count() == 2 * net.arc_count();
  bool warm = false;
  Capacity cancelled = 0;
  if (structure_matches) {
    const Capacity before = ctx.residual.net_flow_from(net.source());
    if (ctx.residual.sync_capacities(net)) {
      const Capacity retained = ctx.residual.net_flow_from(net.source());
      ctx.stats.retained_flow = retained;
      cancelled = before - retained;
      ctx.stats.repair_cancelled += cancelled;
      warm = true;
    } else {
      // Repair hit a cyclic flow component; the residual is unusable and
      // net's stale assignment may violate the new capacities — restart
      // from an empty flow.
      net.clear_flow();
    }
  }
  if (!warm) {
    // Cold rebuild honors net's assigned flow — unless a capacity was
    // lowered below it, which only an empty start can repair.
    for (std::size_t a = 0; a < net.arc_count(); ++a) {
      const Arc& arc = net.arc(static_cast<ArcId>(a));
      if (arc.flow > arc.capacity) {
        net.clear_flow();
        break;
      }
    }
    ctx.residual.rebuild(net);
    ctx.stats.retained_flow = ctx.residual.net_flow_from(net.source());
    ++ctx.stats.cold_rebuilds;
  } else {
    ++ctx.stats.warm_cycles;
  }

  MaxFlowResult result = dinic_phases(ctx, net.source(), net.sink());
  result.value += ctx.stats.retained_flow;  // report the TOTAL flow value
  ctx.residual.apply_to(net);
  ctx.warm_valid = true;
  record_solve(ctx.obs, result, warm, cancelled);
  return result;
}

}  // namespace rsin::flow
