#include "flow/multicommodity.hpp"

#include <cmath>

#include "flow/max_flow.hpp"

namespace rsin::flow {
namespace {

void validate_commodities(const FlowNetwork& net,
                          const std::vector<Commodity>& commodities,
                          bool demands_required) {
  RSIN_REQUIRE(!commodities.empty(), "at least one commodity is required");
  for (const Commodity& commodity : commodities) {
    RSIN_REQUIRE(net.valid_node(commodity.source),
                 "commodity source must be a node");
    RSIN_REQUIRE(net.valid_node(commodity.sink),
                 "commodity sink must be a node");
    RSIN_REQUIRE(commodity.source != commodity.sink,
                 "commodity source and sink must differ");
    RSIN_REQUIRE(commodity.costs.empty() ||
                     commodity.costs.size() == net.arc_count(),
                 "per-commodity cost vector must cover every arc");
    if (demands_required) {
      RSIN_REQUIRE(commodity.demand >= 0,
                   "min-cost multicommodity requires non-negative demands");
    }
  }
}

/// Shared LP construction. Variables: f_i(a) for each commodity/arc plus
/// one F_i per commodity. `maximize_value` selects the objective: sum F_i
/// (max-flow form) versus -sum of costs (min-cost form with F_i == demand).
struct BuiltLp {
  lp::LinearProgram program;
  std::vector<std::vector<int>> flow_var;  // [commodity][arc]
  std::vector<int> value_var;              // [commodity]
};

BuiltLp build_lp(const FlowNetwork& net,
                 const std::vector<Commodity>& commodities,
                 bool maximize_value) {
  BuiltLp built;
  const std::size_t k = commodities.size();
  const std::size_t m = net.arc_count();

  built.flow_var.assign(k, std::vector<int>(m, -1));
  built.value_var.assign(k, -1);

  for (std::size_t i = 0; i < k; ++i) {
    const Commodity& commodity = commodities[i];
    for (std::size_t a = 0; a < m; ++a) {
      const Cost cost = commodity.costs.empty()
                            ? net.arc(static_cast<ArcId>(a)).cost
                            : commodity.costs[a];
      const double objective =
          maximize_value ? 0.0 : -static_cast<double>(cost);
      built.flow_var[i][a] = built.program.add_variable(
          objective, "f" + std::to_string(i) + "_a" + std::to_string(a));
    }
    built.value_var[i] = built.program.add_variable(
        maximize_value ? 1.0 : 0.0, "F" + std::to_string(i));
  }

  // Flow conservation per commodity per node, with F_i entering at the
  // commodity's own source/sink rows (the formulation in Section III-D).
  for (std::size_t i = 0; i < k; ++i) {
    const Commodity& commodity = commodities[i];
    for (std::size_t v = 0; v < net.node_count(); ++v) {
      const auto node = static_cast<NodeId>(v);
      lp::Constraint row;
      for (const ArcId a : net.out_arcs(node)) {
        row.terms.emplace_back(built.flow_var[i][static_cast<std::size_t>(a)],
                               1.0);
      }
      for (const ArcId a : net.in_arcs(node)) {
        row.terms.emplace_back(built.flow_var[i][static_cast<std::size_t>(a)],
                               -1.0);
      }
      if (node == commodity.source) {
        row.terms.emplace_back(built.value_var[i], -1.0);
      } else if (node == commodity.sink) {
        row.terms.emplace_back(built.value_var[i], 1.0);
      } else if (row.terms.empty()) {
        continue;  // isolated node
      }
      row.relation = lp::Relation::kEqual;
      row.rhs = 0.0;
      built.program.add_constraint(std::move(row));
    }
    if (maximize_value && commodity.demand >= 0) {
      lp::Constraint cap;
      cap.terms.emplace_back(built.value_var[i], 1.0);
      cap.relation = lp::Relation::kLessEqual;
      cap.rhs = static_cast<double>(commodity.demand);
      built.program.add_constraint(std::move(cap));
    }
    if (!maximize_value) {
      lp::Constraint fixed;
      fixed.terms.emplace_back(built.value_var[i], 1.0);
      fixed.relation = lp::Relation::kEqual;
      fixed.rhs = static_cast<double>(commodity.demand);
      built.program.add_constraint(std::move(fixed));
    }
  }

  // Bundle capacity: sum of all commodities' flow on an arc <= c(e).
  for (std::size_t a = 0; a < m; ++a) {
    lp::Constraint bundle;
    for (std::size_t i = 0; i < k; ++i) {
      bundle.terms.emplace_back(built.flow_var[i][a], 1.0);
    }
    bundle.relation = lp::Relation::kLessEqual;
    bundle.rhs = static_cast<double>(net.arc(static_cast<ArcId>(a)).capacity);
    built.program.add_constraint(std::move(bundle));
  }
  return built;
}

MultiCommodityResult extract(const FlowNetwork& net,
                             const std::vector<Commodity>& commodities,
                             const BuiltLp& built, const lp::Solution& lp) {
  MultiCommodityResult result;
  result.status = lp.status;
  result.simplex_iterations = lp.iterations;
  if (lp.status != lp::SolveStatus::kOptimal) return result;

  const std::size_t k = commodities.size();
  const std::size_t m = net.arc_count();
  result.flows.assign(k, std::vector<double>(m, 0.0));
  result.commodity_values.assign(k, 0.0);
  result.integral = true;
  constexpr double kIntTol = 1e-6;

  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t a = 0; a < m; ++a) {
      const double f =
          lp.values[static_cast<std::size_t>(built.flow_var[i][a])];
      result.flows[i][a] = f;
      if (std::fabs(f - std::round(f)) > kIntTol) result.integral = false;
      const Cost cost = commodities[i].costs.empty()
                            ? net.arc(static_cast<ArcId>(a)).cost
                            : commodities[i].costs[a];
      result.total_cost += static_cast<double>(cost) * f;
    }
    result.commodity_values[i] =
        lp.values[static_cast<std::size_t>(built.value_var[i])];
    result.total_value += result.commodity_values[i];
  }
  return result;
}

}  // namespace

MultiCommodityResult max_multicommodity_flow(
    const FlowNetwork& net, const std::vector<Commodity>& commodities) {
  validate_commodities(net, commodities, /*demands_required=*/false);
  const BuiltLp built = build_lp(net, commodities, /*maximize_value=*/true);
  const lp::Solution lp = lp::solve(built.program);
  return extract(net, commodities, built, lp);
}

MultiCommodityResult min_cost_multicommodity_flow(
    const FlowNetwork& net, const std::vector<Commodity>& commodities) {
  validate_commodities(net, commodities, /*demands_required=*/true);
  const BuiltLp built = build_lp(net, commodities, /*maximize_value=*/false);
  const lp::Solution lp = lp::solve(built.program);
  return extract(net, commodities, built, lp);
}

std::vector<Capacity> sequential_multicommodity_flow(
    FlowNetwork net, const std::vector<Commodity>& commodities) {
  validate_commodities(net, commodities, /*demands_required=*/false);
  std::vector<Capacity> values;
  values.reserve(commodities.size());

  // Route each commodity with Dinic on what is left, then shrink the
  // remaining arc capacities by the flow just consumed.
  for (const Commodity& commodity : commodities) {
    net.set_source(commodity.source);
    net.set_sink(commodity.sink);
    net.clear_flow();
    MaxFlowResult result = max_flow_dinic(net);
    Capacity value = result.value;
    if (commodity.demand >= 0 && value > commodity.demand) {
      // Trim excess by cancelling flow along paths; simplest correct way is
      // to re-run with a capped super-source.
      FlowNetwork capped;
      for (std::size_t v = 0; v < net.node_count(); ++v) {
        capped.add_node(net.label(static_cast<NodeId>(v)));
      }
      for (std::size_t a = 0; a < net.arc_count(); ++a) {
        const Arc& arc = net.arc(static_cast<ArcId>(a));
        capped.add_arc(arc.from, arc.to, arc.capacity, arc.cost);
      }
      const NodeId super = capped.add_node("cap");
      capped.add_arc(super, commodity.source, commodity.demand, 0);
      capped.set_source(super);
      capped.set_sink(commodity.sink);
      max_flow_dinic(capped);
      for (std::size_t a = 0; a < net.arc_count(); ++a) {
        net.set_flow(static_cast<ArcId>(a),
                     capped.arc(static_cast<ArcId>(a)).flow);
      }
      value = commodity.demand;
    }
    values.push_back(value);

    // Consume capacity: rebuild the network with reduced capacities.
    FlowNetwork next;
    for (std::size_t v = 0; v < net.node_count(); ++v) {
      next.add_node(net.label(static_cast<NodeId>(v)));
    }
    for (std::size_t a = 0; a < net.arc_count(); ++a) {
      const Arc& arc = net.arc(static_cast<ArcId>(a));
      next.add_arc(arc.from, arc.to, arc.capacity - arc.flow, arc.cost);
    }
    net = std::move(next);
  }
  return values;
}

}  // namespace rsin::flow
