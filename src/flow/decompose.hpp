// Flow decomposition: any legal flow splits into at most |E| source-to-sink
// paths and cycles (Ford–Fulkerson). In the MRSIN setting the path terms
// ARE the allocated circuits (Theorem 2's "every legal integral flow
// defines a set of F nonoverlapping paths from s to t"), so this module
// gives an algorithm-independent way to audit any flow a solver produces;
// the property tests recompose the terms and demand the original arc flows
// back.
#pragma once

#include <vector>

#include "flow/network.hpp"

namespace rsin::flow {

struct FlowPath {
  std::vector<ArcId> arcs;  ///< In order from source to sink.
  Capacity amount = 0;
};

struct FlowCycle {
  std::vector<ArcId> arcs;  ///< In cyclic order.
  Capacity amount = 0;
};

struct FlowDecomposition {
  std::vector<FlowPath> paths;
  std::vector<FlowCycle> cycles;

  /// Sum of the path amounts (equals the flow value).
  [[nodiscard]] Capacity total_path_flow() const;
};

/// Decomposes the current (legal) flow assignment of `net`. Throws
/// std::invalid_argument when the assignment violates conservation or
/// capacity.
FlowDecomposition decompose_flow(const FlowNetwork& net);

/// Reapplies a decomposition to zeroed arc flows; used by tests to verify
/// decompose/recompose is the identity.
void recompose_flow(FlowNetwork& net, const FlowDecomposition& decomposition);

}  // namespace rsin::flow
