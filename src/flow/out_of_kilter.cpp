// Fulkerson's out-of-kilter algorithm (cited by the paper for the
// priority/preference scheduling problem of Section III-C).
//
// The min-cost s-t flow instance is converted to a min-cost circulation by
// adding a return arc t->s whose cost is a large negative constant -B, with
// B chosen larger than the cost of any simple s-t path. The optimal
// circulation therefore advances as much flow as possible (up to the
// requested target) before minimizing the path costs — the same semantics as
// the successive-shortest-path solver, which the tests exploit for
// differential checking.
//
// The implementation follows the classical description (Lawler, ch. 4):
// every arc is in one of the kilter states determined by its reduced cost
// c̄(e) = w(e) + π(tail) - π(head) and flow; out-of-kilter arcs are brought
// into kilter by augmenting along admissible cycles, with node-potential
// updates when the labeling search stalls. Kilter numbers never increase,
// which gives termination for integral data.
#include <algorithm>
#include <deque>
#include <limits>
#include <optional>
#include <vector>

#include "flow/min_cost.hpp"

namespace rsin::flow {
namespace {

constexpr Cost kInfCost = std::numeric_limits<Cost>::max() / 4;

struct KilterArc {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Capacity lower = 0;
  Capacity upper = 0;
  Capacity flow = 0;
  Cost cost = 0;
};

class OutOfKilterSolver {
 public:
  OutOfKilterSolver(std::vector<KilterArc> arcs, std::size_t node_count)
      : arcs_(std::move(arcs)),
        potential_(node_count, 0),
        out_(node_count),
        in_(node_count) {
    for (std::size_t a = 0; a < arcs_.size(); ++a) {
      out_[static_cast<std::size_t>(arcs_[a].from)].push_back(a);
      in_[static_cast<std::size_t>(arcs_[a].to)].push_back(a);
    }
  }

  /// Runs to completion; returns total elementary operations performed.
  std::int64_t solve() {
    while (true) {
      const auto culprit = find_out_of_kilter_arc();
      if (!culprit) break;
      fix_arc(*culprit);
    }
    return operations_;
  }

  [[nodiscard]] const std::vector<KilterArc>& arcs() const { return arcs_; }
  [[nodiscard]] std::int64_t augmentations() const { return augmentations_; }

 private:
  [[nodiscard]] Cost reduced_cost(const KilterArc& arc) const {
    return arc.cost + potential_[static_cast<std::size_t>(arc.from)] -
           potential_[static_cast<std::size_t>(arc.to)];
  }

  [[nodiscard]] bool in_kilter(const KilterArc& arc) const {
    const Cost rc = reduced_cost(arc);
    if (rc > 0) return arc.flow == arc.lower;
    if (rc < 0) return arc.flow == arc.upper;
    return arc.flow >= arc.lower && arc.flow <= arc.upper;
  }

  /// True when bringing `arc` into kilter requires *increasing* its flow.
  [[nodiscard]] bool needs_increase(const KilterArc& arc) const {
    if (arc.flow < arc.lower) return true;
    if (arc.flow > arc.upper) return false;
    return reduced_cost(arc) < 0;  // rc < 0 with flow < upper
  }

  std::optional<std::size_t> find_out_of_kilter_arc() const {
    for (std::size_t a = 0; a < arcs_.size(); ++a) {
      if (!in_kilter(arcs_[a])) return a;
    }
    return std::nullopt;
  }

  /// Max admissible flow increase on `arc` (kilter-number non-increasing).
  [[nodiscard]] Capacity increase_allowance(const KilterArc& arc) const {
    if (arc.flow < arc.lower && reduced_cost(arc) > 0) {
      return arc.lower - arc.flow;
    }
    return arc.upper - arc.flow;
  }

  /// Max admissible flow decrease on `arc`.
  [[nodiscard]] Capacity decrease_allowance(const KilterArc& arc) const {
    if (arc.flow > arc.upper && reduced_cost(arc) < 0) {
      return arc.flow - arc.upper;
    }
    return arc.flow - arc.lower;
  }

  [[nodiscard]] bool forward_admissible(const KilterArc& arc) const {
    if (arc.flow < arc.lower) return true;
    return reduced_cost(arc) <= 0 && arc.flow < arc.upper;
  }

  [[nodiscard]] bool reverse_admissible(const KilterArc& arc) const {
    if (arc.flow > arc.upper) return true;
    return reduced_cost(arc) >= 0 && arc.flow > arc.lower;
  }

  /// Brings arcs_[index] into kilter via repeated search / potential update.
  void fix_arc(std::size_t index) {
    while (!in_kilter(arcs_[index])) {
      const bool increase = needs_increase(arcs_[index]);
      const NodeId from = arcs_[index].from;
      const NodeId to = arcs_[index].to;
      // To increase flow on (p, q), augment along a q->p admissible path;
      // to decrease, along a p->q path (then cancel through the arc).
      const NodeId search_root = increase ? to : from;
      const NodeId search_goal = increase ? from : to;

      if (label_search(search_root, search_goal)) {
        augment_cycle(index, increase, search_root, search_goal);
        ++augmentations_;
      } else if (!update_potentials(index, increase)) {
        // No admissible step and no potential change can help: the
        // circulation constraints are infeasible. With the lower bounds
        // used by min_cost_flow_out_of_kilter (all zero) this is
        // unreachable; it can only fire for caller-supplied lower bounds.
        throw std::logic_error(
            "out-of-kilter: infeasible circulation (lower bounds "
            "unsatisfiable)");
      }
    }
  }

  /// BFS over admissible residual edges from `root`; fills parent_ labels.
  /// Returns true when `goal` is labeled.
  bool label_search(NodeId root, NodeId goal) {
    parent_arc_.assign(potential_.size(), -1);
    parent_forward_.assign(potential_.size(), 0);
    labeled_.assign(potential_.size(), 0);
    labeled_[static_cast<std::size_t>(root)] = 1;
    std::deque<NodeId> queue{root};
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (const std::size_t a : out_[static_cast<std::size_t>(v)]) {
        ++operations_;
        const KilterArc& arc = arcs_[a];
        if (labeled_[static_cast<std::size_t>(arc.to)] ||
            !forward_admissible(arc)) {
          continue;
        }
        label(arc.to, a, true, queue);
        if (arc.to == goal) return true;
      }
      for (const std::size_t a : in_[static_cast<std::size_t>(v)]) {
        ++operations_;
        const KilterArc& arc = arcs_[a];
        if (labeled_[static_cast<std::size_t>(arc.from)] ||
            !reverse_admissible(arc)) {
          continue;
        }
        label(arc.from, a, false, queue);
        if (arc.from == goal) return true;
      }
    }
    return false;
  }

  void label(NodeId v, std::size_t arc, bool forward, std::deque<NodeId>& q) {
    labeled_[static_cast<std::size_t>(v)] = 1;
    parent_arc_[static_cast<std::size_t>(v)] = static_cast<std::int64_t>(arc);
    parent_forward_[static_cast<std::size_t>(v)] = forward ? 1 : 0;
    q.push_back(v);
  }

  /// Augments around the cycle (search path + the out-of-kilter arc).
  void augment_cycle(std::size_t index, bool increase, NodeId root,
                     NodeId goal) {
    // Gather the path root -> goal.
    struct Step {
      std::size_t arc;
      bool forward;
    };
    std::vector<Step> path;
    for (NodeId v = goal; v != root;) {
      const auto a = static_cast<std::size_t>(
          parent_arc_[static_cast<std::size_t>(v)]);
      const bool forward = parent_forward_[static_cast<std::size_t>(v)] != 0;
      path.push_back({a, forward});
      v = forward ? arcs_[a].from : arcs_[a].to;
    }

    Capacity delta = increase ? increase_allowance(arcs_[index])
                              : decrease_allowance(arcs_[index]);
    for (const auto& [a, forward] : path) {
      delta = std::min(delta, forward ? increase_allowance(arcs_[a])
                                      : decrease_allowance(arcs_[a]));
    }
    RSIN_ENSURE(delta > 0, "out-of-kilter augmentation with zero delta");

    arcs_[index].flow += increase ? delta : -delta;
    for (const auto& [a, forward] : path) {
      arcs_[a].flow += forward ? delta : -delta;
    }
  }

  /// Lowers the potential of every labeled node by delta, where delta is the
  /// smallest reduced-cost step that admits a new edge (or brings the
  /// culprit arc itself into kilter). Returns false when delta is infinite.
  bool update_potentials(std::size_t index, bool increase) {
    Cost delta = kInfCost;
    for (std::size_t a = 0; a < arcs_.size(); ++a) {
      ++operations_;
      const KilterArc& arc = arcs_[a];
      const bool from_in = labeled_[static_cast<std::size_t>(arc.from)] != 0;
      const bool to_in = labeled_[static_cast<std::size_t>(arc.to)] != 0;
      const Cost rc = reduced_cost(arc);
      if (from_in && !to_in && rc > 0 && arc.flow < arc.upper) {
        delta = std::min(delta, rc);
      } else if (!from_in && to_in && rc < 0 && arc.flow > arc.lower) {
        delta = std::min(delta, -rc);
      }
    }
    // The culprit arc itself comes into kilter once its reduced cost
    // reaches zero (its flow already lies within [lower, upper] bounds in
    // the rc-driven cases).
    const KilterArc& culprit = arcs_[index];
    const Cost rc = reduced_cost(culprit);
    if (increase && rc < 0 && culprit.flow >= culprit.lower) {
      delta = std::min(delta, -rc);
    } else if (!increase && rc > 0 && culprit.flow <= culprit.upper) {
      delta = std::min(delta, rc);
    }
    if (delta >= kInfCost) return false;
    for (std::size_t v = 0; v < potential_.size(); ++v) {
      if (labeled_[v]) potential_[v] -= delta;
    }
    return true;
  }

  std::vector<KilterArc> arcs_;
  std::vector<Cost> potential_;
  std::vector<std::vector<std::size_t>> out_;
  std::vector<std::vector<std::size_t>> in_;
  std::vector<std::int64_t> parent_arc_;
  std::vector<char> parent_forward_;
  std::vector<char> labeled_;
  std::int64_t operations_ = 0;
  std::int64_t augmentations_ = 0;
};

}  // namespace

MinCostFlowResult min_cost_flow_out_of_kilter(FlowNetwork& net,
                                              Capacity target) {
  RSIN_REQUIRE(net.valid_node(net.source()), "network needs a source");
  RSIN_REQUIRE(net.valid_node(net.sink()), "network needs a sink");
  RSIN_REQUIRE(net.source() != net.sink(), "source and sink must differ");
  RSIN_REQUIRE(target >= 0, "target flow must be non-negative");

  // B exceeds the absolute cost of any simple path, so the return arc's
  // -B cost makes the optimal circulation maximize flow value first.
  Cost big = 1;
  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    const Cost c = net.arc(static_cast<ArcId>(a)).cost;
    big += c < 0 ? -c : c;
  }

  std::vector<KilterArc> arcs;
  arcs.reserve(net.arc_count() + 1);
  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    const Arc& arc = net.arc(static_cast<ArcId>(a));
    arcs.push_back(KilterArc{arc.from, arc.to, 0, arc.capacity, 0, arc.cost});
  }
  arcs.push_back(KilterArc{net.sink(), net.source(), 0, target, 0, -big});

  OutOfKilterSolver solver(std::move(arcs), net.node_count());
  MinCostFlowResult result;
  result.operations = solver.solve();
  result.augmentations = solver.augmentations();

  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    net.set_flow(static_cast<ArcId>(a), solver.arcs()[a].flow);
  }
  result.value = solver.arcs().back().flow;
  result.cost = net.flow_cost();
  result.feasible = result.value == target;
  return result;
}

}  // namespace rsin::flow
