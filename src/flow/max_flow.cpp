#include "flow/max_flow.hpp"

#include "flow/push_relabel.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace rsin::flow {
namespace {

constexpr Capacity kInf = std::numeric_limits<Capacity>::max();

void require_st(const FlowNetwork& net) {
  RSIN_REQUIRE(net.valid_node(net.source()), "network needs a source");
  RSIN_REQUIRE(net.valid_node(net.sink()), "network needs a sink");
  RSIN_REQUIRE(net.source() != net.sink(), "source and sink must differ");
}

/// Scratch for the iterative augmenting-path DFS, hoisted out of the
/// per-augmentation loop by the callers.
struct DfsScratch {
  std::vector<char> visited;
  std::vector<std::size_t> edge_pos;  // per-node resume point
  std::vector<ResidualGraph::EdgeId> path;

  explicit DfsScratch(std::size_t nodes)
      : visited(nodes, 0), edge_pos(nodes, 0) {}

  void reset() {
    std::fill(visited.begin(), visited.end(), 0);
    std::fill(edge_pos.begin(), edge_pos.end(), 0);
    path.clear();
  }
};

/// DFS for one augmenting path using only residual edges with capacity at
/// least `threshold`; returns the bottleneck (0 if none found). Marks
/// visited nodes to avoid cycles; counts edge inspections in `ops`.
/// Iterative with an explicit edge stack — deep layered networks (large
/// multistage topologies produce source-to-sink paths thousands of links
/// long) must not be limited by the thread's call-stack depth.
Capacity dfs_augment(ResidualGraph& residual, NodeId source, NodeId sink,
                     Capacity threshold, DfsScratch& scratch,
                     std::int64_t& ops) {
  scratch.reset();
  scratch.visited[static_cast<std::size_t>(source)] = 1;
  NodeId v = source;
  while (true) {
    if (v == sink) {
      Capacity bottleneck = kInf;
      for (const auto e : scratch.path) {
        bottleneck = std::min(bottleneck, residual.residual(e));
      }
      for (const auto e : scratch.path) residual.push(e, bottleneck);
      return bottleneck;
    }
    const auto edges = residual.edges_from(v);
    bool advanced = false;
    while (scratch.edge_pos[static_cast<std::size_t>(v)] < edges.size()) {
      const auto e = edges[scratch.edge_pos[static_cast<std::size_t>(v)]];
      ++ops;
      const NodeId next = residual.head(e);
      if (!scratch.visited[static_cast<std::size_t>(next)] &&
          residual.residual(e) >= threshold) {
        scratch.visited[static_cast<std::size_t>(next)] = 1;
        scratch.path.push_back(e);
        v = next;
        advanced = true;
        break;
      }
      ++scratch.edge_pos[static_cast<std::size_t>(v)];
    }
    if (advanced) continue;
    // Dead end: backtrack, resuming the parent after the edge it took.
    if (scratch.path.empty()) return 0;
    v = residual.tail(scratch.path.back());
    scratch.path.pop_back();
    ++scratch.edge_pos[static_cast<std::size_t>(v)];
  }
}

}  // namespace

MaxFlowResult max_flow_ford_fulkerson(FlowNetwork& net) {
  require_st(net);
  ResidualGraph residual(net);
  MaxFlowResult result;
  DfsScratch scratch(net.node_count());
  while (true) {
    const Capacity pushed = dfs_augment(residual, net.source(), net.sink(), 1,
                                        scratch, result.operations);
    if (pushed == 0) break;
    result.value += pushed;
    ++result.augmentations;
  }
  residual.apply_to(net);
  return result;
}

MaxFlowResult max_flow_capacity_scaling(FlowNetwork& net) {
  require_st(net);
  ResidualGraph residual(net);
  MaxFlowResult result;
  DfsScratch scratch(net.node_count());

  Capacity max_capacity = 0;
  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    max_capacity =
        std::max(max_capacity, net.arc(static_cast<ArcId>(a)).capacity);
  }
  // Largest power of two <= max_capacity. Guard the doubling against signed
  // overflow: with max_capacity > Capacity_max / 2, `delta * 2` is UB.
  Capacity delta = 1;
  while (delta <= max_capacity / 2) delta *= 2;

  for (; delta >= 1; delta /= 2) {
    while (true) {
      const Capacity pushed = dfs_augment(residual, net.source(), net.sink(),
                                          delta, scratch, result.operations);
      if (pushed == 0) break;
      result.value += pushed;
      ++result.augmentations;
    }
  }
  residual.apply_to(net);
  return result;
}

MaxFlowResult max_flow_edmonds_karp(FlowNetwork& net) {
  require_st(net);
  ResidualGraph residual(net);
  MaxFlowResult result;
  const std::size_t n = net.node_count();
  std::vector<ResidualGraph::EdgeId> parent_edge(n);
  // BFS scratch hoisted out of the augmentation loop: the per-iteration
  // deque/vector constructions dominated the solver's allocation profile.
  std::vector<char> seen(n, 0);
  std::vector<NodeId> queue;
  queue.reserve(n);

  while (true) {
    std::fill(parent_edge.begin(), parent_edge.end(), -1);
    std::fill(seen.begin(), seen.end(), 0);
    queue.clear();
    queue.push_back(net.source());
    seen[static_cast<std::size_t>(net.source())] = 1;
    bool reached = false;
    for (std::size_t i = 0; i < queue.size() && !reached; ++i) {
      const NodeId v = queue[i];
      for (const auto e : residual.edges_from(v)) {
        ++result.operations;
        const NodeId next = residual.head(e);
        if (seen[static_cast<std::size_t>(next)] || residual.residual(e) <= 0) {
          continue;
        }
        seen[static_cast<std::size_t>(next)] = 1;
        parent_edge[static_cast<std::size_t>(next)] = e;
        if (next == net.sink()) {
          reached = true;
          break;
        }
        queue.push_back(next);
      }
    }
    if (!reached) break;

    // Walk back along parent edges to find the bottleneck, then push.
    Capacity bottleneck = kInf;
    for (NodeId v = net.sink(); v != net.source();
         v = residual.tail(parent_edge[static_cast<std::size_t>(v)])) {
      bottleneck = std::min(
          bottleneck, residual.residual(parent_edge[static_cast<std::size_t>(v)]));
    }
    for (NodeId v = net.sink(); v != net.source();) {
      const auto e = parent_edge[static_cast<std::size_t>(v)];
      residual.push(e, bottleneck);
      v = residual.tail(e);
    }
    result.value += bottleneck;
    ++result.augmentations;
  }
  residual.apply_to(net);
  return result;
}

LayeredNetwork build_layered_network(const ResidualGraph& residual,
                                     NodeId source, NodeId sink) {
  LayeredNetwork layered;
  layered.level.assign(residual.node_count(), -1);
  layered.level[static_cast<std::size_t>(source)] = 0;
  layered.layers.push_back({source});

  // Breadth-first construction, layer by layer, mirroring the paper's
  // request-token-propagation description: each layer consists of nodes not
  // previously reached that have a useful (residual > 0) link from the
  // current layer. Construction stops with the layer that contains the
  // sink; deeper layers are irrelevant to shortest augmenting paths.
  bool sink_reached = false;
  while (!sink_reached) {
    const auto& frontier = layered.layers.back();
    std::vector<NodeId> next;
    for (const NodeId v : frontier) {
      for (const auto e : residual.edges_from(v)) {
        if (residual.residual(e) <= 0) continue;
        const NodeId w = residual.head(e);
        if (layered.level[static_cast<std::size_t>(w)] != -1) continue;
        layered.level[static_cast<std::size_t>(w)] =
            static_cast<int>(layered.layers.size());
        next.push_back(w);
        if (w == sink) sink_reached = true;
      }
    }
    if (next.empty()) break;
    layered.layers.push_back(std::move(next));
  }

  // Collect useful links: residual edges that descend exactly one layer.
  for (std::size_t v = 0; v < residual.node_count(); ++v) {
    if (layered.level[v] == -1) continue;
    for (const auto e : residual.edges_from(static_cast<NodeId>(v))) {
      if (residual.residual(e) <= 0) continue;
      const NodeId w = residual.head(e);
      if (layered.level[static_cast<std::size_t>(w)] == layered.level[v] + 1) {
        layered.useful_links.push_back(e);
      }
    }
  }
  return layered;
}

MaxFlowResult max_flow_dinic(FlowNetwork& net, DinicTrace* trace) {
  require_st(net);
  ResidualGraph residual(net);
  MaxFlowResult result;
  const std::size_t n = net.node_count();
  const NodeId s = net.source();
  const NodeId t = net.sink();

  std::vector<int> level(n);
  std::vector<std::size_t> next_edge(n);

  // Iterative blocking-flow DFS over the layered network. Returns the
  // amount pushed for a single path (0 when the layered network is dry).
  const auto advance_one_path = [&]() -> Capacity {
    std::vector<ResidualGraph::EdgeId> path;
    NodeId v = s;
    while (true) {
      if (v == t) {
        Capacity bottleneck = kInf;
        for (const auto e : path) {
          bottleneck = std::min(bottleneck, residual.residual(e));
        }
        for (const auto e : path) residual.push(e, bottleneck);
        return bottleneck;
      }
      const auto edges = residual.edges_from(v);
      bool advanced = false;
      while (next_edge[static_cast<std::size_t>(v)] < edges.size()) {
        const auto e = edges[next_edge[static_cast<std::size_t>(v)]];
        ++result.operations;
        const NodeId w = residual.head(e);
        if (residual.residual(e) > 0 &&
            level[static_cast<std::size_t>(w)] ==
                level[static_cast<std::size_t>(v)] + 1) {
          path.push_back(e);
          v = w;
          advanced = true;
          break;
        }
        ++next_edge[static_cast<std::size_t>(v)];
      }
      if (advanced) continue;
      // Dead end: retreat (or give up if we are back at the source).
      level[static_cast<std::size_t>(v)] = -1;  // prune from this phase
      if (path.empty()) return 0;
      v = residual.tail(path.back());
      path.pop_back();
      ++next_edge[static_cast<std::size_t>(v)];
    }
  };

  while (true) {
    LayeredNetwork layered = build_layered_network(residual, s, t);
    result.operations +=
        static_cast<std::int64_t>(layered.useful_links.size());
    if (layered.level[static_cast<std::size_t>(t)] == -1) {
      if (trace) trace->phases.push_back(std::move(layered));
      break;
    }
    level = layered.level;
    if (trace) trace->phases.push_back(std::move(layered));
    std::fill(next_edge.begin(), next_edge.end(), 0);
    ++result.phases;

    while (true) {
      const Capacity pushed = advance_one_path();
      if (pushed == 0) break;
      result.value += pushed;
      ++result.augmentations;
    }
  }
  residual.apply_to(net);
  return result;
}

MaxFlowResult max_flow(FlowNetwork& net, MaxFlowAlgorithm algorithm) {
  switch (algorithm) {
    case MaxFlowAlgorithm::kFordFulkerson:
      return max_flow_ford_fulkerson(net);
    case MaxFlowAlgorithm::kEdmondsKarp:
      return max_flow_edmonds_karp(net);
    case MaxFlowAlgorithm::kDinic:
      return max_flow_dinic(net);
    case MaxFlowAlgorithm::kCapacityScaling:
      return max_flow_capacity_scaling(net);
    case MaxFlowAlgorithm::kPushRelabel:
      return max_flow_push_relabel(net);
  }
  RSIN_ENSURE(false, "unknown max-flow algorithm");
  return {};
}

}  // namespace rsin::flow
