#include "flow/network.hpp"

#include <ostream>

namespace rsin::flow {

NodeId FlowNetwork::add_node(std::string label) {
  const auto id = static_cast<NodeId>(labels_.size());
  labels_.push_back(std::move(label));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

ArcId FlowNetwork::add_arc(NodeId from, NodeId to, Capacity capacity,
                           Cost cost) {
  RSIN_REQUIRE(valid_node(from), "arc tail is not a node");
  RSIN_REQUIRE(valid_node(to), "arc head is not a node");
  RSIN_REQUIRE(from != to, "self-loop arcs are not allowed");
  RSIN_REQUIRE(capacity >= 0, "arc capacity must be non-negative");
  const auto id = static_cast<ArcId>(arcs_.size());
  arcs_.push_back(Arc{from, to, capacity, cost, 0});
  out_[static_cast<std::size_t>(from)].push_back(id);
  in_[static_cast<std::size_t>(to)].push_back(id);
  return id;
}

void FlowNetwork::set_source(NodeId s) {
  RSIN_REQUIRE(valid_node(s), "source must be a node");
  source_ = s;
}

void FlowNetwork::set_sink(NodeId t) {
  RSIN_REQUIRE(valid_node(t), "sink must be a node");
  sink_ = t;
}

void FlowNetwork::set_flow(ArcId id, Capacity flow) {
  RSIN_REQUIRE(valid_arc(id), "arc id out of range");
  auto& arc = arcs_[static_cast<std::size_t>(id)];
  RSIN_REQUIRE(flow >= 0 && flow <= arc.capacity,
               "flow must satisfy 0 <= f(e) <= c(e)");
  arc.flow = flow;
}

void FlowNetwork::set_capacity(ArcId id, Capacity capacity) {
  RSIN_REQUIRE(valid_arc(id), "arc id out of range");
  RSIN_REQUIRE(capacity >= 0, "arc capacity must be non-negative");
  arcs_[static_cast<std::size_t>(id)].capacity = capacity;
}

void FlowNetwork::clear_flow() {
  for (auto& arc : arcs_) arc.flow = 0;
}

void FlowNetwork::clear_capacities() {
  for (auto& arc : arcs_) arc.capacity = 0;
}

Capacity FlowNetwork::flow_value() const {
  RSIN_REQUIRE(valid_node(source_), "flow_value requires a source");
  Capacity total = 0;
  for (const ArcId id : out_arcs(source_)) total += arc(id).flow;
  for (const ArcId id : in_arcs(source_)) total -= arc(id).flow;
  return total;
}

Cost FlowNetwork::flow_cost() const {
  Cost total = 0;
  for (const auto& arc : arcs_) total += arc.cost * arc.flow;
  return total;
}

bool FlowNetwork::is_unit_capacity() const {
  for (const auto& arc : arcs_) {
    if (arc.capacity > 1) return false;
  }
  return true;
}

NodeId FlowNetwork::find_node(const std::string& label) const {
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) return static_cast<NodeId>(i);
  }
  return kInvalidNode;
}

void FlowNetwork::print(std::ostream& out) const {
  out << "FlowNetwork: " << node_count() << " nodes, " << arc_count()
      << " arcs";
  if (valid_node(source_)) out << ", source=" << label(source_);
  if (valid_node(sink_)) out << ", sink=" << label(sink_);
  out << '\n';
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    const Arc& a = arcs_[i];
    out << "  [" << i << "] " << label(a.from) << " -> " << label(a.to)
        << "  cap=" << a.capacity;
    if (a.cost != 0) out << " cost=" << a.cost;
    if (a.flow != 0) out << " flow=" << a.flow;
    out << '\n';
  }
}

std::ostream& operator<<(std::ostream& out, const FlowNetwork& net) {
  net.print(out);
  return out;
}

}  // namespace rsin::flow
