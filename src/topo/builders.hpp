// Generators for the classical interconnection topologies referenced by the
// paper (Section I cites Omega, indirect binary n-cube, baseline, banyan /
// delta / butterfly, Benes, and Clos; Section II's examples use an 8x8
// Omega and an 8x8 cube network).
//
// All multistage generators produce networks of 2x2 crossbar switchboxes
// between n processors and n resources. Two construction styles are used
// internally:
//  * position-wired: explicit inter-stage permutations (Omega = perfect
//    shuffle everywhere, baseline = inverse shuffles on shrinking blocks);
//  * logically-paired: stage s pairs channels that differ in one address
//    bit (indirect cube pairs bit s, butterfly pairs bit m-1-s, Benes walks
//    the bits down and back up).
// The two styles produce members of the same delta-equivalent family but
// with the physically faithful wiring of each named network.
#pragma once

#include "topo/network.hpp"

namespace rsin::topo {

/// n x n Omega network (Lawrie): log2(n) shuffle-exchange stages, plus
/// `extra_stages` additional shuffle-exchange stages providing redundant
/// paths (the "extra stages" discussed at the end of Section II).
/// Requires n to be a power of two, n >= 2.
Network make_omega(std::int32_t n, std::int32_t extra_stages = 0);

/// n x n baseline network (Wu & Feng): stage s applies an inverse perfect
/// shuffle within blocks of size n / 2^s.
Network make_baseline(std::int32_t n);

/// n x n indirect binary n-cube (Pease): stage s pairs channels differing
/// in address bit s.
Network make_indirect_cube(std::int32_t n);

/// n x n butterfly (banyan/delta family): stage s pairs channels differing
/// in address bit m-1-s.
Network make_butterfly(std::int32_t n);

/// n x n Benes network: 2*log2(n) - 1 stages, pairing bits
/// m-1, m-2, ..., 1, 0, 1, ..., m-1. Rearrangeably nonblocking.
Network make_benes(std::int32_t n);

/// Full crossbar: a single processors x resources switchbox.
Network make_crossbar(std::int32_t processors, std::int32_t resources);

/// Three-stage Clos network C(n, m, r): r ingress switches (n x m),
/// m middle switches (r x r), r egress switches (m x n); n*r terminals per
/// side. Strictly nonblocking when m >= 2n - 1.
Network make_clos(std::int32_t n, std::int32_t m, std::int32_t r);

/// n x n gamma network (Parker & Raghavendra), one of the redundant-path
/// networks the paper's conclusion names as targets for the method: m+1
/// stages of n switches; stage s switch i fans out to switches
/// (i - 2^s) mod n, i, and (i + 2^s) mod n of the next stage. The first
/// stage is 1x3 and the last 3x1; interior switches are 3x3.
Network make_gamma(std::int32_t n);

/// n x n data manipulator (Feng) in the same plus-minus-2^i family, with
/// the strides applied most-significant first (stage s uses 2^(m-1-s));
/// the augmented data manipulator of the paper's conclusion shares this
/// structure with per-switch independent control, which our model already
/// provides (every switch is individually set).
Network make_data_manipulator(std::int32_t n);

/// Radix-r delta network (Patel): r^digits terminals per side, `digits`
/// stages of r x r crossbars; stage s pairs channels differing in base-r
/// digit digits-1-s. With r = 2 this is exactly make_butterfly. Unique
/// path per source-destination pair (the delta property).
Network make_radix_delta(std::int32_t radix, std::int32_t digits);

/// True when every switch port, processor output, and resource input is
/// wired — a structural sanity check used by the tests.
bool fully_wired(const Network& net);

/// Convenience dispatch by name ("omega", "baseline", "cube", "butterfly",
/// "benes", "crossbar") for n x n fabrics; throws on unknown names.
Network make_named(const std::string& name, std::int32_t n);

}  // namespace rsin::topo
