// The looping algorithm for Benes networks.
//
// A Benes network is rearrangeably nonblocking: ANY set of disjoint
// (processor, resource) pairs — up to a full permutation — can be realized
// by link-disjoint circuits. The classical looping algorithm finds the
// circuits in O(n log n): at each recursion level, requests sharing an
// outer input switch must enter different half-size subnetworks, requests
// sharing an outer output switch must leave different subnetworks, and the
// resulting 2-coloring constraints form disjoint paths/even cycles that a
// simple chain walk colors.
//
// In the paper's setting this is the strongest possible *centralized*
// comparison point: on a Benes fabric a scheduler can always realize every
// request-resource pairing, so the max-flow optimum equals min(x, y)
// whenever the fabric is otherwise free (tested), and the routing below
// constructs the circuits without search.
#pragma once

#include <utility>
#include <vector>

#include "topo/network.hpp"

namespace rsin::topo {

/// Routes the given disjoint pairs through a network produced by
/// make_benes(n). Returns one circuit per pair; the circuits are pairwise
/// link-disjoint and ready to establish. Throws std::invalid_argument when
/// the network is not Benes-shaped, ids are out of range, or processors /
/// resources repeat.
std::vector<Circuit> benes_route_permutation(
    const Network& benes,
    const std::vector<std::pair<ProcessorId, ResourceId>>& pairs);

}  // namespace rsin::topo
