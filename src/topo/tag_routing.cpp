#include "topo/tag_routing.hpp"

#include <bit>

namespace rsin::topo {

Circuit omega_destination_tag_route(const Network& omega,
                                    ProcessorId processor,
                                    ResourceId resource) {
  RSIN_REQUIRE(omega.valid_processor(processor), "unknown processor");
  RSIN_REQUIRE(omega.valid_resource(resource), "unknown resource");
  const std::int32_t n = omega.processor_count();
  RSIN_REQUIRE(n == omega.resource_count() &&
                   std::has_single_bit(static_cast<std::uint32_t>(n)),
               "destination-tag routing requires an n x n power-of-two "
               "network");
  const std::int32_t m =
      std::bit_width(static_cast<std::uint32_t>(n)) - 1;
  RSIN_REQUIRE(omega.stage_count() == m,
               "destination-tag routing requires log2(n) stages");

  Circuit circuit;
  circuit.processor = processor;
  circuit.resource = resource;

  LinkId link = omega.processor_link(processor);
  RSIN_REQUIRE(link != kInvalidId, "processor is not wired");
  circuit.links.push_back(link);

  // At stage s the exchange setting is bit m-1-s of the destination.
  for (std::int32_t s = 0; s < m; ++s) {
    const Link& l = omega.link(link);
    RSIN_REQUIRE(l.to.kind == NodeKind::kSwitch,
                 "circuit left the fabric early");
    const SwitchId sw = l.to.node;
    RSIN_REQUIRE(omega.switch_out_links(sw).size() == 2,
                 "destination-tag routing requires 2x2 switchboxes");
    const std::int32_t port = (resource >> (m - 1 - s)) & 1;
    link = omega.switch_out_links(sw)[static_cast<std::size_t>(port)];
    RSIN_REQUIRE(link != kInvalidId, "switch output port is not wired");
    circuit.links.push_back(link);
  }
  RSIN_ENSURE(omega.link(link).to.kind == NodeKind::kResource &&
                  omega.link(link).to.node == resource,
              "tag routing did not land on the requested resource; the "
              "network is not an Omega");
  return circuit;
}

}  // namespace rsin::topo
