// Destination-tag (bit-controlled) routing for the Omega network.
//
// Section I: conventional networks "operate with address mapping ...
// routing is done by examining the address bits". For Lawrie's Omega the
// unique circuit from any input to output r is obtained by switching each
// stage s to the side given by bit m-1-s of r — no search required. This
// is both the classical result our path enumerator is validated against and
// the O(m) routing step used by the address-mapped baseline in spirit.
#pragma once

#include "topo/network.hpp"

namespace rsin::topo {

/// Computes the unique circuit from `processor` to `resource` in a network
/// produced by make_omega(n) (no extra stages) by destination-tag routing.
/// The circuit is returned regardless of link occupancy; callers check
/// circuit_free() themselves. Throws std::invalid_argument when the network
/// does not have the Omega shape (2x2 switches, log2(n) stages).
Circuit omega_destination_tag_route(const Network& omega,
                                    ProcessorId processor,
                                    ResourceId resource);

}  // namespace rsin::topo
