// Switchbox setting realization (the constructive direction of Theorem 1).
//
// Theorem 1 equates a non-broadcast switch setting with an integral flow
// assignment at the switch's node. This module closes the loop physically:
// given a set of link-disjoint circuits (e.g. a schedule's assignments), it
// derives the explicit input-port -> output-port connection of every
// switchbox, validates the non-broadcast constraint (each port used at most
// once), and classifies 2x2 boxes into the paper's "straight" / "exchange"
// states (Section II's Omega example).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "topo/network.hpp"

namespace rsin::topo {

/// State of a 2x2 switchbox under a set of circuits.
enum class TwoByTwoState {
  kIdle,              ///< No circuit passes through.
  kStraight,          ///< in0->out0 and in1->out1 (both or either one).
  kExchange,          ///< in0->out1 and in1->out0 (both or either one).
  kMixed,             ///< Not a 2x2 box, or a single-connection box whose
                      ///< connection pattern is neither pure straight nor
                      ///< pure exchange is impossible on 2x2 — kMixed marks
                      ///< non-2x2 switches only.
};

/// The connection map of one switchbox: (input port, output port) pairs.
struct SwitchSetting {
  std::vector<std::pair<std::int32_t, std::int32_t>> connections;

  [[nodiscard]] bool idle() const { return connections.empty(); }
};

/// Per-switch settings derived from link-disjoint circuits.
class SwitchConfiguration {
 public:
  /// Derives the configuration. Throws std::invalid_argument when a circuit
  /// is not contiguous or two circuits claim the same switch port (i.e. the
  /// set is not link-disjoint / violates the non-broadcast constraint).
  static SwitchConfiguration from_circuits(const Network& net,
                                           std::span<const Circuit> circuits);

  [[nodiscard]] const SwitchSetting& setting(SwitchId sw) const;

  /// Classification for 2x2 boxes; kMixed for other sizes.
  [[nodiscard]] TwoByTwoState two_by_two_state(SwitchId sw) const;

  /// Number of switches with at least one connection.
  [[nodiscard]] std::int32_t active_switch_count() const;

  [[nodiscard]] std::size_t switch_count() const { return settings_.size(); }

 private:
  explicit SwitchConfiguration(std::size_t switches)
      : settings_(switches), is_two_by_two_(switches, false) {}

  std::vector<SwitchSetting> settings_;
  std::vector<bool> is_two_by_two_;
};

}  // namespace rsin::topo
