// Circuit-switched interconnection-network substrate.
//
// Models the physical structure the paper's MRSIN lives on: processors on
// the input side, resources on the output side, and a loop-free fabric of
// crossbar switchboxes in between. Links carry circuit-switched state
// (free / occupied); a circuit is a contiguous chain of links from a
// processor to a resource. Because every switchbox is a crossbar without
// broadcast (Section III-B), any set of pairwise link-disjoint circuits is
// realizable by per-switch settings, so link occupancy is the complete
// switching state.
//
// Orthogonal to occupancy, links and switchboxes carry *fault* state
// (fail_link / fail_switch / repair_*). A faulty element is unusable — it
// never counts as free — but it is not "occupied": occupancy is circuit
// ownership, faults are hardware availability (the paper's conclusion names
// fault tolerance as the decisive advantage of redundant-path RSINs).
// Failing an element tears down every established circuit crossing it and
// reports the victims to the caller, which models a mid-service fabric
// failure.
//
// Topology generators for the classical multistage networks (Omega, indirect
// binary n-cube, baseline, butterfly, Benes, extra-stage, Clos, crossbar)
// live in topo/builders.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace rsin::topo {

using ProcessorId = std::int32_t;
using ResourceId = std::int32_t;
using SwitchId = std::int32_t;
using LinkId = std::int32_t;

inline constexpr std::int32_t kInvalidId = -1;

enum class NodeKind : std::uint8_t { kProcessor, kSwitch, kResource };

/// One endpoint of a link: a node of some kind plus a port number on it.
struct PortRef {
  NodeKind kind = NodeKind::kSwitch;
  std::int32_t node = kInvalidId;
  std::int32_t port = 0;

  friend bool operator==(const PortRef&, const PortRef&) = default;
};

/// A physical link. `occupied` is the circuit-switching state; `failed` is
/// the hardware fault state (set via Network::fail_link, never by circuit
/// establishment).
struct Link {
  PortRef from;
  PortRef to;
  bool occupied = false;
  bool failed = false;
};

/// A circuit: an established (or candidate) path from a processor to a
/// resource, given as the ordered chain of link ids it traverses.
struct Circuit {
  ProcessorId processor = kInvalidId;
  ResourceId resource = kInvalidId;
  std::vector<LinkId> links;
};

/// The interconnection network: nodes, links, and circuit state.
class Network {
 public:
  /// Creates a network with the given terminal counts and no fabric yet.
  Network(std::int32_t processors, std::int32_t resources);

  /// Adds a switchbox with the given port counts; `stage` is metadata used
  /// for printing and for the token architecture's clocked propagation
  /// (use -1 for non-staged fabrics).
  SwitchId add_switch(std::int32_t inputs, std::int32_t outputs,
                      std::int32_t stage = -1);

  /// Adds a directed link between two ports. Valid combinations: processor
  /// output -> switch input, switch output -> switch input, and switch
  /// output -> resource input. Each port carries at most one link.
  LinkId add_link(PortRef from, PortRef to);

  [[nodiscard]] std::int32_t processor_count() const { return processors_; }
  [[nodiscard]] std::int32_t resource_count() const { return resources_; }
  [[nodiscard]] std::int32_t switch_count() const {
    return static_cast<std::int32_t>(switch_in_.size());
  }
  [[nodiscard]] std::int32_t link_count() const {
    return static_cast<std::int32_t>(links_.size());
  }
  /// Number of distinct switch stages (0 when the fabric is not staged).
  [[nodiscard]] std::int32_t stage_count() const { return stage_count_; }
  [[nodiscard]] std::int32_t stage_of(SwitchId sw) const;

  [[nodiscard]] const Link& link(LinkId id) const {
    RSIN_REQUIRE(valid_link(id), "link id out of range");
    return links_[static_cast<std::size_t>(id)];
  }

  /// Link leaving processor p, or kInvalidId if not wired.
  [[nodiscard]] LinkId processor_link(ProcessorId p) const;
  /// Link entering resource r, or kInvalidId if not wired.
  [[nodiscard]] LinkId resource_link(ResourceId r) const;

  [[nodiscard]] std::span<const LinkId> switch_in_links(SwitchId sw) const;
  [[nodiscard]] std::span<const LinkId> switch_out_links(SwitchId sw) const;

  /// A link is free when it is neither occupied by a circuit nor faulty
  /// (failed itself or attached to a failed switchbox). Every router and
  /// transformation gates on this, so schedulers can never route through a
  /// faulty element.
  [[nodiscard]] bool link_free(LinkId id) const {
    return !link(id).occupied && !link_faulty(id);
  }
  void occupy_link(LinkId id);
  void release_link(LinkId id);
  /// Releases every link (network completely free). Fault state is kept:
  /// occupancy is per-cycle, faults persist until repaired.
  void release_all();
  [[nodiscard]] std::int32_t occupied_link_count() const;

  // --- fault state (distinct from occupancy) -------------------------------

  /// Marks the link failed and tears down every established circuit using
  /// it; the torn-down circuits (already released) are returned so the
  /// caller can retry or re-queue the affected requests. Idempotent.
  std::vector<Circuit> fail_link(LinkId id);
  /// Marks the switchbox failed (all attached links become unusable) and
  /// tears down every established circuit crossing it. Idempotent.
  std::vector<Circuit> fail_switch(SwitchId sw);
  void repair_link(LinkId id);
  void repair_switch(SwitchId sw);

  /// The link itself is marked failed.
  [[nodiscard]] bool link_failed(LinkId id) const { return link(id).failed; }
  [[nodiscard]] bool switch_failed(SwitchId sw) const;
  /// Unusable due to a fault: the link is failed or touches a failed switch.
  [[nodiscard]] bool link_faulty(LinkId id) const;
  /// Number of links currently unusable because of faults.
  [[nodiscard]] std::int32_t faulty_link_count() const;
  [[nodiscard]] std::int32_t failed_switch_count() const;
  [[nodiscard]] bool fault_free() const;

  /// Checks structural validity of `circuit`: starts at its processor, ends
  /// at its resource, and consecutive links meet at the same switch.
  [[nodiscard]] bool circuit_contiguous(const Circuit& circuit) const;
  /// True when every link of the (contiguous) circuit is currently free.
  [[nodiscard]] bool circuit_free(const Circuit& circuit) const;

  /// Occupies every link of the circuit. Requires circuit_contiguous and
  /// circuit_free. The circuit is recorded so a later fail_link/fail_switch
  /// on one of its elements can tear it down and report it.
  void establish(const Circuit& circuit);
  /// Releases every link of the circuit (and forgets its registration).
  void release(const Circuit& circuit);

  /// Established circuit currently registered for `p` (set by establish,
  /// cleared by release / teardown), or nullptr.
  [[nodiscard]] const Circuit* established_circuit(ProcessorId p) const;

  [[nodiscard]] bool valid_processor(ProcessorId p) const {
    return p >= 0 && p < processors_;
  }
  [[nodiscard]] bool valid_resource(ResourceId r) const {
    return r >= 0 && r < resources_;
  }
  [[nodiscard]] bool valid_switch(SwitchId s) const {
    return s >= 0 && s < switch_count();
  }
  [[nodiscard]] bool valid_link(LinkId l) const {
    return l >= 0 && l < link_count();
  }

  /// Human-readable name for a link endpoint, e.g. "p3", "sw1.2:out0", "r5".
  [[nodiscard]] std::string port_name(const PortRef& ref, bool input) const;

  /// FNV-1a over the quantities that define the network's *shape*: terminal
  /// and switch counts plus every link's endpoints. Occupancy and fault
  /// state are deliberately excluded — they modulate capacities, not
  /// structure. Used by PersistentTransform to detect topology changes and
  /// by record/replay traces to reject replays against the wrong fabric.
  [[nodiscard]] std::uint64_t shape_hash() const;

 private:
  /// Tears down every registered circuit for which `crosses` is true and
  /// returns the victims.
  std::vector<Circuit> teardown_if(
      const std::function<bool(const Circuit&)>& crosses);

  std::int32_t processors_;
  std::int32_t resources_;
  std::int32_t stage_count_ = 0;

  std::vector<Link> links_;
  std::vector<char> switch_failed_;
  /// Established circuits by processor (a processor has one output port, so
  /// at most one established circuit). Empty `links` = no circuit.
  std::vector<Circuit> active_circuit_;
  std::vector<std::int32_t> switch_stage_;
  std::vector<std::int32_t> switch_n_in_;
  std::vector<std::int32_t> switch_n_out_;
  std::vector<std::vector<LinkId>> switch_in_;   // per switch, by port
  std::vector<std::vector<LinkId>> switch_out_;  // per switch, by port
  std::vector<LinkId> processor_link_;
  std::vector<LinkId> resource_link_;
};

}  // namespace rsin::topo
