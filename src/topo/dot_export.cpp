#include "topo/dot_export.hpp"

#include <ostream>

namespace rsin::topo {
namespace {

std::string node_id(const PortRef& ref) {
  switch (ref.kind) {
    case NodeKind::kProcessor:
      return "p" + std::to_string(ref.node + 1);
    case NodeKind::kResource:
      return "r" + std::to_string(ref.node + 1);
    case NodeKind::kSwitch:
      return "sw" + std::to_string(ref.node);
  }
  return "?";
}

}  // namespace

void write_dot(std::ostream& out, const Network& net) {
  out << "digraph mrsin {\n  rankdir=LR;\n  node [shape=box];\n";
  out << "  { rank=same;";
  for (std::int32_t p = 0; p < net.processor_count(); ++p) {
    out << " p" << p + 1 << ';';
  }
  out << " }\n";
  for (std::int32_t stage = 0; stage < net.stage_count(); ++stage) {
    out << "  { rank=same;";
    for (SwitchId sw = 0; sw < net.switch_count(); ++sw) {
      if (net.stage_of(sw) == stage) out << " sw" << sw << ';';
    }
    out << " }\n";
  }
  out << "  { rank=same;";
  for (std::int32_t r = 0; r < net.resource_count(); ++r) {
    out << " r" << r + 1 << ';';
  }
  out << " }\n";
  for (SwitchId sw = 0; sw < net.switch_count(); ++sw) {
    out << "  sw" << sw << " [shape=square,label=\"x" << sw << "\"";
    if (net.switch_failed(sw)) out << ",style=dashed,color=gray";
    out << "];\n";
  }
  for (LinkId l = 0; l < net.link_count(); ++l) {
    const Link& link = net.link(l);
    out << "  " << node_id(link.from) << " -> " << node_id(link.to);
    if (net.link_faulty(l)) {
      out << " [style=dashed,color=gray]";
    } else if (link.occupied) {
      out << " [style=bold,color=red]";
    }
    out << ";\n";
  }
  out << "}\n";
}

}  // namespace rsin::topo

namespace rsin::flow {

void write_dot(std::ostream& out, const FlowNetwork& net) {
  out << "digraph flownet {\n  rankdir=LR;\n  node [shape=circle];\n";
  for (std::size_t v = 0; v < net.node_count(); ++v) {
    out << "  n" << v << " [label=\"" << net.label(static_cast<NodeId>(v))
        << "\"";
    if (static_cast<NodeId>(v) == net.source() ||
        static_cast<NodeId>(v) == net.sink()) {
      out << ",shape=doublecircle";
    }
    out << "];\n";
  }
  for (std::size_t a = 0; a < net.arc_count(); ++a) {
    const Arc& arc = net.arc(static_cast<ArcId>(a));
    out << "  n" << arc.from << " -> n" << arc.to << " [label=\"" << arc.flow
        << '/' << arc.capacity;
    if (arc.cost != 0) out << " @" << arc.cost;
    out << '"';
    if (arc.flow > 0) out << ",style=bold";
    out << "];\n";
  }
  out << "}\n";
}

}  // namespace rsin::flow
