#include "topo/switch_settings.hpp"

#include <algorithm>

namespace rsin::topo {

SwitchConfiguration SwitchConfiguration::from_circuits(
    const Network& net, std::span<const Circuit> circuits) {
  SwitchConfiguration config(static_cast<std::size_t>(net.switch_count()));
  for (SwitchId sw = 0; sw < net.switch_count(); ++sw) {
    config.is_two_by_two_[static_cast<std::size_t>(sw)] =
        net.switch_in_links(sw).size() == 2 &&
        net.switch_out_links(sw).size() == 2;
  }

  for (const Circuit& circuit : circuits) {
    RSIN_REQUIRE(net.circuit_contiguous(circuit),
                 "switch settings require contiguous circuits");
    for (std::size_t i = 0; i + 1 < circuit.links.size(); ++i) {
      const Link& in = net.link(circuit.links[i]);
      const Link& out = net.link(circuit.links[i + 1]);
      const auto sw = static_cast<std::size_t>(in.to.node);
      auto& setting = config.settings_[sw];
      for (const auto& [used_in, used_out] : setting.connections) {
        RSIN_REQUIRE(used_in != in.to.port,
                     "two circuits enter one switch input port");
        RSIN_REQUIRE(used_out != out.from.port,
                     "two circuits leave one switch output port "
                     "(non-broadcast constraint)");
      }
      setting.connections.emplace_back(in.to.port, out.from.port);
    }
  }
  return config;
}

const SwitchSetting& SwitchConfiguration::setting(SwitchId sw) const {
  RSIN_REQUIRE(sw >= 0 && static_cast<std::size_t>(sw) < settings_.size(),
               "switch id out of range");
  return settings_[static_cast<std::size_t>(sw)];
}

TwoByTwoState SwitchConfiguration::two_by_two_state(SwitchId sw) const {
  const SwitchSetting& s = setting(sw);
  if (!is_two_by_two_[static_cast<std::size_t>(sw)]) {
    return TwoByTwoState::kMixed;
  }
  if (s.connections.empty()) return TwoByTwoState::kIdle;
  // On a 2x2 box every connection is either straight (in == out) or
  // crossed (in != out); two simultaneous connections are necessarily both
  // of the same kind.
  const bool straight = s.connections.front().first ==
                        s.connections.front().second;
  return straight ? TwoByTwoState::kStraight : TwoByTwoState::kExchange;
}

std::int32_t SwitchConfiguration::active_switch_count() const {
  return static_cast<std::int32_t>(
      std::count_if(settings_.begin(), settings_.end(),
                    [](const SwitchSetting& s) { return !s.idle(); }));
}

}  // namespace rsin::topo
