// Graphviz DOT export for interconnection networks and transformed flow
// networks — the practical replacement for the paper's hand-drawn figures
// (Figs. 2, 5, 8). Occupied links and flow-carrying arcs render bold so a
// `dot -Tsvg` of an MRSIN state reproduces the figures' shaded circuits.
#pragma once

#include <iosfwd>

#include "flow/network.hpp"
#include "topo/network.hpp"

namespace rsin::topo {

/// Writes the physical network: processors and resources as boxes, staged
/// switches in ranked columns, occupied links bold.
void write_dot(std::ostream& out, const Network& net);

}  // namespace rsin::topo

namespace rsin::flow {

/// Writes a flow network; arcs carrying flow render bold with
/// "flow/capacity [@cost]" labels — the Fig. 2(b) / Fig. 5(b) view.
void write_dot(std::ostream& out, const FlowNetwork& net);

}  // namespace rsin::flow
