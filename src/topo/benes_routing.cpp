#include "topo/benes_routing.hpp"

#include <bit>
#include <map>

#include "util/error.hpp"

namespace rsin::topo {
namespace {

struct RoutedRequest {
  ProcessorId in = kInvalidId;
  ResourceId out = kInvalidId;
  /// Subnetwork choice per recursion level l (bit m-1-l), filled by the
  /// looping recursion.
  std::vector<std::int32_t> sigma;
};

/// Looping recursion: assigns sigma[level] (the half-size subnetwork) for
/// every request in `members`, then recurses into the two halves.
void loop_assign(std::vector<RoutedRequest>& requests,
                 const std::vector<std::size_t>& members, std::int32_t level,
                 std::int32_t m) {
  if (level >= m - 1) return;  // innermost 2x2 stage needs no choice
  const std::int32_t b = m - 1 - level;
  const std::int32_t low_mask = (1 << b) - 1;

  // Pairing keys: requests sharing an outer input (output) switch have the
  // same low bits of in (out) below bit b within this subproblem.
  std::map<std::int32_t, std::vector<std::size_t>> by_in;
  std::map<std::int32_t, std::vector<std::size_t>> by_out;
  for (const std::size_t r : members) {
    by_in[requests[r].in & low_mask].push_back(r);
    by_out[requests[r].out & low_mask].push_back(r);
  }
  for (const auto& [key, group] : by_in) {
    RSIN_REQUIRE(group.size() <= 2, "more than two requests on one switch");
    (void)key;
  }
  for (const auto& [key, group] : by_out) {
    RSIN_REQUIRE(group.size() <= 2, "more than two requests on one switch");
    (void)key;
  }
  const auto partner = [&](const std::map<std::int32_t,
                                          std::vector<std::size_t>>& index,
                           std::int32_t key, std::size_t self) {
    const auto& group = index.at(key);
    for (const std::size_t r : group) {
      if (r != self) return static_cast<std::ptrdiff_t>(r);
    }
    return static_cast<std::ptrdiff_t>(-1);
  };

  // Chain-walk 2-coloring: alternate between "input partner must differ"
  // and "output partner must differ" constraints until the chain ends or
  // loops back.
  std::map<std::size_t, std::int32_t> color;
  for (const std::size_t seed : members) {
    if (color.count(seed)) continue;
    std::size_t current = seed;
    std::int32_t assigned = 0;
    bool via_input = true;  // next constraint to follow
    while (true) {
      color[current] = assigned;
      const std::int32_t key = via_input
                                   ? requests[current].in & low_mask
                                   : requests[current].out & low_mask;
      const auto next =
          partner(via_input ? by_in : by_out, key, current);
      via_input = !via_input;
      if (next < 0) break;
      const auto next_index = static_cast<std::size_t>(next);
      if (color.count(next_index)) break;  // closed an (even) cycle
      current = next_index;
      assigned = 1 - assigned;
    }
    // The chain may also extend from the seed in the other direction
    // (starting with the output constraint).
    current = seed;
    assigned = 0;
    via_input = false;
    while (true) {
      const std::int32_t key = via_input
                                   ? requests[current].in & low_mask
                                   : requests[current].out & low_mask;
      const auto next =
          partner(via_input ? by_in : by_out, key, current);
      via_input = !via_input;
      if (next < 0) break;
      const auto next_index = static_cast<std::size_t>(next);
      if (color.count(next_index)) break;
      assigned = 1 - assigned;
      color[next_index] = assigned;
      current = next_index;
    }
  }

  std::vector<std::size_t> half0;
  std::vector<std::size_t> half1;
  for (const std::size_t r : members) {
    requests[r].sigma[static_cast<std::size_t>(level)] = color.at(r);
    (color.at(r) == 0 ? half0 : half1).push_back(r);
  }
  loop_assign(requests, half0, level + 1, m);
  loop_assign(requests, half1, level + 1, m);
}

}  // namespace

std::vector<Circuit> benes_route_permutation(
    const Network& benes,
    const std::vector<std::pair<ProcessorId, ResourceId>>& pairs) {
  const std::int32_t n = benes.processor_count();
  RSIN_REQUIRE(n == benes.resource_count() &&
                   std::has_single_bit(static_cast<std::uint32_t>(n)),
               "benes routing requires an n x n power-of-two network");
  const std::int32_t m =
      std::bit_width(static_cast<std::uint32_t>(n)) - 1;
  RSIN_REQUIRE(benes.stage_count() == 2 * m - 1,
               "network does not have the Benes stage count");

  std::vector<RoutedRequest> requests;
  std::vector<std::size_t> all;
  std::vector<char> in_used(static_cast<std::size_t>(n), 0);
  std::vector<char> out_used(static_cast<std::size_t>(n), 0);
  for (const auto& [in, out] : pairs) {
    RSIN_REQUIRE(benes.valid_processor(in) && benes.valid_resource(out),
                 "pair ids out of range");
    RSIN_REQUIRE(!in_used[static_cast<std::size_t>(in)],
                 "processor appears twice");
    RSIN_REQUIRE(!out_used[static_cast<std::size_t>(out)],
                 "resource appears twice");
    in_used[static_cast<std::size_t>(in)] = 1;
    out_used[static_cast<std::size_t>(out)] = 1;
    RoutedRequest request;
    request.in = in;
    request.out = out;
    request.sigma.assign(static_cast<std::size_t>(std::max(0, m - 1)), 0);
    all.push_back(requests.size());
    requests.push_back(std::move(request));
  }
  loop_assign(requests, all, 0, m);

  // Stage s of make_benes pairs bit m-1-s on the way down, bit s-m+1 on
  // the way up; the channel on each boundary follows the sigma choices.
  const auto stage_bit = [&](std::int32_t s) {
    return s < m ? m - 1 - s : s - m + 1;
  };
  const std::int32_t stages = 2 * m - 1;

  std::vector<Circuit> circuits;
  circuits.reserve(requests.size());
  for (const RoutedRequest& request : requests) {
    // channels[j] = logical channel on the link entering stage j
    // (j = stages is the delivery link).
    std::vector<std::int32_t> channels(static_cast<std::size_t>(stages) + 1);
    channels[0] = request.in;
    for (std::int32_t j = 1; j <= m - 1; ++j) {
      std::int32_t c = channels[static_cast<std::size_t>(j) - 1];
      const std::int32_t bit = m - j;  // stage j-1 pairs bit m-1-(j-1)
      c = (c & ~(1 << bit)) |
          (request.sigma[static_cast<std::size_t>(j) - 1] << bit);
      channels[static_cast<std::size_t>(j)] = c;
    }
    channels[static_cast<std::size_t>(stages)] = request.out;
    for (std::int32_t j = stages - 1; j >= m; --j) {
      std::int32_t c = channels[static_cast<std::size_t>(j) + 1];
      const std::int32_t bit = stage_bit(j);  // stage j pairs this bit
      const std::int32_t level = m - 1 - bit;
      c = (c & ~(1 << bit)) |
          (request.sigma[static_cast<std::size_t>(level)] << bit);
      channels[static_cast<std::size_t>(j)] = c;
    }

    // Materialize links by walking the fabric with the per-stage port
    // choices implied by the channel sequence.
    Circuit circuit;
    circuit.processor = request.in;
    circuit.resource = request.out;
    LinkId link = benes.processor_link(request.in);
    circuit.links.push_back(link);
    for (std::int32_t s = 0; s < stages; ++s) {
      const Link& l = benes.link(link);
      RSIN_ENSURE(l.to.kind == NodeKind::kSwitch,
                  "walk left the fabric early");
      const std::int32_t next_channel =
          channels[static_cast<std::size_t>(s) + 1];
      const std::int32_t port = (next_channel >> stage_bit(s)) & 1;
      link = benes.switch_out_links(l.to.node)[static_cast<std::size_t>(port)];
      circuit.links.push_back(link);
    }
    RSIN_ENSURE(benes.link(link).to.kind == NodeKind::kResource &&
                    benes.link(link).to.node == request.out,
                "looping walk missed its resource");
    circuits.push_back(std::move(circuit));
  }
  return circuits;
}

}  // namespace rsin::topo
