#include "topo/builders.hpp"

#include <bit>
#include <vector>

namespace rsin::topo {
namespace {

bool is_power_of_two(std::int32_t n) {
  return n > 0 && std::has_single_bit(static_cast<std::uint32_t>(n));
}

std::int32_t log2i(std::int32_t n) {
  return std::bit_width(static_cast<std::uint32_t>(n)) - 1;
}

/// Perfect shuffle: rotate the m-bit address left by one.
std::int32_t shuffle(std::int32_t c, std::int32_t m) {
  const std::int32_t n = 1 << m;
  return ((c << 1) | (c >> (m - 1))) & (n - 1);
}

/// Inverse perfect shuffle within aligned blocks of size 2^block_bits:
/// rotate the low block_bits bits right by one.
std::int32_t inverse_shuffle_block(std::int32_t c, std::int32_t block_bits) {
  const std::int32_t block = 1 << block_bits;
  const std::int32_t low = c & (block - 1);
  const std::int32_t rotated = (low >> 1) | ((low & 1) << (block_bits - 1));
  return (c & ~(block - 1)) | rotated;
}

/// Builds an n x n MIN of 2x2 switches from explicit boundary wirings.
/// wiring[0] routes processor outputs into stage-0 input positions;
/// wiring[s] (0 < s < stages) routes stage s-1 output positions into stage-s
/// input positions; wiring[stages] routes last-stage output positions to
/// resources. Input position q belongs to switch q/2, port q%2; output port
/// p of switch k is position 2k+p.
Network build_position_min(std::int32_t n,
                           const std::vector<std::vector<std::int32_t>>& wiring) {
  const auto stages = static_cast<std::int32_t>(wiring.size()) - 1;
  RSIN_REQUIRE(stages >= 1, "a MIN needs at least one stage");
  Network net(n, n);
  std::vector<std::vector<SwitchId>> sw(static_cast<std::size_t>(stages));
  for (std::int32_t s = 0; s < stages; ++s) {
    for (std::int32_t k = 0; k < n / 2; ++k) {
      sw[static_cast<std::size_t>(s)].push_back(net.add_switch(2, 2, s));
    }
  }
  // Processor boundary.
  for (std::int32_t c = 0; c < n; ++c) {
    const std::int32_t q = wiring[0][static_cast<std::size_t>(c)];
    net.add_link({NodeKind::kProcessor, c, 0},
                 {NodeKind::kSwitch, sw[0][static_cast<std::size_t>(q / 2)],
                  q % 2});
  }
  // Inter-stage boundaries.
  for (std::int32_t s = 1; s < stages; ++s) {
    for (std::int32_t c = 0; c < n; ++c) {
      const std::int32_t q = wiring[static_cast<std::size_t>(s)]
                                   [static_cast<std::size_t>(c)];
      net.add_link({NodeKind::kSwitch,
                    sw[static_cast<std::size_t>(s - 1)]
                      [static_cast<std::size_t>(c / 2)],
                    c % 2},
                   {NodeKind::kSwitch,
                    sw[static_cast<std::size_t>(s)]
                      [static_cast<std::size_t>(q / 2)],
                    q % 2});
    }
  }
  // Resource boundary.
  for (std::int32_t c = 0; c < n; ++c) {
    const std::int32_t r = wiring[static_cast<std::size_t>(stages)]
                                 [static_cast<std::size_t>(c)];
    net.add_link({NodeKind::kSwitch,
                  sw[static_cast<std::size_t>(stages - 1)]
                    [static_cast<std::size_t>(c / 2)],
                  c % 2},
                 {NodeKind::kResource, r, 0});
  }
  return net;
}

/// Deletes bit `b` from `c` (bits above b shift down) — the switch index of
/// the pair {c, c ^ (1<<b)}.
std::int32_t delete_bit(std::int32_t c, std::int32_t b) {
  const std::int32_t high = c >> (b + 1);
  const std::int32_t low = c & ((1 << b) - 1);
  return (high << b) | low;
}

/// Builds an n x n MIN where stage s pairs logical channels differing in
/// address bit pair_bits[s]; inter-stage wiring follows channel identity.
Network build_paired_min(std::int32_t n,
                         const std::vector<std::int32_t>& pair_bits) {
  const auto stages = static_cast<std::int32_t>(pair_bits.size());
  RSIN_REQUIRE(stages >= 1, "a MIN needs at least one stage");
  Network net(n, n);
  std::vector<std::vector<SwitchId>> sw(static_cast<std::size_t>(stages));
  for (std::int32_t s = 0; s < stages; ++s) {
    for (std::int32_t k = 0; k < n / 2; ++k) {
      sw[static_cast<std::size_t>(s)].push_back(net.add_switch(2, 2, s));
    }
  }
  const auto port_of = [&](std::int32_t c, std::int32_t s) {
    return (c >> pair_bits[static_cast<std::size_t>(s)]) & 1;
  };
  const auto switch_of = [&](std::int32_t c, std::int32_t s) {
    return sw[static_cast<std::size_t>(s)][static_cast<std::size_t>(
        delete_bit(c, pair_bits[static_cast<std::size_t>(s)]))];
  };

  for (std::int32_t c = 0; c < n; ++c) {
    net.add_link({NodeKind::kProcessor, c, 0},
                 {NodeKind::kSwitch, switch_of(c, 0), port_of(c, 0)});
  }
  for (std::int32_t s = 1; s < stages; ++s) {
    for (std::int32_t c = 0; c < n; ++c) {
      net.add_link(
          {NodeKind::kSwitch, switch_of(c, s - 1), port_of(c, s - 1)},
          {NodeKind::kSwitch, switch_of(c, s), port_of(c, s)});
    }
  }
  for (std::int32_t c = 0; c < n; ++c) {
    net.add_link({NodeKind::kSwitch, switch_of(c, stages - 1),
                  port_of(c, stages - 1)},
                 {NodeKind::kResource, c, 0});
  }
  return net;
}

}  // namespace

Network make_omega(std::int32_t n, std::int32_t extra_stages) {
  RSIN_REQUIRE(is_power_of_two(n) && n >= 2, "omega requires n = 2^m >= 2");
  RSIN_REQUIRE(extra_stages >= 0, "extra_stages must be non-negative");
  const std::int32_t m = log2i(n);
  const std::int32_t stages = m + extra_stages;
  std::vector<std::vector<std::int32_t>> wiring(
      static_cast<std::size_t>(stages) + 1,
      std::vector<std::int32_t>(static_cast<std::size_t>(n)));
  for (std::int32_t s = 0; s < stages; ++s) {
    for (std::int32_t c = 0; c < n; ++c) {
      wiring[static_cast<std::size_t>(s)][static_cast<std::size_t>(c)] =
          shuffle(c, m);
    }
  }
  for (std::int32_t c = 0; c < n; ++c) {
    wiring[static_cast<std::size_t>(stages)][static_cast<std::size_t>(c)] = c;
  }
  return build_position_min(n, wiring);
}

Network make_baseline(std::int32_t n) {
  RSIN_REQUIRE(is_power_of_two(n) && n >= 2, "baseline requires n = 2^m >= 2");
  const std::int32_t m = log2i(n);
  // Processors connect straight to stage 0; after stage s-1 an inverse
  // perfect shuffle on blocks of size n/2^(s-1) splits each subnetwork into
  // halves (Wu & Feng), so the block size shrinks stage by stage.
  std::vector<std::vector<std::int32_t>> wiring(
      static_cast<std::size_t>(m) + 1,
      std::vector<std::int32_t>(static_cast<std::size_t>(n)));
  for (std::int32_t c = 0; c < n; ++c) {
    wiring[0][static_cast<std::size_t>(c)] = c;
    wiring[static_cast<std::size_t>(m)][static_cast<std::size_t>(c)] = c;
  }
  for (std::int32_t s = 1; s < m; ++s) {
    for (std::int32_t c = 0; c < n; ++c) {
      wiring[static_cast<std::size_t>(s)][static_cast<std::size_t>(c)] =
          inverse_shuffle_block(c, m - s + 1);
    }
  }
  return build_position_min(n, wiring);
}

Network make_indirect_cube(std::int32_t n) {
  RSIN_REQUIRE(is_power_of_two(n) && n >= 2, "cube requires n = 2^m >= 2");
  const std::int32_t m = log2i(n);
  std::vector<std::int32_t> bits;
  for (std::int32_t s = 0; s < m; ++s) bits.push_back(s);
  return build_paired_min(n, bits);
}

Network make_butterfly(std::int32_t n) {
  RSIN_REQUIRE(is_power_of_two(n) && n >= 2,
               "butterfly requires n = 2^m >= 2");
  const std::int32_t m = log2i(n);
  std::vector<std::int32_t> bits;
  for (std::int32_t s = 0; s < m; ++s) bits.push_back(m - 1 - s);
  return build_paired_min(n, bits);
}

Network make_benes(std::int32_t n) {
  RSIN_REQUIRE(is_power_of_two(n) && n >= 2, "benes requires n = 2^m >= 2");
  const std::int32_t m = log2i(n);
  std::vector<std::int32_t> bits;
  for (std::int32_t b = m - 1; b >= 0; --b) bits.push_back(b);
  for (std::int32_t b = 1; b < m; ++b) bits.push_back(b);
  return build_paired_min(n, bits);
}

Network make_crossbar(std::int32_t processors, std::int32_t resources) {
  Network net(processors, resources);
  const SwitchId sw = net.add_switch(processors, resources, 0);
  for (std::int32_t p = 0; p < processors; ++p) {
    net.add_link({NodeKind::kProcessor, p, 0}, {NodeKind::kSwitch, sw, p});
  }
  for (std::int32_t r = 0; r < resources; ++r) {
    net.add_link({NodeKind::kSwitch, sw, r}, {NodeKind::kResource, r, 0});
  }
  return net;
}

Network make_clos(std::int32_t n, std::int32_t m, std::int32_t r) {
  RSIN_REQUIRE(n > 0 && m > 0 && r > 0, "clos parameters must be positive");
  const std::int32_t terminals = n * r;
  Network net(terminals, terminals);
  std::vector<SwitchId> ingress, middle, egress;
  for (std::int32_t i = 0; i < r; ++i) ingress.push_back(net.add_switch(n, m, 0));
  for (std::int32_t j = 0; j < m; ++j) middle.push_back(net.add_switch(r, r, 1));
  for (std::int32_t k = 0; k < r; ++k) egress.push_back(net.add_switch(m, n, 2));

  for (std::int32_t p = 0; p < terminals; ++p) {
    net.add_link({NodeKind::kProcessor, p, 0},
                 {NodeKind::kSwitch, ingress[static_cast<std::size_t>(p / n)],
                  p % n});
  }
  for (std::int32_t i = 0; i < r; ++i) {
    for (std::int32_t j = 0; j < m; ++j) {
      net.add_link({NodeKind::kSwitch, ingress[static_cast<std::size_t>(i)], j},
                   {NodeKind::kSwitch, middle[static_cast<std::size_t>(j)], i});
    }
  }
  for (std::int32_t j = 0; j < m; ++j) {
    for (std::int32_t k = 0; k < r; ++k) {
      net.add_link({NodeKind::kSwitch, middle[static_cast<std::size_t>(j)], k},
                   {NodeKind::kSwitch, egress[static_cast<std::size_t>(k)], j});
    }
  }
  for (std::int32_t q = 0; q < terminals; ++q) {
    net.add_link({NodeKind::kSwitch, egress[static_cast<std::size_t>(q / n)],
                  q % n},
                 {NodeKind::kResource, q, 0});
  }
  return net;
}

namespace {

/// Shared construction for the plus-minus-2^i family (gamma network, data
/// manipulator): stage s switch i fans out to i - strides[s], i, and
/// i + strides[s] (mod n) of the next stage.
Network build_plus_minus_network(std::int32_t n,
                                 const std::vector<std::int32_t>& strides);

}  // namespace

Network make_gamma(std::int32_t n) {
  RSIN_REQUIRE(is_power_of_two(n) && n >= 4, "gamma requires n = 2^m >= 4");
  const std::int32_t m = log2i(n);
  std::vector<std::int32_t> strides;
  for (std::int32_t s = 0; s < m; ++s) strides.push_back(1 << s);
  return build_plus_minus_network(n, strides);
}

Network make_data_manipulator(std::int32_t n) {
  RSIN_REQUIRE(is_power_of_two(n) && n >= 4,
               "data manipulator requires n = 2^m >= 4");
  const std::int32_t m = log2i(n);
  // Feng's data manipulator applies the strides most-significant first.
  std::vector<std::int32_t> strides;
  for (std::int32_t s = m - 1; s >= 0; --s) strides.push_back(1 << s);
  return build_plus_minus_network(n, strides);
}

namespace {

Network build_plus_minus_network(std::int32_t n,
                                 const std::vector<std::int32_t>& strides) {
  const auto m = static_cast<std::int32_t>(strides.size());
  Network net(n, n);

  // Stage 0: 1x3; stages 1..m-1: 3x3; stage m: 3x1.
  std::vector<std::vector<SwitchId>> sw(static_cast<std::size_t>(m) + 1);
  for (std::int32_t i = 0; i < n; ++i) sw[0].push_back(net.add_switch(1, 3, 0));
  for (std::int32_t s = 1; s < m; ++s) {
    for (std::int32_t i = 0; i < n; ++i) {
      sw[static_cast<std::size_t>(s)].push_back(net.add_switch(3, 3, s));
    }
  }
  for (std::int32_t i = 0; i < n; ++i) {
    sw[static_cast<std::size_t>(m)].push_back(net.add_switch(3, 1, m));
  }

  for (std::int32_t p = 0; p < n; ++p) {
    net.add_link({NodeKind::kProcessor, p, 0},
                 {NodeKind::kSwitch, sw[0][static_cast<std::size_t>(p)], 0});
  }
  // Plus-minus-2^s fan-out between consecutive stages. Output ports:
  // 0 = minus, 1 = straight, 2 = plus; the matching input port on the
  // destination identifies which direction the link arrived from. At the
  // last interior stage +2^(m-1) == -2^(m-1) (mod n), so two distinct links
  // join the same pair of switches on different ports — the redundancy that
  // gives the gamma network its multiple paths.
  for (std::int32_t s = 0; s < m; ++s) {
    const std::int32_t step = strides[static_cast<std::size_t>(s)];
    for (std::int32_t i = 0; i < n; ++i) {
      const std::int32_t minus = ((i - step) % n + n) % n;
      const std::int32_t plus = (i + step) % n;
      net.add_link({NodeKind::kSwitch, sw[static_cast<std::size_t>(s)]
                                         [static_cast<std::size_t>(i)], 0},
                   {NodeKind::kSwitch,
                    sw[static_cast<std::size_t>(s) + 1]
                      [static_cast<std::size_t>(minus)],
                    2});
      net.add_link({NodeKind::kSwitch, sw[static_cast<std::size_t>(s)]
                                         [static_cast<std::size_t>(i)], 1},
                   {NodeKind::kSwitch,
                    sw[static_cast<std::size_t>(s) + 1]
                      [static_cast<std::size_t>(i)],
                    1});
      net.add_link({NodeKind::kSwitch, sw[static_cast<std::size_t>(s)]
                                         [static_cast<std::size_t>(i)], 2},
                   {NodeKind::kSwitch,
                    sw[static_cast<std::size_t>(s) + 1]
                      [static_cast<std::size_t>(plus)],
                    0});
    }
  }
  for (std::int32_t r = 0; r < n; ++r) {
    net.add_link({NodeKind::kSwitch,
                  sw[static_cast<std::size_t>(m)][static_cast<std::size_t>(r)],
                  0},
                 {NodeKind::kResource, r, 0});
  }
  return net;
}

}  // namespace

Network make_radix_delta(std::int32_t radix, std::int32_t digits) {
  RSIN_REQUIRE(radix >= 2, "delta radix must be at least 2");
  RSIN_REQUIRE(digits >= 1, "delta needs at least one stage");
  std::int64_t size = 1;
  for (std::int32_t d = 0; d < digits; ++d) size *= radix;
  RSIN_REQUIRE(size <= 1 << 20, "delta network too large");
  const auto n = static_cast<std::int32_t>(size);
  Network net(n, n);

  // Stage s groups the r channels agreeing on all base-r digits except
  // digit (digits-1-s); the port within a switch is that digit's value.
  const std::int32_t switches_per_stage = n / radix;
  std::vector<std::vector<SwitchId>> sw(static_cast<std::size_t>(digits));
  for (std::int32_t s = 0; s < digits; ++s) {
    for (std::int32_t k = 0; k < switches_per_stage; ++k) {
      sw[static_cast<std::size_t>(s)].push_back(
          net.add_switch(radix, radix, s));
    }
  }
  const auto digit_weight = [&](std::int32_t digit) {
    std::int32_t weight = 1;
    for (std::int32_t d = 0; d < digit; ++d) weight *= radix;
    return weight;
  };
  const auto port_of = [&](std::int32_t c, std::int32_t s) {
    return (c / digit_weight(digits - 1 - s)) % radix;
  };
  const auto switch_of = [&](std::int32_t c, std::int32_t s) {
    // Delete the paired digit: combine the higher and lower digit groups.
    const std::int32_t weight = digit_weight(digits - 1 - s);
    const std::int32_t high = c / (weight * radix);
    const std::int32_t low = c % weight;
    return sw[static_cast<std::size_t>(s)]
             [static_cast<std::size_t>(high * weight + low)];
  };

  for (std::int32_t c = 0; c < n; ++c) {
    net.add_link({NodeKind::kProcessor, c, 0},
                 {NodeKind::kSwitch, switch_of(c, 0), port_of(c, 0)});
  }
  for (std::int32_t s = 1; s < digits; ++s) {
    for (std::int32_t c = 0; c < n; ++c) {
      net.add_link({NodeKind::kSwitch, switch_of(c, s - 1), port_of(c, s - 1)},
                   {NodeKind::kSwitch, switch_of(c, s), port_of(c, s)});
    }
  }
  for (std::int32_t c = 0; c < n; ++c) {
    net.add_link({NodeKind::kSwitch, switch_of(c, digits - 1),
                  port_of(c, digits - 1)},
                 {NodeKind::kResource, c, 0});
  }
  return net;
}

bool fully_wired(const Network& net) {
  for (std::int32_t p = 0; p < net.processor_count(); ++p) {
    if (net.processor_link(p) == kInvalidId) return false;
  }
  for (std::int32_t r = 0; r < net.resource_count(); ++r) {
    if (net.resource_link(r) == kInvalidId) return false;
  }
  for (std::int32_t s = 0; s < net.switch_count(); ++s) {
    for (const LinkId l : net.switch_in_links(s)) {
      if (l == kInvalidId) return false;
    }
    for (const LinkId l : net.switch_out_links(s)) {
      if (l == kInvalidId) return false;
    }
  }
  return true;
}

Network make_named(const std::string& name, std::int32_t n) {
  if (name == "omega") return make_omega(n);
  if (name == "baseline") return make_baseline(n);
  if (name == "cube") return make_indirect_cube(n);
  if (name == "butterfly") return make_butterfly(n);
  if (name == "benes") return make_benes(n);
  if (name == "crossbar") return make_crossbar(n, n);
  if (name == "gamma") return make_gamma(n);
  if (name == "data-manipulator") return make_data_manipulator(n);
  throw std::invalid_argument("unknown topology name: " + name);
}

}  // namespace rsin::topo
