#include "topo/network.hpp"

#include <algorithm>
#include <sstream>

namespace rsin::topo {

Network::Network(std::int32_t processors, std::int32_t resources)
    : processors_(processors), resources_(resources) {
  RSIN_REQUIRE(processors > 0, "network needs at least one processor");
  RSIN_REQUIRE(resources > 0, "network needs at least one resource");
  processor_link_.assign(static_cast<std::size_t>(processors), kInvalidId);
  resource_link_.assign(static_cast<std::size_t>(resources), kInvalidId);
  active_circuit_.resize(static_cast<std::size_t>(processors));
}

SwitchId Network::add_switch(std::int32_t inputs, std::int32_t outputs,
                             std::int32_t stage) {
  RSIN_REQUIRE(inputs > 0 && outputs > 0, "switch needs input & output ports");
  RSIN_REQUIRE(stage >= -1, "stage must be -1 (unstaged) or non-negative");
  const auto id = static_cast<SwitchId>(switch_in_.size());
  switch_failed_.push_back(0);
  switch_stage_.push_back(stage);
  switch_n_in_.push_back(inputs);
  switch_n_out_.push_back(outputs);
  switch_in_.emplace_back(static_cast<std::size_t>(inputs), kInvalidId);
  switch_out_.emplace_back(static_cast<std::size_t>(outputs), kInvalidId);
  if (stage >= 0) stage_count_ = std::max(stage_count_, stage + 1);
  return id;
}

LinkId Network::add_link(PortRef from, PortRef to) {
  const auto id = static_cast<LinkId>(links_.size());

  switch (from.kind) {
    case NodeKind::kProcessor:
      RSIN_REQUIRE(valid_processor(from.node), "link from unknown processor");
      RSIN_REQUIRE(from.port == 0, "processors have a single output port");
      RSIN_REQUIRE(processor_link_[static_cast<std::size_t>(from.node)] ==
                       kInvalidId,
                   "processor output port already wired");
      processor_link_[static_cast<std::size_t>(from.node)] = id;
      break;
    case NodeKind::kSwitch: {
      RSIN_REQUIRE(valid_switch(from.node), "link from unknown switch");
      auto& ports = switch_out_[static_cast<std::size_t>(from.node)];
      RSIN_REQUIRE(from.port >= 0 &&
                       from.port < switch_n_out_[static_cast<std::size_t>(
                                       from.node)],
                   "switch output port out of range");
      RSIN_REQUIRE(ports[static_cast<std::size_t>(from.port)] == kInvalidId,
                   "switch output port already wired");
      ports[static_cast<std::size_t>(from.port)] = id;
      break;
    }
    case NodeKind::kResource:
      RSIN_REQUIRE(false, "a resource cannot be a link source");
  }

  switch (to.kind) {
    case NodeKind::kProcessor:
      RSIN_REQUIRE(false, "a processor cannot be a link destination");
      break;
    case NodeKind::kSwitch: {
      RSIN_REQUIRE(valid_switch(to.node), "link to unknown switch");
      auto& ports = switch_in_[static_cast<std::size_t>(to.node)];
      RSIN_REQUIRE(
          to.port >= 0 &&
              to.port < switch_n_in_[static_cast<std::size_t>(to.node)],
          "switch input port out of range");
      RSIN_REQUIRE(ports[static_cast<std::size_t>(to.port)] == kInvalidId,
                   "switch input port already wired");
      ports[static_cast<std::size_t>(to.port)] = id;
      break;
    }
    case NodeKind::kResource:
      RSIN_REQUIRE(valid_resource(to.node), "link to unknown resource");
      RSIN_REQUIRE(to.port == 0, "resources have a single input port");
      RSIN_REQUIRE(
          resource_link_[static_cast<std::size_t>(to.node)] == kInvalidId,
          "resource input port already wired");
      resource_link_[static_cast<std::size_t>(to.node)] = id;
      break;
  }

  links_.push_back(Link{from, to, false});
  return id;
}

std::int32_t Network::stage_of(SwitchId sw) const {
  RSIN_REQUIRE(valid_switch(sw), "switch id out of range");
  return switch_stage_[static_cast<std::size_t>(sw)];
}

LinkId Network::processor_link(ProcessorId p) const {
  RSIN_REQUIRE(valid_processor(p), "processor id out of range");
  return processor_link_[static_cast<std::size_t>(p)];
}

LinkId Network::resource_link(ResourceId r) const {
  RSIN_REQUIRE(valid_resource(r), "resource id out of range");
  return resource_link_[static_cast<std::size_t>(r)];
}

std::span<const LinkId> Network::switch_in_links(SwitchId sw) const {
  RSIN_REQUIRE(valid_switch(sw), "switch id out of range");
  return switch_in_[static_cast<std::size_t>(sw)];
}

std::span<const LinkId> Network::switch_out_links(SwitchId sw) const {
  RSIN_REQUIRE(valid_switch(sw), "switch id out of range");
  return switch_out_[static_cast<std::size_t>(sw)];
}

void Network::occupy_link(LinkId id) {
  RSIN_REQUIRE(valid_link(id), "link id out of range");
  RSIN_REQUIRE(!link_faulty(id), "cannot occupy a faulty link");
  auto& link = links_[static_cast<std::size_t>(id)];
  RSIN_REQUIRE(!link.occupied, "link is already occupied");
  link.occupied = true;
}

void Network::release_link(LinkId id) {
  RSIN_REQUIRE(valid_link(id), "link id out of range");
  links_[static_cast<std::size_t>(id)].occupied = false;
}

void Network::release_all() {
  for (auto& link : links_) link.occupied = false;
  for (auto& circuit : active_circuit_) circuit.links.clear();
}

std::int32_t Network::occupied_link_count() const {
  return static_cast<std::int32_t>(
      std::count_if(links_.begin(), links_.end(),
                    [](const Link& l) { return l.occupied; }));
}

bool Network::circuit_contiguous(const Circuit& circuit) const {
  if (!valid_processor(circuit.processor) ||
      !valid_resource(circuit.resource) || circuit.links.empty()) {
    return false;
  }
  for (const LinkId id : circuit.links) {
    if (!valid_link(id)) return false;
  }
  const Link& first = link(circuit.links.front());
  if (first.from.kind != NodeKind::kProcessor ||
      first.from.node != circuit.processor) {
    return false;
  }
  const Link& last = link(circuit.links.back());
  if (last.to.kind != NodeKind::kResource ||
      last.to.node != circuit.resource) {
    return false;
  }
  for (std::size_t i = 0; i + 1 < circuit.links.size(); ++i) {
    const Link& a = link(circuit.links[i]);
    const Link& b = link(circuit.links[i + 1]);
    if (a.to.kind != NodeKind::kSwitch || b.from.kind != NodeKind::kSwitch ||
        a.to.node != b.from.node) {
      return false;
    }
  }
  return true;
}

bool Network::circuit_free(const Circuit& circuit) const {
  for (const LinkId id : circuit.links) {
    if (!link_free(id)) return false;
  }
  return true;
}

void Network::establish(const Circuit& circuit) {
  RSIN_REQUIRE(circuit_contiguous(circuit), "circuit is not contiguous");
  RSIN_REQUIRE(circuit_free(circuit), "circuit uses an occupied link");
  for (const LinkId id : circuit.links) occupy_link(id);
  active_circuit_[static_cast<std::size_t>(circuit.processor)] = circuit;
}

void Network::release(const Circuit& circuit) {
  for (const LinkId id : circuit.links) release_link(id);
  if (valid_processor(circuit.processor)) {
    Circuit& active =
        active_circuit_[static_cast<std::size_t>(circuit.processor)];
    if (active.links == circuit.links) active.links.clear();
  }
}

const Circuit* Network::established_circuit(ProcessorId p) const {
  RSIN_REQUIRE(valid_processor(p), "processor id out of range");
  const Circuit& circuit = active_circuit_[static_cast<std::size_t>(p)];
  return circuit.links.empty() ? nullptr : &circuit;
}

std::vector<Circuit> Network::teardown_if(
    const std::function<bool(const Circuit&)>& crosses) {
  std::vector<Circuit> victims;
  for (Circuit& active : active_circuit_) {
    if (active.links.empty() || !crosses(active)) continue;
    victims.push_back(active);
    for (const LinkId id : active.links) release_link(id);
    active.links.clear();
  }
  return victims;
}

std::vector<Circuit> Network::fail_link(LinkId id) {
  RSIN_REQUIRE(valid_link(id), "link id out of range");
  auto& link = links_[static_cast<std::size_t>(id)];
  if (link.failed) return {};
  link.failed = true;
  return teardown_if([id](const Circuit& circuit) {
    return std::find(circuit.links.begin(), circuit.links.end(), id) !=
           circuit.links.end();
  });
}

std::vector<Circuit> Network::fail_switch(SwitchId sw) {
  RSIN_REQUIRE(valid_switch(sw), "switch id out of range");
  if (switch_failed_[static_cast<std::size_t>(sw)]) return {};
  switch_failed_[static_cast<std::size_t>(sw)] = 1;
  return teardown_if([this, sw](const Circuit& circuit) {
    for (const LinkId id : circuit.links) {
      const Link& l = link(id);
      if ((l.from.kind == NodeKind::kSwitch && l.from.node == sw) ||
          (l.to.kind == NodeKind::kSwitch && l.to.node == sw)) {
        return true;
      }
    }
    return false;
  });
}

void Network::repair_link(LinkId id) {
  RSIN_REQUIRE(valid_link(id), "link id out of range");
  links_[static_cast<std::size_t>(id)].failed = false;
}

void Network::repair_switch(SwitchId sw) {
  RSIN_REQUIRE(valid_switch(sw), "switch id out of range");
  switch_failed_[static_cast<std::size_t>(sw)] = 0;
}

bool Network::switch_failed(SwitchId sw) const {
  RSIN_REQUIRE(valid_switch(sw), "switch id out of range");
  return switch_failed_[static_cast<std::size_t>(sw)] != 0;
}

bool Network::link_faulty(LinkId id) const {
  const Link& l = link(id);
  if (l.failed) return true;
  if (l.from.kind == NodeKind::kSwitch && switch_failed(l.from.node)) {
    return true;
  }
  return l.to.kind == NodeKind::kSwitch && switch_failed(l.to.node);
}

std::int32_t Network::faulty_link_count() const {
  std::int32_t count = 0;
  for (LinkId id = 0; id < link_count(); ++id) {
    if (link_faulty(id)) ++count;
  }
  return count;
}

std::int32_t Network::failed_switch_count() const {
  return static_cast<std::int32_t>(
      std::count(switch_failed_.begin(), switch_failed_.end(), char{1}));
}

bool Network::fault_free() const {
  if (failed_switch_count() > 0) return false;
  return std::none_of(links_.begin(), links_.end(),
                      [](const Link& l) { return l.failed; });
}

std::uint64_t Network::shape_hash() const {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t value) {
    h ^= value;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(processor_count()));
  mix(static_cast<std::uint64_t>(switch_count()));
  mix(static_cast<std::uint64_t>(resource_count()));
  for (const Link& l : links_) {
    mix(static_cast<std::uint64_t>(l.from.kind));
    mix(static_cast<std::uint64_t>(l.from.node));
    mix(static_cast<std::uint64_t>(l.to.kind));
    mix(static_cast<std::uint64_t>(l.to.node));
  }
  return h;
}

std::string Network::port_name(const PortRef& ref, bool input) const {
  std::ostringstream out;
  switch (ref.kind) {
    case NodeKind::kProcessor:
      out << 'p' << ref.node + 1;  // paper numbers processors from 1
      break;
    case NodeKind::kResource:
      out << 'r' << ref.node + 1;
      break;
    case NodeKind::kSwitch:
      out << "sw" << stage_of(ref.node) << '.' << ref.node
          << (input ? ":in" : ":out") << ref.port;
      break;
  }
  return out.str();
}

}  // namespace rsin::topo
