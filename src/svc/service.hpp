// svc::Service — the crash-safe command executor behind rsind.
//
// The Service owns the multi-tenant state (one Domain per tenant, sharing
// one WarmContextPool) plus the write-ahead journal and snapshot files, and
// maps protocol command lines onto them. The transport (svc::Server) stays
// dumb: it reads lines, calls execute(), calls commit() once per poll
// batch, and only then sends the replies — the group-commit discipline that
// makes every acknowledged command durable before its client can observe
// success.
//
// Journal contents are themselves protocol command lines, so recovery is
// the same dispatch path as live traffic. Two refinements:
//
//  * `cycle` records are journaled *augmented* with the post-cycle
//    sequence number and state hash ("cycle tenant=t id=7 seq=12
//    hash=..."), so replay verifies that the rebuilt domain converged to
//    the exact state the dead daemon acknowledged, instead of assuming it.
//  * commands that change nothing (duplicate ids, idempotent fault
//    repeats) are not journaled — replay therefore never sees them.
//
// Snapshot/journal coordination is epoch-based:
//
//   snapshot():  write snapshot.tmp (epoch = journal.epoch + 1), fsync,
//                rename over snapshot.txt, then recreate the journal with
//                the new epoch.
//   recover():   journal.epoch == snapshot.epoch  -> replay the journal
//                journal.epoch <  snapshot.epoch  -> journal is stale (its
//                records are folded into the snapshot); discard it
//                journal shorter than its header   -> torn create; treat
//                as empty (the header is written before any record)
//
// Every crash window in that protocol leaves a recoverable pair: tmp-file
// crashes are invisible, post-rename crashes leave a stale journal the
// epoch rule discards, torn journal creates are empty by construction.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/warm_pool.hpp"
#include "svc/domain.hpp"
#include "svc/journal.hpp"
#include "svc/protocol.hpp"

namespace rsin::svc {

struct ServiceConfig {
  /// Data directory holding journal.bin / snapshot.txt. Must exist.
  std::string dir;
  std::size_t pool_shards = 4;
  /// fdatasync on every commit (power-loss durability). Off by default:
  /// surviving SIGKILL of the daemon only needs the flush.
  bool durable = false;
};

/// What recover() found and did; surfaced by `rsind --recover` logging and
/// asserted on by the crash-recovery tests.
struct RecoveryReport {
  bool had_snapshot = false;
  std::uint64_t snapshot_epoch = 0;
  bool had_journal = false;
  std::uint64_t journal_epoch = 0;
  bool journal_stale = false;     ///< Epoch rule discarded the journal.
  std::size_t replayed = 0;       ///< Journal records re-executed.
  bool journal_truncated = false; ///< A torn tail was dropped.
  std::uint64_t damage_offset = 0;
  std::string damage;

  [[nodiscard]] std::string to_args() const;
};

/// Thrown when recovery cannot reach a trustworthy state (hash divergence,
/// journal/snapshot epoch impossible under the protocol, snapshot missing
/// for a journal that needs one).
class RecoveryError : public std::runtime_error {
 public:
  explicit RecoveryError(const std::string& what)
      : std::runtime_error("recovery: " + what) {}
};

class Service {
 public:
  explicit Service(ServiceConfig config);

  /// Fresh start: creates an empty epoch-0 journal (truncating any stale
  /// files — callers wanting continuity use recover()).
  void start_fresh();
  /// Rebuilds state from snapshot + journal per the epoch rules above and
  /// reopens the journal for appending. Throws RecoveryError / JournalError
  /// when the on-disk state cannot be trusted.
  RecoveryReport recover();

  /// Executes one protocol line. State-changing commands buffer a journal
  /// record; nothing is durable until commit(). Never throws on bad input —
  /// malformed or failing commands return an err response (and are not
  /// journaled).
  Response execute(const std::string& line);
  /// Group-commit point: flushes buffered journal records (fdatasync when
  /// configured durable). Callers reply to clients only after this returns.
  void commit();

  /// Journals a watchdog trip escalating `tenant` one degradation level
  /// (capped at greedy). Called by the server at a command boundary when
  /// the watchdog flagged a stuck/slow solve.
  Response trip_watchdog(const std::string& tenant);

  /// Writes the epoch-bumped snapshot and swaps the journal (see header
  /// comment). Returns the new epoch.
  std::uint64_t snapshot();

  /// Drain mode: admission-changing commands are refused (read-only and
  /// control commands still work); the server finishes the batch in
  /// flight, snapshots, and exits 0.
  void begin_drain() { draining_ = true; }
  [[nodiscard]] bool draining() const { return draining_; }

  [[nodiscard]] std::uint64_t epoch() const { return journal_.epoch(); }
  [[nodiscard]] const Journal& journal() const { return journal_; }
  [[nodiscard]] bool has_tenant(const std::string& name) const {
    return domains_.contains(name);
  }
  [[nodiscard]] Domain& tenant(const std::string& name) {
    return domains_.at(name);
  }
  [[nodiscard]] std::size_t tenant_count() const { return domains_.size(); }

  [[nodiscard]] std::string journal_path() const;
  [[nodiscard]] std::string snapshot_path() const;

 private:
  Response dispatch(const Command& command, bool replay);
  void replay_record(const std::string& line);
  Domain& require_tenant(const Command& command);
  void journal_append(const std::string& line);
  [[nodiscard]] std::string snapshot_tmp_path() const;

  ServiceConfig config_;
  core::WarmContextPool pool_;
  std::map<std::string, Domain> domains_;
  Journal journal_;
  bool draining_ = false;
};

}  // namespace rsin::svc
