// svc::Service — the crash-safe command executor behind rsind.
//
// The Service owns the multi-tenant state (one Domain per tenant, sharing
// one WarmContextPool) plus the write-ahead journal and snapshot files, and
// maps protocol command lines onto them. The transport (svc::Server) stays
// dumb: it reads lines, calls execute(), calls commit() once per poll
// batch, and only then sends the replies — the group-commit discipline that
// makes every acknowledged command durable before its client can observe
// success.
//
// Journal contents are themselves protocol command lines, so recovery is
// the same dispatch path as live traffic. Two refinements:
//
//  * `cycle` records are journaled *augmented* with the post-cycle
//    sequence number and state hash ("cycle tenant=t id=7 seq=12
//    hash=..."), so replay verifies that the rebuilt domain converged to
//    the exact state the dead daemon acknowledged, instead of assuming it.
//  * commands that change nothing (duplicate ids, idempotent fault
//    repeats) are not journaled — replay therefore never sees them.
//
// Snapshot/journal coordination is epoch-based:
//
//   snapshot():  write snapshot.tmp (epoch = journal.epoch + 1), fsync,
//                rename over snapshot.txt, then recreate the journal with
//                the new epoch.
//   recover():   journal.epoch == snapshot.epoch  -> replay the journal
//                journal.epoch <  snapshot.epoch  -> journal is stale (its
//                records are folded into the snapshot); discard it
//                journal shorter than its header   -> torn create; treat
//                as empty (the header is written before any record)
//
// Every crash window in that protocol leaves a recoverable pair: tmp-file
// crashes are invisible, post-rename crashes leave a stale journal the
// epoch rule discards, torn journal creates are empty by construction.
//
// --- degraded storage (DESIGN.md §12) ------------------------------------
//
// All file I/O goes through a util::Vfs, and storage failure has *defined*
// behavior instead of a crash. The invariant defended throughout is
//
//     in-memory state == replay(durable on-disk state),
//
// which is what makes "zero acknowledged-command loss" checkable. The IO
// circuit breaker mirrors the scheduler breaker's closed/open/half-open
// semantics:
//
//  * commit() retries a failed journal flush (the flush is resumable, so
//    retries never corrupt framing). If every attempt fails, the breaker
//    OPENS: the service discards the unflushed records, REBUILDS its
//    memory from the durable prefix on disk (snapshot + intact journal
//    records — the same machinery as crash recovery), and enters
//    read-only mode. The batch's clients get a coded refusal, never an ok,
//    so nothing acknowledged was lost.
//  * in read-only mode every state-changing command is refused with
//    "err code=read-only ..."; reads (ping/stats/tenants/metrics/epoch/
//    io-status) keep serving.
//  * maybe_rearm() probes the disk after an exponential backoff: it
//    re-scans the journal, verifies the durable prefix is unchanged, and
//    reopens it for appending — the breaker goes HALF-OPEN, admitting
//    mutations again. The first commit that actually writes decides:
//    success closes the breaker, failure re-opens it (rollback + doubled
//    backoff).
//  * snapshot() failures before the rename are rolled back by deleting the
//    tmp file — journal and memory untouched, normal service continues.
//    A failure creating the post-snapshot journal flips to read-only (the
//    renamed snapshot plus the stale journal are a valid durable pair).
//  * if the rollback itself cannot re-read the durable state, memory can
//    no longer be trusted: FatalServiceError propagates out of execute()
//    and the server exits 1 — a disk that can't be read is beyond
//    degraded modes.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/warm_pool.hpp"
#include "svc/domain.hpp"
#include "svc/journal.hpp"
#include "svc/protocol.hpp"
#include "util/vfs.hpp"

namespace rsin::svc {

/// Closed/open/half-open breaker knobs for the storage path.
struct IoBreakerConfig {
  /// Extra flush attempts inside one commit() before the breaker opens
  /// (1 + flush_retries consecutive write failures trip it).
  std::int32_t flush_retries = 2;
  /// First open -> half-open probe delay; doubles per failed probe.
  std::int32_t probe_backoff_ms = 100;
  std::int32_t probe_backoff_max_ms = 5000;
};

struct ServiceConfig {
  /// Data directory holding journal.bin / snapshot.txt. Must exist.
  std::string dir;
  std::size_t pool_shards = 4;
  /// fdatasync on every commit (power-loss durability). Off by default:
  /// surviving SIGKILL of the daemon only needs the flush.
  bool durable = false;
  /// File-system seam; nullptr = the real syscalls. Tests and the fault
  /// soak install a svc::FaultFs here.
  util::Vfs* vfs = nullptr;
  IoBreakerConfig io;
};

/// What recover() found and did; surfaced by `rsind --recover` logging and
/// asserted on by the crash-recovery tests.
struct RecoveryReport {
  bool had_snapshot = false;
  std::uint64_t snapshot_epoch = 0;
  bool had_journal = false;
  std::uint64_t journal_epoch = 0;
  bool journal_stale = false;     ///< Epoch rule discarded the journal.
  std::size_t replayed = 0;       ///< Journal records re-executed.
  bool journal_truncated = false; ///< A torn tail was dropped.
  std::uint64_t damage_offset = 0;
  std::string damage;
  std::size_t orphans_removed = 0; ///< Stale *.tmp files cleaned up.

  [[nodiscard]] std::string to_args() const;
};

/// Thrown when recovery cannot reach a trustworthy state (hash divergence,
/// journal/snapshot epoch impossible under the protocol, snapshot missing
/// for a journal that needs one).
class RecoveryError : public std::runtime_error {
 public:
  explicit RecoveryError(const std::string& what)
      : std::runtime_error("recovery: " + what) {}
};

/// A storage operation failed but the service remains in a defined state
/// (the caller gets a coded refusal; degraded modes take over).
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what)
      : std::runtime_error("io: " + what) {}
};

/// Memory can no longer be proven equal to the durable state (the rollback
/// re-read failed). Deliberately NOT caught by execute(): it must reach the
/// server's top level, which exits 1.
class FatalServiceError : public std::runtime_error {
 public:
  explicit FatalServiceError(const std::string& what)
      : std::runtime_error("fatal: " + what) {}
};

enum class IoMode { kNormal, kReadOnly, kHalfOpen };

[[nodiscard]] const char* to_string(IoMode mode);

class Service {
 public:
  explicit Service(ServiceConfig config);

  /// Fresh start: creates an empty epoch-0 journal (truncating any stale
  /// files — callers wanting continuity use recover()).
  void start_fresh();
  /// Rebuilds state from snapshot + journal per the epoch rules above and
  /// reopens the journal for appending. Throws RecoveryError / JournalError
  /// when the on-disk state cannot be trusted.
  RecoveryReport recover();

  /// Executes one protocol line. State-changing commands buffer a journal
  /// record; nothing is durable until commit(). Never throws on bad input —
  /// malformed or failing commands return an err response (and are not
  /// journaled). Only FatalServiceError escapes.
  Response execute(const std::string& line);
  /// Group-commit point. Returns true when every buffered record is
  /// durable; callers reply ok to clients only after a true return. On
  /// false the breaker has opened: state was rolled back to the durable
  /// prefix and every reply of the batch must become a coded refusal.
  [[nodiscard]] bool commit();

  /// Probes the disk when read-only and the backoff has elapsed; true when
  /// the journal was re-armed (breaker half-open, mutations admitted).
  bool maybe_rearm();

  /// Journals a watchdog trip escalating `tenant` one degradation level
  /// (capped at greedy). Called by the server at a command boundary when
  /// the watchdog flagged a stuck/slow solve.
  Response trip_watchdog(const std::string& tenant);

  /// Writes the epoch-bumped snapshot and swaps the journal (see header
  /// comment). Returns the new epoch. Throws IoError on storage failure
  /// (tmp/rename failures leave journal + memory untouched).
  std::uint64_t snapshot();

  /// Drain mode: admission-changing commands are refused (read-only and
  /// control commands still work); the server finishes the batch in
  /// flight, snapshots, and exits 0.
  void begin_drain() { draining_ = true; }
  [[nodiscard]] bool draining() const { return draining_; }

  [[nodiscard]] IoMode io_mode() const { return io_mode_; }
  [[nodiscard]] bool read_only() const {
    return io_mode_ == IoMode::kReadOnly;
  }
  [[nodiscard]] const std::string& last_io_error() const {
    return last_io_error_;
  }

  [[nodiscard]] std::uint64_t epoch() const { return journal_.epoch(); }
  [[nodiscard]] const Journal& journal() const { return journal_; }
  [[nodiscard]] bool has_tenant(const std::string& name) const {
    return domains_.contains(name);
  }
  [[nodiscard]] Domain& tenant(const std::string& name) {
    return domains_.at(name);
  }
  [[nodiscard]] std::size_t tenant_count() const { return domains_.size(); }

  [[nodiscard]] std::string journal_path() const;
  [[nodiscard]] std::string snapshot_path() const;

 private:
  Response dispatch(const Command& command, bool replay);
  void replay_record(const std::string& line);
  Domain& require_tenant(const Command& command);
  void journal_append(const std::string& line);
  [[nodiscard]] std::string snapshot_tmp_path() const;

  /// Rebuilds domains_ from snapshot + journal scan (no journal reopen).
  RecoveryReport load_state();
  /// Deletes orphaned *.tmp files a crash mid-snapshot left behind.
  std::size_t cleanup_orphan_tmp_files();
  /// Opens the breaker: discard unflushed records, re-read durable state,
  /// refuse mutations, schedule a probe. Throws FatalServiceError when the
  /// durable state cannot be re-read.
  void enter_read_only(const std::string& reason);
  [[nodiscard]] Response io_status_response() const;

  ServiceConfig config_;
  util::Vfs* vfs_ = nullptr;
  core::WarmContextPool pool_;
  std::map<std::string, Domain> domains_;
  Journal journal_;
  bool draining_ = false;

  // --- IO breaker state ----------------------------------------------------
  IoMode io_mode_ = IoMode::kNormal;
  std::string last_io_error_;
  std::int32_t backoff_ms_ = 0;
  std::chrono::steady_clock::time_point probe_at_{};
  /// Durable identity remembered at rollback so a probe can verify the
  /// disk did not change while the breaker was open.
  std::uint64_t durable_epoch_ = 0;
  std::uint64_t durable_valid_bytes_ = 0;
  bool durable_journal_exists_ = false;
  // Counters surfaced by the io-status verb.
  std::uint64_t io_failures_ = 0;
  std::uint64_t breaker_trips_ = 0;
  std::uint64_t rearm_attempts_ = 0;
  std::uint64_t rearms_ = 0;
};

}  // namespace rsin::svc
