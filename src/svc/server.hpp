// svc::Server — the rsind transport: a single-threaded poll(2) loop over a
// Unix-domain stream socket, serving line-framed protocol commands from
// many concurrent clients.
//
// Concurrency model: all service state is mutated by the poll thread only.
// One poll batch reads every ready client, executes every complete line,
// then calls Service::commit() ONCE (the group commit), and only then
// queues the replies — no client can observe an acknowledgement whose
// journal record is not on the file. The only other threads are:
//
//  * the watchdog: observes an armed (start-time, tenant) marker under a
//    mutex and flags when command processing exceeds the configured
//    threshold. The poll thread checks the flag at the next command
//    boundary and journals a `watchdog-trip` record escalating that
//    tenant one degradation level — journaled, so recovery replays the
//    same escalation at the same point in the sequence.
//  * signal senders: SIGTERM/SIGINT handlers (installed by rsind_main)
//    write one byte to the self-pipe; the poll loop wakes and runs the
//    graceful drain — stop admitting, finish the in-flight batch, flush
//    the journal, snapshot, exit 0.
//
// `inject-delay ms=K` is handled at this layer (wall-clock sleep in the
// command path, never journaled): it exists to let tests and the soak
// harness make the watchdog fire deterministically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "svc/service.hpp"

namespace rsin::svc {

struct ServerConfig {
  std::string socket_path;
  ServiceConfig service;
  /// Commands slower than this trip the watchdog; 0 disables it.
  std::int32_t watchdog_ms = 2000;
  /// Journal a note-metrics checkpoint for every tenant after this many
  /// poll batches; 0 disables.
  std::int32_t note_metrics_every = 0;
  /// Lines longer than this are a protocol violation; the client is cut.
  std::size_t max_line_bytes = 1 << 20;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket, recovers (or starts fresh), serves until drained.
  /// Returns the process exit code: 0 for a graceful drain, 1 for a fatal
  /// error. Runs on the calling thread.
  int run(bool recover);

  /// Write end of the self-pipe: async-signal-safe shutdown trigger
  /// (handlers write one byte). Also usable from another thread (tests).
  [[nodiscard]] int wake_fd() const { return wake_write_fd_; }

  [[nodiscard]] Service& service() { return service_; }
  [[nodiscard]] const RecoveryReport& recovery() const { return recovery_; }

 private:
  struct ClientConn {
    int fd = -1;
    std::string in;
    std::string out;
    bool eof = false;
    bool broken = false;
  };
  struct Watchdog;

  int run_loop();
  int listen_socket();
  void read_client(ClientConn& client);
  void flush_client(ClientConn& client);
  /// Executes one line; returns the wire reply. May journal (group commit
  /// happens per batch, after all lines).
  std::string handle_line(const std::string& line);
  void check_watchdog();
  int graceful_drain(std::vector<ClientConn>& clients, int listen_fd);

  ServerConfig config_;
  Service service_;
  RecoveryReport recovery_;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::unique_ptr<Watchdog> watchdog_;
  std::int64_t batches_ = 0;
};

}  // namespace rsin::svc
