// svc::Server — the rsind transport: a single-threaded poll(2) loop over a
// Unix-domain stream socket, serving line-framed protocol commands from
// many concurrent clients.
//
// Concurrency model: all service state is mutated by the poll thread only.
// One poll batch reads every ready client, executes every complete line,
// then calls Service::commit() ONCE (the group commit), and only then
// queues the replies — no client can observe an acknowledgement whose
// journal record is not on the file. The only other threads are:
//
//  * the watchdog: observes an armed (start-time, tenant) marker under a
//    mutex and flags when command processing exceeds the configured
//    threshold. The poll thread checks the flag at the next command
//    boundary and journals a `watchdog-trip` record escalating that
//    tenant one degradation level — journaled, so recovery replays the
//    same escalation at the same point in the sequence.
//  * signal senders: SIGTERM/SIGINT handlers (installed by rsind_main)
//    write one byte to the self-pipe; the poll loop wakes and runs the
//    graceful drain — stop admitting, finish the in-flight batch, flush
//    the journal, snapshot, exit 0.
//
// `inject-delay ms=K` is handled at this layer (wall-clock sleep in the
// command path, never journaled): it exists to let tests and the soak
// harness make the watchdog fire deterministically.
//
// --- hostile-client edge (DESIGN.md §12) -----------------------------------
//
// The loop assumes every client may be malicious and bounds what each one
// can cost:
//
//  * per-connection byte caps: the unconsumed input buffer and the queued
//    output backlog are both capped; crossing either cap cuts the client.
//  * max-line-length: input that grows past max_line_bytes without a
//    newline is a protocol violation, not a memory bill.
//  * slowloris: a connection holding a *partial* line longer than
//    line_timeout_ms is cut, as is one idle (no traffic at all) past
//    idle_timeout_ms, or one whose replies have not drained for
//    write_stall_ms. The poll timeout is bounded (poll_timeout_ms), so
//    these deadlines fire even when no fd is ready — the same tick drives
//    the read-only re-arm probe.
//  * fd exhaustion: beyond max_clients new connections are shed with a
//    coded refusal; EMFILE/ENFILE on accept() is absorbed by closing a
//    spare reserve fd, accepting, closing the connection, and re-taking
//    the reserve — the kernel queue drains instead of spinning poll hot.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "svc/service.hpp"

namespace rsin::svc {

struct ServerConfig {
  std::string socket_path;
  ServiceConfig service;
  /// Commands slower than this trip the watchdog; 0 disables it.
  std::int32_t watchdog_ms = 2000;
  /// Journal a note-metrics checkpoint for every tenant after this many
  /// poll batches; 0 disables.
  std::int32_t note_metrics_every = 0;
  /// Lines longer than this are a protocol violation; the client is cut.
  std::size_t max_line_bytes = 1 << 20;
  /// Cap on a connection's unconsumed input buffer.
  std::size_t max_in_bytes = 2 << 20;
  /// Cap on a connection's queued-but-unsent output.
  std::size_t max_out_bytes = 8 << 20;
  /// Upper bound on one poll(2) wait; keeps timeout checks and the
  /// read-only re-arm probe running even when no fd turns ready.
  std::int32_t poll_timeout_ms = 250;
  /// Cut a connection holding a partial line this long (slowloris). 0 off.
  std::int32_t line_timeout_ms = 10000;
  /// Cut a connection with no traffic in either direction this long. 0 off.
  std::int32_t idle_timeout_ms = 60000;
  /// Cut a connection whose output backlog has not fully drained for this
  /// long (reader stopped reading). 0 off.
  std::int32_t write_stall_ms = 10000;
  /// Connections beyond this are shed at accept with "err code=busy".
  std::size_t max_clients = 256;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket, recovers (or starts fresh), serves until drained.
  /// Returns the process exit code: 0 for a graceful drain, 1 for a fatal
  /// error. Runs on the calling thread.
  int run(bool recover);

  /// Write end of the self-pipe: async-signal-safe shutdown trigger
  /// (handlers write one byte). Also usable from another thread (tests).
  [[nodiscard]] int wake_fd() const { return wake_write_fd_; }

  [[nodiscard]] Service& service() { return service_; }
  [[nodiscard]] const RecoveryReport& recovery() const { return recovery_; }

 private:
  struct ClientConn {
    int fd = -1;
    std::string in;
    std::string out;
    bool eof = false;
    bool broken = false;
    /// Deadline bookkeeping (all steady_clock). last_activity advances on
    /// any byte moved in either direction; partial_since marks when an
    /// incomplete line started waiting; out_since when the backlog became
    /// non-empty.
    std::chrono::steady_clock::time_point last_activity{};
    std::chrono::steady_clock::time_point partial_since{};
    std::chrono::steady_clock::time_point out_since{};
  };
  struct Watchdog;

  int run_loop();
  int listen_socket();
  void accept_clients(int listen_fd, std::vector<ClientConn>& clients);
  void read_client(ClientConn& client);
  void flush_client(ClientConn& client);
  /// Applies idle / partial-line / write-stall deadlines to `client`.
  void enforce_deadlines(ClientConn& client,
                         std::chrono::steady_clock::time_point now);
  /// Executes one line; returns the wire reply. May journal (group commit
  /// happens per batch, after all lines).
  std::string handle_line(const std::string& line);
  void check_watchdog();
  int graceful_drain(std::vector<ClientConn>& clients, int listen_fd);

  ServerConfig config_;
  Service service_;
  RecoveryReport recovery_;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  /// Reserve fd closed/re-taken to absorb EMFILE/ENFILE on accept().
  int spare_fd_ = -1;
  std::unique_ptr<Watchdog> watchdog_;
  std::int64_t batches_ = 0;
  // Edge-defense counters (observable via logs and tests).
  std::uint64_t sheds_ = 0;
  std::uint64_t timeouts_cut_ = 0;
  std::uint64_t caps_cut_ = 0;
};

}  // namespace rsin::svc
