// Write-ahead journal of the rsind service (jflush-style group commit).
//
// Layout on disk:
//
//   header:  "RSINJNL1"  (8 bytes magic, version folded into the last byte)
//            u32 version (currently 1)
//            u64 epoch   (bumped by every snapshot; a journal only applies
//                         on top of the snapshot with the same epoch)
//   record:  u32 payload size
//            u32 CRC-32 of the payload
//            payload bytes (a protocol command line, no trailing newline)
//
// All integers are little-endian. Appends are buffered in memory and hit
// the file only on flush() — the *group commit*: the server journals every
// record of one poll batch, flushes once, and only then sends the replies,
// so a record is durable before its client can observe success. sync()
// additionally fdatasyncs for power-loss durability; plain flush() is
// enough to survive SIGKILL of the daemon, which is the failure mode the
// soak_kill gate injects.
//
// scan() reads every intact record and stops at the first damaged one —
// torn frame, implausible size, or checksum mismatch — reporting it
// structurally (byte offset + reason) instead of returning garbage.
// Everything after a damaged record is dropped, because framing beyond the
// damage point cannot be trusted; for the tail a crash actually leaves
// behind this is exactly the right recovery. A missing/alien header or an
// unsupported version throws JournalError (offset + reason) outright.
// append_to() truncates the damaged tail before appending, so fresh
// records never sit behind garbage.
//
// Every syscall goes through a util::Vfs (the real one by default), which
// is how the fault soak injects ENOSPC/EIO/EINTR storms/short writes into
// this exact code. flush() is *resumable*: it remembers how many buffered
// bytes reached the file, so a failed or short write can be retried later
// without duplicating bytes — the file's framing stays an intact prefix
// plus at most one torn tail, which is precisely what scan() recovers.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/vfs.hpp"

namespace rsin::svc {

/// Structural journal failure (missing/alien header, mid-file corruption,
/// I/O error). `offset()` is the byte position of the damage.
class JournalError : public std::runtime_error {
 public:
  JournalError(std::uint64_t offset, const std::string& reason);

  [[nodiscard]] std::uint64_t offset() const { return offset_; }
  [[nodiscard]] const std::string& reason() const { return reason_; }

 private:
  std::uint64_t offset_;
  std::string reason_;
};

/// CRC-32 (IEEE 802.3, reflected) — the per-record checksum.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes);

class Journal {
 public:
  static constexpr std::uint32_t kVersion = 1;
  /// Bytes of the on-disk header (magic + version + epoch). A file shorter
  /// than this is a torn create — safe to recreate, since the header is
  /// written before any record can exist.
  static constexpr std::size_t kHeaderBytes = 8 + 4 + 8;

  struct ScanResult {
    std::uint64_t epoch = 0;
    std::vector<std::string> records;  ///< Intact payloads, in order.
    std::uint64_t valid_bytes = 0;     ///< Header + intact records.
    bool truncated = false;            ///< A torn tail was dropped.
    std::uint64_t damage_offset = 0;   ///< Where the tail went bad.
    std::string damage;                ///< Reason ("torn record", ...).
  };

  Journal() = default;  ///< Closed; open() is false.
  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();  ///< Flushes buffered records, then closes.

  /// Creates (or truncates) the journal at `path` with the given epoch.
  [[nodiscard]] static Journal create(const std::string& path,
                                      std::uint64_t epoch,
                                      util::Vfs* vfs = nullptr);
  /// Reopens `path` for appending after a scan(): truncates the file to
  /// scan.valid_bytes (dropping any torn tail), positions at the end.
  [[nodiscard]] static Journal append_to(const std::string& path,
                                         const ScanResult& scan,
                                         util::Vfs* vfs = nullptr);
  /// Reads every intact record. See the file comment for the damage model.
  /// A missing file throws JournalError (callers decide whether that means
  /// "fresh start" before calling).
  [[nodiscard]] static ScanResult scan(const std::string& path,
                                       util::Vfs* vfs = nullptr);

  /// Buffers one record; nothing reaches the file until flush().
  void append(std::string_view payload);
  /// Writes all buffered records to the file (group commit point). Throws
  /// JournalError on persistent I/O failure, after recording how much of
  /// the buffer reached the file — a later flush() resumes exactly there,
  /// so retries never duplicate or interleave bytes.
  void flush();
  /// flush() + fdatasync for durability across power loss.
  void sync();
  void close();
  /// Closes WITHOUT flushing, discarding buffered records. The rollback
  /// path uses this after a failed group commit: the unflushed records were
  /// never acknowledged, and flushing them after the rollback decision has
  /// been made would put records on disk that memory no longer contains.
  void abandon();

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Records appended (buffered or flushed) since open.
  [[nodiscard]] std::uint64_t records_appended() const { return appended_; }
  /// Records currently buffered and not yet on the file.
  [[nodiscard]] std::uint64_t records_pending() const { return pending_; }

  /// Buffered bytes already on the file after a partially failed flush().
  [[nodiscard]] std::size_t partial_flushed_bytes() const {
    return flushed_;
  }

 private:
  Journal(int fd, std::string path, std::uint64_t epoch, util::Vfs* vfs)
      : fd_(fd), path_(std::move(path)), epoch_(epoch), vfs_(vfs) {}

  int fd_ = -1;
  std::string path_;
  std::uint64_t epoch_ = 0;
  util::Vfs* vfs_ = nullptr;
  std::string buffer_;
  std::size_t flushed_ = 0;  ///< Prefix of buffer_ already written.
  std::uint64_t appended_ = 0;
  std::uint64_t pending_ = 0;
};

}  // namespace rsin::svc
