#include "svc/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

namespace rsin::svc {

Client::Client(ClientOptions options) : options_(std::move(options)) {}

Client::~Client() { close_now(); }

void Client::close_now() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

void Client::connect_now() {
  close_now();
  sockaddr_un addr{};
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " +
                             options_.socket_path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("cannot create client socket");
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return;  // Stay disconnected; the caller's retry loop backs off.
  }
  fd_ = fd;
}

bool Client::read_line(std::string& out,
                       std::chrono::steady_clock::time_point deadline) {
  while (true) {
    const std::size_t newline = inbuf_.find('\n');
    if (newline != std::string::npos) {
      out = inbuf_.substr(0, newline);
      inbuf_.erase(0, newline + 1);
      return true;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0) return false;
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(left));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) return false;  // Deadline.
    char buf[4096];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // Disconnect (or error): retry on a fresh connection.
    }
    inbuf_.append(buf, static_cast<std::size_t>(n));
  }
}

bool Client::attempt(const std::string& line, Response& out) {
  if (fd_ < 0) connect_now();
  if (fd_ < 0) return false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.timeout_ms);

  std::string wire = line;
  wire += '\n';
  std::size_t done = 0;
  while (done < wire.size()) {
    const ssize_t n =
        ::send(fd_, wire.data() + done, wire.size() - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }

  std::string head;
  if (!read_line(head, deadline)) return false;
  Response response;
  if (head.rfind("ok", 0) == 0 &&
      (head.size() == 2 || head[2] == ' ')) {
    response.ok = true;
    response.body = head.size() > 3 ? head.substr(3) : "";
  } else if (head.rfind("err", 0) == 0 &&
             (head.size() == 3 || head[3] == ' ')) {
    response.ok = false;
    response.body = head.size() > 4 ? head.substr(4) : "";
  } else {
    return false;  // Framing violation; resync on a fresh connection.
  }
  // Multi-line replies announce their continuation count inline. Bodies
  // that are not key=value shaped (bare "pong", error prose) have none.
  std::int64_t lines = 0;
  try {
    lines = parse_command("resp " + response.body).i64_or("lines", 0);
  } catch (const std::exception&) {
    lines = 0;
  }
  for (std::int64_t i = 0; i < lines; ++i) {
    std::string extra;
    if (!read_line(extra, deadline)) return false;
    response.extra.push_back(std::move(extra));
  }
  out = std::move(response);
  return true;
}

Response Client::request(const std::string& line) {
  std::int64_t backoff = options_.backoff_ms;
  for (std::int32_t tries = 0; tries <= options_.retries; ++tries) {
    if (tries > 0) {
      close_now();
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff *= 2;
    }
    Response response;
    if (attempt(line, response)) return response;
  }
  throw std::runtime_error("rsind request failed after " +
                           std::to_string(options_.retries + 1) +
                           " attempts: " + line);
}

}  // namespace rsin::svc
