// Line-framed request/response protocol of the rsind service.
//
// One request is one line: a verb followed by key=value arguments
// ("req tenant=t0 id=17 proc=3"). One response is one line starting with
// "ok" or "err"; responses that carry a body (metrics dumps) declare the
// continuation length inline ("ok lines=42") and the body follows as that
// many raw lines. Keys and values never contain whitespace — doubles are
// serialized with std::to_chars (shortest round-trip), so a stats line
// compares *bitwise* across runs, which is what the crash-recovery gate
// diffs.
//
// The same grammar is used in three places on purpose:
//  * the wire (client <-> rsind),
//  * the write-ahead journal (each journaled record is a command line, so
//    recovery replays records through the same dispatch as live traffic),
//  * domain snapshots (config blocks are argument lists).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rsin::svc {

/// A parsed command: verb plus ordered key=value arguments.
struct Command {
  std::string verb;
  std::vector<std::pair<std::string, std::string>> args;

  /// First value for `key`, or nullptr.
  [[nodiscard]] const std::string* find(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const {
    return find(key) != nullptr;
  }

  /// Typed accessors; the non-defaulted forms throw std::invalid_argument
  /// when the key is absent or malformed (message names the key).
  [[nodiscard]] const std::string& str(std::string_view key) const;
  [[nodiscard]] std::string str_or(std::string_view key,
                                   std::string fallback) const;
  [[nodiscard]] std::int64_t i64(std::string_view key) const;
  [[nodiscard]] std::int64_t i64_or(std::string_view key,
                                    std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t u64(std::string_view key) const;
  [[nodiscard]] std::uint64_t u64_or(std::string_view key,
                                     std::uint64_t fallback) const;
  [[nodiscard]] double f64(std::string_view key) const;
  [[nodiscard]] double f64_or(std::string_view key, double fallback) const;
};

/// Parses one command line. Throws std::invalid_argument on an empty line,
/// a malformed pair (no '='), or embedded control characters.
[[nodiscard]] Command parse_command(std::string_view line);

/// One response: ok/err status, the rest of the status line, and any
/// declared continuation lines.
struct Response {
  bool ok = false;
  std::string body;                 ///< Status line after "ok " / "err ".
  std::vector<std::string> extra;   ///< Continuation lines (lines=N).

  [[nodiscard]] std::string wire() const;  ///< Full framed text to send.
  static Response okay(std::string body = "");
  static Response error(std::string reason);
  /// A *coded* refusal: "err code=<code> <detail>". Machine-matchable
  /// degraded-mode errors (read-only disk, io breaker, overload) carry a
  /// code so clients can distinguish "retry later" from "you sent garbage".
  static Response refused(std::string_view code, std::string detail);
};

// --- exact numeric round-trips -------------------------------------------
// Shortest-round-trip double formatting (std::to_chars) and strict parsing.
// Every double that crosses the wire, the journal, or a snapshot goes
// through these, so save -> load -> continue is bit-exact.

[[nodiscard]] std::string format_exact(double value);
[[nodiscard]] double parse_exact_double(std::string_view token,
                                        std::string_view what);
[[nodiscard]] std::int64_t parse_exact_i64(std::string_view token,
                                           std::string_view what);
[[nodiscard]] std::uint64_t parse_exact_u64(std::string_view token,
                                            std::string_view what);

/// Lowercase-hex encoding of a 64-bit hash (state hashes on the wire).
[[nodiscard]] std::string format_hex(std::uint64_t value);
[[nodiscard]] std::uint64_t parse_hex(std::string_view token,
                                      std::string_view what);

/// FNV-1a folding helpers used by Domain::state_hash.
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

[[nodiscard]] constexpr std::uint64_t fnv_mix(std::uint64_t hash,
                                              std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffULL;
    hash *= kFnvPrime;
  }
  return hash;
}

[[nodiscard]] std::uint64_t fnv_mix_double(std::uint64_t hash, double value);

}  // namespace rsin::svc
