#include "svc/domain.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <memory>
#include <ostream>
#include <utility>

#include "svc/protocol.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"

namespace rsin::svc {
namespace {

/// Comma-joined id list (protocol values cannot contain spaces).
template <typename Container>
std::string join_ids(const Container& ids) {
  std::string out;
  for (const auto id : ids) {
    if (!out.empty()) out += ',';
    out += std::to_string(id);
  }
  return out;
}

std::vector<std::uint64_t> split_ids(const std::string& list) {
  std::vector<std::uint64_t> ids;
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    ids.push_back(
        parse_exact_u64(std::string_view(list).substr(pos, comma - pos),
                        "id list"));
    pos = comma + 1;
  }
  return ids;
}

}  // namespace

std::string DomainConfig::to_args() const {
  std::string args;
  args += "topology=" + topology;
  args += " n=" + std::to_string(n);
  args += " seed=" + std::to_string(seed);
  args += " scheduler=" + scheduler;
  args += " cycle-interval=" + format_exact(cycle_interval);
  args += " transmission=" + format_exact(transmission_time);
  args += " service=" + format_exact(mean_service_time);
  args += " max-pending=" + std::to_string(max_pending);
  return args;
}

DomainConfig DomainConfig::from_command(const Command& command) {
  DomainConfig config;
  config.topology = command.str_or("topology", config.topology);
  config.n = static_cast<std::int32_t>(command.i64_or("n", config.n));
  config.seed = command.u64_or("seed", config.seed);
  config.scheduler = command.str_or("scheduler", config.scheduler);
  config.cycle_interval =
      command.f64_or("cycle-interval", config.cycle_interval);
  config.transmission_time =
      command.f64_or("transmission", config.transmission_time);
  config.mean_service_time =
      command.f64_or("service", config.mean_service_time);
  config.max_pending = static_cast<std::int32_t>(
      command.i64_or("max-pending", config.max_pending));
  config.validate();
  return config;
}

void DomainConfig::validate() const {
  RSIN_REQUIRE(scheduler == "breaker" || scheduler == "warm" ||
                   scheduler == "dinic" || scheduler == "greedy",
               "tenant scheduler must be breaker|warm|dinic|greedy, got " +
                   scheduler);
  RSIN_REQUIRE(cycle_interval > 0.0 && std::isfinite(cycle_interval),
               "tenant cycle-interval must be positive and finite");
  RSIN_REQUIRE(transmission_time >= 0.0 && std::isfinite(transmission_time),
               "tenant transmission must be non-negative and finite");
  RSIN_REQUIRE(mean_service_time > 0.0 && std::isfinite(mean_service_time),
               "tenant service must be positive and finite");
  RSIN_REQUIRE(max_pending > 0, "tenant max-pending must be >= 1");
}

const char* to_string(AdmitResult result) {
  switch (result) {
    case AdmitResult::kAdmitted: return "admitted";
    case AdmitResult::kDuplicate: return "duplicate";
    case AdmitResult::kShed: return "shed";
  }
  return "?";
}

Domain::Domain(std::string name, DomainConfig config,
               core::WarmContextPool* pool)
    : name_(std::move(name)),
      config_(std::move(config)),
      pool_(pool),
      net_(topo::make_named(config_.topology, config_.n)),
      rng_(config_.seed),
      registry_(std::make_unique<obs::Registry>()) {
  config_.validate();
  resource_busy_.assign(static_cast<std::size_t>(net_.resource_count()), 0);
  busy_resources_ = sim::TimeWeightedStat(0.0, 0.0);
  queue_length_ = sim::TimeWeightedStat(0.0, 0.0);
  obs_admitted_ = &registry_->counter("svc.requests.admitted");
  obs_shed_ = &registry_->counter("svc.requests.shed");
  obs_cycles_ = &registry_->counter("svc.cycles.solved");
  obs_granted_ = &registry_->counter("svc.circuits.granted");
  obs_completed_ = &registry_->counter("svc.tasks.completed");
  obs_faults_ = &registry_->counter("svc.faults.injected");
  build_scheduler();
}

void Domain::build_scheduler() {
  // Every discipline here is deterministic in the admitted sequence, and —
  // critically for recovery — independent of warm-start residual state:
  // warm solvers run in canonical mode, whose assignments are bitwise those
  // of the cold Dinic solve, so a domain rebuilt without its (never
  // snapshotted) warm residuals still schedules identically.
  constexpr bool kVerify = false;
  constexpr bool kCanonical = true;
  const auto lease = [&]() -> core::WarmContextLease {
    if (pool_ == nullptr) return {};
    // Shard by tenant name so tenants re-checkout their own warm skeletons.
    std::uint64_t shard = kFnvOffset;
    for (const char ch : name_) {
      shard = fnv_mix(shard, static_cast<unsigned char>(ch));
    }
    return pool_->checkout(static_cast<std::size_t>(shard), net_);
  };
  if (config_.scheduler == "dinic") {
    scheduler_ = std::make_unique<core::MaxFlowScheduler>(
        flow::MaxFlowAlgorithm::kDinic);
  } else if (config_.scheduler == "greedy") {
    scheduler_ = std::make_unique<core::GreedyScheduler>();
  } else if (config_.scheduler == "warm") {
    scheduler_ = pool_ != nullptr
                     ? std::make_unique<core::WarmMaxFlowScheduler>(
                           lease(), kVerify, kCanonical)
                     : std::make_unique<core::WarmMaxFlowScheduler>(
                           kVerify, kCanonical);
  } else {  // breaker
    auto warm = pool_ != nullptr
                    ? std::make_unique<core::WarmMaxFlowScheduler>(
                          lease(), kVerify, kCanonical)
                    : std::make_unique<core::WarmMaxFlowScheduler>(
                          kVerify, kCanonical);
    scheduler_ = std::make_unique<core::CircuitBreakerScheduler>(
        core::BreakerConfig{}, std::move(warm));
  }
  scheduler_->bind_obs(obs::Handle{registry_.get(), nullptr});
  scheduler_->set_relaxed(level_ >= 1);
}

core::Scheduler& Domain::scheduler_for_level() {
  if (level_ >= 2) return greedy_;
  return *scheduler_;
}

AdmitResult Domain::admit(std::uint64_t id, topo::ProcessorId processor,
                          std::int32_t priority) {
  RSIN_REQUIRE(net_.valid_processor(processor),
               "req proc out of range for tenant " + name_);
  RSIN_REQUIRE(priority >= 0, "req prio must be >= 0");
  if (seen_.contains(id)) return AdmitResult::kDuplicate;
  seen_.insert(id);
  if (pending_.size() >=
      static_cast<std::size_t>(config_.max_pending)) {
    ++shed_;
    obs_shed_->add(1);
    return AdmitResult::kShed;
  }
  pending_.push_back(Pending{id, processor, priority, now_, 0});
  ++arrived_;
  obs_admitted_->add(1);
  queue_length_.update(now_, static_cast<double>(pending_.size()));
  return AdmitResult::kAdmitted;
}

void Domain::retire_due_events() {
  // Retire in (event time, establishment sequence) order — container order
  // never decides, so a restored domain retires identically.
  while (true) {
    topo::ProcessorId best = topo::kInvalidId;
    double best_time = 0.0;
    int best_kind = 0;  // 0 = release, 1 = completion
    std::uint64_t best_token = 0;
    for (const auto& [proc, active] : active_) {
      const double time = active.released ? active.done_time
                                          : active.release_time;
      const int kind = active.released ? 1 : 0;
      if (time > now_) continue;
      if (best == topo::kInvalidId || time < best_time ||
          (time == best_time && active.token < best_token)) {
        best = proc;
        best_time = time;
        best_kind = kind;
        best_token = active.token;
      }
    }
    if (best == topo::kInvalidId) break;
    Active& active = active_.at(best);
    if (best_kind == 0) {
      // Transmission done: free the circuit; the resource stays busy.
      const topo::Circuit* circuit = net_.established_circuit(best);
      RSIN_ENSURE(circuit != nullptr,
                  "active transmission lost its circuit");
      net_.release(*circuit);
      active.released = true;
      if (active.done_time <= active.release_time) {
        // Zero-length service tail: complete immediately on the next pass.
        active.done_time = active.release_time;
      }
    } else {
      // Task complete: resource frees, response time closes.
      resource_busy_[static_cast<std::size_t>(active.resource)] = 0;
      std::int32_t busy = 0;
      for (const char b : resource_busy_) busy += b;
      busy_resources_.update(active.done_time, static_cast<double>(busy));
      response_.add(active.done_time - active.arrival);
      ++completed_;
      obs_completed_->add(1);
      active_.erase(best);
    }
  }
}

CycleSummary Domain::run_cycle() {
  ++cycle_seq_;
  now_ += config_.cycle_interval;
  retire_due_events();

  CycleSummary summary;
  summary.seq = cycle_seq_;

  if (pending_.size() <
      static_cast<std::size_t>(std::max(batch_window_, 1))) {
    ++deferred_cycles_;
    summary.deferred = true;
    summary.pending = static_cast<std::int32_t>(pending_.size());
    summary.state_hash = state_hash();
    return summary;
  }

  // One request per idle processor, oldest first (a processor mid-
  // transmission keeps its later arrivals queued — model point 5).
  core::Problem problem;
  problem.network = &net_;
  std::vector<char> chosen(
      static_cast<std::size_t>(net_.processor_count()), 0);
  for (const Pending& pending : pending_) {
    const auto proc = static_cast<std::size_t>(pending.processor);
    if (chosen[proc] != 0 || active_.contains(pending.processor)) continue;
    chosen[proc] = 1;
    problem.requests.push_back(
        core::Request{pending.processor, pending.priority, 0});
  }
  std::int64_t free_resources = 0;
  for (topo::ResourceId r = 0; r < net_.resource_count(); ++r) {
    if (resource_busy_[static_cast<std::size_t>(r)] != 0) continue;
    problem.free_resources.push_back(core::FreeResource{r, 0, 0});
    ++free_resources;
  }

  core::ScheduleResult result =
      scheduler_for_level().schedule(problem);

  std::vector<std::uint64_t> granted_ids;
  granted_ids.reserve(result.assignments.size());
  for (const core::Assignment& asg : result.assignments) {
    // Find the pending entry this grant serves (the oldest for that
    // processor — exactly the one the problem offered).
    const auto it = std::find_if(
        pending_.begin(), pending_.end(), [&](const Pending& p) {
          return p.processor == asg.request.processor;
        });
    RSIN_ENSURE(it != pending_.end(), "granted request not in queue");
    net_.establish(asg.circuit);
    const double service = rng_.exponential(1.0 / config_.mean_service_time);
    Active active;
    active.id = it->id;
    active.processor = it->processor;
    active.resource = asg.resource.resource;
    active.priority = it->priority;
    active.arrival = it->arrival;
    active.release_time = now_ + config_.transmission_time;
    active.done_time = now_ + config_.transmission_time + service;
    active.retries = it->retries;
    active.token = establish_seq_++;
    active_.emplace(active.processor, active);
    resource_busy_[static_cast<std::size_t>(active.resource)] = 1;
    wait_.add(now_ - it->arrival);
    granted_ids.push_back(it->id);
    pending_.erase(it);
  }
  std::int32_t busy = 0;
  for (const char b : resource_busy_) busy += b;
  busy_resources_.update(now_, static_cast<double>(busy));
  queue_length_.update(now_, static_cast<double>(pending_.size()));

  const std::int64_t offered =
      std::min(static_cast<std::int64_t>(problem.requests.size()),
               free_resources);
  offered_opportunities_ += offered;
  const auto granted = static_cast<std::int64_t>(result.assignments.size());
  if (offered > granted) blocked_opportunities_ += offered - granted;
  granted_ += granted;
  ++solved_cycles_;
  if (level_ >= 2) ++degraded_cycles_;
  obs_cycles_->add(1);
  obs_granted_->add(granted);

  summary.granted = static_cast<std::int32_t>(granted);
  summary.completed = 0;  // Completions are retired at cycle entry.
  summary.pending = static_cast<std::int32_t>(pending_.size());
  summary.state_hash = state_hash();
  return summary;
}

bool Domain::inject_link_fault(topo::LinkId link) {
  RSIN_REQUIRE(net_.valid_link(link),
               "fault link out of range for tenant " + name_);
  if (net_.link_failed(link)) return false;  // Idempotent.
  std::vector<topo::Circuit> victims = net_.fail_link(link);
  ++faults_injected_;
  obs_faults_->add(1);
  failed_links_.insert(
      std::lower_bound(failed_links_.begin(), failed_links_.end(), link),
      link);
  // Victims re-queue at the front, first victim first, keeping their
  // original arrival (so waits account the full delay) and a retry mark.
  for (auto it = victims.rbegin(); it != victims.rend(); ++it) {
    const auto found = active_.find(it->processor);
    RSIN_ENSURE(found != active_.end(), "teardown victim not active");
    Active& active = found->second;
    resource_busy_[static_cast<std::size_t>(active.resource)] = 0;
    pending_.push_front(Pending{active.id, active.processor, active.priority,
                                active.arrival, active.retries + 1});
    ++torn_down_;
    ++retries_;
    active_.erase(found);
  }
  std::int32_t busy = 0;
  for (const char b : resource_busy_) busy += b;
  busy_resources_.update(now_, static_cast<double>(busy));
  queue_length_.update(now_, static_cast<double>(pending_.size()));
  // The fabric changed under the scheduler: drop warm residuals.
  scheduler_->reset();
  return true;
}

bool Domain::repair_link(topo::LinkId link) {
  RSIN_REQUIRE(net_.valid_link(link),
               "repair link out of range for tenant " + name_);
  if (!net_.link_failed(link)) return false;  // Idempotent.
  net_.repair_link(link);
  ++repairs_;
  const auto it =
      std::lower_bound(failed_links_.begin(), failed_links_.end(), link);
  if (it != failed_links_.end() && *it == link) failed_links_.erase(it);
  scheduler_->reset();
  return true;
}

void Domain::set_batch_window(std::int32_t window) {
  RSIN_REQUIRE(window >= 1, "batch-window must be >= 1");
  batch_window_ = window;
}

void Domain::set_level(std::int32_t level) {
  RSIN_REQUIRE(level >= 0 && level <= 2, "level must be 0..2");
  if (level == level_) return;
  level_ = level;
  ++level_transitions_;
  scheduler_->set_relaxed(level_ >= 1);
}

std::uint64_t Domain::state_hash() const {
  std::uint64_t h = kFnvOffset;
  h = fnv_mix_double(h, now_);
  h = fnv_mix(h, cycle_seq_);
  h = fnv_mix(h, establish_seq_);
  h = fnv_mix(h, static_cast<std::uint64_t>(batch_window_));
  h = fnv_mix(h, static_cast<std::uint64_t>(level_));
  for (const std::uint64_t word : rng_.state()) h = fnv_mix(h, word);
  h = fnv_mix(h, pending_.size());
  for (const Pending& p : pending_) {
    h = fnv_mix(h, p.id);
    h = fnv_mix(h, static_cast<std::uint64_t>(p.processor));
    h = fnv_mix(h, static_cast<std::uint64_t>(p.priority));
    h = fnv_mix_double(h, p.arrival);
    h = fnv_mix(h, static_cast<std::uint64_t>(p.retries));
  }
  h = fnv_mix(h, active_.size());
  for (const auto& [proc, a] : active_) {
    h = fnv_mix(h, a.id);
    h = fnv_mix(h, static_cast<std::uint64_t>(proc));
    h = fnv_mix(h, static_cast<std::uint64_t>(a.resource));
    h = fnv_mix_double(h, a.arrival);
    h = fnv_mix_double(h, a.release_time);
    h = fnv_mix_double(h, a.done_time);
    h = fnv_mix(h, a.token);
    h = fnv_mix(h, static_cast<std::uint64_t>(a.released ? 1 : 0));
  }
  for (const char busy : resource_busy_) {
    h = fnv_mix(h, static_cast<std::uint64_t>(busy));
  }
  for (const topo::LinkId link : failed_links_) {
    h = fnv_mix(h, static_cast<std::uint64_t>(link));
  }
  // The seen set is unordered; fold it order-independently.
  std::uint64_t seen_mix = 0;
  for (const std::uint64_t id : seen_) {
    std::uint64_t sm = id;
    seen_mix ^= util::splitmix64(sm);
  }
  h = fnv_mix(h, seen_mix);
  h = fnv_mix(h, seen_.size());
  for (const std::int64_t counter :
       {arrived_, completed_, shed_, granted_, solved_cycles_,
        deferred_cycles_, blocked_opportunities_, offered_opportunities_,
        degraded_cycles_, faults_injected_, repairs_, torn_down_, retries_,
        level_transitions_}) {
    h = fnv_mix(h, static_cast<std::uint64_t>(counter));
  }
  for (const sim::RunningStat* stat : {&wait_, &response_}) {
    const auto s = stat->state();
    h = fnv_mix(h, static_cast<std::uint64_t>(s.count));
    h = fnv_mix_double(h, s.mean);
    h = fnv_mix_double(h, s.m2);
  }
  for (const sim::TimeWeightedStat* stat :
       {&busy_resources_, &queue_length_}) {
    const auto s = stat->state();
    h = fnv_mix_double(h, s.last_time);
    h = fnv_mix_double(h, s.start_time);
    h = fnv_mix_double(h, s.value);
    h = fnv_mix_double(h, s.integral);
  }
  return h;
}

sim::SystemMetrics Domain::metrics() const {
  sim::SystemMetrics m;
  m.resource_utilization =
      net_.resource_count() > 0
          ? busy_resources_.average(now_) /
                static_cast<double>(net_.resource_count())
          : 0.0;
  m.mean_response_time = response_.mean();
  m.mean_wait_time = wait_.mean();
  m.blocking_probability =
      offered_opportunities_ > 0
          ? static_cast<double>(blocked_opportunities_) /
                static_cast<double>(offered_opportunities_)
          : 0.0;
  m.mean_queue_length = queue_length_.average(now_);
  m.tasks_arrived = arrived_;
  m.tasks_completed = completed_;
  m.scheduling_cycles = solved_cycles_;
  m.deferred_cycles = deferred_cycles_;
  m.degraded_cycle_fraction =
      solved_cycles_ > 0 ? static_cast<double>(degraded_cycles_) /
                               static_cast<double>(solved_cycles_)
                         : 0.0;
  m.faults_injected = faults_injected_;
  m.repairs = repairs_;
  m.circuits_torn_down = torn_down_;
  m.retries = retries_;
  m.tasks_shed = shed_;
  m.degradation_transitions = level_transitions_;
  // The domain's journaled ladder stays 3-level (optimal/relaxed/greedy);
  // map its top rung explicitly so widening the sim ladder cannot silently
  // relabel it.
  m.final_level = level_ >= 2   ? sim::DegradationLevel::kGreedy
                  : level_ == 1 ? sim::DegradationLevel::kRelaxed
                                : sim::DegradationLevel::kOptimal;
  return m;
}

std::string Domain::stats_args() const {
  const sim::SystemMetrics m = metrics();
  std::string args;
  args += "tenant=" + name_;
  args += " now=" + format_exact(now_);
  args += " cycles=" + std::to_string(m.scheduling_cycles);
  args += " deferred=" + std::to_string(m.deferred_cycles);
  args += " arrived=" + std::to_string(m.tasks_arrived);
  args += " completed=" + std::to_string(m.tasks_completed);
  args += " granted=" + std::to_string(granted_);
  args += " shed=" + std::to_string(m.tasks_shed);
  args += " retries=" + std::to_string(m.retries);
  args += " torn=" + std::to_string(m.circuits_torn_down);
  args += " faults=" + std::to_string(m.faults_injected);
  args += " repairs=" + std::to_string(m.repairs);
  args += " pending=" + std::to_string(pending_.size());
  args += " level=" + std::to_string(level_);
  args += " transitions=" + std::to_string(m.degradation_transitions);
  args += " utilization=" + format_exact(m.resource_utilization);
  args += " wait=" + format_exact(m.mean_wait_time);
  args += " response=" + format_exact(m.mean_response_time);
  args += " blocking=" + format_exact(m.blocking_probability);
  args += " qlen=" + format_exact(m.mean_queue_length);
  args += " hash=" + format_hex(state_hash());
  return args;
}

void Domain::save(std::ostream& out) const {
  out << "domsnap v=1 name=" << name_ << '\n';
  out << "cfg " << config_.to_args() << '\n';
  out << "clock now=" << format_exact(now_) << " cycle=" << cycle_seq_
      << " estseq=" << establish_seq_ << " window=" << batch_window_
      << " level=" << level_ << '\n';
  const auto rng_state = rng_.state();
  out << "rng a=" << rng_state[0] << " b=" << rng_state[1]
      << " c=" << rng_state[2] << " d=" << rng_state[3] << '\n';
  out << "counters arrived=" << arrived_ << " completed=" << completed_
      << " shed=" << shed_ << " granted=" << granted_
      << " solved=" << solved_cycles_ << " deferred=" << deferred_cycles_
      << " blocked=" << blocked_opportunities_
      << " offered=" << offered_opportunities_
      << " degraded=" << degraded_cycles_ << " faults=" << faults_injected_
      << " repairs=" << repairs_ << " torn=" << torn_down_
      << " retries=" << retries_ << " transitions=" << level_transitions_
      << '\n';
  const auto rs = [&](const char* tag, const sim::RunningStat& stat) {
    const auto s = stat.state();
    out << tag << " count=" << s.count << " mean=" << format_exact(s.mean)
        << " m2=" << format_exact(s.m2) << '\n';
  };
  rs("wait", wait_);
  rs("resp", response_);
  const auto tw = [&](const char* tag, const sim::TimeWeightedStat& stat) {
    const auto s = stat.state();
    out << tag << " last=" << format_exact(s.last_time)
        << " start=" << format_exact(s.start_time)
        << " value=" << format_exact(s.value)
        << " integral=" << format_exact(s.integral) << '\n';
  };
  tw("busytw", busy_resources_);
  tw("qtw", queue_length_);
  out << "failed list=" << join_ids(failed_links_) << '\n';
  // Seen ids, sorted (the set is unordered) and chunked to keep lines sane.
  std::vector<std::uint64_t> seen(seen_.begin(), seen_.end());
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < seen.size(); i += 256) {
    out << "seenids list=";
    for (std::size_t j = i; j < std::min(seen.size(), i + 256); ++j) {
      if (j > i) out << ',';
      out << seen[j];
    }
    out << '\n';
  }
  for (const Pending& p : pending_) {
    out << "pend id=" << p.id << " proc=" << p.processor
        << " prio=" << p.priority << " arrival=" << format_exact(p.arrival)
        << " retries=" << p.retries << '\n';
  }
  for (const auto& [proc, a] : active_) {
    out << "act id=" << a.id << " proc=" << proc << " res=" << a.resource
        << " prio=" << a.priority << " arrival=" << format_exact(a.arrival)
        << " release=" << format_exact(a.release_time)
        << " done=" << format_exact(a.done_time) << " retries=" << a.retries
        << " token=" << a.token << " released=" << (a.released ? 1 : 0);
    out << " links=";
    if (!a.released) {
      const topo::Circuit* circuit = net_.established_circuit(proc);
      RSIN_ENSURE(circuit != nullptr, "active circuit missing in snapshot");
      out << join_ids(circuit->links);
    }
    out << '\n';
  }
  out << "endsnap hash=" << format_hex(state_hash()) << '\n';
  RSIN_ENSURE(static_cast<bool>(out), "domain snapshot write failed");
}

Domain Domain::load(std::istream& in, core::WarmContextPool* pool) {
  std::string line;
  RSIN_REQUIRE(static_cast<bool>(std::getline(in, line)),
               "domain snapshot: missing domsnap header");
  Command header = parse_command(line);
  RSIN_REQUIRE(header.verb == "domsnap",
               "domain snapshot: bad header: " + line);
  RSIN_REQUIRE(header.u64("v") == 1,
               "domain snapshot: unsupported version");
  const std::string name = header.str("name");

  RSIN_REQUIRE(static_cast<bool>(std::getline(in, line)),
               "domain snapshot: missing cfg");
  const Command cfg = parse_command(line);
  RSIN_REQUIRE(cfg.verb == "cfg", "domain snapshot: expected cfg: " + line);

  Domain domain(name, DomainConfig::from_command(cfg), pool);
  std::uint64_t saved_hash = 0;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const Command cmd = parse_command(line);
    if (cmd.verb == "clock") {
      domain.now_ = cmd.f64("now");
      domain.cycle_seq_ = cmd.u64("cycle");
      domain.establish_seq_ = cmd.u64("estseq");
      domain.batch_window_ = static_cast<std::int32_t>(cmd.i64("window"));
      domain.level_ = static_cast<std::int32_t>(cmd.i64("level"));
      domain.scheduler_->set_relaxed(domain.level_ >= 1);
    } else if (cmd.verb == "rng") {
      domain.rng_.set_state(
          {cmd.u64("a"), cmd.u64("b"), cmd.u64("c"), cmd.u64("d")});
    } else if (cmd.verb == "counters") {
      domain.arrived_ = cmd.i64("arrived");
      domain.completed_ = cmd.i64("completed");
      domain.shed_ = cmd.i64("shed");
      domain.granted_ = cmd.i64("granted");
      domain.solved_cycles_ = cmd.i64("solved");
      domain.deferred_cycles_ = cmd.i64("deferred");
      domain.blocked_opportunities_ = cmd.i64("blocked");
      domain.offered_opportunities_ = cmd.i64("offered");
      domain.degraded_cycles_ = cmd.i64("degraded");
      domain.faults_injected_ = cmd.i64("faults");
      domain.repairs_ = cmd.i64("repairs");
      domain.torn_down_ = cmd.i64("torn");
      domain.retries_ = cmd.i64("retries");
      domain.level_transitions_ = cmd.i64("transitions");
    } else if (cmd.verb == "wait" || cmd.verb == "resp") {
      sim::RunningStat::State s;
      s.count = cmd.i64("count");
      s.mean = cmd.f64("mean");
      s.m2 = cmd.f64("m2");
      (cmd.verb == "wait" ? domain.wait_ : domain.response_).restore(s);
    } else if (cmd.verb == "busytw" || cmd.verb == "qtw") {
      sim::TimeWeightedStat::State s;
      s.last_time = cmd.f64("last");
      s.start_time = cmd.f64("start");
      s.value = cmd.f64("value");
      s.integral = cmd.f64("integral");
      (cmd.verb == "busytw" ? domain.busy_resources_ : domain.queue_length_)
          .restore(s);
    } else if (cmd.verb == "failed") {
      for (const std::uint64_t id : split_ids(cmd.str("list"))) {
        const auto link = static_cast<topo::LinkId>(id);
        domain.net_.fail_link(link);
        domain.failed_links_.push_back(link);
      }
      std::sort(domain.failed_links_.begin(), domain.failed_links_.end());
    } else if (cmd.verb == "seenids") {
      for (const std::uint64_t id : split_ids(cmd.str("list"))) {
        domain.seen_.insert(id);
      }
    } else if (cmd.verb == "pend") {
      Pending p;
      p.id = cmd.u64("id");
      p.processor = static_cast<topo::ProcessorId>(cmd.i64("proc"));
      p.priority = static_cast<std::int32_t>(cmd.i64("prio"));
      p.arrival = cmd.f64("arrival");
      p.retries = static_cast<std::int32_t>(cmd.i64("retries"));
      domain.pending_.push_back(p);
    } else if (cmd.verb == "act") {
      Active a;
      a.id = cmd.u64("id");
      a.processor = static_cast<topo::ProcessorId>(cmd.i64("proc"));
      a.resource = static_cast<topo::ResourceId>(cmd.i64("res"));
      a.priority = static_cast<std::int32_t>(cmd.i64("prio"));
      a.arrival = cmd.f64("arrival");
      a.release_time = cmd.f64("release");
      a.done_time = cmd.f64("done");
      a.retries = static_cast<std::int32_t>(cmd.i64("retries"));
      a.token = cmd.u64("token");
      a.released = cmd.i64("released") != 0;
      if (!a.released) {
        topo::Circuit circuit;
        circuit.processor = a.processor;
        circuit.resource = a.resource;
        for (const std::uint64_t id : split_ids(cmd.str("links")))
          circuit.links.push_back(static_cast<topo::LinkId>(id));
        domain.net_.establish(circuit);
      }
      domain.resource_busy_[static_cast<std::size_t>(a.resource)] = 1;
      domain.active_.emplace(a.processor, a);
    } else if (cmd.verb == "endsnap") {
      saved_hash = parse_hex(cmd.str("hash"), "snapshot hash");
      saw_end = true;
      break;
    } else {
      RSIN_REQUIRE(false, "domain snapshot: unknown record: " + line);
    }
  }
  RSIN_REQUIRE(saw_end, "domain snapshot: truncated (no endsnap)");
  // Recovery invariant: a restored domain must hash exactly as the one
  // that was saved — anything else means the snapshot lost state.
  const std::uint64_t rebuilt = domain.state_hash();
  RSIN_REQUIRE(rebuilt == saved_hash,
               "domain snapshot: state hash mismatch after restore for "
               "tenant " + name);
  return domain;
}

}  // namespace rsin::svc
