// svc::Domain — one tenant's deterministic scheduling domain.
//
// A Domain is the service-mode counterpart of one simulate_system run: a
// network, a pool-backed optimal scheduler, per-processor request queues,
// in-flight transmissions, and metric accumulators — but driven by an
// externally supplied request stream instead of a Poisson source, and on a
// *logical* clock that only advances when a cycle runs. Every mutation is a
// pure function of the admitted command sequence:
//
//  * no wall-clock reads anywhere in the state path;
//  * the service-time stream comes from a seeded util::Rng whose raw state
//    is part of the snapshot;
//  * event processing (circuit releases, task completions, fault teardowns)
//    is ordered by (logical time, admission sequence), never by container
//    iteration order;
//  * the warm-start scheduler runs in *canonical* mode, so its assignments
//    are bitwise those of the cold Dinic solve no matter what warm state a
//    recovery did or did not restore.
//
// That determinism is the entire crash-safety story: replaying the
// journal's admitted records through a fresh Domain reproduces the killed
// daemon's state bit for bit, and bench/soak_kill holds the service to it
// (recovered SystemMetrics must equal the uninterrupted run's exactly).
// Each cycle additionally publishes a state hash that the journal's cycle
// records carry, so recovery *verifies* convergence instead of assuming it.
//
// Idempotency: every req/cycle command carries a client-chosen 64-bit id;
// ids already seen (admitted OR shed) are acknowledged without re-executing,
// which is what makes client retry-after-timeout safe across daemon
// restarts.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/problem.hpp"
#include "core/scheduler.hpp"
#include "core/warm_pool.hpp"
#include "obs/metrics.hpp"
#include "sim/metrics.hpp"
#include "sim/system_sim.hpp"
#include "topo/network.hpp"
#include "util/rng.hpp"

namespace rsin::svc {

struct Command;  // protocol.hpp

/// Per-tenant configuration, fixed at domain creation (journaled with the
/// `tenant` record). Runtime-mutable knobs (batch window, degradation
/// level) are journaled as separate `set` records instead.
struct DomainConfig {
  std::string topology = "omega";
  std::int32_t n = 8;
  std::uint64_t seed = 1;
  /// breaker | warm | dinic | greedy. breaker/warm use the shared
  /// WarmContextPool in canonical mode (bitwise-equal to cold Dinic).
  std::string scheduler = "breaker";
  double cycle_interval = 0.1;     ///< Logical time per scheduling cycle.
  double transmission_time = 0.2;  ///< Circuit hold time per task.
  double mean_service_time = 1.0;  ///< Exponential resource busy time.
  std::int32_t max_pending = 4096; ///< Admission bound; beyond it, shed.

  /// Serialization as protocol argument pairs (tenant records, snapshots).
  [[nodiscard]] std::string to_args() const;
  [[nodiscard]] static DomainConfig from_command(const Command& command);

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

enum class AdmitResult : std::uint8_t { kAdmitted, kDuplicate, kShed };

[[nodiscard]] const char* to_string(AdmitResult result);

/// What one cycle command did; `state_hash` is the post-cycle domain hash
/// journaled for recovery verification.
struct CycleSummary {
  std::uint64_t seq = 0;
  bool deferred = false;        ///< Batch window not met; no solve ran.
  std::int32_t granted = 0;     ///< Circuits established this cycle.
  std::int32_t completed = 0;   ///< Tasks completed this cycle.
  std::int32_t pending = 0;     ///< Requests still queued after the cycle.
  std::uint64_t state_hash = 0;
};

class Domain {
 public:
  /// `pool` may be null (private warm state); it must outlive the domain.
  Domain(std::string name, DomainConfig config,
         core::WarmContextPool* pool);
  Domain(Domain&&) = default;
  Domain& operator=(Domain&&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const DomainConfig& config() const { return config_; }

  /// Admits one task request (idempotent by id).
  AdmitResult admit(std::uint64_t id, topo::ProcessorId processor,
                    std::int32_t priority);
  /// True when `id` was already consumed by an admit or cycle command.
  [[nodiscard]] bool seen(std::uint64_t id) const {
    return seen_.contains(id);
  }
  /// Runs one scheduling cycle (idempotent by id at the Service layer):
  /// advances the logical clock, retires due releases/completions, and —
  /// unless the batch window defers it — solves and establishes circuits.
  CycleSummary run_cycle();
  void note_cycle_id(std::uint64_t id) { seen_.insert(id); }

  /// Fault controls (journaled by the Service). Victim tasks of a teardown
  /// re-queue at the front of the pending queue, oldest victim first.
  /// Both are idempotent and return whether state changed (the Service
  /// journals only actual transitions).
  bool inject_link_fault(topo::LinkId link);
  bool repair_link(topo::LinkId link);

  /// Runtime knobs (journaled by the Service as `set` records).
  void set_batch_window(std::int32_t window);
  [[nodiscard]] std::int32_t batch_window() const { return batch_window_; }
  /// Degradation ladder: 0 = optimal, 1 = optimal with self-checks
  /// relaxed, 2 = greedy. Watchdog trips escalate one level.
  void set_level(std::int32_t level);
  [[nodiscard]] std::int32_t level() const { return level_; }

  /// FNV-1a over the complete logical state (clock, queues, in-flight
  /// work, RNG, accumulators). Two domains with equal hashes have run the
  /// same admitted sequence.
  [[nodiscard]] std::uint64_t state_hash() const;

  /// The accumulated run, in the DES's metrics vocabulary.
  [[nodiscard]] sim::SystemMetrics metrics() const;
  /// Exact key=value serialization of metrics() plus clock/hash — the
  /// bitwise comparison artifact of the crash-recovery gate.
  [[nodiscard]] std::string stats_args() const;

  /// Exact text snapshot (protocol framing, to_chars doubles). load()
  /// rebuilds a domain that continues bit-for-bit.
  void save(std::ostream& out) const;
  [[nodiscard]] static Domain load(std::istream& in,
                                   core::WarmContextPool* pool);

  /// Per-tenant observability registry (svc.* counters plus whatever the
  /// scheduler binds). Observation-only: never part of the state hash.
  [[nodiscard]] obs::Registry& registry() { return *registry_; }

 private:
  struct Pending {
    std::uint64_t id = 0;
    topo::ProcessorId processor = topo::kInvalidId;
    std::int32_t priority = 0;
    double arrival = 0.0;
    std::int32_t retries = 0;
  };
  /// An established circuit in flight: the transmission releases at
  /// `release_time`, the task completes (resource frees) at `done_time`.
  struct Active {
    std::uint64_t id = 0;
    topo::ProcessorId processor = topo::kInvalidId;
    topo::ResourceId resource = topo::kInvalidId;
    std::int32_t priority = 0;
    double arrival = 0.0;
    double release_time = 0.0;
    double done_time = 0.0;
    std::int32_t retries = 0;
    std::uint64_t token = 0;  ///< Establishment sequence (event ordering).
    bool released = false;    ///< Circuit released; waiting on done_time.
  };

  void build_scheduler();
  void retire_due_events();
  core::Scheduler& scheduler_for_level();

  std::string name_;
  DomainConfig config_;
  core::WarmContextPool* pool_ = nullptr;
  topo::Network net_;

  std::unique_ptr<core::Scheduler> scheduler_;  ///< Configured discipline.
  core::GreedyScheduler greedy_;                ///< Level-2 ladder rung.

  double now_ = 0.0;
  std::uint64_t cycle_seq_ = 0;
  std::uint64_t establish_seq_ = 0;
  std::int32_t batch_window_ = 1;
  std::int32_t level_ = 0;
  util::Rng rng_;

  std::deque<Pending> pending_;
  /// Keyed by processor (one circuit per processor); std::map so iteration
  /// order is deterministic.
  std::map<topo::ProcessorId, Active> active_;
  std::vector<char> resource_busy_;
  std::unordered_set<std::uint64_t> seen_;
  std::vector<topo::LinkId> failed_links_;  ///< Sorted, for hashing/snapshot.

  // --- accumulators (all bit-exact snapshotted) ---------------------------
  sim::RunningStat wait_;      ///< Arrival -> circuit established.
  sim::RunningStat response_;  ///< Arrival -> completion.
  sim::TimeWeightedStat busy_resources_;
  sim::TimeWeightedStat queue_length_;
  std::int64_t arrived_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t shed_ = 0;
  std::int64_t granted_ = 0;
  std::int64_t solved_cycles_ = 0;
  std::int64_t deferred_cycles_ = 0;
  std::int64_t blocked_opportunities_ = 0;
  std::int64_t offered_opportunities_ = 0;
  std::int64_t degraded_cycles_ = 0;
  std::int64_t faults_injected_ = 0;
  std::int64_t repairs_ = 0;
  std::int64_t torn_down_ = 0;
  std::int64_t retries_ = 0;
  std::int64_t level_transitions_ = 0;

  // --- observability (never hashed, never snapshotted) --------------------
  std::unique_ptr<obs::Registry> registry_;
  obs::Counter* obs_admitted_ = nullptr;
  obs::Counter* obs_shed_ = nullptr;
  obs::Counter* obs_cycles_ = nullptr;
  obs::Counter* obs_granted_ = nullptr;
  obs::Counter* obs_completed_ = nullptr;
  obs::Counter* obs_faults_ = nullptr;
};

}  // namespace rsin::svc
