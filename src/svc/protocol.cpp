#include "svc/protocol.hpp"

#include <bit>
#include <charconv>
#include <stdexcept>
#include <system_error>

namespace rsin::svc {
namespace {

[[noreturn]] void bad(std::string_view what, std::string_view detail) {
  throw std::invalid_argument("protocol: " + std::string(what) + ": " +
                              std::string(detail));
}

}  // namespace

const std::string* Command::find(std::string_view key) const {
  for (const auto& [k, v] : args) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::string& Command::str(std::string_view key) const {
  const std::string* value = find(key);
  if (value == nullptr) {
    bad("missing argument", std::string(key) + " (verb " + verb + ")");
  }
  return *value;
}

std::string Command::str_or(std::string_view key, std::string fallback) const {
  const std::string* value = find(key);
  return value != nullptr ? *value : std::move(fallback);
}

std::int64_t Command::i64(std::string_view key) const {
  return parse_exact_i64(str(key), key);
}

std::int64_t Command::i64_or(std::string_view key,
                             std::int64_t fallback) const {
  const std::string* value = find(key);
  return value != nullptr ? parse_exact_i64(*value, key) : fallback;
}

std::uint64_t Command::u64(std::string_view key) const {
  return parse_exact_u64(str(key), key);
}

std::uint64_t Command::u64_or(std::string_view key,
                              std::uint64_t fallback) const {
  const std::string* value = find(key);
  return value != nullptr ? parse_exact_u64(*value, key) : fallback;
}

double Command::f64(std::string_view key) const {
  return parse_exact_double(str(key), key);
}

double Command::f64_or(std::string_view key, double fallback) const {
  const std::string* value = find(key);
  return value != nullptr ? parse_exact_double(*value, key) : fallback;
}

Command parse_command(std::string_view line) {
  Command command;
  std::size_t pos = 0;
  const auto skip_spaces = [&] {
    while (pos < line.size() && line[pos] == ' ') ++pos;
  };
  const auto take_token = [&]() -> std::string_view {
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') {
      const unsigned char ch = static_cast<unsigned char>(line[pos]);
      if (ch < 0x20 || ch == 0x7f) bad("control character in line", line);
      ++pos;
    }
    return line.substr(start, pos - start);
  };

  skip_spaces();
  command.verb = std::string(take_token());
  if (command.verb.empty()) bad("empty command", line);
  while (true) {
    skip_spaces();
    if (pos >= line.size()) break;
    const std::string_view token = take_token();
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      bad("argument is not key=value", std::string(token));
    }
    command.args.emplace_back(std::string(token.substr(0, eq)),
                              std::string(token.substr(eq + 1)));
  }
  return command;
}

std::string Response::wire() const {
  std::string text = ok ? "ok" : "err";
  if (!body.empty()) {
    text += ' ';
    text += body;
  }
  text += '\n';
  for (const std::string& line : extra) {
    text += line;
    text += '\n';
  }
  return text;
}

Response Response::okay(std::string body) {
  Response r;
  r.ok = true;
  r.body = std::move(body);
  return r;
}

Response Response::error(std::string reason) {
  Response r;
  r.ok = false;
  // Responses are line-framed; a multi-line what() would desync the client.
  for (char& ch : reason) {
    if (ch == '\n' || ch == '\r') ch = ' ';
  }
  r.body = std::move(reason);
  return r;
}

Response Response::refused(std::string_view code, std::string detail) {
  return Response::error("code=" + std::string(code) + " " +
                         std::move(detail));
}

std::string format_exact(double value) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) bad("double formatting failed", "");
  return std::string(buf, ptr);
}

double parse_exact_double(std::string_view token, std::string_view what) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    bad("bad double for " + std::string(what), token);
  }
  return value;
}

std::int64_t parse_exact_i64(std::string_view token, std::string_view what) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    bad("bad integer for " + std::string(what), token);
  }
  return value;
}

std::uint64_t parse_exact_u64(std::string_view token, std::string_view what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    bad("bad unsigned for " + std::string(what), token);
  }
  return value;
}

std::string format_hex(std::uint64_t value) {
  char buf[17];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value, 16);
  if (ec != std::errc{}) bad("hex formatting failed", "");
  return std::string(buf, ptr);
}

std::uint64_t parse_hex(std::string_view token, std::string_view what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value, 16);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    bad("bad hex for " + std::string(what), token);
  }
  return value;
}

std::uint64_t fnv_mix_double(std::uint64_t hash, double value) {
  return fnv_mix(hash, std::bit_cast<std::uint64_t>(value));
}

}  // namespace rsin::svc
