#include "svc/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

namespace rsin::svc {
namespace {

constexpr char kMagic[8] = {'R', 'S', 'I', 'N', 'J', 'N', 'L', '1'};
constexpr std::size_t kHeaderSize = Journal::kHeaderBytes;
constexpr std::size_t kFrameSize = 4 + 4;       // size + crc per record
/// Upper bound on one record; a larger declared size is damage, not data.
constexpr std::uint32_t kMaxRecordBytes = 16u << 20;

util::Vfs& pick(util::Vfs* vfs) {
  return vfs != nullptr ? *vfs : util::Vfs::real();
}

void put_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const char* bytes) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

std::uint64_t get_u64(const char* bytes) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

/// open() with EINTR retry; returns fd >= 0 or the final -errno.
int open_retry(util::Vfs& vfs, const std::string& path, int flags, int mode) {
  while (true) {
    const int fd = vfs.open(path.c_str(), flags, mode);
    if (fd != -EINTR) return fd;
  }
}

/// Writes [data, data+size) fully, riding out EINTR and short writes.
/// Returns the bytes that reached the file (== size on success) and sets
/// *err to the terminal -errno (0 on success) — the caller decides whether
/// a partial delivery is a torn tail or a resumable retry point.
std::size_t write_all(util::Vfs& vfs, int fd, const char* data,
                      std::size_t size, int* err) {
  std::size_t done = 0;
  *err = 0;
  while (done < size) {
    const ssize_t n = vfs.write(fd, data + done, size - done);
    if (n < 0) {
      if (n == -EINTR) continue;
      *err = static_cast<int>(-n);
      return done;
    }
    done += static_cast<std::size_t>(n);
  }
  return done;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

JournalError::JournalError(std::uint64_t offset, const std::string& reason)
    : std::runtime_error("journal: " + reason + " (at byte offset " +
                         std::to_string(offset) + ")"),
      offset_(offset),
      reason_(reason) {}

std::uint32_t crc32(std::string_view bytes) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (const char ch : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

Journal::Journal(Journal&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      epoch_(other.epoch_),
      vfs_(other.vfs_),
      buffer_(std::move(other.buffer_)),
      flushed_(other.flushed_),
      appended_(other.appended_),
      pending_(other.pending_) {}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    epoch_ = other.epoch_;
    vfs_ = other.vfs_;
    buffer_ = std::move(other.buffer_);
    flushed_ = other.flushed_;
    appended_ = other.appended_;
    pending_ = other.pending_;
  }
  return *this;
}

Journal::~Journal() { close(); }

Journal Journal::create(const std::string& path, std::uint64_t epoch,
                        util::Vfs* vfs) {
  util::Vfs& fs = pick(vfs);
  util::Fd fd(fs, open_retry(fs, path, O_CREAT | O_TRUNC | O_WRONLY, 0644));
  if (!fd.valid()) {
    throw JournalError(0, "cannot create " + path + ": " +
                              std::strerror(-fd.get()));
  }
  std::string header(kMagic, sizeof(kMagic));
  put_u32(header, kVersion);
  put_u64(header, epoch);
  int err = 0;
  const std::size_t wrote =
      write_all(fs, fd.get(), header.data(), header.size(), &err);
  if (wrote != header.size()) {
    throw JournalError(wrote, "cannot write header of " + path + ": " +
                                  std::strerror(err));
  }
  return Journal(fd.release(), path, epoch, &fs);
}

Journal Journal::append_to(const std::string& path, const ScanResult& scan,
                           util::Vfs* vfs) {
  util::Vfs& fs = pick(vfs);
  util::Fd fd(fs, open_retry(fs, path, O_WRONLY, 0644));
  if (!fd.valid()) {
    throw JournalError(0, "cannot open " + path + ": " +
                              std::strerror(-fd.get()));
  }
  // Drop the torn tail (if any) so new records append to intact framing.
  const int trunc =
      fs.ftruncate(fd.get(), static_cast<off_t>(scan.valid_bytes));
  if (trunc != 0) {
    throw JournalError(scan.valid_bytes, "cannot truncate torn tail of " +
                                             path + ": " +
                                             std::strerror(-trunc));
  }
  const off_t seek = fs.lseek(fd.get(), 0, SEEK_END);
  if (seek < 0) {
    throw JournalError(0, "cannot seek " + path + ": " +
                              std::strerror(static_cast<int>(-seek)));
  }
  return Journal(fd.release(), path, scan.epoch, &fs);
}

Journal::ScanResult Journal::scan(const std::string& path, util::Vfs* vfs) {
  util::Vfs& fs = pick(vfs);
  util::Fd fd(fs, open_retry(fs, path, O_RDONLY, 0));
  if (!fd.valid()) {
    throw JournalError(0, "cannot open " + path + " for reading: " +
                              std::strerror(-fd.get()));
  }
  std::string bytes;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = fs.read(fd.get(), buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      if (n == -EINTR) continue;
      throw JournalError(bytes.size(), "cannot read " + path + ": " +
                                           std::strerror(static_cast<int>(-n)));
    }
    bytes.append(buf, static_cast<std::size_t>(n));
  }

  if (bytes.size() < kHeaderSize) {
    throw JournalError(bytes.size(),
                       "file shorter than the journal header — not a "
                       "journal, or the header write itself was torn");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw JournalError(0, "bad magic (not an rsind journal): " + path);
  }
  const std::uint32_t version = get_u32(bytes.data() + 8);
  if (version != kVersion) {
    throw JournalError(8, "unsupported journal version " +
                              std::to_string(version) +
                              " (this build reads version " +
                              std::to_string(kVersion) + ")");
  }

  ScanResult result;
  result.epoch = get_u64(bytes.data() + 12);
  std::size_t pos = kHeaderSize;
  result.valid_bytes = pos;
  while (pos < bytes.size()) {
    const std::size_t remaining = bytes.size() - pos;
    if (remaining < kFrameSize) {
      result.truncated = true;
      result.damage_offset = pos;
      result.damage = "torn record: " + std::to_string(remaining) +
                      " trailing bytes, frame needs " +
                      std::to_string(kFrameSize);
      break;
    }
    const std::uint32_t size = get_u32(bytes.data() + pos);
    const std::uint32_t crc = get_u32(bytes.data() + pos + 4);
    if (size > kMaxRecordBytes) {
      // A wild size is indistinguishable from a torn length write at the
      // tail; treat as damage and stop.
      result.truncated = true;
      result.damage_offset = pos;
      result.damage =
          "implausible record size " + std::to_string(size) + " bytes";
      break;
    }
    if (remaining - kFrameSize < size) {
      result.truncated = true;
      result.damage_offset = pos;
      result.damage = "torn record: payload declares " +
                      std::to_string(size) + " bytes, only " +
                      std::to_string(remaining - kFrameSize) + " on file";
      break;
    }
    const std::string_view payload(bytes.data() + pos + kFrameSize, size);
    if (crc32(payload) != crc) {
      result.truncated = true;
      result.damage_offset = pos;
      result.damage = "checksum mismatch in record " +
                      std::to_string(result.records.size());
      break;
    }
    result.records.emplace_back(payload);
    pos += kFrameSize + size;
    result.valid_bytes = pos;
  }
  return result;
}

void Journal::append(std::string_view payload) {
  if (fd_ < 0) throw JournalError(0, "append on a closed journal");
  put_u32(buffer_, static_cast<std::uint32_t>(payload.size()));
  put_u32(buffer_, crc32(payload));
  buffer_.append(payload);
  ++appended_;
  ++pending_;
}

void Journal::flush() {
  if (fd_ < 0 || buffer_.empty()) return;
  // Resume where the previous (failed) flush stopped: bytes before
  // flushed_ are already on the file, re-writing them would interleave
  // duplicate frames after the partial tail.
  int err = 0;
  flushed_ += write_all(*vfs_, fd_, buffer_.data() + flushed_,
                        buffer_.size() - flushed_, &err);
  if (flushed_ != buffer_.size()) {
    throw JournalError(flushed_, "write failed for " + path_ + ": " +
                                     std::strerror(err));
  }
  buffer_.clear();
  flushed_ = 0;
  pending_ = 0;
}

void Journal::sync() {
  flush();
  if (fd_ >= 0) {
    const int rc = vfs_->fdatasync(fd_);
    if (rc != 0 && rc != -EINVAL && rc != -ENOSYS) {
      throw JournalError(0, "fdatasync failed for " + path_ + ": " +
                                std::strerror(-rc));
    }
  }
}

void Journal::abandon() {
  buffer_.clear();
  flushed_ = 0;
  pending_ = 0;
  if (fd_ >= 0) {
    vfs_->close(fd_);
    fd_ = -1;
  }
}

void Journal::close() {
  if (fd_ < 0) return;
  try {
    flush();
  } catch (...) {
    // Destructor path: swallow; the torn tail is exactly what scan()
    // tolerates.
  }
  vfs_->close(fd_);
  fd_ = -1;
}

}  // namespace rsin::svc
