#include "svc/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

namespace rsin::svc {
namespace {

constexpr char kMagic[8] = {'R', 'S', 'I', 'N', 'J', 'N', 'L', '1'};
constexpr std::size_t kHeaderSize = Journal::kHeaderBytes;
constexpr std::size_t kFrameSize = 4 + 4;       // size + crc per record
/// Upper bound on one record; a larger declared size is damage, not data.
constexpr std::uint32_t kMaxRecordBytes = 16u << 20;

void put_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const char* bytes) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

std::uint64_t get_u64(const char* bytes) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw JournalError(0, "write failed for " + path + ": " +
                                std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

JournalError::JournalError(std::uint64_t offset, const std::string& reason)
    : std::runtime_error("journal: " + reason + " (at byte offset " +
                         std::to_string(offset) + ")"),
      offset_(offset),
      reason_(reason) {}

std::uint32_t crc32(std::string_view bytes) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (const char ch : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

Journal::Journal(Journal&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      epoch_(other.epoch_),
      buffer_(std::move(other.buffer_)),
      appended_(other.appended_),
      pending_(other.pending_) {}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    epoch_ = other.epoch_;
    buffer_ = std::move(other.buffer_);
    appended_ = other.appended_;
    pending_ = other.pending_;
  }
  return *this;
}

Journal::~Journal() { close(); }

Journal Journal::create(const std::string& path, std::uint64_t epoch) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    throw JournalError(0, "cannot create " + path + ": " +
                              std::strerror(errno));
  }
  std::string header(kMagic, sizeof(kMagic));
  put_u32(header, kVersion);
  put_u64(header, epoch);
  write_all(fd, header.data(), header.size(), path);
  return Journal(fd, path, epoch);
}

Journal Journal::append_to(const std::string& path, const ScanResult& scan) {
  const int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0) {
    throw JournalError(0, "cannot open " + path + ": " +
                              std::strerror(errno));
  }
  // Drop the torn tail (if any) so new records append to intact framing.
  if (::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) != 0) {
    const int err = errno;
    ::close(fd);
    throw JournalError(scan.valid_bytes, "cannot truncate torn tail of " +
                                             path + ": " +
                                             std::strerror(err));
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    const int err = errno;
    ::close(fd);
    throw JournalError(0, "cannot seek " + path + ": " + std::strerror(err));
  }
  return Journal(fd, path, scan.epoch);
}

Journal::ScanResult Journal::scan(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw JournalError(0, "cannot open " + path + " for reading");
  }
  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string bytes = raw.str();

  if (bytes.size() < kHeaderSize) {
    throw JournalError(bytes.size(),
                       "file shorter than the journal header — not a "
                       "journal, or the header write itself was torn");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw JournalError(0, "bad magic (not an rsind journal): " + path);
  }
  const std::uint32_t version = get_u32(bytes.data() + 8);
  if (version != kVersion) {
    throw JournalError(8, "unsupported journal version " +
                              std::to_string(version) +
                              " (this build reads version " +
                              std::to_string(kVersion) + ")");
  }

  ScanResult result;
  result.epoch = get_u64(bytes.data() + 12);
  std::size_t pos = kHeaderSize;
  result.valid_bytes = pos;
  while (pos < bytes.size()) {
    const std::size_t remaining = bytes.size() - pos;
    if (remaining < kFrameSize) {
      result.truncated = true;
      result.damage_offset = pos;
      result.damage = "torn record: " + std::to_string(remaining) +
                      " trailing bytes, frame needs " +
                      std::to_string(kFrameSize);
      break;
    }
    const std::uint32_t size = get_u32(bytes.data() + pos);
    const std::uint32_t crc = get_u32(bytes.data() + pos + 4);
    if (size > kMaxRecordBytes) {
      // A wild size is indistinguishable from a torn length write at the
      // tail; treat as damage and stop.
      result.truncated = true;
      result.damage_offset = pos;
      result.damage =
          "implausible record size " + std::to_string(size) + " bytes";
      break;
    }
    if (remaining - kFrameSize < size) {
      result.truncated = true;
      result.damage_offset = pos;
      result.damage = "torn record: payload declares " +
                      std::to_string(size) + " bytes, only " +
                      std::to_string(remaining - kFrameSize) + " on file";
      break;
    }
    const std::string_view payload(bytes.data() + pos + kFrameSize, size);
    if (crc32(payload) != crc) {
      result.truncated = true;
      result.damage_offset = pos;
      result.damage = "checksum mismatch in record " +
                      std::to_string(result.records.size());
      break;
    }
    result.records.emplace_back(payload);
    pos += kFrameSize + size;
    result.valid_bytes = pos;
  }
  return result;
}

void Journal::append(std::string_view payload) {
  if (fd_ < 0) throw JournalError(0, "append on a closed journal");
  put_u32(buffer_, static_cast<std::uint32_t>(payload.size()));
  put_u32(buffer_, crc32(payload));
  buffer_.append(payload);
  ++appended_;
  ++pending_;
}

void Journal::flush() {
  if (fd_ < 0 || buffer_.empty()) return;
  write_all(fd_, buffer_.data(), buffer_.size(), path_);
  buffer_.clear();
  pending_ = 0;
}

void Journal::sync() {
  flush();
  if (fd_ >= 0) {
    if (::fdatasync(fd_) != 0 && errno != EINVAL && errno != ENOSYS) {
      throw JournalError(0, "fdatasync failed for " + path_ + ": " +
                                std::strerror(errno));
    }
  }
}

void Journal::close() {
  if (fd_ < 0) return;
  try {
    flush();
  } catch (...) {
    // Destructor path: swallow; the torn tail is exactly what scan()
    // tolerates.
  }
  ::close(fd_);
  fd_ = -1;
}

}  // namespace rsin::svc
