// svc::FaultFs — a util::Vfs decorator that injects scripted storage
// faults into the rsind durability path (DESIGN.md §12).
//
// A FaultFs wraps an inner Vfs (the real one by default) and evaluates a
// schedule of Rules against every operation. A rule names an operation
// kind, an optional path substring (open/rename/unlink match their path
// argument; fd operations match the path the fd was opened with), how many
// matching operations pass through untouched first (`after`), and how many
// are then affected (`count`, u64-max = persistent). What "affected" means
// is the rule's flavor:
//
//   err=ENOSPC/EIO/...   the operation fails with -errno (EINTR here with
//                        a large count is the "EINTR storm")
//   short=K              a write delivers at most K bytes to the inner Vfs
//                        and returns the short count — no error at all,
//                        exactly what a real kernel may do
//   cut=1 (with short=K) the "power cut": the triggering write delivers K
//                        bytes and fails, and every later write/sync on
//                        paths matching the rule fails persistently with
//                        EIO — the torn tail stays torn until the process
//                        (the "machine") is restarted with a healthy disk
//
// Rules are independent; the first one that matches an operation decides
// it. Schedules are scriptable as text (`parse_spec`) so a fork/exec'd
// daemon can be started on a faulty disk:
//
//   op=write,path=journal,after=120,count=2,err=ENOSPC;op=fdatasync,err=EIO
//
// Thread-safety: the rsind poll loop is single-threaded; FaultFs keeps a
// mutex anyway so harness threads can read stats() while the daemon runs.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/vfs.hpp"

namespace rsin::svc {

class FaultFs final : public util::Vfs {
 public:
  struct Rule {
    enum class Op {
      kAny,
      kOpen,
      kRead,
      kWrite,
      kFsync,
      kFdatasync,
      kFtruncate,
      kRename,
      kUnlink,
      kClose,
    };
    static constexpr std::uint64_t kPersistent = ~0ull;

    Op op = Op::kAny;
    std::string path_contains;        ///< Empty = every path.
    std::uint64_t after = 0;          ///< Matching ops to let through first.
    std::uint64_t count = 1;          ///< Ops affected once triggered.
    int error = 0;                    ///< errno to inject (0 = none).
    std::uint64_t short_bytes = ~0ull;  ///< Max bytes a write delivers.
    bool power_cut = false;           ///< Torn write, then persistent EIO.
  };

  struct Stats {
    std::uint64_t ops = 0;            ///< Operations evaluated.
    std::uint64_t injected = 0;       ///< Errors injected.
    std::uint64_t short_writes = 0;   ///< Short writes delivered.
    std::uint64_t power_cuts = 0;     ///< Cut rules triggered.
  };

  explicit FaultFs(util::Vfs* inner = nullptr)
      : inner_(inner != nullptr ? inner : &util::Vfs::real()) {}

  /// Parses the `;`-separated rule spec (see file comment). Accepted keys:
  /// op, path, after, count, err (symbolic ENOSPC/EIO/EINTR/EDQUOT/EROFS/
  /// EMFILE or a number), short, cut. Throws std::invalid_argument.
  [[nodiscard]] static std::vector<Rule> parse_spec(const std::string& spec);

  void schedule(Rule rule);
  void schedule_all(const std::vector<Rule>& rules);
  /// Drops every rule and active power cut; counters keep running.
  void heal();
  [[nodiscard]] Stats stats() const;

  // --- util::Vfs -----------------------------------------------------------
  int open(const char* path, int flags, int mode) override;
  ssize_t read(int fd, void* buf, std::size_t n) override;
  ssize_t write(int fd, const void* buf, std::size_t n) override;
  int fsync(int fd) override;
  int fdatasync(int fd) override;
  int ftruncate(int fd, off_t size) override;
  off_t lseek(int fd, off_t offset, int whence) override;
  int rename(const char* from, const char* to) override;
  int unlink(const char* path) override;
  int close(int fd) override;

 private:
  struct Decision {
    bool inject = false;
    int error = 0;
    std::uint64_t short_bytes = ~0ull;
  };

  /// Evaluates the schedule for one (op, path); must hold mutex_.
  Decision decide(Rule::Op op, const std::string& path);
  [[nodiscard]] std::string fd_path(int fd) const;

  util::Vfs* inner_;
  mutable std::mutex mutex_;
  std::vector<Rule> rules_;
  std::vector<std::uint64_t> matched_;      ///< Per-rule match count.
  std::vector<std::string> cut_paths_;      ///< Power-cut path filters.
  std::map<int, std::string> fd_paths_;
  Stats stats_;
};

}  // namespace rsin::svc
