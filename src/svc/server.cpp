#include "svc/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <iostream>
#include <mutex>
#include <thread>
#include <utility>

#include "util/error.hpp"

namespace rsin::svc {
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  RSIN_ENSURE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              "cannot set O_NONBLOCK");
}

}  // namespace

/// Shared state between the poll thread (arm/disarm/fired) and the
/// watchdog thread (the timed wait). Everything under one mutex; the
/// watchdog only ever *reads* service state indirectly via the flag the
/// poll thread consumes at a command boundary.
struct Server::Watchdog {
  explicit Watchdog(std::int32_t threshold_ms) : threshold(threshold_ms) {
    thread = std::thread([this] { this->loop(); });
  }
  ~Watchdog() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      stop = true;
    }
    cv.notify_all();
    thread.join();
  }

  void arm(const std::string& tenant_name) {
    const std::lock_guard<std::mutex> lock(mutex);
    armed = true;
    fired = false;
    tenant = tenant_name;
    started = std::chrono::steady_clock::now();
  }

  /// Returns the tenant to escalate when the command exceeded the
  /// threshold, empty otherwise.
  std::string disarm() {
    const std::lock_guard<std::mutex> lock(mutex);
    armed = false;
    if (!fired) return {};
    fired = false;
    return tenant;
  }

  void loop() {
    std::unique_lock<std::mutex> lock(mutex);
    while (!stop) {
      cv.wait_for(lock, std::chrono::milliseconds(20));
      if (stop) break;
      if (!armed || fired || tenant.empty()) continue;
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - started)
              .count();
      if (elapsed >= threshold) fired = true;
    }
  }

  std::int32_t threshold;
  std::mutex mutex;
  std::condition_variable cv;
  std::thread thread;
  bool stop = false;
  bool armed = false;
  bool fired = false;
  std::string tenant;
  std::chrono::steady_clock::time_point started;
};

Server::Server(ServerConfig config)
    : config_(std::move(config)), service_(config_.service) {
  int fds[2];
  RSIN_ENSURE(::pipe(fds) == 0, "cannot create self-pipe");
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);
}

Server::~Server() {
  watchdog_.reset();
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

int Server::listen_socket() {
  RSIN_REQUIRE(!config_.socket_path.empty(), "socket path must be set");
  sockaddr_un addr{};
  RSIN_REQUIRE(config_.socket_path.size() < sizeof(addr.sun_path),
               "socket path too long: " + config_.socket_path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  RSIN_ENSURE(fd >= 0, "cannot create socket");
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(config_.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::logic_error("cannot bind/listen on " + config_.socket_path +
                           ": " + std::strerror(err));
  }
  set_nonblocking(fd);
  return fd;
}

int Server::run(bool recover) {
  try {
    if (recover) {
      recovery_ = service_.recover();
      std::cout << "rsind recovered " << recovery_.to_args() << '\n';
    } else {
      service_.start_fresh();
    }
    if (config_.watchdog_ms > 0) {
      watchdog_ = std::make_unique<Watchdog>(config_.watchdog_ms);
    }
    const int code = run_loop();
    watchdog_.reset();
    return code;
  } catch (const std::exception& e) {
    std::cerr << "rsind: fatal: " << e.what() << '\n';
    watchdog_.reset();
    return 1;
  }
}

void Server::read_client(ClientConn& client) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(client.fd, buf, sizeof(buf));
    if (n > 0) {
      client.in.append(buf, static_cast<std::size_t>(n));
      if (client.in.size() > config_.max_line_bytes) {
        client.broken = true;
        return;
      }
      continue;
    }
    if (n == 0) {
      client.eof = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    client.broken = true;
    return;
  }
}

void Server::flush_client(ClientConn& client) {
  while (!client.out.empty()) {
    const ssize_t n = ::write(client.fd, client.out.data(),
                              client.out.size());
    if (n > 0) {
      client.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    client.broken = true;
    return;
  }
}

std::string Server::handle_line(const std::string& line) {
  // Peek at verb/tenant for the transport-level concerns (delay injection,
  // watchdog arming); malformed lines fall through to execute(), whose
  // parse error becomes the err reply.
  std::string tenant;
  bool is_delay = false;
  std::int64_t delay_ms = 0;
  try {
    const Command command = parse_command(line);
    tenant = command.str_or("tenant", "");
    if (command.verb == "inject-delay") {
      is_delay = true;
      delay_ms = command.i64("ms");
    }
  } catch (const std::exception&) {
    tenant.clear();
  }

  if (watchdog_ != nullptr) watchdog_->arm(tenant);
  Response response;
  if (is_delay) {
    // Wall-clock only — never journaled, never part of domain state. Its
    // sole effect is to make this command slow enough for the watchdog.
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    response = Response::okay("slept=" + std::to_string(delay_ms));
  } else {
    response = service_.execute(line);
  }
  if (watchdog_ != nullptr) {
    const std::string slow_tenant = watchdog_->disarm();
    if (!slow_tenant.empty() && service_.has_tenant(slow_tenant)) {
      // Journaled at the command boundary: recovery replays the trip at
      // the same point in the admitted sequence.
      const Response trip = service_.trip_watchdog(slow_tenant);
      if (trip.ok) {
        response.body += " watchdog-level=" +
                         std::to_string(service_.tenant(slow_tenant).level());
      }
    }
  }
  return response.wire();
}

int Server::graceful_drain(std::vector<ClientConn>& clients, int listen_fd) {
  // Stop admitting, flush what is journaled, snapshot, exit 0. Replies
  // already queued get a best-effort blocking flush first.
  service_.begin_drain();
  service_.commit();
  service_.snapshot();
  for (ClientConn& client : clients) {
    if (client.broken || client.fd < 0) continue;
    const int flags = ::fcntl(client.fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(client.fd, F_SETFL, flags & ~O_NONBLOCK);
    flush_client(client);
    ::close(client.fd);
  }
  clients.clear();
  if (listen_fd >= 0) ::close(listen_fd);
  ::unlink(config_.socket_path.c_str());
  return 0;
}

int Server::run_loop() {
  const int listen_fd = listen_socket();
  std::vector<ClientConn> clients;
  bool shutdown_requested = false;

  while (true) {
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listen_fd, POLLIN, 0});
    fds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
    for (const ClientConn& client : clients) {
      short events = POLLIN;
      if (!client.out.empty()) events |= POLLOUT;
      fds.push_back(pollfd{client.fd, events, 0});
    }

    const int ready = ::poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::logic_error(std::string("poll failed: ") +
                             std::strerror(errno));
    }

    if ((fds[1].revents & POLLIN) != 0) {
      char drain_buf[64];
      while (::read(wake_read_fd_, drain_buf, sizeof(drain_buf)) > 0) {
      }
      shutdown_requested = true;
    }

    // Only the clients that were present when `fds` was built have a poll
    // slot; connections accepted below wait for the next iteration.
    const std::size_t polled = fds.size() - 2;

    if ((fds[0].revents & POLLIN) != 0 && !shutdown_requested) {
      while (true) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        ClientConn client;
        client.fd = fd;
        clients.push_back(std::move(client));
      }
    }

    // 1. Read every ready client.
    for (std::size_t i = 0; i < polled; ++i) {
      const short revents = fds[2 + i].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        read_client(clients[i]);
      }
    }

    // 2. Execute every complete line from every client — journal records
    //    buffer up across the whole batch.
    struct PendingReply {
      std::size_t client;
      std::string wire;
    };
    std::vector<PendingReply> replies;
    for (std::size_t i = 0; i < clients.size(); ++i) {
      ClientConn& client = clients[i];
      std::size_t start = 0;
      while (true) {
        const std::size_t newline = client.in.find('\n', start);
        if (newline == std::string::npos) break;
        std::string line = client.in.substr(start, newline - start);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        start = newline + 1;
        if (line.empty()) continue;
        replies.push_back(PendingReply{i, handle_line(line)});
      }
      client.in.erase(0, start);
    }

    // Periodic journaled metrics checkpoints ride the same commit.
    ++batches_;
    if (config_.note_metrics_every > 0 && !replies.empty() &&
        batches_ % config_.note_metrics_every == 0) {
      // Server-initiated, replies discarded; the journaled hash doubles as
      // a mid-journal convergence checkpoint for recovery.
      const Response tenants = service_.execute("tenants");
      for (const std::string& line : tenants.extra) {
        const Command cmd = parse_command(line);
        (void)service_.execute("note-metrics tenant=" + cmd.str("name"));
      }
    }

    // 3. Group commit: every record of this batch becomes durable...
    service_.commit();
    // 4. ...and only now can any client observe success.
    for (PendingReply& reply : replies) {
      clients[reply.client].out += reply.wire;
    }
    for (ClientConn& client : clients) {
      if (!client.out.empty()) flush_client(client);
    }

    // 5. Reap finished/broken clients.
    for (std::size_t i = clients.size(); i > 0; --i) {
      ClientConn& client = clients[i - 1];
      if (client.broken || (client.eof && client.out.empty())) {
        ::close(client.fd);
        clients.erase(clients.begin() + static_cast<std::ptrdiff_t>(i - 1));
      }
    }

    if (shutdown_requested || service_.draining()) {
      return graceful_drain(clients, listen_fd);
    }
  }
}

}  // namespace rsin::svc
