#include "svc/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <iostream>
#include <mutex>
#include <thread>
#include <utility>

#include "util/error.hpp"

namespace rsin::svc {
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  RSIN_ENSURE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              "cannot set O_NONBLOCK");
}

}  // namespace

/// Shared state between the poll thread (arm/disarm/fired) and the
/// watchdog thread (the timed wait). Everything under one mutex; the
/// watchdog only ever *reads* service state indirectly via the flag the
/// poll thread consumes at a command boundary.
struct Server::Watchdog {
  explicit Watchdog(std::int32_t threshold_ms) : threshold(threshold_ms) {
    thread = std::thread([this] { this->loop(); });
  }
  ~Watchdog() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      stop = true;
    }
    cv.notify_all();
    thread.join();
  }

  void arm(const std::string& tenant_name) {
    const std::lock_guard<std::mutex> lock(mutex);
    armed = true;
    fired = false;
    tenant = tenant_name;
    started = std::chrono::steady_clock::now();
  }

  /// Returns the tenant to escalate when the command exceeded the
  /// threshold, empty otherwise.
  std::string disarm() {
    const std::lock_guard<std::mutex> lock(mutex);
    armed = false;
    if (!fired) return {};
    fired = false;
    return tenant;
  }

  void loop() {
    std::unique_lock<std::mutex> lock(mutex);
    while (!stop) {
      cv.wait_for(lock, std::chrono::milliseconds(20));
      if (stop) break;
      if (!armed || fired || tenant.empty()) continue;
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - started)
              .count();
      if (elapsed >= threshold) fired = true;
    }
  }

  std::int32_t threshold;
  std::mutex mutex;
  std::condition_variable cv;
  std::thread thread;
  bool stop = false;
  bool armed = false;
  bool fired = false;
  std::string tenant;
  std::chrono::steady_clock::time_point started;
};

Server::Server(ServerConfig config)
    : config_(std::move(config)), service_(config_.service) {
  int fds[2];
  RSIN_ENSURE(::pipe(fds) == 0, "cannot create self-pipe");
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);
  // Reserved so accept() can always momentarily get a descriptor when the
  // process hits EMFILE (see accept_clients).
  spare_fd_ = ::open("/dev/null", O_RDONLY);
}

Server::~Server() {
  watchdog_.reset();
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  if (spare_fd_ >= 0) ::close(spare_fd_);
}

int Server::listen_socket() {
  RSIN_REQUIRE(!config_.socket_path.empty(), "socket path must be set");
  sockaddr_un addr{};
  RSIN_REQUIRE(config_.socket_path.size() < sizeof(addr.sun_path),
               "socket path too long: " + config_.socket_path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  RSIN_ENSURE(fd >= 0, "cannot create socket");
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(config_.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::logic_error("cannot bind/listen on " + config_.socket_path +
                           ": " + std::strerror(err));
  }
  set_nonblocking(fd);
  return fd;
}

int Server::run(bool recover) {
  try {
    if (recover) {
      recovery_ = service_.recover();
      std::cout << "rsind recovered " << recovery_.to_args() << '\n';
    } else {
      service_.start_fresh();
    }
    if (config_.watchdog_ms > 0) {
      watchdog_ = std::make_unique<Watchdog>(config_.watchdog_ms);
    }
    const int code = run_loop();
    watchdog_.reset();
    return code;
  } catch (const std::exception& e) {
    std::cerr << "rsind: fatal: " << e.what() << '\n';
    watchdog_.reset();
    return 1;
  }
}

void Server::accept_clients(int listen_fd, std::vector<ClientConn>& clients) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if ((errno == EMFILE || errno == ENFILE) && spare_fd_ >= 0) {
        // Out of descriptors: momentarily free the reserve, take the
        // pending connection, and drop it — otherwise it sits in the
        // kernel queue keeping the listen fd readable and poll spinning.
        ::close(spare_fd_);
        spare_fd_ = -1;
        const int doomed = ::accept(listen_fd, nullptr, nullptr);
        if (doomed >= 0) {
          ++sheds_;
          ::close(doomed);
        }
        spare_fd_ = ::open("/dev/null", O_RDONLY);
        continue;
      }
      break;  // EAGAIN (queue drained) or a transient error: next poll.
    }
    if (clients.size() >= config_.max_clients) {
      // Shed with a coded refusal; the socket buffer absorbs the short
      // write or it is simply lost — either way the fd is not retained.
      ++sheds_;
      const std::string refusal =
          Response::refused("busy", "max clients reached, retry later")
              .wire();
      (void)!::write(fd, refusal.data(), refusal.size());
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    ClientConn client;
    client.fd = fd;
    client.last_activity = std::chrono::steady_clock::now();
    clients.push_back(std::move(client));
  }
}

void Server::read_client(ClientConn& client) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(client.fd, buf, sizeof(buf));
    if (n > 0) {
      client.in.append(buf, static_cast<std::size_t>(n));
      client.last_activity = std::chrono::steady_clock::now();
      // Input caps: a buffer past max_in_bytes, or a single line past
      // max_line_bytes with no newline in sight, is hostile or broken —
      // cut it before it becomes a memory bill.
      if (client.in.size() > config_.max_in_bytes) {
        ++caps_cut_;
        client.broken = true;
        return;
      }
      if (client.in.size() > config_.max_line_bytes &&
          client.in.find('\n') == std::string::npos) {
        ++caps_cut_;
        client.broken = true;
        return;
      }
      continue;
    }
    if (n == 0) {
      client.eof = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    client.broken = true;
    return;
  }
}

void Server::flush_client(ClientConn& client) {
  while (!client.out.empty()) {
    const ssize_t n = ::write(client.fd, client.out.data(),
                              client.out.size());
    if (n > 0) {
      client.out.erase(0, static_cast<std::size_t>(n));
      client.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    client.broken = true;
    return;
  }
  client.out_since = client.out.empty()
                         ? std::chrono::steady_clock::time_point{}
                         : (client.out_since.time_since_epoch().count() != 0
                                ? client.out_since
                                : std::chrono::steady_clock::now());
}

void Server::enforce_deadlines(ClientConn& client,
                               std::chrono::steady_clock::time_point now) {
  if (client.broken || client.fd < 0) return;
  const auto expired = [now](std::chrono::steady_clock::time_point since,
                             std::int32_t limit_ms) {
    return limit_ms > 0 && since.time_since_epoch().count() != 0 &&
           now - since > std::chrono::milliseconds(limit_ms);
  };
  // A reader that stopped reading (backlog never drains) ...
  if (expired(client.out_since, config_.write_stall_ms)) {
    ++timeouts_cut_;
    client.broken = true;
    return;
  }
  // ... a writer dribbling a line one byte at a time (slowloris) ...
  if (client.out.empty() && !client.in.empty() &&
      expired(client.partial_since, config_.line_timeout_ms)) {
    ++timeouts_cut_;
    client.broken = true;
    return;
  }
  // ... or a connection doing nothing at all.
  if (client.out.empty() && client.in.empty() &&
      expired(client.last_activity, config_.idle_timeout_ms)) {
    ++timeouts_cut_;
    client.broken = true;
  }
}

std::string Server::handle_line(const std::string& line) {
  // Peek at verb/tenant for the transport-level concerns (delay injection,
  // watchdog arming); malformed lines fall through to execute(), whose
  // parse error becomes the err reply.
  std::string tenant;
  bool is_delay = false;
  std::int64_t delay_ms = 0;
  try {
    const Command command = parse_command(line);
    tenant = command.str_or("tenant", "");
    if (command.verb == "inject-delay") {
      is_delay = true;
      delay_ms = command.i64("ms");
    }
  } catch (const std::exception&) {
    tenant.clear();
  }

  if (watchdog_ != nullptr) watchdog_->arm(tenant);
  Response response;
  if (is_delay) {
    // Wall-clock only — never journaled, never part of domain state. Its
    // sole effect is to make this command slow enough for the watchdog.
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    response = Response::okay("slept=" + std::to_string(delay_ms));
  } else {
    response = service_.execute(line);
  }
  if (watchdog_ != nullptr) {
    const std::string slow_tenant = watchdog_->disarm();
    if (!slow_tenant.empty() && service_.has_tenant(slow_tenant)) {
      // Journaled at the command boundary: recovery replays the trip at
      // the same point in the admitted sequence.
      const Response trip = service_.trip_watchdog(slow_tenant);
      if (trip.ok) {
        response.body += " watchdog-level=" +
                         std::to_string(service_.tenant(slow_tenant).level());
      }
    }
  }
  return response.wire();
}

int Server::graceful_drain(std::vector<ClientConn>& clients, int listen_fd) {
  // Stop admitting, flush what is journaled, snapshot, exit 0. Replies
  // already queued get a best-effort blocking flush first. On a failing
  // disk the drain stays graceful: commit() returning false means the
  // durable prefix is already consistent (rollback ran), and a snapshot
  // failure rolls itself back — both leave a recoverable pair on disk.
  service_.begin_drain();
  if (!service_.commit()) {
    std::cerr << "rsind: drain commit failed, exiting on durable prefix: "
              << service_.last_io_error() << '\n';
  } else if (service_.read_only()) {
    // commit() is vacuously true with the journal closed; the snapshot
    // path needs a live journal, so exit on the durable prefix instead.
    std::cerr << "rsind: drain while read-only, snapshot skipped: "
              << service_.last_io_error() << '\n';
  } else {
    try {
      service_.snapshot();
    } catch (const IoError& e) {
      std::cerr << "rsind: drain snapshot skipped: " << e.what() << '\n';
    }
  }
  for (ClientConn& client : clients) {
    if (client.broken || client.fd < 0) continue;
    const int flags = ::fcntl(client.fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(client.fd, F_SETFL, flags & ~O_NONBLOCK);
    flush_client(client);
    ::close(client.fd);
  }
  clients.clear();
  if (listen_fd >= 0) ::close(listen_fd);
  ::unlink(config_.socket_path.c_str());
  return 0;
}

int Server::run_loop() {
  const int listen_fd = listen_socket();
  std::vector<ClientConn> clients;
  bool shutdown_requested = false;

  while (true) {
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listen_fd, POLLIN, 0});
    fds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
    for (const ClientConn& client : clients) {
      short events = POLLIN;
      if (!client.out.empty()) events |= POLLOUT;
      fds.push_back(pollfd{client.fd, events, 0});
    }

    // Bounded wait: deadline enforcement and the read-only re-arm probe
    // must run even when no descriptor ever turns ready.
    const int timeout_ms =
        config_.poll_timeout_ms > 0 ? config_.poll_timeout_ms : -1;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::logic_error(std::string("poll failed: ") +
                             std::strerror(errno));
    }

    if ((fds[1].revents & POLLIN) != 0) {
      char drain_buf[64];
      while (::read(wake_read_fd_, drain_buf, sizeof(drain_buf)) > 0) {
      }
      shutdown_requested = true;
    }

    // Only the clients that were present when `fds` was built have a poll
    // slot; connections accepted below wait for the next iteration.
    const std::size_t polled = fds.size() - 2;

    if ((fds[0].revents & POLLIN) != 0 && !shutdown_requested) {
      accept_clients(listen_fd, clients);
    }

    // 1. Read every ready client.
    for (std::size_t i = 0; i < polled; ++i) {
      const short revents = fds[2 + i].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        read_client(clients[i]);
      }
    }

    // 2. Execute every complete line from every client — journal records
    //    buffer up across the whole batch.
    struct PendingReply {
      std::size_t client;
      std::string wire;
    };
    std::vector<PendingReply> replies;
    for (std::size_t i = 0; i < clients.size(); ++i) {
      ClientConn& client = clients[i];
      std::size_t start = 0;
      while (true) {
        const std::size_t newline = client.in.find('\n', start);
        if (newline == std::string::npos) break;
        std::string line = client.in.substr(start, newline - start);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        start = newline + 1;
        if (line.empty()) continue;
        if (line.size() > config_.max_line_bytes) {
          ++caps_cut_;
          client.broken = true;
          break;
        }
        replies.push_back(PendingReply{i, handle_line(line)});
      }
      client.in.erase(0, start);
      // Leftover bytes are a partial line: start (or keep) its slowloris
      // clock; a consumed buffer resets it.
      if (client.in.empty()) {
        client.partial_since = {};
      } else if (client.partial_since.time_since_epoch().count() == 0) {
        client.partial_since = std::chrono::steady_clock::now();
      }
    }

    // Periodic journaled metrics checkpoints ride the same commit.
    ++batches_;
    if (config_.note_metrics_every > 0 && !replies.empty() &&
        batches_ % config_.note_metrics_every == 0) {
      // Server-initiated, replies discarded; the journaled hash doubles as
      // a mid-journal convergence checkpoint for recovery.
      const Response tenants = service_.execute("tenants");
      for (const std::string& line : tenants.extra) {
        const Command cmd = parse_command(line);
        (void)service_.execute("note-metrics tenant=" + cmd.str("name"));
      }
    }

    // 3. Group commit: every record of this batch becomes durable...
    const bool committed = service_.commit();
    if (!committed) {
      // The breaker opened: memory was rolled back to the durable prefix,
      // so an "ok" queued for this batch would acknowledge state that no
      // longer exists. Every reply of the batch becomes a coded refusal —
      // clients retry (idempotent ids make the retry safe).
      const std::string refusal =
          Response::refused("read-only",
                           "commit failed, state rolled back: " +
                               service_.last_io_error())
              .wire();
      for (PendingReply& reply : replies) reply.wire = refusal;
    }
    // 4. ...and only now can any client observe success.
    for (PendingReply& reply : replies) {
      ClientConn& client = clients[reply.client];
      client.out += reply.wire;
      if (client.out.size() > config_.max_out_bytes) {
        // A client that floods commands without reading replies does not
        // get an unbounded reply queue — it gets cut.
        ++caps_cut_;
        client.broken = true;
      }
    }
    for (ClientConn& client : clients) {
      if (!client.out.empty()) flush_client(client);
    }

    // While read-only, the bounded poll tick doubles as the breaker's
    // probe clock.
    (void)service_.maybe_rearm();

    // 5. Reap finished/broken clients; deadline violations count as
    //    broken.
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = clients.size(); i > 0; --i) {
      ClientConn& client = clients[i - 1];
      enforce_deadlines(client, now);
      if (client.broken || (client.eof && client.out.empty())) {
        ::close(client.fd);
        clients.erase(clients.begin() + static_cast<std::ptrdiff_t>(i - 1));
      }
    }

    if (shutdown_requested || service_.draining()) {
      return graceful_drain(clients, listen_fd);
    }
  }
}

}  // namespace rsin::svc
