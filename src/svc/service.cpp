#include "svc/service.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "obs/export.hpp"
#include "util/error.hpp"

namespace rsin::svc {
namespace {

constexpr char kJournalFile[] = "journal.bin";
constexpr char kSnapshotFile[] = "snapshot.txt";
constexpr char kSnapshotTmpFile[] = "snapshot.tmp";

/// -1 when the file does not exist.
long long file_size(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<long long>(st.st_size);
}

int open_retry(util::Vfs& vfs, const std::string& path, int flags, int mode) {
  while (true) {
    const int fd = vfs.open(path.c_str(), flags, mode);
    if (fd != -EINTR) return fd;
  }
}

/// Reads the whole file through the Vfs. False + *error on failure.
bool read_file(util::Vfs& vfs, const std::string& path, std::string* out,
               std::string* error) {
  util::Fd fd(vfs, open_retry(vfs, path, O_RDONLY, 0));
  if (!fd.valid()) {
    *error = "cannot open " + path + ": " + std::strerror(-fd.get());
    return false;
  }
  out->clear();
  char buf[1 << 16];
  while (true) {
    const ssize_t n = vfs.read(fd.get(), buf, sizeof(buf));
    if (n == 0) return true;
    if (n < 0) {
      if (n == -EINTR) continue;
      *error = "cannot read " + path + ": " +
               std::strerror(static_cast<int>(-n));
      return false;
    }
    out->append(buf, static_cast<std::size_t>(n));
  }
}

/// tmp-file writer for the snapshot path: create, write fully, fsync,
/// close — every fd on every path RAII-owned. False + *error on failure
/// (the caller unlinks the tmp; nothing else changed).
bool write_file_durable(util::Vfs& vfs, const std::string& path,
                        const std::string& bytes, std::string* error) {
  util::Fd fd(vfs, open_retry(vfs, path, O_CREAT | O_TRUNC | O_WRONLY, 0644));
  if (!fd.valid()) {
    *error = "cannot create " + path + ": " + std::strerror(-fd.get());
    return false;
  }
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n =
        vfs.write(fd.get(), bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (n == -EINTR) continue;
      *error = "write failed for " + path + ": " +
               std::strerror(static_cast<int>(-n));
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  const int sync_rc = vfs.fsync(fd.get());
  if (sync_rc != 0 && sync_rc != -EINVAL && sync_rc != -ENOSYS) {
    *error = "fsync failed for " + path + ": " + std::strerror(-sync_rc);
    return false;
  }
  const int close_rc = vfs.close(fd.release());
  if (close_rc != 0) {
    // Treat a failed close like a failed write: the kernel may have
    // deferred an error to here (NFS/quota semantics).
    *error = "close failed for " + path + ": " + std::strerror(-close_rc);
    return false;
  }
  return true;
}

/// Verbs that append journal records (or rotate the journal) — exactly the
/// set the read-only mode must refuse.
bool requires_journal(const std::string& verb) {
  return verb == "tenant" || verb == "req" || verb == "cycle" ||
         verb == "set" || verb == "inject-fault" || verb == "repair" ||
         verb == "watchdog-trip" || verb == "note-metrics" ||
         verb == "snapshot";
}

}  // namespace

const char* to_string(IoMode mode) {
  switch (mode) {
    case IoMode::kNormal:
      return "normal";
    case IoMode::kReadOnly:
      return "read-only";
    case IoMode::kHalfOpen:
      return "half-open";
  }
  return "?";
}

std::string RecoveryReport::to_args() const {
  std::string args;
  args += "snapshot=" + std::to_string(had_snapshot ? 1 : 0);
  args += " snapshot-epoch=" + std::to_string(snapshot_epoch);
  args += " journal=" + std::to_string(had_journal ? 1 : 0);
  args += " journal-epoch=" + std::to_string(journal_epoch);
  args += " stale=" + std::to_string(journal_stale ? 1 : 0);
  args += " replayed=" + std::to_string(replayed);
  args += " truncated=" + std::to_string(journal_truncated ? 1 : 0);
  if (journal_truncated) {
    args += " damage-offset=" + std::to_string(damage_offset);
  }
  if (orphans_removed > 0) {
    args += " orphans-removed=" + std::to_string(orphans_removed);
  }
  return args;
}

Service::Service(ServiceConfig config)
    : config_(std::move(config)),
      vfs_(config_.vfs != nullptr ? config_.vfs : &util::Vfs::real()),
      pool_(config_.pool_shards) {
  RSIN_REQUIRE(!config_.dir.empty(), "service dir must be set");
}

std::string Service::journal_path() const {
  return config_.dir + "/" + kJournalFile;
}

std::string Service::snapshot_path() const {
  return config_.dir + "/" + kSnapshotFile;
}

std::string Service::snapshot_tmp_path() const {
  return config_.dir + "/" + kSnapshotTmpFile;
}

std::size_t Service::cleanup_orphan_tmp_files() {
  // A crash between tmp create and rename leaves snapshot.tmp (or any
  // sibling *.tmp) behind; it was never renamed, so it is dead weight that
  // would otherwise accumulate and confuse operators. Enumerating the
  // directory is read-only metadata work, so std::filesystem is fine; the
  // unlink itself goes through the Vfs.
  std::size_t removed = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(config_.dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < 4 || name.compare(name.size() - 4, 4, ".tmp") != 0) {
      continue;
    }
    if (vfs_->unlink(entry.path().string().c_str()) == 0) ++removed;
  }
  return removed;
}

void Service::start_fresh() {
  // A stale snapshot next to a fresh epoch-0 journal would poison a later
  // recovery (the epoch rule would prefer the snapshot); remove both.
  (void)cleanup_orphan_tmp_files();
  (void)vfs_->unlink(snapshot_path().c_str());
  journal_ = Journal::create(journal_path(), 0, vfs_);
  durable_journal_exists_ = true;
  durable_epoch_ = 0;
  durable_valid_bytes_ = Journal::kHeaderBytes;
  io_mode_ = IoMode::kNormal;
}

RecoveryReport Service::load_state() {
  domains_.clear();
  RecoveryReport report;

  // 1. Snapshot, if one exists.
  if (file_size(snapshot_path()) >= 0) {
    std::string bytes;
    std::string error;
    if (!read_file(*vfs_, snapshot_path(), &bytes, &error)) {
      throw RecoveryError(error);
    }
    std::istringstream in(bytes);
    std::string line;
    if (!std::getline(in, line)) {
      throw RecoveryError("snapshot is empty: " + snapshot_path());
    }
    const Command header = parse_command(line);
    if (header.verb != "rsinsnap" || header.u64_or("v", 0) != 1) {
      throw RecoveryError("snapshot has a bad header: " + line);
    }
    report.had_snapshot = true;
    report.snapshot_epoch = header.u64("epoch");
    const std::uint64_t tenants = header.u64("tenants");
    for (std::uint64_t i = 0; i < tenants; ++i) {
      Domain domain = Domain::load(in, &pool_);
      std::string name = domain.name();
      domains_.emplace(std::move(name), std::move(domain));
    }
    if (!std::getline(in, line) || parse_command(line).verb != "endsnapshot") {
      throw RecoveryError("snapshot is truncated (missing endsnapshot): " +
                          snapshot_path());
    }
  }

  // 2. Journal, per the epoch rules (see service.hpp).
  durable_journal_exists_ = false;
  durable_epoch_ = report.snapshot_epoch;
  durable_valid_bytes_ = 0;
  const long long size = file_size(journal_path());
  if (size < 0) {
    return report;
  }
  if (size < static_cast<long long>(Journal::kHeaderBytes)) {
    // Torn create: the header is written before any record can exist, so
    // this journal never held state. Recreate at the snapshot's epoch.
    report.had_journal = true;
    return report;
  }
  Journal::ScanResult scan = Journal::scan(journal_path(), vfs_);
  report.had_journal = true;
  report.journal_epoch = scan.epoch;
  report.journal_truncated = scan.truncated;
  report.damage_offset = scan.damage_offset;
  report.damage = scan.damage;
  if (scan.epoch > report.snapshot_epoch) {
    throw RecoveryError(
        "journal epoch " + std::to_string(scan.epoch) +
        " is ahead of snapshot epoch " +
        std::to_string(report.snapshot_epoch) +
        " — the snapshot this journal builds on is missing");
  }
  if (scan.epoch < report.snapshot_epoch) {
    // Crash hit between snapshot rename and journal swap: every record in
    // this journal is already folded into the snapshot.
    report.journal_stale = true;
    return report;
  }
  for (const std::string& record : scan.records) {
    replay_record(record);
    ++report.replayed;
  }
  durable_journal_exists_ = true;
  durable_epoch_ = scan.epoch;
  durable_valid_bytes_ = scan.valid_bytes;
  return report;
}

RecoveryReport Service::recover() {
  RecoveryReport report = load_state();
  report.orphans_removed = cleanup_orphan_tmp_files();
  if (!durable_journal_exists_) {
    journal_ = Journal::create(journal_path(), durable_epoch_, vfs_);
    durable_journal_exists_ = true;
    durable_valid_bytes_ = Journal::kHeaderBytes;
  } else {
    const Journal::ScanResult scan = Journal::scan(journal_path(), vfs_);
    RSIN_ENSURE(scan.epoch == durable_epoch_ &&
                    scan.valid_bytes == durable_valid_bytes_,
                "journal changed between scan and reopen");
    journal_ = Journal::append_to(journal_path(), scan, vfs_);
  }
  io_mode_ = IoMode::kNormal;
  return report;
}

void Service::journal_append(const std::string& line) {
  RSIN_ENSURE(journal_.is_open(),
              "service used before start_fresh()/recover()");
  journal_.append(line);
}

bool Service::commit() {
  // A closed journal means read-only mode (or pre-start): dispatch already
  // refused every journaled verb, so nothing is staged and there is nothing
  // to fail. Returning true keeps read replies standing — a false here
  // would make the server rewrite a whole reads-only batch into commit
  // refusals while degraded.
  if (!journal_.is_open()) return true;
  const bool writes_pending = journal_.records_pending() > 0 ||
                              journal_.partial_flushed_bytes() > 0;
  const std::int32_t attempts =
      1 + std::max<std::int32_t>(0, config_.io.flush_retries);
  for (std::int32_t attempt = 0; attempt < attempts; ++attempt) {
    try {
      if (config_.durable) {
        journal_.sync();
      } else {
        journal_.flush();
      }
      if (io_mode_ == IoMode::kHalfOpen && writes_pending) {
        // The probe traffic reached the disk: the breaker closes.
        io_mode_ = IoMode::kNormal;
        backoff_ms_ = 0;
        ++rearms_;
      }
      return true;
    } catch (const JournalError& e) {
      // The flush is resumable (the journal tracks the bytes that landed),
      // so trying again is safe and exactly what an EINTR storm or a
      // transient ENOSPC wants.
      ++io_failures_;
      last_io_error_ = e.what();
    }
  }
  enter_read_only("group commit failed after " + std::to_string(attempts) +
                  " attempts: " + last_io_error_);
  return false;
}

void Service::enter_read_only(const std::string& reason) {
  ++breaker_trips_;
  last_io_error_ = reason;
  // Unflushed records were never acknowledged; drop them WITHOUT flushing
  // (a late flush would put records on disk that memory rolls back past).
  journal_.abandon();
  try {
    (void)load_state();
  } catch (const std::exception& e) {
    throw FatalServiceError(
        "cannot roll back to the durable state after an IO failure — "
        "memory is no longer trustworthy: " +
        std::string(e.what()) + " (trigger: " + reason + ")");
  }
  io_mode_ = IoMode::kReadOnly;
  backoff_ms_ = backoff_ms_ <= 0
                    ? std::max<std::int32_t>(0, config_.io.probe_backoff_ms)
                    : std::min(backoff_ms_ * 2,
                               config_.io.probe_backoff_max_ms);
  probe_at_ = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(backoff_ms_);
}

bool Service::maybe_rearm() {
  if (io_mode_ != IoMode::kReadOnly) return false;
  if (std::chrono::steady_clock::now() < probe_at_) return false;
  ++rearm_attempts_;
  try {
    if (!durable_journal_exists_) {
      journal_ = Journal::create(journal_path(), durable_epoch_, vfs_);
      durable_journal_exists_ = true;
      durable_valid_bytes_ = Journal::kHeaderBytes;
    } else {
      const Journal::ScanResult scan = Journal::scan(journal_path(), vfs_);
      if (scan.epoch != durable_epoch_ ||
          scan.valid_bytes != durable_valid_bytes_) {
        // The durable prefix memory was rebuilt from no longer matches the
        // file — re-arming would acknowledge commands against unknown
        // state. Stay read-only (the next probe re-checks).
        throw IoError("durable journal prefix changed while read-only "
                      "(expected epoch " +
                      std::to_string(durable_epoch_) + "/" +
                      std::to_string(durable_valid_bytes_) +
                      " bytes, found " + std::to_string(scan.epoch) + "/" +
                      std::to_string(scan.valid_bytes) + " bytes)");
      }
      journal_ = Journal::append_to(journal_path(), scan, vfs_);
    }
    io_mode_ = IoMode::kHalfOpen;
    return true;
  } catch (const std::exception& e) {
    ++io_failures_;
    last_io_error_ = e.what();
    backoff_ms_ = std::min(std::max(backoff_ms_, 1) * 2,
                           config_.io.probe_backoff_max_ms);
    probe_at_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(backoff_ms_);
    return false;
  }
}

Response Service::execute(const std::string& line) {
  try {
    const Command command = parse_command(line);
    return dispatch(command, /*replay=*/false);
  } catch (const FatalServiceError&) {
    throw;  // Must reach the server's top level (exit 1), not a client.
  } catch (const std::exception& e) {
    return Response::error(e.what());
  }
}

void Service::replay_record(const std::string& line) {
  Response response;
  try {
    const Command command = parse_command(line);
    response = dispatch(command, /*replay=*/true);
  } catch (const std::exception& e) {
    throw RecoveryError("journal record failed to re-execute: \"" + line +
                        "\": " + e.what());
  }
  if (!response.ok) {
    throw RecoveryError("journal record rejected on replay: \"" + line +
                        "\": " + response.body);
  }
}

Domain& Service::require_tenant(const Command& command) {
  const std::string& name = command.str("tenant");
  const auto it = domains_.find(name);
  RSIN_REQUIRE(it != domains_.end(), "unknown tenant " + name);
  return it->second;
}

Response Service::trip_watchdog(const std::string& tenant) {
  const auto it = domains_.find(tenant);
  if (it == domains_.end()) {
    return Response::error("watchdog: unknown tenant " + tenant);
  }
  const std::int32_t level = std::min<std::int32_t>(it->second.level() + 1, 2);
  return execute("watchdog-trip tenant=" + tenant +
                 " level=" + std::to_string(level));
}

std::uint64_t Service::snapshot() {
  RSIN_ENSURE(journal_.is_open(),
              "service used before start_fresh()/recover()");
  const std::uint64_t epoch = journal_.epoch() + 1;
  std::ostringstream out;
  out << "rsinsnap v=1 epoch=" << epoch << " tenants=" << domains_.size()
      << '\n';
  for (const auto& [name, domain] : domains_) domain.save(out);
  out << "endsnapshot\n";
  // tmp -> fsync -> rename is atomic under every crash window AND under
  // every fault window: a failure before the rename only costs the tmp
  // file (unlinked here, swept by cleanup_orphan_tmp_files otherwise);
  // journal and memory are untouched, so normal service continues.
  std::string error;
  if (!write_file_durable(*vfs_, snapshot_tmp_path(), out.str(), &error)) {
    (void)vfs_->unlink(snapshot_tmp_path().c_str());
    ++io_failures_;
    last_io_error_ = error;
    throw IoError("snapshot rolled back (journal and state untouched): " +
                  error);
  }
  const int rc =
      vfs_->rename(snapshot_tmp_path().c_str(), snapshot_path().c_str());
  if (rc != 0) {
    (void)vfs_->unlink(snapshot_tmp_path().c_str());
    ++io_failures_;
    last_io_error_ = std::strerror(-rc);
    throw IoError(
        "snapshot rename rolled back (journal and state untouched): " +
        std::string(std::strerror(-rc)));
  }
  // The snapshot is durable. Swap the journal; buffered records (if any)
  // are folded into the snapshot, so close() losing them to a write error
  // would still be safe — the epoch rule discards this journal either way.
  journal_.close();
  try {
    journal_ = Journal::create(journal_path(), epoch, vfs_);
  } catch (const JournalError& e) {
    // Valid durable pair on disk (new snapshot + stale journal); memory is
    // intact but nothing can be journaled — that is exactly read-only.
    enter_read_only(std::string("journal swap after snapshot failed: ") +
                    e.what());
    throw IoError(std::string(
                      "snapshot is durable but the journal swap failed; "
                      "service is read-only: ") +
                  e.what());
  }
  durable_journal_exists_ = true;
  durable_epoch_ = epoch;
  durable_valid_bytes_ = Journal::kHeaderBytes;
  return epoch;
}

Response Service::io_status_response() const {
  return Response::okay(
      std::string("mode=") + to_string(io_mode_) +
      " trips=" + std::to_string(breaker_trips_) +
      " failures=" + std::to_string(io_failures_) +
      " rearm-attempts=" + std::to_string(rearm_attempts_) +
      " rearms=" + std::to_string(rearms_) +
      " backoff-ms=" + std::to_string(backoff_ms_) +
      " epoch=" + std::to_string(journal_.epoch()));
}

Response Service::dispatch(const Command& command, bool replay) {
  const std::string& verb = command.verb;

  // Degraded storage gate: while the breaker is open, every command that
  // would need a journal record is refused with a machine-matchable code;
  // reads below keep serving. Replay is exempt (it IS the rollback path).
  if (!replay && io_mode_ == IoMode::kReadOnly && requires_journal(verb)) {
    return Response::refused(
        "read-only", "storage degraded, mutation refused (" +
                         last_io_error_ + "); retry after re-arm");
  }

  // --- read-only / control (never journaled) -------------------------------
  if (verb == "ping") return Response::okay("pong");
  if (verb == "epoch") {
    return Response::okay("epoch=" + std::to_string(journal_.epoch()));
  }
  if (verb == "io-status") return io_status_response();
  if (verb == "journal-stats") {
    return Response::okay(
        "epoch=" + std::to_string(journal_.epoch()) +
        " appended=" + std::to_string(journal_.records_appended()) +
        " pending=" + std::to_string(journal_.records_pending()));
  }
  if (verb == "stats") {
    return Response::okay(require_tenant(command).stats_args());
  }
  if (verb == "tenants") {
    Response r = Response::okay("count=" + std::to_string(domains_.size()));
    for (const auto& [name, domain] : domains_) {
      r.extra.push_back("tenant name=" + name +
                        " level=" + std::to_string(domain.level()) +
                        " window=" + std::to_string(domain.batch_window()));
    }
    r.body += " lines=" + std::to_string(r.extra.size());
    return r;
  }
  if (verb == "metrics") {
    // Per-tenant registry, or all tenants merged.
    obs::Registry merged;
    const std::string* name = command.find("tenant");
    if (name != nullptr) {
      merged.merge(require_tenant(command).registry());
    } else {
      for (auto& entry : domains_) merged.merge(entry.second.registry());
    }
    std::ostringstream out;
    obs::write_prometheus(merged.snapshot(), out);
    Response r;
    r.ok = true;
    std::istringstream lines(out.str());
    std::string metric_line;
    while (std::getline(lines, metric_line)) r.extra.push_back(metric_line);
    r.body = "lines=" + std::to_string(r.extra.size());
    return r;
  }
  if (verb == "snapshot") {
    RSIN_REQUIRE(!replay, "snapshot cannot appear in a journal");
    try {
      return Response::okay("epoch=" + std::to_string(snapshot()));
    } catch (const IoError& e) {
      return Response::refused("io", e.what());
    }
  }
  if (verb == "drain") {
    RSIN_REQUIRE(!replay, "drain cannot appear in a journal");
    begin_drain();
    return Response::okay("draining=1");
  }

  // --- state-changing (journaled on success) -------------------------------
  if (verb == "tenant") {
    RSIN_REQUIRE(!draining_ || replay, "draining: not accepting new tenants");
    const std::string& name = command.str("name");
    RSIN_REQUIRE(!name.empty(), "tenant name must be non-empty");
    RSIN_REQUIRE(!domains_.contains(name),
                 "tenant " + name + " already exists");
    DomainConfig config = DomainConfig::from_command(command);
    Domain domain(name, config, &pool_);
    domains_.emplace(name, std::move(domain));
    if (!replay) {
      journal_append("tenant name=" + name + " " + config.to_args());
    }
    return Response::okay("tenant=" + name);
  }
  if (verb == "req") {
    RSIN_REQUIRE(!draining_ || replay, "draining: not admitting requests");
    Domain& domain = require_tenant(command);
    const std::uint64_t id = command.u64("id");
    const auto processor =
        static_cast<topo::ProcessorId>(command.i64("proc"));
    const auto priority =
        static_cast<std::int32_t>(command.i64_or("prio", 0));
    const AdmitResult result = domain.admit(id, processor, priority);
    // Shed is a state change too (the id joins the seen set, so a retry
    // after recovery is answered `duplicate` exactly like the golden run).
    if (!replay && result != AdmitResult::kDuplicate) {
      journal_append("req tenant=" + domain.name() +
                     " id=" + std::to_string(id) +
                     " proc=" + std::to_string(processor) +
                     " prio=" + std::to_string(priority));
    }
    return Response::okay(std::string("status=") + to_string(result));
  }
  if (verb == "cycle") {
    RSIN_REQUIRE(!draining_ || replay, "draining: not running cycles");
    Domain& domain = require_tenant(command);
    const std::uint64_t id = command.u64("id");
    if (domain.seen(id) && !replay) {
      return Response::okay("status=duplicate");
    }
    domain.note_cycle_id(id);
    const CycleSummary summary = domain.run_cycle();
    if (replay) {
      // The journal carries the state the dead daemon acknowledged;
      // recovery must converge to it exactly.
      const std::uint64_t want_seq = command.u64("seq");
      const std::uint64_t want_hash = parse_hex(command.str("hash"), "hash");
      if (summary.seq != want_seq || summary.state_hash != want_hash) {
        throw RecoveryError(
            "cycle replay diverged for tenant " + domain.name() +
            ": got seq=" + std::to_string(summary.seq) +
            " hash=" + format_hex(summary.state_hash) + ", journal says seq=" +
            std::to_string(want_seq) + " hash=" + format_hex(want_hash));
      }
    } else {
      journal_append("cycle tenant=" + domain.name() +
                     " id=" + std::to_string(id) +
                     " seq=" + std::to_string(summary.seq) +
                     " hash=" + format_hex(summary.state_hash));
    }
    return Response::okay(
        "status=" + std::string(summary.deferred ? "deferred" : "solved") +
        " seq=" + std::to_string(summary.seq) +
        " granted=" + std::to_string(summary.granted) +
        " pending=" + std::to_string(summary.pending) +
        " hash=" + format_hex(summary.state_hash));
  }
  if (verb == "set") {
    Domain& domain = require_tenant(command);
    const std::string* window = command.find("batch-window");
    const std::string* level = command.find("level");
    RSIN_REQUIRE(window != nullptr || level != nullptr,
                 "set needs batch-window= or level=");
    std::string journaled = "set tenant=" + domain.name();
    if (window != nullptr) {
      domain.set_batch_window(
          static_cast<std::int32_t>(command.i64("batch-window")));
      journaled += " batch-window=" + *window;
    }
    if (level != nullptr) {
      domain.set_level(static_cast<std::int32_t>(command.i64("level")));
      journaled += " level=" + *level;
    }
    if (!replay) journal_append(journaled);
    return Response::okay("window=" + std::to_string(domain.batch_window()) +
                          " level=" + std::to_string(domain.level()));
  }
  if (verb == "inject-fault" || verb == "repair") {
    Domain& domain = require_tenant(command);
    const auto link = static_cast<topo::LinkId>(command.i64("link"));
    const bool injecting = verb == "inject-fault";
    const bool changed = injecting ? domain.inject_link_fault(link)
                                   : domain.repair_link(link);
    if (!replay && changed) {
      journal_append(verb + " tenant=" + domain.name() +
                     " link=" + std::to_string(link));
    }
    return Response::okay(std::string("status=") +
                          (changed ? (injecting ? "injected" : "repaired")
                                   : "noop"));
  }
  if (verb == "watchdog-trip") {
    Domain& domain = require_tenant(command);
    const auto level = static_cast<std::int32_t>(command.i64("level"));
    const std::int32_t before = domain.level();
    domain.set_level(level);
    if (!replay && domain.level() != before) {
      journal_append("watchdog-trip tenant=" + domain.name() +
                     " level=" + std::to_string(level));
    }
    return Response::okay("level=" + std::to_string(domain.level()));
  }
  if (verb == "note-metrics") {
    // Periodic journaled metrics note: on replay the hash doubles as a
    // mid-journal convergence checkpoint.
    Domain& domain = require_tenant(command);
    const std::uint64_t hash = domain.state_hash();
    if (replay) {
      const std::uint64_t want = parse_hex(command.str("hash"), "hash");
      if (hash != want) {
        throw RecoveryError("metrics note diverged for tenant " +
                            domain.name() + ": got " + format_hex(hash) +
                            ", journal says " + format_hex(want));
      }
    } else {
      journal_append("note-metrics tenant=" + domain.name() +
                     " hash=" + format_hex(hash));
    }
    return Response::okay(domain.stats_args());
  }

  return Response::error("unknown command: " + verb);
}

}  // namespace rsin::svc
