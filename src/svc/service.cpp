#include "svc/service.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/export.hpp"
#include "util/error.hpp"

namespace rsin::svc {
namespace {

constexpr char kJournalFile[] = "journal.bin";
constexpr char kSnapshotFile[] = "snapshot.txt";
constexpr char kSnapshotTmpFile[] = "snapshot.tmp";

/// -1 when the file does not exist.
long long file_size(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<long long>(st.st_size);
}

void write_file_durable(const std::string& path, const std::string& bytes) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  RSIN_ENSURE(fd >= 0, "cannot create " + path + ": " +
                           std::strerror(errno));
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw std::logic_error("write failed for " + path + ": " +
                             std::strerror(err));
    }
    done += static_cast<std::size_t>(n);
  }
  const bool synced = ::fsync(fd) == 0 || errno == EINVAL || errno == ENOSYS;
  ::close(fd);
  RSIN_ENSURE(synced, "fsync failed for " + path);
}

}  // namespace

std::string RecoveryReport::to_args() const {
  std::string args;
  args += "snapshot=" + std::to_string(had_snapshot ? 1 : 0);
  args += " snapshot-epoch=" + std::to_string(snapshot_epoch);
  args += " journal=" + std::to_string(had_journal ? 1 : 0);
  args += " journal-epoch=" + std::to_string(journal_epoch);
  args += " stale=" + std::to_string(journal_stale ? 1 : 0);
  args += " replayed=" + std::to_string(replayed);
  args += " truncated=" + std::to_string(journal_truncated ? 1 : 0);
  if (journal_truncated) {
    args += " damage-offset=" + std::to_string(damage_offset);
  }
  return args;
}

Service::Service(ServiceConfig config)
    : config_(std::move(config)), pool_(config_.pool_shards) {
  RSIN_REQUIRE(!config_.dir.empty(), "service dir must be set");
}

std::string Service::journal_path() const {
  return config_.dir + "/" + kJournalFile;
}

std::string Service::snapshot_path() const {
  return config_.dir + "/" + kSnapshotFile;
}

std::string Service::snapshot_tmp_path() const {
  return config_.dir + "/" + kSnapshotTmpFile;
}

void Service::start_fresh() {
  // A stale snapshot next to a fresh epoch-0 journal would poison a later
  // recovery (the epoch rule would prefer the snapshot); remove both.
  ::unlink(snapshot_path().c_str());
  ::unlink(snapshot_tmp_path().c_str());
  journal_ = Journal::create(journal_path(), 0);
}

RecoveryReport Service::recover() {
  RecoveryReport report;

  // 1. Snapshot, if one exists.
  if (file_size(snapshot_path()) >= 0) {
    std::ifstream in(snapshot_path());
    RSIN_ENSURE(in.is_open(), "cannot open " + snapshot_path());
    std::string line;
    if (!std::getline(in, line)) {
      throw RecoveryError("snapshot is empty: " + snapshot_path());
    }
    const Command header = parse_command(line);
    if (header.verb != "rsinsnap" || header.u64_or("v", 0) != 1) {
      throw RecoveryError("snapshot has a bad header: " + line);
    }
    report.had_snapshot = true;
    report.snapshot_epoch = header.u64("epoch");
    const std::uint64_t tenants = header.u64("tenants");
    for (std::uint64_t i = 0; i < tenants; ++i) {
      Domain domain = Domain::load(in, &pool_);
      std::string name = domain.name();
      domains_.emplace(std::move(name), std::move(domain));
    }
    if (!std::getline(in, line) || parse_command(line).verb != "endsnapshot") {
      throw RecoveryError("snapshot is truncated (missing endsnapshot): " +
                          snapshot_path());
    }
  }

  // 2. Journal, per the epoch rules (see service.hpp).
  const long long size = file_size(journal_path());
  if (size < 0) {
    journal_ = Journal::create(journal_path(), report.snapshot_epoch);
    return report;
  }
  if (size < static_cast<long long>(Journal::kHeaderBytes)) {
    // Torn create: the header is written before any record can exist, so
    // this journal never held state. Recreate at the snapshot's epoch.
    report.had_journal = true;
    journal_ = Journal::create(journal_path(), report.snapshot_epoch);
    return report;
  }
  Journal::ScanResult scan = Journal::scan(journal_path());
  report.had_journal = true;
  report.journal_epoch = scan.epoch;
  report.journal_truncated = scan.truncated;
  report.damage_offset = scan.damage_offset;
  report.damage = scan.damage;
  if (scan.epoch > report.snapshot_epoch) {
    throw RecoveryError(
        "journal epoch " + std::to_string(scan.epoch) +
        " is ahead of snapshot epoch " +
        std::to_string(report.snapshot_epoch) +
        " — the snapshot this journal builds on is missing");
  }
  if (scan.epoch < report.snapshot_epoch) {
    // Crash hit between snapshot rename and journal swap: every record in
    // this journal is already folded into the snapshot.
    report.journal_stale = true;
    journal_ = Journal::create(journal_path(), report.snapshot_epoch);
    return report;
  }
  for (const std::string& record : scan.records) {
    replay_record(record);
    ++report.replayed;
  }
  journal_ = Journal::append_to(journal_path(), scan);
  return report;
}

void Service::journal_append(const std::string& line) {
  RSIN_ENSURE(journal_.is_open(),
              "service used before start_fresh()/recover()");
  journal_.append(line);
}

void Service::commit() {
  if (!journal_.is_open()) return;
  if (config_.durable) {
    journal_.sync();
  } else {
    journal_.flush();
  }
}

Response Service::execute(const std::string& line) {
  try {
    const Command command = parse_command(line);
    return dispatch(command, /*replay=*/false);
  } catch (const std::exception& e) {
    return Response::error(e.what());
  }
}

void Service::replay_record(const std::string& line) {
  Response response;
  try {
    const Command command = parse_command(line);
    response = dispatch(command, /*replay=*/true);
  } catch (const std::exception& e) {
    throw RecoveryError("journal record failed to re-execute: \"" + line +
                        "\": " + e.what());
  }
  if (!response.ok) {
    throw RecoveryError("journal record rejected on replay: \"" + line +
                        "\": " + response.body);
  }
}

Domain& Service::require_tenant(const Command& command) {
  const std::string& name = command.str("tenant");
  const auto it = domains_.find(name);
  RSIN_REQUIRE(it != domains_.end(), "unknown tenant " + name);
  return it->second;
}

Response Service::trip_watchdog(const std::string& tenant) {
  const auto it = domains_.find(tenant);
  if (it == domains_.end()) {
    return Response::error("watchdog: unknown tenant " + tenant);
  }
  const std::int32_t level = std::min<std::int32_t>(it->second.level() + 1, 2);
  return execute("watchdog-trip tenant=" + tenant +
                 " level=" + std::to_string(level));
}

std::uint64_t Service::snapshot() {
  RSIN_ENSURE(journal_.is_open(),
              "service used before start_fresh()/recover()");
  const std::uint64_t epoch = journal_.epoch() + 1;
  std::ostringstream out;
  out << "rsinsnap v=1 epoch=" << epoch << " tenants=" << domains_.size()
      << '\n';
  for (const auto& [name, domain] : domains_) domain.save(out);
  out << "endsnapshot\n";
  // tmp -> fsync -> rename is atomic under every crash window; the journal
  // swap after it is what the epoch rule protects.
  write_file_durable(snapshot_tmp_path(), out.str());
  RSIN_ENSURE(
      std::rename(snapshot_tmp_path().c_str(), snapshot_path().c_str()) == 0,
      "cannot rename snapshot into place: " + std::string(strerror(errno)));
  journal_.close();
  journal_ = Journal::create(journal_path(), epoch);
  return epoch;
}

Response Service::dispatch(const Command& command, bool replay) {
  const std::string& verb = command.verb;

  // --- read-only / control (never journaled) -------------------------------
  if (verb == "ping") return Response::okay("pong");
  if (verb == "epoch") {
    return Response::okay("epoch=" + std::to_string(journal_.epoch()));
  }
  if (verb == "journal-stats") {
    return Response::okay(
        "epoch=" + std::to_string(journal_.epoch()) +
        " appended=" + std::to_string(journal_.records_appended()) +
        " pending=" + std::to_string(journal_.records_pending()));
  }
  if (verb == "stats") {
    return Response::okay(require_tenant(command).stats_args());
  }
  if (verb == "tenants") {
    Response r = Response::okay("count=" + std::to_string(domains_.size()));
    for (const auto& [name, domain] : domains_) {
      r.extra.push_back("tenant name=" + name +
                        " level=" + std::to_string(domain.level()) +
                        " window=" + std::to_string(domain.batch_window()));
    }
    r.body += " lines=" + std::to_string(r.extra.size());
    return r;
  }
  if (verb == "metrics") {
    // Per-tenant registry, or all tenants merged.
    obs::Registry merged;
    const std::string* name = command.find("tenant");
    if (name != nullptr) {
      merged.merge(require_tenant(command).registry());
    } else {
      for (auto& entry : domains_) merged.merge(entry.second.registry());
    }
    std::ostringstream out;
    obs::write_prometheus(merged.snapshot(), out);
    Response r;
    r.ok = true;
    std::istringstream lines(out.str());
    std::string metric_line;
    while (std::getline(lines, metric_line)) r.extra.push_back(metric_line);
    r.body = "lines=" + std::to_string(r.extra.size());
    return r;
  }
  if (verb == "snapshot") {
    RSIN_REQUIRE(!replay, "snapshot cannot appear in a journal");
    return Response::okay("epoch=" + std::to_string(snapshot()));
  }
  if (verb == "drain") {
    RSIN_REQUIRE(!replay, "drain cannot appear in a journal");
    begin_drain();
    return Response::okay("draining=1");
  }

  // --- state-changing (journaled on success) -------------------------------
  if (verb == "tenant") {
    RSIN_REQUIRE(!draining_, "draining: not accepting new tenants");
    const std::string& name = command.str("name");
    RSIN_REQUIRE(!name.empty(), "tenant name must be non-empty");
    RSIN_REQUIRE(!domains_.contains(name),
                 "tenant " + name + " already exists");
    DomainConfig config = DomainConfig::from_command(command);
    Domain domain(name, config, &pool_);
    domains_.emplace(name, std::move(domain));
    if (!replay) {
      journal_append("tenant name=" + name + " " + config.to_args());
    }
    return Response::okay("tenant=" + name);
  }
  if (verb == "req") {
    RSIN_REQUIRE(!draining_, "draining: not admitting requests");
    Domain& domain = require_tenant(command);
    const std::uint64_t id = command.u64("id");
    const auto processor =
        static_cast<topo::ProcessorId>(command.i64("proc"));
    const auto priority =
        static_cast<std::int32_t>(command.i64_or("prio", 0));
    const AdmitResult result = domain.admit(id, processor, priority);
    // Shed is a state change too (the id joins the seen set, so a retry
    // after recovery is answered `duplicate` exactly like the golden run).
    if (!replay && result != AdmitResult::kDuplicate) {
      journal_append("req tenant=" + domain.name() +
                     " id=" + std::to_string(id) +
                     " proc=" + std::to_string(processor) +
                     " prio=" + std::to_string(priority));
    }
    return Response::okay(std::string("status=") + to_string(result));
  }
  if (verb == "cycle") {
    RSIN_REQUIRE(!draining_, "draining: not running cycles");
    Domain& domain = require_tenant(command);
    const std::uint64_t id = command.u64("id");
    if (domain.seen(id) && !replay) {
      return Response::okay("status=duplicate");
    }
    domain.note_cycle_id(id);
    const CycleSummary summary = domain.run_cycle();
    if (replay) {
      // The journal carries the state the dead daemon acknowledged;
      // recovery must converge to it exactly.
      const std::uint64_t want_seq = command.u64("seq");
      const std::uint64_t want_hash = parse_hex(command.str("hash"), "hash");
      if (summary.seq != want_seq || summary.state_hash != want_hash) {
        throw RecoveryError(
            "cycle replay diverged for tenant " + domain.name() +
            ": got seq=" + std::to_string(summary.seq) +
            " hash=" + format_hex(summary.state_hash) + ", journal says seq=" +
            std::to_string(want_seq) + " hash=" + format_hex(want_hash));
      }
    } else {
      journal_append("cycle tenant=" + domain.name() +
                     " id=" + std::to_string(id) +
                     " seq=" + std::to_string(summary.seq) +
                     " hash=" + format_hex(summary.state_hash));
    }
    return Response::okay(
        "status=" + std::string(summary.deferred ? "deferred" : "solved") +
        " seq=" + std::to_string(summary.seq) +
        " granted=" + std::to_string(summary.granted) +
        " pending=" + std::to_string(summary.pending) +
        " hash=" + format_hex(summary.state_hash));
  }
  if (verb == "set") {
    Domain& domain = require_tenant(command);
    const std::string* window = command.find("batch-window");
    const std::string* level = command.find("level");
    RSIN_REQUIRE(window != nullptr || level != nullptr,
                 "set needs batch-window= or level=");
    std::string journaled = "set tenant=" + domain.name();
    if (window != nullptr) {
      domain.set_batch_window(
          static_cast<std::int32_t>(command.i64("batch-window")));
      journaled += " batch-window=" + *window;
    }
    if (level != nullptr) {
      domain.set_level(static_cast<std::int32_t>(command.i64("level")));
      journaled += " level=" + *level;
    }
    if (!replay) journal_append(journaled);
    return Response::okay("window=" + std::to_string(domain.batch_window()) +
                          " level=" + std::to_string(domain.level()));
  }
  if (verb == "inject-fault" || verb == "repair") {
    Domain& domain = require_tenant(command);
    const auto link = static_cast<topo::LinkId>(command.i64("link"));
    const bool injecting = verb == "inject-fault";
    const bool changed = injecting ? domain.inject_link_fault(link)
                                   : domain.repair_link(link);
    if (!replay && changed) {
      journal_append(verb + " tenant=" + domain.name() +
                     " link=" + std::to_string(link));
    }
    return Response::okay(std::string("status=") +
                          (changed ? (injecting ? "injected" : "repaired")
                                   : "noop"));
  }
  if (verb == "watchdog-trip") {
    Domain& domain = require_tenant(command);
    const auto level = static_cast<std::int32_t>(command.i64("level"));
    const std::int32_t before = domain.level();
    domain.set_level(level);
    if (!replay && domain.level() != before) {
      journal_append("watchdog-trip tenant=" + domain.name() +
                     " level=" + std::to_string(level));
    }
    return Response::okay("level=" + std::to_string(domain.level()));
  }
  if (verb == "note-metrics") {
    // Periodic journaled metrics note: on replay the hash doubles as a
    // mid-journal convergence checkpoint.
    Domain& domain = require_tenant(command);
    const std::uint64_t hash = domain.state_hash();
    if (replay) {
      const std::uint64_t want = parse_hex(command.str("hash"), "hash");
      if (hash != want) {
        throw RecoveryError("metrics note diverged for tenant " +
                            domain.name() + ": got " + format_hex(hash) +
                            ", journal says " + format_hex(want));
      }
    } else {
      journal_append("note-metrics tenant=" + domain.name() +
                     " hash=" + format_hex(hash));
    }
    return Response::okay(domain.stats_args());
  }

  return Response::error("unknown command: " + verb);
}

}  // namespace rsin::svc
