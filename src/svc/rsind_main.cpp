// rsind — the resource-sharing interconnection network scheduling daemon.
//
//   rsind --socket /run/rsind.sock --dir /var/lib/rsind [--recover]
//         [--durable] [--pool-shards N] [--watchdog-ms N]
//         [--note-metrics-every N]
//
// Serves the line-framed protocol over a Unix-domain socket (see
// svc/protocol.hpp). SIGTERM/SIGINT drain gracefully: stop admitting,
// flush the journal, snapshot, exit 0. After a SIGKILL (or power cut with
// --durable), `rsind --recover` replays snapshot + journal and resumes
// with bitwise-identical state.
#include <csignal>
#include <cstring>
#include <iostream>
#include <string>

#include <unistd.h>

#include "svc/server.hpp"

namespace {

// Async-signal-safe shutdown: handlers may only write to the self-pipe.
int g_wake_fd = -1;

void on_signal(int /*sig*/) {
  if (g_wake_fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(g_wake_fd, &byte, 1);
  }
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --socket PATH --dir PATH [--recover] [--durable]\n"
               "             [--pool-shards N] [--watchdog-ms N] "
               "[--note-metrics-every N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  rsin::svc::ServerConfig config;
  bool recover = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      config.socket_path = value();
    } else if (arg == "--dir") {
      config.service.dir = value();
    } else if (arg == "--recover") {
      recover = true;
    } else if (arg == "--durable") {
      config.service.durable = true;
    } else if (arg == "--pool-shards") {
      config.service.pool_shards =
          static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--watchdog-ms") {
      config.watchdog_ms = std::stoi(value());
    } else if (arg == "--note-metrics-every") {
      config.note_metrics_every = std::stoi(value());
    } else {
      return usage(argv[0]);
    }
  }
  if (config.socket_path.empty() || config.service.dir.empty()) {
    return usage(argv[0]);
  }

  try {
    rsin::svc::Server server(config);
    g_wake_fd = server.wake_fd();
    struct sigaction action{};
    action.sa_handler = on_signal;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    std::cout << "rsind listening socket=" << config.socket_path
              << " dir=" << config.service.dir << std::endl;
    return server.run(recover);
  } catch (const std::exception& e) {
    std::cerr << "rsind: " << e.what() << '\n';
    return 1;
  }
}
