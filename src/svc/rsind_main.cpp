// rsind — the resource-sharing interconnection network scheduling daemon.
//
//   rsind --socket /run/rsind.sock --dir /var/lib/rsind [--recover]
//         [--durable] [--pool-shards N] [--watchdog-ms N]
//         [--note-metrics-every N]
//         [--idle-timeout-ms N] [--line-timeout-ms N] [--write-stall-ms N]
//         [--poll-timeout-ms N] [--max-line-bytes N] [--max-in-bytes N]
//         [--max-out-bytes N] [--max-clients N]
//         [--io-retries N] [--io-probe-backoff-ms N] [--fault-spec SPEC]
//
// Serves the line-framed protocol over a Unix-domain socket (see
// svc/protocol.hpp). SIGTERM/SIGINT drain gracefully: stop admitting,
// flush the journal, snapshot, exit 0. After a SIGKILL (or power cut with
// --durable), `rsind --recover` replays snapshot + journal and resumes
// with bitwise-identical state.
//
// --fault-spec installs a svc::FaultFs between the service and the real
// file system (syntax in svc/faultfs.hpp) — the hook the fault-injection
// soak drives a real daemon process with. Never set it in production.
#include <csignal>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include <unistd.h>

#include "svc/faultfs.hpp"
#include "svc/server.hpp"

namespace {

// Async-signal-safe shutdown: handlers may only write to the self-pipe.
int g_wake_fd = -1;

void on_signal(int /*sig*/) {
  if (g_wake_fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(g_wake_fd, &byte, 1);
  }
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --socket PATH --dir PATH [--recover] [--durable]\n"
               "             [--pool-shards N] [--watchdog-ms N] "
               "[--note-metrics-every N]\n"
               "             [--idle-timeout-ms N] [--line-timeout-ms N] "
               "[--write-stall-ms N]\n"
               "             [--poll-timeout-ms N] [--max-line-bytes N] "
               "[--max-in-bytes N]\n"
               "             [--max-out-bytes N] [--max-clients N] "
               "[--io-retries N]\n"
               "             [--io-probe-backoff-ms N] [--fault-spec SPEC]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  rsin::svc::ServerConfig config;
  bool recover = false;
  std::string fault_spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      config.socket_path = value();
    } else if (arg == "--dir") {
      config.service.dir = value();
    } else if (arg == "--recover") {
      recover = true;
    } else if (arg == "--durable") {
      config.service.durable = true;
    } else if (arg == "--pool-shards") {
      config.service.pool_shards =
          static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--watchdog-ms") {
      config.watchdog_ms = std::stoi(value());
    } else if (arg == "--note-metrics-every") {
      config.note_metrics_every = std::stoi(value());
    } else if (arg == "--idle-timeout-ms") {
      config.idle_timeout_ms = std::stoi(value());
    } else if (arg == "--line-timeout-ms") {
      config.line_timeout_ms = std::stoi(value());
    } else if (arg == "--write-stall-ms") {
      config.write_stall_ms = std::stoi(value());
    } else if (arg == "--poll-timeout-ms") {
      config.poll_timeout_ms = std::stoi(value());
    } else if (arg == "--max-line-bytes") {
      config.max_line_bytes = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--max-in-bytes") {
      config.max_in_bytes = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--max-out-bytes") {
      config.max_out_bytes = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--max-clients") {
      config.max_clients = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--io-retries") {
      config.service.io.flush_retries = std::stoi(value());
    } else if (arg == "--io-probe-backoff-ms") {
      config.service.io.probe_backoff_ms = std::stoi(value());
    } else if (arg == "--fault-spec") {
      fault_spec = value();
    } else {
      return usage(argv[0]);
    }
  }
  if (config.socket_path.empty() || config.service.dir.empty()) {
    return usage(argv[0]);
  }

  try {
    std::unique_ptr<rsin::svc::FaultFs> faultfs;
    if (!fault_spec.empty()) {
      faultfs = std::make_unique<rsin::svc::FaultFs>();
      faultfs->schedule_all(rsin::svc::FaultFs::parse_spec(fault_spec));
      config.service.vfs = faultfs.get();
      std::cout << "rsind fault-spec armed: " << fault_spec << std::endl;
    }
    rsin::svc::Server server(config);
    g_wake_fd = server.wake_fd();
    struct sigaction action{};
    action.sa_handler = on_signal;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    std::cout << "rsind listening socket=" << config.socket_path
              << " dir=" << config.service.dir << std::endl;
    return server.run(recover);
  } catch (const std::exception& e) {
    std::cerr << "rsind: " << e.what() << '\n';
    return 1;
  }
}
