// svc::Client — blocking rsind client with deadlines, reconnect, and
// retry/backoff.
//
// Every attempt gets `timeout_ms` of wall clock; a timeout, refused
// connection, or mid-reply disconnect closes the socket, sleeps an
// exponentially growing backoff, reconnects, and RESENDS THE SAME LINE.
// That is only safe because the protocol's state-changing commands carry
// client-chosen idempotent ids (`req id=`, `cycle id=`): a retry whose
// original was journaled before the crash is answered `duplicate`/
// `status=duplicate` instead of double-executing — including across a
// daemon restart, since the seen-id set is journaled state.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "svc/protocol.hpp"

namespace rsin::svc {

struct ClientOptions {
  std::string socket_path;
  std::int32_t timeout_ms = 2000;  ///< Per-attempt deadline.
  std::int32_t retries = 5;        ///< Attempts beyond the first.
  std::int32_t backoff_ms = 50;    ///< First retry delay; doubles per retry.
};

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one command line and returns the parsed reply (ok/err + body,
  /// plus `lines=N` continuation lines in `extra`). Throws
  /// std::runtime_error when every attempt failed.
  Response request(const std::string& line);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

 private:
  void connect_now();
  void close_now();
  /// One attempt: send + read reply before the deadline. False = retry.
  bool attempt(const std::string& line, Response& out);
  bool read_line(std::string& out,
                 std::chrono::steady_clock::time_point deadline);

  ClientOptions options_;
  int fd_ = -1;
  std::string inbuf_;
};

}  // namespace rsin::svc
