#include "svc/faultfs.hpp"

#include <cerrno>
#include <stdexcept>

namespace rsin::svc {
namespace {

using Op = FaultFs::Rule::Op;

Op parse_op(const std::string& name) {
  if (name == "any") return Op::kAny;
  if (name == "open") return Op::kOpen;
  if (name == "read") return Op::kRead;
  if (name == "write") return Op::kWrite;
  if (name == "fsync") return Op::kFsync;
  if (name == "fdatasync") return Op::kFdatasync;
  if (name == "ftruncate") return Op::kFtruncate;
  if (name == "rename") return Op::kRename;
  if (name == "unlink") return Op::kUnlink;
  if (name == "close") return Op::kClose;
  throw std::invalid_argument("faultfs: unknown op \"" + name + "\"");
}

int parse_errno(const std::string& name) {
  if (name == "ENOSPC") return ENOSPC;
  if (name == "EIO") return EIO;
  if (name == "EINTR") return EINTR;
  if (name == "EDQUOT") return EDQUOT;
  if (name == "EROFS") return EROFS;
  if (name == "EMFILE") return EMFILE;
  if (name == "EACCES") return EACCES;
  try {
    return std::stoi(name);
  } catch (const std::exception&) {
    throw std::invalid_argument("faultfs: unknown errno \"" + name + "\"");
  }
}

std::uint64_t parse_u64(const std::string& value, const std::string& key) {
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    throw std::invalid_argument("faultfs: bad number for " + key + ": \"" +
                                value + "\"");
  }
}

}  // namespace

std::vector<FaultFs::Rule> FaultFs::parse_spec(const std::string& spec) {
  std::vector<Rule> rules;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    const std::string chunk =
        spec.substr(pos, semi == std::string::npos ? std::string::npos
                                                   : semi - pos);
    pos = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    if (chunk.empty()) continue;

    Rule rule;
    bool has_effect = false;
    std::size_t field = 0;
    while (field <= chunk.size()) {
      const std::size_t comma = chunk.find(',', field);
      const std::string pair =
          chunk.substr(field, comma == std::string::npos ? std::string::npos
                                                         : comma - field);
      field = comma == std::string::npos ? chunk.size() + 1 : comma + 1;
      if (pair.empty()) continue;
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw std::invalid_argument("faultfs: rule field is not key=value: \"" +
                                    pair + "\"");
      }
      const std::string key = pair.substr(0, eq);
      const std::string value = pair.substr(eq + 1);
      if (key == "op") {
        rule.op = parse_op(value);
      } else if (key == "path") {
        rule.path_contains = value;
      } else if (key == "after") {
        rule.after = parse_u64(value, key);
      } else if (key == "count") {
        rule.count = value == "inf" ? Rule::kPersistent : parse_u64(value, key);
      } else if (key == "err") {
        rule.error = parse_errno(value);
        has_effect = true;
      } else if (key == "short") {
        rule.short_bytes = parse_u64(value, key);
        has_effect = true;
      } else if (key == "cut") {
        rule.power_cut = parse_u64(value, key) != 0;
        has_effect = has_effect || rule.power_cut;
      } else {
        throw std::invalid_argument("faultfs: unknown rule key \"" + key +
                                    "\"");
      }
    }
    if (!has_effect) {
      throw std::invalid_argument(
          "faultfs: rule has no effect (needs err=, short=, or cut=1): \"" +
          chunk + "\"");
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

void FaultFs::schedule(Rule rule) {
  const std::lock_guard<std::mutex> lock(mutex_);
  rules_.push_back(std::move(rule));
  matched_.push_back(0);
}

void FaultFs::schedule_all(const std::vector<Rule>& rules) {
  for (const Rule& rule : rules) schedule(rule);
}

void FaultFs::heal() {
  const std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
  matched_.clear();
  cut_paths_.clear();
}

FaultFs::Stats FaultFs::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string FaultFs::fd_path(int fd) const {
  const auto it = fd_paths_.find(fd);
  return it != fd_paths_.end() ? it->second : std::string();
}

FaultFs::Decision FaultFs::decide(Rule::Op op, const std::string& path) {
  ++stats_.ops;
  Decision decision;

  // An active power cut dominates the schedule: the disk is gone for the
  // matching paths until heal() (i.e. until the "machine" restarts).
  if (op == Op::kWrite || op == Op::kFsync || op == Op::kFdatasync ||
      op == Op::kFtruncate) {
    for (const std::string& cut : cut_paths_) {
      if (cut.empty() || path.find(cut) != std::string::npos) {
        ++stats_.injected;
        decision.inject = true;
        decision.error = EIO;
        return decision;
      }
    }
  }

  for (std::size_t i = 0; i < rules_.size(); ++i) {
    Rule& rule = rules_[i];
    const bool op_match = rule.op == Op::kAny || rule.op == op;
    if (!op_match) continue;
    if (!rule.path_contains.empty() &&
        path.find(rule.path_contains) == std::string::npos) {
      continue;
    }
    const std::uint64_t seen = matched_[i]++;
    if (seen < rule.after) continue;
    if (rule.count != Rule::kPersistent && seen >= rule.after + rule.count) {
      continue;
    }

    if (rule.power_cut) {
      ++stats_.power_cuts;
      cut_paths_.push_back(rule.path_contains);
    }
    if (rule.short_bytes != ~0ull && op == Op::kWrite && !rule.power_cut &&
        rule.error == 0) {
      ++stats_.short_writes;
      decision.short_bytes = rule.short_bytes;
      return decision;  // Short delivery, no error.
    }
    ++stats_.injected;
    decision.inject = true;
    decision.error = rule.error != 0 ? rule.error : EIO;
    decision.short_bytes = rule.short_bytes;  // Power cut: torn then fail.
    return decision;
  }
  return decision;
}

int FaultFs::open(const char* path, int flags, int mode) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Decision decision = decide(Op::kOpen, path);
    if (decision.inject) return -decision.error;
  }
  const int fd = inner_->open(path, flags, mode);
  if (fd >= 0) {
    const std::lock_guard<std::mutex> lock(mutex_);
    fd_paths_[fd] = path;
  }
  return fd;
}

ssize_t FaultFs::read(int fd, void* buf, std::size_t n) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Decision decision = decide(Op::kRead, fd_path(fd));
    if (decision.inject) return -decision.error;
  }
  return inner_->read(fd, buf, n);
}

ssize_t FaultFs::write(int fd, const void* buf, std::size_t n) {
  Decision decision;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    decision = decide(Op::kWrite, fd_path(fd));
  }
  if (!decision.inject && decision.short_bytes == ~0ull) {
    return inner_->write(fd, buf, n);
  }
  // A plain injected error delivers nothing: the bytes never reached the
  // disk, exactly like a real ENOSPC/EIO before any page was dirtied.
  if (decision.inject && decision.short_bytes == ~0ull) {
    return -decision.error;
  }
  // Torn delivery: hand the inner Vfs the first `short_bytes` for both the
  // plain short write and the power cut (whose partial bytes then fail).
  std::size_t deliver = n;
  if (decision.short_bytes != ~0ull && decision.short_bytes < n) {
    deliver = static_cast<std::size_t>(decision.short_bytes);
  }
  ssize_t wrote = 0;
  if (deliver > 0) {
    wrote = inner_->write(fd, buf, deliver);
    if (wrote < 0) wrote = 0;
  }
  if (!decision.inject) return wrote;  // Plain short write.
  return -decision.error;
}

int FaultFs::fsync(int fd) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Decision decision = decide(Op::kFsync, fd_path(fd));
    if (decision.inject) return -decision.error;
  }
  return inner_->fsync(fd);
}

int FaultFs::fdatasync(int fd) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Decision decision = decide(Op::kFdatasync, fd_path(fd));
    if (decision.inject) return -decision.error;
  }
  return inner_->fdatasync(fd);
}

int FaultFs::ftruncate(int fd, off_t size) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Decision decision = decide(Op::kFtruncate, fd_path(fd));
    if (decision.inject) return -decision.error;
  }
  return inner_->ftruncate(fd, size);
}

off_t FaultFs::lseek(int fd, off_t offset, int whence) {
  return inner_->lseek(fd, offset, whence);
}

int FaultFs::rename(const char* from, const char* to) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Rename matches either side so one `path=snapshot` rule covers both
    // the tmp source and the final destination.
    Decision decision = decide(Op::kRename, std::string(from) + "|" + to);
    if (decision.inject) return -decision.error;
  }
  return inner_->rename(from, to);
}

int FaultFs::unlink(const char* path) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Decision decision = decide(Op::kUnlink, path);
    if (decision.inject) return -decision.error;
  }
  return inner_->unlink(path);
}

int FaultFs::close(int fd) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const Decision decision = decide(Op::kClose, fd_path(fd));
    fd_paths_.erase(fd);
    if (decision.inject) {
      // The fd still has to reach the inner close — leaking real fds to
      // simulate a close error would starve the process, not the test.
      inner_->close(fd);
      return -decision.error;
    }
  }
  return inner_->close(fd);
}

}  // namespace rsin::svc
