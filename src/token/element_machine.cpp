#include "token/element_machine.hpp"

#include <algorithm>
#include <map>

#include "token/registered_trace.hpp"
#include "util/error.hpp"

namespace rsin::token {
namespace {

using topo::kInvalidId;
using topo::LinkId;
using topo::NodeKind;

/// Anonymous token signals on a link wire. kReqForward travels from->to;
/// kReqBackward to->from; resource tokens and backtracks travel whichever
/// way the driving end faces, so the wire records who drove it.
enum class Signal : std::uint8_t {
  kNone,
  kReqForward,
  kReqBackward,
  kResToken,
  kResBacktrack,
};

struct Wire {
  Signal signal = Signal::kNone;
  bool driven_by_from = false;  ///< True when the link's from-end drove it.
};

/// The phase register every element derives, identically, from the latched
/// status-bus value (the synchronization theorem of Section IV-B-3).
enum class Phase : std::uint8_t {
  kIdle,
  kReq,     // request-token propagation (E3)
  kSettle,  // one clock after E6
  kRes,     // resource-token propagation (E4)
  kReg,     // path registration (E5)
  kAlloc,   // bonding / cycle end
  kDone,
};

Phase next_phase(Phase phase, std::uint8_t bus) {
  switch (phase) {
    case Phase::kIdle:
      return (bus & kRequestPending) && (bus & kResourceReady) ? Phase::kReq
                                                               : Phase::kIdle;
    case Phase::kReq:
      if (bus & kResourceReached) return Phase::kSettle;
      if (!(bus & kRequestTokenPhase)) return Phase::kAlloc;
      return Phase::kReq;
    case Phase::kSettle:
      return Phase::kRes;
    case Phase::kRes:
      return (bus & kResourceTokenPhase) ? Phase::kRes : Phase::kReg;
    case Phase::kReg:
      return Phase::kReq;
    case Phase::kAlloc:
      return Phase::kDone;
    case Phase::kDone:
      return Phase::kDone;
  }
  return Phase::kDone;
}

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kIdle:
      return "idle";
    case Phase::kReq:
      return "request-token propagation";
    case Phase::kSettle:
      return "RS reached (E6 settle)";
    case Phase::kRes:
      return "resource-token propagation";
    case Phase::kReg:
      return "path registration";
    case Phase::kAlloc:
      return "allocation";
    case Phase::kDone:
      return "done";
  }
  return "?";
}

enum class LState : std::uint8_t { kFree, kRegistered, kOccupied };

/// One switchbox port: its link plus the NS-local registers of Section IV
/// (marking bit, reservation bit, pairing — the pairing register doubles as
/// the final switch setting).
struct Port {
  LinkId link = kInvalidId;
  bool is_in = false;       ///< This NS is the link's to-end.
  bool sent_request = false;  ///< We drove the request token over this port.
  bool recv_request = false;  ///< Request token accepted via this port.
  bool cleared = false;       ///< Recv mark erased by a backtrack.
  bool reserved = false;      ///< Resource-token exit reservation.
  bool res_passed = false;    ///< A resource token passed (send side).
  int arrival = -1;  ///< Exit ports: index of the token's arrival port.
};

struct NsElement {
  std::vector<Port> ports;
  bool visited = false;

  void reset() {
    visited = false;
    for (Port& port : ports) {
      port.sent_request = port.recv_request = port.cleared = false;
      port.reserved = port.res_passed = false;
      port.arrival = -1;
    }
  }
};

struct RqElement {
  LinkId link = kInvalidId;
  bool pending = false;
  bool bonded = false;
  bool res_passed = false;  ///< Resource token arrived (register at kReg).
};

struct RsElement {
  LinkId link = kInvalidId;
  bool ready = false;
  bool bonded = false;
  bool accepted = false;  ///< Received a request token this iteration.
};

}  // namespace

struct ElementMachine::Impl {
  const core::Problem& problem;
  const topo::Network& net;

  std::vector<LState> link_state;
  std::vector<Wire> wires_now;
  std::vector<Wire> wires_next;
  std::vector<RqElement> rqs;
  std::vector<RsElement> rss;
  std::vector<NsElement> nss;

  Phase phase = Phase::kIdle;
  std::uint8_t bus_prev = 0;
  std::uint8_t bus_now = 0;
  ElementStats* stats = nullptr;
  std::int64_t clock = 0;
  std::int64_t max_clock_periods = 0;  ///< 0 = derive from network size.

  explicit Impl(const core::Problem& p) : problem(p), net(*p.network) {
    link_state.assign(static_cast<std::size_t>(net.link_count()),
                      LState::kFree);
    for (LinkId l = 0; l < net.link_count(); ++l) {
      // Faulty links read as occupied: the element machine models detected
      // faults, so no token is ever launched into failed hardware.
      if (!net.link_free(l)) {
        link_state[static_cast<std::size_t>(l)] = LState::kOccupied;
      }
    }
    wires_now.assign(static_cast<std::size_t>(net.link_count()), {});
    wires_next.assign(static_cast<std::size_t>(net.link_count()), {});

    rqs.resize(static_cast<std::size_t>(net.processor_count()));
    for (topo::ProcessorId p_id = 0; p_id < net.processor_count(); ++p_id) {
      rqs[static_cast<std::size_t>(p_id)].link = net.processor_link(p_id);
    }
    for (const core::Request& request : problem.requests) {
      rqs[static_cast<std::size_t>(request.processor)].pending = true;
    }
    rss.resize(static_cast<std::size_t>(net.resource_count()));
    for (topo::ResourceId r = 0; r < net.resource_count(); ++r) {
      rss[static_cast<std::size_t>(r)].link = net.resource_link(r);
    }
    for (const core::FreeResource& resource : problem.free_resources) {
      rss[static_cast<std::size_t>(resource.resource)].ready = true;
    }
    nss.resize(static_cast<std::size_t>(net.switch_count()));
    for (topo::SwitchId sw = 0; sw < net.switch_count(); ++sw) {
      NsElement& ns = nss[static_cast<std::size_t>(sw)];
      for (const LinkId l : net.switch_in_links(sw)) {
        ns.ports.push_back(Port{l, true, false, false, false, false, false,
                                -1});
      }
      for (const LinkId l : net.switch_out_links(sw)) {
        ns.ports.push_back(Port{l, false, false, false, false, false, false,
                                -1});
      }
    }
  }

  // --- wire helpers -------------------------------------------------------

  /// Drives `signal` on `link` from the given end (next clock's value).
  void drive(LinkId link, Signal signal, bool from_end) {
    RSIN_ENSURE(link != kInvalidId, "drive on an unwired port");
    Wire& wire = wires_next[static_cast<std::size_t>(link)];
    RSIN_ENSURE(wire.signal == Signal::kNone,
                "two elements drove one wire in one clock");
    wire.signal = signal;
    wire.driven_by_from = from_end;
    if (stats) ++stats->signals_driven;
  }

  [[nodiscard]] LState state_of(LinkId link) const {
    return link_state[static_cast<std::size_t>(link)];
  }

  // --- per-phase element behaviour ---------------------------------------

  void reset_iteration_marks() {
    for (NsElement& ns : nss) ns.reset();
    for (RqElement& rq : rqs) rq.res_passed = false;
    for (RsElement& rs : rss) rs.accepted = false;
  }

  /// RQs launch request tokens (entry into kReq).
  void launch_requests() {
    for (RqElement& rq : rqs) {
      if (!rq.pending || rq.bonded || rq.link == kInvalidId) continue;
      if (state_of(rq.link) != LState::kFree) continue;
      drive(rq.link, Signal::kReqForward, /*from_end=*/true);
      bus_now |= kRequestTokenPhase;
    }
  }

  /// Handles all request-token deliveries of this clock.
  void deliver_request_tokens() {
    // Group arrivals per switch so the first-batch rule sees them together.
    std::map<topo::SwitchId, std::vector<std::size_t>> ns_arrivals;
    for (LinkId l = 0; l < net.link_count(); ++l) {
      const Wire& wire = wires_now[static_cast<std::size_t>(l)];
      if (wire.signal != Signal::kReqForward &&
          wire.signal != Signal::kReqBackward) {
        continue;
      }
      const bool forward = wire.signal == Signal::kReqForward;
      const topo::PortRef& receiver_ref =
          forward ? net.link(l).to : net.link(l).from;
      switch (receiver_ref.kind) {
        case NodeKind::kSwitch: {
          NsElement& ns = nss[static_cast<std::size_t>(receiver_ref.node)];
          for (std::size_t i = 0; i < ns.ports.size(); ++i) {
            if (ns.ports[i].link == l) {
              ns_arrivals[receiver_ref.node].push_back(i);
              break;
            }
          }
          break;
        }
        case NodeKind::kResource: {
          RsElement& rs = rss[static_cast<std::size_t>(receiver_ref.node)];
          if (rs.ready && !rs.bonded && !rs.accepted) {
            rs.accepted = true;
            bus_now |= kResourceReached;  // E6
          }
          break;
        }
        case NodeKind::kProcessor:
          break;  // backward token absorbed by a bonded RQ
      }
    }

    for (auto& [sw, arrivals] : ns_arrivals) {
      NsElement& ns = nss[static_cast<std::size_t>(sw)];
      if (ns.visited) continue;  // not the first batch: tokens discarded
      ns.visited = true;
      for (const std::size_t i : arrivals) ns.ports[i].recv_request = true;
      // Duplicate: forward onto free output ports, backward onto
      // registered input ports (ports already carrying a mark excluded).
      for (Port& port : ns.ports) {
        if (port.recv_request || port.sent_request) continue;
        if (!port.is_in && state_of(port.link) == LState::kFree) {
          port.sent_request = true;
          drive(port.link, Signal::kReqForward, /*from_end=*/true);
          bus_now |= kRequestTokenPhase;
        } else if (port.is_in && state_of(port.link) == LState::kRegistered) {
          port.sent_request = true;
          drive(port.link, Signal::kReqBackward, /*from_end=*/false);
          bus_now |= kRequestTokenPhase;
        }
      }
    }
  }

  /// RSs answer accepted request tokens (entry into kRes).
  void launch_resource_tokens() {
    for (RsElement& rs : rss) {
      if (!rs.accepted) continue;
      // The RS is its link's to-end; the token retraces toward the fabric.
      drive(rs.link, Signal::kResToken, /*from_end=*/false);
      bus_now |= kResourceTokenPhase;
    }
  }

  /// Forwards a resource token that entered `ns` via port `entry`: picks an
  /// unreserved accepted port as the exit, or backtracks.
  void route_resource_token(NsElement& ns, std::size_t entry) {
    Port& in_port = ns.ports[entry];
    in_port.res_passed = true;
    for (std::size_t i = 0; i < ns.ports.size(); ++i) {
      Port& exit = ns.ports[i];
      if (!exit.recv_request || exit.cleared || exit.reserved) continue;
      exit.reserved = true;
      exit.arrival = static_cast<int>(entry);
      // The exit drives away from this NS: from-end when the port is an
      // out port, to-end when it is an in port (cancellation retrace).
      drive(exit.link, Signal::kResToken, /*from_end=*/!exit.is_in);
      bus_now |= kResourceTokenPhase;
      return;
    }
    // Dead end: retreat over the entry port, clearing its mark. This NS is
    // the link's from-end exactly when the port is an out port.
    in_port.res_passed = false;
    in_port.sent_request = false;
    drive(in_port.link, Signal::kResBacktrack, /*from_end=*/!in_port.is_in);
    bus_now |= kResourceTokenPhase;
  }

  /// Handles all resource-token / backtrack deliveries of this clock.
  void deliver_resource_tokens() {
    for (LinkId l = 0; l < net.link_count(); ++l) {
      const Wire& wire = wires_now[static_cast<std::size_t>(l)];
      if (wire.signal != Signal::kResToken &&
          wire.signal != Signal::kResBacktrack) {
        continue;
      }
      const topo::PortRef& receiver_ref =
          wire.driven_by_from ? net.link(l).to : net.link(l).from;
      switch (receiver_ref.kind) {
        case NodeKind::kProcessor: {
          RSIN_ENSURE(wire.signal == Signal::kResToken,
                      "backtrack delivered to an RQ");
          RqElement& rq = rqs[static_cast<std::size_t>(receiver_ref.node)];
          rq.bonded = true;
          rq.res_passed = true;
          break;
        }
        case NodeKind::kResource: {
          RSIN_ENSURE(wire.signal == Signal::kResBacktrack,
                      "resource token delivered back to an RS");
          rss[static_cast<std::size_t>(receiver_ref.node)].accepted = false;
          break;
        }
        case NodeKind::kSwitch: {
          NsElement& ns = nss[static_cast<std::size_t>(receiver_ref.node)];
          std::size_t index = ns.ports.size();
          for (std::size_t i = 0; i < ns.ports.size(); ++i) {
            if (ns.ports[i].link == l) {
              index = i;
              break;
            }
          }
          RSIN_ENSURE(index < ns.ports.size(), "token on an unknown port");
          if (wire.signal == Signal::kResToken) {
            route_resource_token(ns, index);
          } else {
            // Backtrack arrived on an exit we reserved: clear it and try
            // another exit for the token (whose arrival port we remember).
            Port& exit = ns.ports[index];
            RSIN_ENSURE(exit.reserved && exit.arrival >= 0,
                        "backtrack on an unreserved port");
            const auto entry = static_cast<std::size_t>(exit.arrival);
            exit.reserved = false;
            exit.cleared = true;
            exit.arrival = -1;
            route_resource_token(ns, entry);
          }
          break;
        }
      }
    }
  }

  /// Path registration: every request-token sender toggles links a
  /// surviving resource token passed over; RSs whose token never came back
  /// bond.
  void register_paths() {
    bus_now |= kPathRegistration;
    for (RqElement& rq : rqs) {
      if (rq.res_passed) {
        link_state[static_cast<std::size_t>(rq.link)] = LState::kRegistered;
        rq.res_passed = false;
      }
    }
    for (NsElement& ns : nss) {
      for (Port& port : ns.ports) {
        if (!port.sent_request || !port.res_passed) continue;
        auto& state = link_state[static_cast<std::size_t>(port.link)];
        if (port.is_in) {
          RSIN_ENSURE(state == LState::kRegistered,
                      "cancellation of a non-registered link");
          state = LState::kFree;
        } else {
          RSIN_ENSURE(state == LState::kFree,
                      "registration of a non-free link");
          state = LState::kRegistered;
        }
      }
    }
    for (RsElement& rs : rss) {
      if (rs.accepted) {
        rs.bonded = true;
        rs.accepted = false;
      }
    }
  }

  // --- the clock loop -----------------------------------------------------

  [[nodiscard]] std::uint8_t static_bus_bits() const {
    std::uint8_t bits = 0;
    for (const RqElement& rq : rqs) {
      if (rq.pending && !rq.bonded) bits |= kRequestPending;
      if (rq.bonded) bits |= kBonded;
    }
    for (const RsElement& rs : rss) {
      if (rs.ready && !rs.bonded) bits |= kResourceReady;
    }
    return bits;
  }

  core::ScheduleResult run(ElementStats* stats_out) {
    stats = stats_out;
    bus_prev = static_bus_bits();
    if (stats) {
      stats->bus_trace.push_back(BusSample{0, bus_prev, "idle"});
    }

    // Watchdog bound: every phase makes progress within a few clocks per
    // link, and there are at most min(P, R) iterations.
    const std::int64_t limit =
        max_clock_periods > 0
            ? max_clock_periods
            : 64 + 8 * static_cast<std::int64_t>(net.link_count()) *
                       (1 + std::min(net.processor_count(),
                                     net.resource_count()));

    while (phase != Phase::kDone) {
      RSIN_ENSURE(clock < limit,
                  "element machine failed to converge: clock " +
                      std::to_string(clock) + " reached the budget of " +
                      std::to_string(limit) + " periods in phase '" +
                      phase_name(phase) + "' (links=" +
                      std::to_string(net.link_count()) + ", processors=" +
                      std::to_string(net.processor_count()) + ", resources=" +
                      std::to_string(net.resource_count()) +
                      ", faulty links=" +
                      std::to_string(net.faulty_link_count()) + ")");
      ++clock;
      if (stats) ++stats->clock_periods;

      const Phase previous = phase;
      phase = next_phase(phase, bus_prev);
      (void)previous;
      if (phase == Phase::kIdle) break;  // nothing to schedule
      const bool entering = phase != previous;

      std::swap(wires_now, wires_next);
      for (Wire& wire : wires_next) wire = Wire{};
      bus_now = static_bus_bits();

      switch (phase) {
        case Phase::kReq:
          if (entering) {
            reset_iteration_marks();
            if (stats && previous == Phase::kReg) ++stats->iterations;
            launch_requests();
          } else {
            deliver_request_tokens();
          }
          break;
        case Phase::kSettle:
          bus_now |= kResourceReached;
          break;
        case Phase::kRes:
          if (entering) {
            launch_resource_tokens();
          } else {
            deliver_resource_tokens();
          }
          break;
        case Phase::kReg:
          register_paths();
          if (stats) ++stats->iterations;
          break;
        case Phase::kAlloc:
        case Phase::kIdle:
        case Phase::kDone:
          break;
      }

      bus_prev = bus_now;
      if (stats) {
        stats->bus_trace.push_back(BusSample{clock, bus_now,
                                             phase_name(phase)});
      }
    }

    // Extraction: registered links + bonded terminals.
    std::vector<std::uint8_t> registered(
        static_cast<std::size_t>(net.link_count()), 0);
    for (LinkId l = 0; l < net.link_count(); ++l) {
      registered[static_cast<std::size_t>(l)] =
          link_state[static_cast<std::size_t>(l)] == LState::kRegistered ? 1
                                                                         : 0;
    }
    std::vector<std::uint8_t> rq_bonded(rqs.size(), 0);
    for (std::size_t p = 0; p < rqs.size(); ++p) {
      rq_bonded[p] = rqs[p].bonded ? 1 : 0;
    }
    std::vector<std::uint8_t> rs_bonded(rss.size(), 0);
    for (std::size_t r = 0; r < rss.size(); ++r) {
      rs_bonded[r] = rss[r].bonded ? 1 : 0;
    }
    return trace_registered_circuits(problem, registered, rq_bonded,
                                     rs_bonded);
  }
};

ElementMachine::ElementMachine(const core::Problem& problem,
                               std::int64_t max_clock_periods)
    : problem_(problem), max_clock_periods_(max_clock_periods) {
  problem.validate();
  RSIN_REQUIRE(problem.types().size() <= 1,
               "the element machine implements the homogeneous no-priority "
               "discipline (Section IV-B)");
  RSIN_REQUIRE(max_clock_periods_ >= 0, "clock budget must be non-negative");
}

core::ScheduleResult ElementMachine::run(ElementStats* stats) {
  Impl impl(problem_);
  impl.max_clock_periods = max_clock_periods_;
  return impl.run(stats);
}

}  // namespace rsin::token
