// First-order hardware cost model for the distributed architecture.
//
// Section IV-B closes with: "a distributed process at an NS, RQ, or RS does
// nothing but distribute the token according to the global status and local
// conditions. It can be realized easily by a finite-state machine ... The
// design has a very low gate count and a very short token propagation
// delay." This model quantifies that claim so bench_hardware_cost can show
// the per-switch overhead is a small constant and the total grows linearly
// with the fabric (n log n elements for an n x n MIN), while the monitor
// architecture needs a full processor plus status memory.
//
// Constants are first-order estimates, documented rather than synthesized:
//   * one marking flip-flop per switch port (the paper's "bit array
//     associated with each port"), plus one reservation flip-flop per port
//     for the resource-token phase;
//   * a 3-bit state register per element (the phases of Fig. 10 an element
//     must distinguish locally);
//   * ~6 combinational gates per port for the duplication/backtrack rules
//     and ~10 per element of glue;
//   * one wired-OR bus tap per Table-I event the element drives (3 for
//     each of RQ, RS, NS).
#pragma once

#include <cstdint>

#include "topo/network.hpp"

namespace rsin::token {

struct HardwareCost {
  std::int64_t elements = 0;   ///< RQs + RSs + NSs.
  std::int64_t registers = 0;  ///< Flip-flops (state + markings).
  std::int64_t gates = 0;      ///< Combinational gate estimate.
  std::int64_t bus_taps = 0;   ///< Wired-OR connections to the status bus.
};

/// Per-element model constants (exposed for the tests and the bench).
struct HardwareModel {
  std::int32_t state_bits = 3;
  std::int32_t flops_per_port = 2;   // marking + reservation
  std::int32_t gates_per_port = 6;
  std::int32_t gates_per_element = 10;
  std::int32_t bus_taps_per_element = 3;
};

/// Totals for a network: one NS per switchbox (ports = its in + out), one
/// RQ per processor (1 port), one RS per resource (1 port).
HardwareCost estimate_hardware(const topo::Network& net,
                               const HardwareModel& model = {});

}  // namespace rsin::token
