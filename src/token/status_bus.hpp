// The seven-bit wired-OR status bus of Section IV-B(3) / Table I.
//
// Each bit is the logical OR of one status bit per participating element;
// the bus value therefore encodes the global phase of the distributed
// machine, and every element can react to a phase change in a single clock.
// Bit assignments follow Table I (E1 is the MSB, E7 the LSB):
//
//   bit 6  E1  request pending                (RQs)
//   bit 5  E2  resource ready                 (RSs)
//   bit 4  E3  request-token propagation      (RQs, NSs)
//   bit 3  E4  resource-token propagation     (RSs, NSs)
//   bit 2  E5  path registration              (NSs)
//   bit 1  E6  an RS has received a token     (RSs)
//   bit 0  E7  an RQ is bonded to an RS       (RQs)
//
// The paper's example vectors — request-token propagation reads 111000x,
// the E6 handshake 111001x, resource-token propagation 110100x, path
// registration 110110x — are reproduced by TokenMachine's bus trace and
// asserted in the tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rsin::token {

enum BusBit : std::uint8_t {
  kRequestPending = 1u << 6,       // E1
  kResourceReady = 1u << 5,        // E2
  kRequestTokenPhase = 1u << 4,    // E3
  kResourceTokenPhase = 1u << 3,   // E4
  kPathRegistration = 1u << 2,     // E5
  kResourceReached = 1u << 1,      // E6
  kBonded = 1u << 0,               // E7
};

/// One observed bus state with the clock period at which it appeared.
struct BusSample {
  std::int64_t clock = 0;
  std::uint8_t bits = 0;
  std::string label;  ///< Human-readable phase name for traces.
};

/// Renders bits as the paper's 7-character vector, e.g. "1110001".
std::string bus_vector(std::uint8_t bits);

/// Renders with the LSB (E7) shown as the paper's don't-care 'x'.
std::string bus_vector_x(std::uint8_t bits);

}  // namespace rsin::token
