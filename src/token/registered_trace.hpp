// Shared end-of-cycle extraction for the two distributed-machine
// implementations: registered links form link-disjoint processor->resource
// paths (flow conservation at every switch), which this helper traces into
// a realizable schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "core/problem.hpp"
#include "core/schedule.hpp"

namespace rsin::token {

/// `link_registered[l]` marks the links carrying allocated circuits;
/// `rq_bonded` / `rs_bonded` are indexed by processor / resource id.
core::ScheduleResult trace_registered_circuits(
    const core::Problem& problem,
    const std::vector<std::uint8_t>& link_registered,
    const std::vector<std::uint8_t>& rq_bonded,
    const std::vector<std::uint8_t>& rs_bonded);

}  // namespace rsin::token
