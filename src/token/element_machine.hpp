// Element-local realization of the distributed MRSIN (Section IV-B).
//
// TokenMachine (token_machine.hpp) simulates the token-propagation
// *algorithm* with a global orchestrator for the phases. This second
// implementation goes one level lower and realizes the paper's actual
// hardware claim: every request server (RQ), resource server (RS), and
// switchbox process (NS) is an autonomous finite-state machine that sees
// only
//   * the signals on its own ports (anonymous tokens: "a token can simply
//     be represented by a signal ... It carries neither identification nor
//     other information"), and
//   * the 7-bit wired-OR status bus of Table I,
// and the whole machine advances on a synchronous clock: at clock k every
// element reads the wires and bus values latched at k-1 and drives its
// outputs, whose OR becomes the bus value of clock k.
//
// Local state per NS is exactly what the paper requires: a marking bit per
// port, a reservation/pairing register (which is simultaneously the final
// switch setting), and a small phase register driven by bus transitions
// (Fig. 10). No element ever inspects another element's state.
//
// The tests check this machine against TokenMachine and against
// Transformation 1 + Dinic on randomized instances: all three must
// allocate the same number of resources.
#pragma once

#include <cstdint>
#include <vector>

#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "core/scheduler.hpp"
#include "token/status_bus.hpp"

namespace rsin::token {

struct ElementStats {
  std::int64_t clock_periods = 0;
  std::int64_t iterations = 0;       ///< Completed scheduling iterations.
  std::int64_t signals_driven = 0;   ///< Wire transitions (token hops).
  std::vector<BusSample> bus_trace;  ///< Latched bus value per clock.
};

class ElementMachine {
 public:
  /// `max_clock_periods` bounds one scheduling cycle; 0 derives the bound
  /// from the network size. Elements are always fault-aware here (faulty
  /// links read as occupied), so exceeding the bound is a convergence bug
  /// and run() throws a diagnosable error rather than spinning.
  explicit ElementMachine(const core::Problem& problem,
                          std::int64_t max_clock_periods = 0);

  /// Runs one scheduling cycle to completion (bounded by the clock limit;
  /// exceeding it throws std::logic_error with the machine state summary).
  core::ScheduleResult run(ElementStats* stats = nullptr);

 private:
  struct Impl;
  const core::Problem& problem_;
  std::int64_t max_clock_periods_;
};

/// Scheduler adapter for the element-local machine.
class ElementScheduler final : public core::Scheduler {
 public:
  [[nodiscard]] std::string name() const override {
    return "token-machine(element-local)";
  }
  core::ScheduleResult schedule(const core::Problem& problem) override {
    ElementMachine machine(problem);
    ElementStats stats;
    core::ScheduleResult result = machine.run(&stats);
    result.operations = stats.clock_periods;
    return result;
  }
};

}  // namespace rsin::token
