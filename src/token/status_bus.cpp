#include "token/status_bus.hpp"

namespace rsin::token {

std::string bus_vector(std::uint8_t bits) {
  std::string out(7, '0');
  for (int b = 0; b < 7; ++b) {
    if (bits & (1u << (6 - b))) out[static_cast<std::size_t>(b)] = '1';
  }
  return out;
}

std::string bus_vector_x(std::uint8_t bits) {
  std::string out = bus_vector(bits);
  out.back() = 'x';
  return out;
}

}  // namespace rsin::token
