#include "token/token_machine.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace rsin::token {

using topo::kInvalidId;
using topo::LinkId;
using topo::NodeKind;

TokenMachine::TokenMachine(const core::Problem& problem, TokenOptions options)
    : problem_(problem), net_(*problem.network), options_(options) {
  problem.validate();
  RSIN_REQUIRE(problem.types().size() <= 1,
               "the token architecture implements the homogeneous "
               "no-priority discipline (Section IV-B)");
  RSIN_REQUIRE(options_.max_clock_periods >= 0,
               "clock budget must be non-negative");
  // Watchdog budget: every phase makes progress within a few clocks per
  // link, and there are at most min(P, R) augmenting iterations.
  clock_budget_ =
      options_.max_clock_periods > 0
          ? options_.max_clock_periods
          : 64 + 8 * static_cast<std::int64_t>(net_.link_count()) *
                     (1 + std::min(net_.processor_count(),
                                   net_.resource_count()));
}

bool TokenMachine::charge_clock(std::int64_t periods, const char* phase) {
  clock_used_ += periods;
  if (aborted_ || clock_used_ <= clock_budget_) return !aborted_;
  // Budget exhausted on a healthy, fault-aware machine: that is a library
  // bug, not a fault condition — fail loudly and diagnosably.
  RSIN_ENSURE(!(options_.fault_aware && net_.fault_free()),
              "token machine exceeded its clock budget (" +
                  std::to_string(clock_used_) + " > " +
                  std::to_string(clock_budget_) + " periods) in the " +
                  phase + " phase on a fault-free network");
  aborted_ = true;
  abort_phase_ = phase;
  return false;
}

TokenMachine::Element TokenMachine::link_sender(LinkId link,
                                                Traversal t) const {
  const topo::Link& l = net_.link(link);
  // Forward = the request token moved from the link's from-endpoint to its
  // to-endpoint; backward = the reverse (a cancellation move).
  const topo::PortRef& ref = t == Traversal::kBackward ? l.to : l.from;
  return Element{ref.kind, ref.node};
}

TokenMachine::Element TokenMachine::link_receiver(LinkId link,
                                                  Traversal t) const {
  const topo::Link& l = net_.link(link);
  const topo::PortRef& ref = t == Traversal::kBackward ? l.from : l.to;
  return Element{ref.kind, ref.node};
}

void TokenMachine::start_cycle() {
  link_state_.assign(static_cast<std::size_t>(net_.link_count()),
                     LinkState::kFree);
  for (LinkId l = 0; l < net_.link_count(); ++l) {
    // Fault-aware elements treat faulty links as occupied (fault masking);
    // unaware elements see only the physical occupancy, so tokens may be
    // launched into failed hardware and vanish (watchdog territory).
    const bool unusable = options_.fault_aware ? !net_.link_free(l)
                                               : net_.link(l).occupied;
    if (unusable) {
      link_state_[static_cast<std::size_t>(l)] = LinkState::kOccupied;
    }
  }
  rq_pending_.assign(static_cast<std::size_t>(net_.processor_count()), 0);
  rq_bonded_.assign(static_cast<std::size_t>(net_.processor_count()), 0);
  for (const core::Request& request : problem_.requests) {
    rq_pending_[static_cast<std::size_t>(request.processor)] = 1;
  }
  rs_ready_.assign(static_cast<std::size_t>(net_.resource_count()), 0);
  rs_bonded_.assign(static_cast<std::size_t>(net_.resource_count()), 0);
  for (const core::FreeResource& resource : problem_.free_resources) {
    rs_ready_[static_cast<std::size_t>(resource.resource)] = 1;
  }
}

std::uint8_t TokenMachine::bus_bits(bool e3, bool e4, bool e5,
                                    bool e6) const {
  std::uint8_t bits = 0;
  for (std::size_t p = 0; p < rq_pending_.size(); ++p) {
    if (rq_pending_[p] && !rq_bonded_[p]) {
      bits |= kRequestPending;
      break;
    }
  }
  for (std::size_t r = 0; r < rs_ready_.size(); ++r) {
    if (rs_ready_[r] && !rs_bonded_[r]) {
      bits |= kResourceReady;
      break;
    }
  }
  if (e3) bits |= kRequestTokenPhase;
  if (e4) bits |= kResourceTokenPhase;
  if (e5) bits |= kPathRegistration;
  if (e6) bits |= kResourceReached;
  for (const char bonded : rq_bonded_) {
    if (bonded) {
      bits |= kBonded;
      break;
    }
  }
  return bits;
}

void TokenMachine::sample_bus(TokenStats* stats, std::int64_t clock, bool e3,
                              bool e4, bool e5, bool e6,
                              const std::string& label) const {
  if (!stats) return;
  stats->bus_trace.push_back(BusSample{clock, bus_bits(e3, e4, e5, e6), label});
}

std::vector<topo::ResourceId> TokenMachine::request_token_phase(
    TokenStats* stats) {
  traversed_.assign(static_cast<std::size_t>(net_.link_count()),
                    Traversal::kNone);
  recv_accepted_.assign(static_cast<std::size_t>(net_.link_count()), 0);
  cleared_.assign(static_cast<std::size_t>(net_.link_count()), 0);
  reserved_.assign(static_cast<std::size_t>(net_.link_count()), 0);

  std::vector<char> visited_switch(
      static_cast<std::size_t>(net_.switch_count()), 0);
  std::vector<topo::ResourceId> reached;

  // Clock 0: every pending, unbonded RQ with a free output link launches a
  // request token onto that link.
  std::vector<LinkId> in_flight;
  for (std::size_t p = 0; p < rq_pending_.size(); ++p) {
    if (!rq_pending_[p] || rq_bonded_[p]) continue;
    const LinkId l = net_.processor_link(static_cast<topo::ProcessorId>(p));
    if (l == kInvalidId || link_state_[static_cast<std::size_t>(l)] !=
                               LinkState::kFree) {
      continue;
    }
    traversed_[static_cast<std::size_t>(l)] = Traversal::kForward;
    in_flight.push_back(l);
  }

  while (!in_flight.empty() && reached.empty()) {
    if (!charge_clock(1, "request-token")) break;
    if (stats) {
      ++stats->clock_periods;
      stats->tokens_propagated +=
          static_cast<std::int64_t>(in_flight.size());
    }
    // Group this clock's arrivals by receiving element (deterministic order
    // via map) so the "first batch" rule is applied per element.
    std::map<std::pair<int, std::int32_t>, std::vector<LinkId>> arrivals;
    for (const LinkId l : in_flight) {
      if (!options_.fault_aware && net_.link_faulty(l)) {
        // Fault-unaware regime: the token was launched into failed
        // hardware and is silently swallowed — nothing acknowledges it.
        ++lost_tokens_;
        continue;
      }
      const Element receiver =
          link_receiver(l, traversed_[static_cast<std::size_t>(l)]);
      arrivals[{static_cast<int>(receiver.kind), receiver.index}].push_back(l);
    }
    in_flight.clear();

    for (const auto& [key, links] : arrivals) {
      const auto kind = static_cast<NodeKind>(key.first);
      const std::int32_t index = key.second;
      switch (kind) {
        case NodeKind::kSwitch: {
          if (visited_switch[static_cast<std::size_t>(index)]) break;
          visited_switch[static_cast<std::size_t>(index)] = 1;
          for (const LinkId l : links) {
            recv_accepted_[static_cast<std::size_t>(l)] = 1;
          }
          // Duplicate onto free output ports (forward) and registered
          // input ports (backward / cancellation).
          for (const LinkId out : net_.switch_out_links(index)) {
            if (out == kInvalidId) continue;
            if (link_state_[static_cast<std::size_t>(out)] !=
                    LinkState::kFree ||
                traversed_[static_cast<std::size_t>(out)] !=
                    Traversal::kNone) {
              continue;
            }
            traversed_[static_cast<std::size_t>(out)] = Traversal::kForward;
            in_flight.push_back(out);
          }
          for (const LinkId in : net_.switch_in_links(index)) {
            if (in == kInvalidId) continue;
            if (link_state_[static_cast<std::size_t>(in)] !=
                    LinkState::kRegistered ||
                traversed_[static_cast<std::size_t>(in)] != Traversal::kNone) {
              continue;
            }
            traversed_[static_cast<std::size_t>(in)] = Traversal::kBackward;
            in_flight.push_back(in);
          }
          break;
        }
        case NodeKind::kResource: {
          if (!rs_ready_[static_cast<std::size_t>(index)] ||
              rs_bonded_[static_cast<std::size_t>(index)]) {
            break;  // busy resource: token dies
          }
          for (const LinkId l : links) {
            recv_accepted_[static_cast<std::size_t>(l)] = 1;
          }
          reached.push_back(index);
          break;
        }
        case NodeKind::kProcessor:
          // A token propagated backward to a bonded RQ is absorbed.
          break;
      }
    }
  }
  std::sort(reached.begin(), reached.end());
  return reached;
}

std::vector<TokenMachine::FoundPath> TokenMachine::resource_token_phase(
    const std::vector<topo::ResourceId>& reached, TokenStats* stats) {
  struct ResourceToken {
    topo::ResourceId origin;
    Element at;
    std::vector<LinkId> stack;
    bool active = true;
    bool lost = false;  ///< Swallowed by failed hardware; never completes.
  };

  std::vector<ResourceToken> tokens;
  tokens.reserve(reached.size());
  for (const topo::ResourceId r : reached) {
    tokens.push_back(
        ResourceToken{r, Element{NodeKind::kResource, r}, {}, true, false});
  }

  std::vector<FoundPath> found;
  bool any_active = !tokens.empty();
  while (any_active) {
    if (!charge_clock(1, "resource-token")) break;
    if (stats) ++stats->clock_periods;
    any_active = false;
    for (ResourceToken& token : tokens) {
      if (!token.active) continue;
      any_active = true;
      // A lost token never returns and never acknowledges: its RS keeps
      // waiting, so the phase would spin forever — this is exactly the
      // stuck-bus condition the clock budget bounds.
      if (token.lost) continue;

      // Candidate exits from the current element: links whose request
      // token was *accepted* here, not cleared by a backtrack, and not
      // already claimed by another resource token.
      LinkId exit = kInvalidId;
      const auto usable = [&](LinkId l) {
        const auto i = static_cast<std::size_t>(l);
        if (l == kInvalidId || traversed_[i] == Traversal::kNone) return false;
        if (!recv_accepted_[i] || cleared_[i] || reserved_[i]) return false;
        const Element receiver = link_receiver(l, traversed_[i]);
        return receiver.kind == token.at.kind &&
               receiver.index == token.at.index;
      };
      if (token.at.kind == NodeKind::kResource) {
        const LinkId l = net_.resource_link(token.at.index);
        if (usable(l)) exit = l;
      } else {
        for (const LinkId l : net_.switch_in_links(token.at.index)) {
          if (usable(l)) {
            exit = l;
            break;
          }
        }
        // Backward-traversed request tokens leave a switch through an
        // *output* port (they arrived there cancelling a registered link),
        // so those ports are also legal resource-token exits.
        if (exit == kInvalidId) {
          for (const LinkId l : net_.switch_out_links(token.at.index)) {
            if (usable(l)) {
              exit = l;
              break;
            }
          }
        }
      }

      if (exit != kInvalidId) {
        if (!options_.fault_aware && net_.link_faulty(exit)) {
          // The token is sent into failed hardware: no grant ever comes
          // back, so it stays active-but-lost.
          token.lost = true;
          ++lost_tokens_;
          continue;
        }
        reserved_[static_cast<std::size_t>(exit)] = 1;
        token.stack.push_back(exit);
        token.at =
            link_sender(exit, traversed_[static_cast<std::size_t>(exit)]);
        if (stats) ++stats->tokens_propagated;
        if (token.at.kind == NodeKind::kProcessor) {
          // Success: bond RQ and RS, record the path.
          rq_bonded_[static_cast<std::size_t>(token.at.index)] = 1;
          rs_bonded_[static_cast<std::size_t>(token.origin)] = 1;
          found.push_back(
              FoundPath{token.origin, token.at.index, token.stack});
          token.active = false;
        }
        continue;
      }

      // Dead end: backtrack one link, clearing its marking so no other
      // token repeats the attempt.
      if (token.stack.empty()) {
        token.active = false;  // returned to its RS: discarded
        continue;
      }
      const LinkId back = token.stack.back();
      token.stack.pop_back();
      cleared_[static_cast<std::size_t>(back)] = 1;
      reserved_[static_cast<std::size_t>(back)] = 0;
      token.at = link_receiver(back, traversed_[static_cast<std::size_t>(back)]);
      if (stats) ++stats->tokens_propagated;
    }
  }
  return found;
}

void TokenMachine::register_paths(const std::vector<FoundPath>& paths) {
  for (const FoundPath& path : paths) {
    for (const LinkId l : path.links) {
      const auto i = static_cast<std::size_t>(l);
      switch (traversed_[i]) {
        case Traversal::kForward:
          RSIN_ENSURE(link_state_[i] == LinkState::kFree,
                      "forward registration over a non-free link");
          link_state_[i] = LinkState::kRegistered;
          break;
        case Traversal::kBackward:
          RSIN_ENSURE(link_state_[i] == LinkState::kRegistered,
                      "cancellation of a non-registered link");
          link_state_[i] = LinkState::kFree;
          break;
        case Traversal::kNone:
          RSIN_ENSURE(false, "registered path uses an untraversed link");
      }
    }
  }
}

core::ScheduleResult TokenMachine::trace_circuits() const {
  // Registered links form link-disjoint processor->resource paths (flow
  // conservation at every switch); trace them greedily.
  std::vector<char> consumed(static_cast<std::size_t>(net_.link_count()), 0);
  core::ScheduleResult result;

  for (const core::Request& request : problem_.requests) {
    if (!rq_bonded_[static_cast<std::size_t>(request.processor)]) continue;
    const LinkId start = net_.processor_link(request.processor);
    RSIN_ENSURE(start != kInvalidId &&
                    link_state_[static_cast<std::size_t>(start)] ==
                        LinkState::kRegistered,
                "bonded RQ without a registered output link");
    topo::Circuit circuit;
    circuit.processor = request.processor;
    circuit.links.push_back(start);
    consumed[static_cast<std::size_t>(start)] = 1;
    topo::PortRef at = net_.link(start).to;
    while (at.kind == NodeKind::kSwitch) {
      bool advanced = false;
      for (const LinkId out : net_.switch_out_links(at.node)) {
        if (out == kInvalidId) continue;
        const auto i = static_cast<std::size_t>(out);
        if (link_state_[i] != LinkState::kRegistered || consumed[i]) continue;
        consumed[i] = 1;
        circuit.links.push_back(out);
        at = net_.link(out).to;
        advanced = true;
        break;
      }
      RSIN_ENSURE(advanced, "registered-link conservation violated");
    }
    RSIN_ENSURE(at.kind == NodeKind::kResource,
                "registered path must end at a resource");
    circuit.resource = at.node;
    RSIN_ENSURE(rs_bonded_[static_cast<std::size_t>(at.node)],
                "registered path ends at an unbonded resource");

    core::Assignment assignment;
    assignment.request = request;
    const auto resource_it = std::find_if(
        problem_.free_resources.begin(), problem_.free_resources.end(),
        [&](const core::FreeResource& r) { return r.resource == at.node; });
    RSIN_ENSURE(resource_it != problem_.free_resources.end(),
                "bonded resource not in the free set");
    assignment.resource = *resource_it;
    assignment.circuit = std::move(circuit);
    result.assignments.push_back(std::move(assignment));
  }
  result.cost = core::schedule_cost(problem_, result);
  return result;
}

core::ScheduleResult TokenMachine::run(TokenStats* stats) {
  start_cycle();
  std::int64_t clock = 0;
  sample_bus(stats, clock, false, false, false, false, "idle/pending");

  while (true) {
    // Request-token propagation (E3).
    sample_bus(stats, clock, true, false, false, false,
               "request-token propagation");
    const std::int64_t before = stats ? stats->clock_periods : 0;
    const std::vector<topo::ResourceId> reached = request_token_phase(stats);
    clock += stats ? stats->clock_periods - before : 0;
    if (aborted_) break;
    if (reached.empty()) break;  // no augmenting path: cycle complete
    if (stats) ++stats->iterations;

    // An RS raises E6; the machine holds one clock so tokens settle.
    if (stats) ++stats->clock_periods;
    ++clock;
    if (!charge_clock(1, "E6 settle")) break;
    sample_bus(stats, clock, true, false, false, true, "RS reached (E6)");

    // Resource-token propagation (E4).
    sample_bus(stats, clock, false, true, false, false,
               "resource-token propagation");
    const std::int64_t before2 = stats ? stats->clock_periods : 0;
    const std::vector<FoundPath> paths = resource_token_phase(reached, stats);
    clock += stats ? stats->clock_periods - before2 : 0;
    // The guarantee (Theorem 4) only holds for completed, healthy phases;
    // an aborted phase may legitimately return nothing.
    RSIN_ENSURE(aborted_ || !paths.empty(),
                "a reached RS guarantees at least one augmenting path");

    // Path registration (E5): one clock. Paths found before an abort are
    // already bonded, so they must still be registered — trace_circuits()
    // depends on every bonded RQ owning a registered chain.
    sample_bus(stats, clock, false, true, true, false, "path registration");
    register_paths(paths);
    if (stats) ++stats->clock_periods;
    ++clock;
    if (aborted_ || !charge_clock(1, "path registration")) break;
  }

  sample_bus(stats, clock, false, false, false, false,
             aborted_ ? "watchdog abort" : "allocation/bonded");
  if (stats) {
    stats->watchdog_fired = aborted_;
    stats->lost_tokens = lost_tokens_;
    if (aborted_) {
      stats->watchdog_reason =
          "clock budget (" + std::to_string(clock_budget_) +
          " periods) exhausted in the " + abort_phase_ + " phase";
      if (lost_tokens_ > 0) {
        stats->watchdog_reason +=
            " with " + std::to_string(lost_tokens_) + " lost token(s)";
      }
    }
  }
  return trace_circuits();
}

}  // namespace rsin::token
