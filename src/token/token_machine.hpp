// Clock-accurate simulation of the distributed MRSIN architecture
// (Section IV-B of the paper).
//
// The machine realizes Dinic's max-flow algorithm with anonymous tokens:
//
//  * request-token propagation — every pending RQ floods a token into the
//    fabric; NSs duplicate onto free output ports (forward) and registered
//    input ports (backward = flow cancellation), accepting only the first
//    batch. The set of markings after this phase IS the layered network
//    (Theorem 4).
//  * resource-token propagation — each reached RS sends one token back
//    through marked ports; tokens are never duplicated, collide one-per-
//    port, and backtrack (clearing markings) at dead ends. The surviving
//    token paths are a maximal flow of the layered network.
//  * path registration — surviving paths toggle link state (free <->
//    registered), i.e. the flow augmentation; touched RQ/RS pairs bond.
//
// Iterations repeat until request tokens reach no RS; registered links then
// become occupied circuits. The result provably allocates the same number
// of resources as Transformation 1 + max-flow (tested property), while the
// cost is measured in *clock periods* (token hops are gate-delay class)
// rather than the instruction count of the centralized monitor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "core/scheduler.hpp"
#include "token/status_bus.hpp"

namespace rsin::token {

/// Statistics of one scheduling cycle of the distributed machine.
struct TokenStats {
  std::int64_t iterations = 0;     ///< Layered-network build/augment rounds.
  std::int64_t clock_periods = 0;  ///< Total synchronized clock ticks.
  std::int64_t tokens_propagated = 0;  ///< Individual link traversals.
  std::vector<BusSample> bus_trace;    ///< Status-bus states (Fig. 10).
  // Watchdog diagnosis (see TokenOptions).
  bool watchdog_fired = false;      ///< The cycle was aborted by the budget.
  std::int64_t lost_tokens = 0;     ///< Tokens swallowed by faulty elements.
  std::string watchdog_reason;      ///< Human-readable abort condition.
};

/// Fault behaviour of one scheduling cycle.
struct TokenOptions {
  /// Fault-aware elements see faulty links as occupied (the detected-fault
  /// regime: the machine schedules around failures and still matches Dinic
  /// on the fault-masked network). Fault-*unaware* elements see the
  /// physical occupancy only, so tokens entering a failed element are
  /// silently swallowed — the regime where, without a watchdog, the machine
  /// would spin forever waiting for tokens that never return.
  bool fault_aware = true;
  /// Upper bound on clock periods per scheduling cycle; 0 derives a bound
  /// from the network size (every phase makes progress within a few clocks
  /// per link, over at most min(P, R) iterations). On exhaustion the
  /// watchdog aborts the cycle cleanly, keeping the allocation registered
  /// so far — unless the network is fault-free and the elements are
  /// fault-aware, in which case exhaustion indicates a library bug and a
  /// diagnosable std::logic_error is thrown instead.
  std::int64_t max_clock_periods = 0;
};

/// The distributed scheduler. Stateless between calls; each run() simulates
/// one full scheduling cycle on the problem's network snapshot.
class TokenMachine {
 public:
  explicit TokenMachine(const core::Problem& problem,
                        TokenOptions options = {});

  /// Runs a scheduling cycle; returns the resulting (realizable) schedule.
  /// Bounded by the watchdog clock budget: a cycle that stops making
  /// progress (lost tokens, stuck bus) is aborted and the partial
  /// allocation found so far is returned, with the abort diagnosed in
  /// `stats`.
  core::ScheduleResult run(TokenStats* stats = nullptr);

 private:
  enum class LinkState : std::uint8_t { kFree, kRegistered, kOccupied };
  /// Request-token traversal mark on a link within the current iteration.
  enum class Traversal : std::uint8_t { kNone, kForward, kBackward };

  struct Element {  // discriminated reference into the physical network
    topo::NodeKind kind;
    std::int32_t index;
  };

  [[nodiscard]] Element link_sender(topo::LinkId link, Traversal t) const;
  [[nodiscard]] Element link_receiver(topo::LinkId link, Traversal t) const;

  void start_cycle();
  /// One request-token phase; returns ids of RSs reached (empty = done).
  std::vector<topo::ResourceId> request_token_phase(TokenStats* stats);
  /// One resource-token phase; returns the augmenting paths found, each as
  /// the ordered links from RS back to the RQ it bonded.
  struct FoundPath {
    topo::ResourceId resource;
    topo::ProcessorId processor;
    std::vector<topo::LinkId> links;  // in traversal order (RS -> RQ)
  };
  std::vector<FoundPath> resource_token_phase(
      const std::vector<topo::ResourceId>& reached, TokenStats* stats);
  void register_paths(const std::vector<FoundPath>& paths);

  [[nodiscard]] std::uint8_t bus_bits(bool e3, bool e4, bool e5,
                                      bool e6) const;
  void sample_bus(TokenStats* stats, std::int64_t clock, bool e3, bool e4,
                  bool e5, bool e6, const std::string& label) const;

  core::ScheduleResult trace_circuits() const;

  /// Charges `periods` clock ticks against the watchdog budget; returns
  /// false (and arms the abort) when the budget is exhausted.
  bool charge_clock(std::int64_t periods, const char* phase);

  const core::Problem& problem_;
  const topo::Network& net_;
  TokenOptions options_;

  // Watchdog state.
  std::int64_t clock_budget_ = 0;
  std::int64_t clock_used_ = 0;
  std::int64_t lost_tokens_ = 0;
  bool aborted_ = false;
  std::string abort_phase_;

  std::vector<LinkState> link_state_;
  std::vector<char> rq_pending_;  // per processor
  std::vector<char> rq_bonded_;
  std::vector<char> rs_ready_;  // per resource
  std::vector<char> rs_bonded_;

  // Per-iteration marking state.
  std::vector<Traversal> traversed_;  // request-token direction per link
  std::vector<char> recv_accepted_;   // receiving element took the token
  std::vector<char> cleared_;         // marking erased by a backtrack
  std::vector<char> reserved_;        // claimed by a resource token
};

/// core::Scheduler adapter: lets the distributed architecture drive the
/// discrete-event system simulation and the Monte-Carlo experiments side by
/// side with the software schedulers. `operations` in the returned schedule
/// holds the cycle's clock-period count (the architecture's cost unit).
class TokenScheduler final : public core::Scheduler {
 public:
  explicit TokenScheduler(TokenOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "token-machine"; }

  core::ScheduleResult schedule(const core::Problem& problem) override {
    TokenMachine machine(problem, options_);
    TokenStats stats;
    core::ScheduleResult result = machine.run(&stats);
    result.operations = stats.clock_periods;
    if (obs_clock_periods_ != nullptr) {
      obs_clock_periods_->add(stats.clock_periods);
      obs_iterations_->add(stats.iterations);
      obs_tokens_->add(stats.tokens_propagated);
      if (stats.watchdog_fired) obs_watchdog_->add();
    }
    return result;
  }

  void bind_obs(const obs::Handle& handle) override {
    if (!handle.enabled()) {
      obs_clock_periods_ = obs_iterations_ = obs_tokens_ = obs_watchdog_ =
          nullptr;
      return;
    }
    obs::Registry& registry = *handle.registry;
    obs_clock_periods_ = &registry.counter("token.clock_periods");
    obs_iterations_ = &registry.counter("token.iterations");
    obs_tokens_ = &registry.counter("token.tokens_propagated");
    obs_watchdog_ = &registry.counter("token.watchdog_fired");
  }

 private:
  TokenOptions options_;
  obs::Counter* obs_clock_periods_ = nullptr;
  obs::Counter* obs_iterations_ = nullptr;
  obs::Counter* obs_tokens_ = nullptr;
  obs::Counter* obs_watchdog_ = nullptr;
};

}  // namespace rsin::token
