#include "token/registered_trace.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rsin::token {

core::ScheduleResult trace_registered_circuits(
    const core::Problem& problem,
    const std::vector<std::uint8_t>& link_registered,
    const std::vector<std::uint8_t>& rq_bonded,
    const std::vector<std::uint8_t>& rs_bonded) {
  const topo::Network& net = *problem.network;
  std::vector<std::uint8_t> consumed(
      static_cast<std::size_t>(net.link_count()), 0);
  core::ScheduleResult result;

  for (const core::Request& request : problem.requests) {
    if (!rq_bonded[static_cast<std::size_t>(request.processor)]) continue;
    const topo::LinkId start = net.processor_link(request.processor);
    RSIN_ENSURE(start != topo::kInvalidId &&
                    link_registered[static_cast<std::size_t>(start)],
                "bonded RQ without a registered output link");
    topo::Circuit circuit;
    circuit.processor = request.processor;
    circuit.links.push_back(start);
    consumed[static_cast<std::size_t>(start)] = 1;
    topo::PortRef at = net.link(start).to;
    while (at.kind == topo::NodeKind::kSwitch) {
      bool advanced = false;
      for (const topo::LinkId out : net.switch_out_links(at.node)) {
        if (out == topo::kInvalidId) continue;
        const auto i = static_cast<std::size_t>(out);
        if (!link_registered[i] || consumed[i]) continue;
        consumed[i] = 1;
        circuit.links.push_back(out);
        at = net.link(out).to;
        advanced = true;
        break;
      }
      RSIN_ENSURE(advanced, "registered-link conservation violated");
    }
    RSIN_ENSURE(at.kind == topo::NodeKind::kResource,
                "registered path must end at a resource");
    circuit.resource = at.node;
    RSIN_ENSURE(rs_bonded[static_cast<std::size_t>(at.node)],
                "registered path ends at an unbonded resource");

    core::Assignment assignment;
    assignment.request = request;
    const auto resource_it = std::find_if(
        problem.free_resources.begin(), problem.free_resources.end(),
        [&](const core::FreeResource& r) { return r.resource == at.node; });
    RSIN_ENSURE(resource_it != problem.free_resources.end(),
                "bonded resource not in the free set");
    assignment.resource = *resource_it;
    assignment.circuit = std::move(circuit);
    result.assignments.push_back(std::move(assignment));
  }
  result.cost = core::schedule_cost(problem, result);
  return result;
}

}  // namespace rsin::token
