#include "token/hardware_model.hpp"

namespace rsin::token {

HardwareCost estimate_hardware(const topo::Network& net,
                               const HardwareModel& model) {
  HardwareCost cost;
  const auto add_element = [&](std::int64_t ports) {
    ++cost.elements;
    cost.registers += model.state_bits + ports * model.flops_per_port;
    cost.gates += model.gates_per_element + ports * model.gates_per_port;
    cost.bus_taps += model.bus_taps_per_element;
  };

  for (topo::ProcessorId p = 0; p < net.processor_count(); ++p) {
    add_element(1);  // RQ: one output port
  }
  for (topo::ResourceId r = 0; r < net.resource_count(); ++r) {
    add_element(1);  // RS: one input port
  }
  for (topo::SwitchId sw = 0; sw < net.switch_count(); ++sw) {
    add_element(static_cast<std::int64_t>(net.switch_in_links(sw).size()) +
                static_cast<std::int64_t>(net.switch_out_links(sw).size()));
  }
  return cost;
}

}  // namespace rsin::token
