#include "token/monitor.hpp"

#include "core/transform.hpp"

namespace rsin::token {

core::ScheduleResult Monitor::run(const core::Problem& problem,
                                  MonitorStats* stats) const {
  core::TransformResult transformed = core::transformation1(problem);
  if (stats) {
    // One instruction per node and arc materialized from the status scan.
    stats->transform_instructions =
        static_cast<std::int64_t>(transformed.net.node_count()) +
        static_cast<std::int64_t>(transformed.net.arc_count());
  }

  const flow::MaxFlowResult flow_stats =
      flow::max_flow(transformed.net, algorithm_);
  if (stats) stats->flow_instructions = flow_stats.operations;

  core::ScheduleResult result =
      core::extract_schedule(problem, transformed);
  if (stats) {
    std::int64_t steps = 0;
    for (const core::Assignment& assignment : result.assignments) {
      steps += static_cast<std::int64_t>(assignment.circuit.links.size()) + 2;
    }
    stats->extract_instructions = steps;
  }
  result.operations = stats ? stats->total() : flow_stats.operations;
  return result;
}

}  // namespace rsin::token
