// The monitor architecture of Section IV (Fig. 6): a dedicated sequential
// processor that snapshots network status, builds the Transformation-1 flow
// network, runs a software max-flow algorithm, and acknowledges the
// allocated requests.
//
// Its cost model is the paper's: "the implementation is sequential, and the
// overhead is measured by the number of instructions executed in the
// algorithm". We count one instruction per flow-network arc constructed,
// per residual-edge inspection inside the max-flow solver, and per arc
// visited while extracting circuits. The token architecture's cost is
// measured in clock periods instead; bench_token_vs_monitor compares the
// two, reproducing the paper's claimed speedup factors ("augmenting paths
// searched in parallel" and "gate delays instead of instruction cycles").
#pragma once

#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "flow/max_flow.hpp"

namespace rsin::token {

struct MonitorStats {
  std::int64_t transform_instructions = 0;  ///< Flow-network construction.
  std::int64_t flow_instructions = 0;       ///< Max-flow edge inspections.
  std::int64_t extract_instructions = 0;    ///< Circuit tracing.
  [[nodiscard]] std::int64_t total() const {
    return transform_instructions + flow_instructions + extract_instructions;
  }
};

/// Runs one scheduling cycle of the monitor architecture.
class Monitor {
 public:
  explicit Monitor(
      flow::MaxFlowAlgorithm algorithm = flow::MaxFlowAlgorithm::kDinic)
      : algorithm_(algorithm) {}

  core::ScheduleResult run(const core::Problem& problem,
                           MonitorStats* stats = nullptr) const;

 private:
  flow::MaxFlowAlgorithm algorithm_;
};

}  // namespace rsin::token
