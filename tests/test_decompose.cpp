#include "flow/decompose.hpp"

#include <gtest/gtest.h>

#include "flow/max_flow.hpp"
#include "test_helpers.hpp"

namespace rsin::flow {
namespace {

TEST(Decompose, EmptyFlowDecomposesToNothing) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId t = net.add_node("t");
  net.add_arc(s, t, 3);
  net.set_source(s);
  net.set_sink(t);
  const FlowDecomposition d = decompose_flow(net);
  EXPECT_TRUE(d.paths.empty());
  EXPECT_TRUE(d.cycles.empty());
  EXPECT_EQ(d.total_path_flow(), 0);
}

TEST(Decompose, SinglePath) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId a = net.add_node("a");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  net.set_flow(net.add_arc(s, a, 5), 3);
  net.set_flow(net.add_arc(a, t, 5), 3);
  const FlowDecomposition d = decompose_flow(net);
  ASSERT_EQ(d.paths.size(), 1u);
  EXPECT_EQ(d.paths[0].amount, 3);
  EXPECT_EQ(d.paths[0].arcs.size(), 2u);
  EXPECT_TRUE(d.cycles.empty());
}

TEST(Decompose, PureCycleWithoutSourceFlow) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const NodeId c = net.add_node("c");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  net.add_arc(s, a, 1);
  net.set_flow(net.add_arc(a, b, 2), 2);
  net.set_flow(net.add_arc(b, c, 2), 2);
  net.set_flow(net.add_arc(c, a, 2), 2);
  net.add_arc(c, t, 1);
  const FlowDecomposition d = decompose_flow(net);
  EXPECT_TRUE(d.paths.empty());
  ASSERT_EQ(d.cycles.size(), 1u);
  EXPECT_EQ(d.cycles[0].amount, 2);
  EXPECT_EQ(d.cycles[0].arcs.size(), 3u);
}

TEST(Decompose, PathThatPassesThroughCycleIsSplit) {
  // s -> a -> b -> a would violate simple-path tracing; build a flow whose
  // walk from s closes a cycle mid-way: s->a (1), a->b (2), b->a (1), b->t
  // (1). Conservation: a in 1+1=2, out 2; b in 2, out 1+1.
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  net.set_flow(net.add_arc(s, a, 1), 1);
  net.set_flow(net.add_arc(a, b, 2), 2);
  net.set_flow(net.add_arc(b, a, 1), 1);
  net.set_flow(net.add_arc(b, t, 1), 1);
  const FlowDecomposition d = decompose_flow(net);
  EXPECT_EQ(d.total_path_flow(), 1);
  ASSERT_EQ(d.cycles.size(), 1u);
  EXPECT_EQ(d.cycles[0].amount, 1);
}

TEST(Decompose, RejectsIllegalFlow) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId a = net.add_node("a");
  const NodeId t = net.add_node("t");
  net.set_source(s);
  net.set_sink(t);
  net.set_flow(net.add_arc(s, a, 2), 2);
  net.add_arc(a, t, 2);  // conservation violated at a
  EXPECT_THROW(decompose_flow(net), std::invalid_argument);
}

TEST(Decompose, PathsAreContiguousSourceToSink) {
  util::Rng rng(71);
  FlowNetwork net = rsin::test::random_layered_network(rng, 3, 4, 0.6, 4);
  max_flow_dinic(net);
  const FlowDecomposition d = decompose_flow(net);
  for (const FlowPath& path : d.paths) {
    ASSERT_FALSE(path.arcs.empty());
    EXPECT_EQ(net.arc(path.arcs.front()).from, net.source());
    EXPECT_EQ(net.arc(path.arcs.back()).to, net.sink());
    for (std::size_t i = 0; i + 1 < path.arcs.size(); ++i) {
      EXPECT_EQ(net.arc(path.arcs[i]).to, net.arc(path.arcs[i + 1]).from);
    }
    EXPECT_GT(path.amount, 0);
  }
}

class DecomposeRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecomposeRoundTrip, RecomposeIsIdentity) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    FlowNetwork net = rsin::test::random_layered_network(
        rng, static_cast<int>(rng.uniform_int(1, 4)),
        static_cast<int>(rng.uniform_int(2, 5)), 0.6, 5);
    max_flow_dinic(net);
    std::vector<Capacity> original(net.arc_count());
    for (std::size_t a = 0; a < net.arc_count(); ++a) {
      original[a] = net.arc(static_cast<ArcId>(a)).flow;
    }
    const FlowDecomposition d = decompose_flow(net);
    EXPECT_EQ(d.total_path_flow(), net.flow_value());

    recompose_flow(net, d);
    for (std::size_t a = 0; a < net.arc_count(); ++a) {
      EXPECT_EQ(net.arc(static_cast<ArcId>(a)).flow, original[a])
          << "arc " << a << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecomposeRoundTrip,
                         ::testing::Values(81, 82, 83, 84, 85, 86));

}  // namespace
}  // namespace rsin::flow
