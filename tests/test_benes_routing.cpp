#include "topo/benes_routing.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/scheduler.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace rsin::topo {
namespace {

/// Establishes every circuit, asserting link-disjointness on the way.
void establish_all(Network& net, const std::vector<Circuit>& circuits) {
  for (const Circuit& circuit : circuits) {
    ASSERT_TRUE(net.circuit_contiguous(circuit));
    ASSERT_TRUE(net.circuit_free(circuit))
        << "circuits are not link-disjoint";
    net.establish(circuit);
  }
}

std::vector<std::pair<ProcessorId, ResourceId>> permutation_pairs(
    const std::vector<std::int32_t>& perm) {
  std::vector<std::pair<ProcessorId, ResourceId>> pairs;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    pairs.emplace_back(static_cast<ProcessorId>(i), perm[i]);
  }
  return pairs;
}

TEST(BenesRouting, EveryPermutationOfFour) {
  // Exhaustive rearrangeability proof for n=4: all 24 permutations route.
  std::vector<std::int32_t> perm{0, 1, 2, 3};
  int count = 0;
  do {
    Network net = make_benes(4);
    const auto circuits =
        benes_route_permutation(net, permutation_pairs(perm));
    ASSERT_EQ(circuits.size(), 4u);
    establish_all(net, circuits);
    ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(count, 24);
}

TEST(BenesRouting, IdentityAndReversalOfEight) {
  for (const bool reverse : {false, true}) {
    Network net = make_benes(8);
    std::vector<std::int32_t> perm(8);
    std::iota(perm.begin(), perm.end(), 0);
    if (reverse) std::reverse(perm.begin(), perm.end());
    const auto circuits =
        benes_route_permutation(net, permutation_pairs(perm));
    establish_all(net, circuits);
    EXPECT_EQ(net.occupied_link_count(), 8 * 6)
        << "full permutation saturates every boundary";
  }
}

TEST(BenesRouting, RandomPermutationsOfSixteen) {
  util::Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    Network net = make_benes(16);
    std::vector<std::int32_t> perm(16);
    std::iota(perm.begin(), perm.end(), 0);
    rng.shuffle(perm);
    const auto circuits =
        benes_route_permutation(net, permutation_pairs(perm));
    establish_all(net, circuits);
  }
}

TEST(BenesRouting, PartialPairSets) {
  util::Rng rng(43);
  for (int round = 0; round < 20; ++round) {
    Network net = make_benes(8);
    std::vector<std::int32_t> ins{0, 1, 2, 3, 4, 5, 6, 7};
    std::vector<std::int32_t> outs = ins;
    rng.shuffle(ins);
    rng.shuffle(outs);
    const auto k = static_cast<std::size_t>(rng.uniform_int(1, 7));
    std::vector<std::pair<ProcessorId, ResourceId>> pairs;
    for (std::size_t i = 0; i < k; ++i) pairs.emplace_back(ins[i], outs[i]);
    const auto circuits = benes_route_permutation(net, pairs);
    ASSERT_EQ(circuits.size(), k);
    establish_all(net, circuits);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(circuits[i].processor, ins[i]);
      EXPECT_EQ(circuits[i].resource, outs[i]);
    }
  }
}

TEST(BenesRouting, TinyNetwork) {
  Network net = make_benes(2);
  const auto circuits = benes_route_permutation(net, {{0, 1}, {1, 0}});
  establish_all(net, circuits);
}

TEST(BenesRouting, AgreesWithMaxFlowOnFreeFabric) {
  // Rearrangeability implies the flow optimum is min(x, y) on a free Benes
  // for any request/resource sets — and the looping circuits realize it.
  util::Rng rng(44);
  core::MaxFlowScheduler scheduler;
  for (int round = 0; round < 10; ++round) {
    const Network net = make_benes(8);
    std::vector<ProcessorId> requesting;
    std::vector<ResourceId> available;
    for (std::int32_t i = 0; i < 8; ++i) {
      if (rng.bernoulli(0.7)) requesting.push_back(i);
      if (rng.bernoulli(0.7)) available.push_back(i);
    }
    const core::Problem problem =
        core::make_problem(net, requesting, available);
    const auto result = scheduler.schedule(problem);
    EXPECT_EQ(result.allocated(),
              std::min(requesting.size(), available.size()));
  }
}

TEST(BenesRouting, RejectsBadInputs) {
  const Network benes = make_benes(8);
  EXPECT_THROW(benes_route_permutation(benes, {{0, 0}, {0, 1}}),
               std::invalid_argument);  // duplicate processor
  EXPECT_THROW(benes_route_permutation(benes, {{0, 3}, {1, 3}}),
               std::invalid_argument);  // duplicate resource
  EXPECT_THROW(benes_route_permutation(benes, {{0, 9}}),
               std::invalid_argument);  // out of range
  const Network omega = make_omega(8);
  EXPECT_THROW(benes_route_permutation(omega, {{0, 0}}),
               std::invalid_argument);  // wrong stage count
}

}  // namespace
}  // namespace rsin::topo
