#include "topo/dot_export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/routing.hpp"
#include "core/transform.hpp"
#include "flow/max_flow.hpp"
#include "topo/builders.hpp"

namespace rsin {
namespace {

TEST(DotExport, NetworkContainsAllElements) {
  const topo::Network net = topo::make_omega(8);
  std::ostringstream out;
  topo::write_dot(out, net);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("digraph mrsin"), std::string::npos);
  EXPECT_NE(dot.find("p1"), std::string::npos);
  EXPECT_NE(dot.find("p8"), std::string::npos);
  EXPECT_NE(dot.find("r8"), std::string::npos);
  EXPECT_NE(dot.find("sw11"), std::string::npos);
  EXPECT_EQ(dot.find("style=bold"), std::string::npos)
      << "no occupied links on a free network";
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(DotExport, OccupiedLinksRenderBold) {
  topo::Network net = topo::make_omega(8);
  const auto paths = core::enumerate_free_paths(net, 0, 5);
  net.establish(paths.front());
  std::ostringstream out;
  topo::write_dot(out, net);
  EXPECT_NE(out.str().find("style=bold,color=red"), std::string::npos);
}

TEST(DotExport, FlowNetworkShowsFlows) {
  const topo::Network net = topo::make_omega(4);
  const core::Problem problem = core::make_problem(net, {0, 1}, {2, 3});
  core::TransformResult transformed = core::transformation1(problem);
  flow::max_flow_dinic(transformed.net);
  std::ostringstream out;
  flow::write_dot(out, transformed.net);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("digraph flownet"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // source & sink
  EXPECT_NE(dot.find("1/1"), std::string::npos);           // saturated arc
  EXPECT_NE(dot.find("style=bold"), std::string::npos);
}

TEST(DotExport, CostsAppearInLabels) {
  flow::FlowNetwork net;
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net.add_arc(a, b, 2, 7);
  std::ostringstream out;
  flow::write_dot(out, net);
  EXPECT_NE(out.str().find("@7"), std::string::npos);
}

}  // namespace
}  // namespace rsin
