#include "util/combinatorics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rsin::util {
namespace {

TEST(Combinatorics, BinomialSmallValues) {
  EXPECT_EQ(binomial(0, 0).value(), 1u);
  EXPECT_EQ(binomial(5, 0).value(), 1u);
  EXPECT_EQ(binomial(5, 5).value(), 1u);
  EXPECT_EQ(binomial(5, 2).value(), 10u);
  EXPECT_EQ(binomial(10, 3).value(), 120u);
  EXPECT_EQ(binomial(3, 5).value(), 0u);
}

TEST(Combinatorics, BinomialSymmetry) {
  for (unsigned n = 1; n <= 30; ++n) {
    for (unsigned k = 0; k <= n; ++k) {
      EXPECT_EQ(binomial(n, k).value(), binomial(n, n - k).value());
    }
  }
}

TEST(Combinatorics, BinomialPascalIdentity) {
  for (unsigned n = 2; n <= 40; ++n) {
    for (unsigned k = 1; k < n; ++k) {
      EXPECT_EQ(binomial(n, k).value(),
                binomial(n - 1, k - 1).value() + binomial(n - 1, k).value());
    }
  }
}

TEST(Combinatorics, BinomialLargeStillExact) {
  EXPECT_EQ(binomial(52, 5).value(), 2598960u);
  EXPECT_EQ(binomial(60, 30).value(), 118264581564861424ull);
}

TEST(Combinatorics, BinomialOverflowsToNullopt) {
  EXPECT_FALSE(binomial(200, 100).has_value());
}

TEST(Combinatorics, FallingFactorial) {
  EXPECT_EQ(falling_factorial(5, 0).value(), 1u);
  EXPECT_EQ(falling_factorial(5, 2).value(), 20u);
  EXPECT_EQ(falling_factorial(5, 5).value(), 120u);
  EXPECT_EQ(falling_factorial(3, 4).value(), 0u);
  EXPECT_FALSE(falling_factorial(100, 50).has_value());
}

TEST(Combinatorics, MappingCountMatchesPaperFormula) {
  // The paper: C(x,y) * y! mappings for x >= y; equivalently P(x, y).
  // x=8 requests, y=5 resources: C(8,5)*5! = 56*120 = 6720.
  EXPECT_EQ(exhaustive_mapping_count(8, 5).value(), 6720u);
  // Symmetric case y >= x.
  EXPECT_EQ(exhaustive_mapping_count(5, 8).value(), 6720u);
  EXPECT_EQ(exhaustive_mapping_count(0, 5).value(), 1u);
  EXPECT_EQ(exhaustive_mapping_count(3, 3).value(), 6u);
}

TEST(Combinatorics, MappingCountOverflow) {
  EXPECT_FALSE(exhaustive_mapping_count(64, 64).has_value());
}

TEST(Combinatorics, MappingCountLog10AgreesWithExact) {
  const double log_value = exhaustive_mapping_count_log10(8, 5);
  EXPECT_NEAR(std::pow(10.0, log_value), 6720.0, 1.0);
}

TEST(Combinatorics, MappingCountLog10GrowsSuperLinearly) {
  const double n8 = exhaustive_mapping_count_log10(8, 8);
  const double n16 = exhaustive_mapping_count_log10(16, 16);
  const double n64 = exhaustive_mapping_count_log10(64, 64);
  EXPECT_GT(n16, 2 * n8);
  EXPECT_GT(n64, 2 * n16);
}

TEST(Combinatorics, CheckedMul) {
  EXPECT_EQ(checked_mul(6, 7).value(), 42u);
  EXPECT_EQ(checked_mul(0, ~0ull).value(), 0u);
  EXPECT_FALSE(checked_mul(1ull << 40, 1ull << 40).has_value());
}

}  // namespace
}  // namespace rsin::util
