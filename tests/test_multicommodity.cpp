#include "flow/multicommodity.hpp"

#include <gtest/gtest.h>

#include "flow/max_flow.hpp"

namespace rsin::flow {
namespace {

constexpr double kTol = 1e-6;

/// Two commodities sharing a middle bottleneck of capacity 1, with private
/// side routes: LP max is 3 (one shared unit + two private units).
FlowNetwork shared_bottleneck(std::vector<Commodity>& commodities) {
  FlowNetwork net;
  const NodeId s1 = net.add_node("s1");
  const NodeId t1 = net.add_node("t1");
  const NodeId s2 = net.add_node("s2");
  const NodeId t2 = net.add_node("t2");
  const NodeId m = net.add_node("m");
  const NodeId w = net.add_node("w");
  net.add_arc(s1, m, 1);
  net.add_arc(s2, m, 1);
  net.add_arc(m, w, 1);  // shared bottleneck
  net.add_arc(w, t1, 1);
  net.add_arc(w, t2, 1);
  net.add_arc(s1, t1, 1);  // private routes
  net.add_arc(s2, t2, 1);
  commodities = {Commodity{s1, t1, -1, {}}, Commodity{s2, t2, -1, {}}};
  return net;
}

TEST(MultiCommodity, MaxFlowSharedBottleneck) {
  std::vector<Commodity> commodities;
  const FlowNetwork net = shared_bottleneck(commodities);
  const MultiCommodityResult result =
      max_multicommodity_flow(net, commodities);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(result.total_value, 3.0, kTol);
  EXPECT_TRUE(result.integral);
}

TEST(MultiCommodity, SingleCommodityMatchesDinic) {
  // With one commodity the LP must equal the combinatorial max flow.
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const NodeId t = net.add_node("t");
  net.add_arc(s, a, 2);
  net.add_arc(s, b, 3);
  net.add_arc(a, t, 3);
  net.add_arc(b, t, 1);
  const std::vector<Commodity> commodities = {Commodity{s, t, -1, {}}};

  const MultiCommodityResult lp_result =
      max_multicommodity_flow(net, commodities);
  FlowNetwork copy = net;
  copy.set_source(s);
  copy.set_sink(t);
  const MaxFlowResult dinic = max_flow_dinic(copy);
  ASSERT_EQ(lp_result.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(lp_result.total_value, static_cast<double>(dinic.value), kTol);
}

TEST(MultiCommodity, DemandCapsRespected) {
  std::vector<Commodity> commodities;
  const FlowNetwork net = shared_bottleneck(commodities);
  commodities[0].demand = 1;
  commodities[1].demand = 0;
  const MultiCommodityResult result =
      max_multicommodity_flow(net, commodities);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);
  EXPECT_LE(result.commodity_values[0], 1.0 + kTol);
  EXPECT_NEAR(result.commodity_values[1], 0.0, kTol);
}

TEST(MultiCommodity, BundleCapacityIsShared) {
  // Both commodities must cross one shared arc of capacity 1: total <= 1.
  FlowNetwork net;
  const NodeId s1 = net.add_node("s1");
  const NodeId t1 = net.add_node("t1");
  const NodeId s2 = net.add_node("s2");
  const NodeId t2 = net.add_node("t2");
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_arc(s1, a, 5);
  net.add_arc(s2, a, 5);
  net.add_arc(a, b, 1);  // shared
  net.add_arc(b, t1, 5);
  net.add_arc(b, t2, 5);
  const std::vector<Commodity> commodities = {Commodity{s1, t1, -1, {}},
                                              Commodity{s2, t2, -1, {}}};
  const MultiCommodityResult result =
      max_multicommodity_flow(net, commodities);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(result.total_value, 1.0, kTol);
}

TEST(MultiCommodity, MinCostPrefersCheapArcsPerCommodity) {
  FlowNetwork net;
  const NodeId s1 = net.add_node("s1");
  const NodeId t1 = net.add_node("t1");
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_arc(s1, a, 1, 1);
  net.add_arc(a, t1, 1, 1);
  net.add_arc(s1, b, 1, 10);
  net.add_arc(b, t1, 1, 10);
  const std::vector<Commodity> commodities = {Commodity{s1, t1, 1, {}}};
  const MultiCommodityResult result =
      min_cost_multicommodity_flow(net, commodities);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(result.total_cost, 2.0, kTol);
}

TEST(MultiCommodity, MinCostInfeasibleDemand) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId t = net.add_node("t");
  net.add_arc(s, t, 1, 0);
  const std::vector<Commodity> commodities = {Commodity{s, t, 5, {}}};
  const MultiCommodityResult result =
      min_cost_multicommodity_flow(net, commodities);
  EXPECT_EQ(result.status, lp::SolveStatus::kInfeasible);
}

TEST(MultiCommodity, PerCommodityCostOverrides) {
  // Same arc is cheap for commodity 0, expensive for commodity 1.
  FlowNetwork net;
  const NodeId s1 = net.add_node("s1");
  const NodeId t1 = net.add_node("t1");
  const NodeId s2 = net.add_node("s2");
  const NodeId t2 = net.add_node("t2");
  const NodeId a = net.add_node("a");
  const ArcId s1a = net.add_arc(s1, a, 2, 0);
  const ArcId at1 = net.add_arc(a, t1, 2, 0);
  net.add_arc(s2, a, 2, 0);
  net.add_arc(a, t2, 2, 0);
  (void)s1a;
  (void)at1;

  std::vector<Commodity> commodities = {Commodity{s1, t1, 1, {}},
                                        Commodity{s2, t2, 1, {}}};
  commodities[1].costs.assign(net.arc_count(), 3);
  const MultiCommodityResult result =
      min_cost_multicommodity_flow(net, commodities);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);
  // Commodity 1 pays 3 per unit on each of its two arcs.
  EXPECT_NEAR(result.total_cost, 6.0, kTol);
}

TEST(MultiCommodity, SequentialOrderMatters) {
  // Commodity A has a private route; commodity B only the shared one.
  // Greedy in order (B, A) succeeds fully; order (A, B) can still succeed
  // here, so craft asymmetry: A routed first grabs the shared arc.
  FlowNetwork net;
  const NodeId s1 = net.add_node("s1");
  const NodeId t1 = net.add_node("t1");
  const NodeId s2 = net.add_node("s2");
  const NodeId t2 = net.add_node("t2");
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_arc(s1, a, 1);
  net.add_arc(a, b, 1);  // shared bottleneck, the only route for B
  net.add_arc(b, t1, 1);
  net.add_arc(s2, a, 1);
  net.add_arc(b, t2, 1);
  std::vector<Commodity> commodities = {Commodity{s1, t1, -1, {}},
                                        Commodity{s2, t2, -1, {}}};

  const auto seq = sequential_multicommodity_flow(net, commodities);
  EXPECT_EQ(seq[0] + seq[1], 1) << "greedy: first commodity starves second";
  const MultiCommodityResult lp_result =
      max_multicommodity_flow(net, commodities);
  EXPECT_NEAR(lp_result.total_value, 1.0, kTol)
      << "here even the LP can only route one unit";
}

TEST(MultiCommodity, SequentialRespectsDemand) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId t = net.add_node("t");
  net.add_arc(s, t, 5);
  const std::vector<Commodity> commodities = {Commodity{s, t, 2, {}}};
  const auto values = sequential_multicommodity_flow(net, commodities);
  EXPECT_EQ(values[0], 2);
}

TEST(MultiCommodity, ValidationErrors) {
  FlowNetwork net;
  const NodeId s = net.add_node("s");
  const NodeId t = net.add_node("t");
  net.add_arc(s, t, 1);
  EXPECT_THROW(max_multicommodity_flow(net, {}), std::invalid_argument);
  EXPECT_THROW(max_multicommodity_flow(net, {Commodity{s, s, -1, {}}}),
               std::invalid_argument);
  Commodity bad_costs{s, t, -1, {1, 2, 3}};  // wrong size
  EXPECT_THROW(max_multicommodity_flow(net, {bad_costs}),
               std::invalid_argument);
  EXPECT_THROW(min_cost_multicommodity_flow(net, {Commodity{s, t, -1, {}}}),
               std::invalid_argument)
      << "min-cost requires demands";
}

}  // namespace
}  // namespace rsin::flow
