#include "flow/bipartite.hpp"

#include <gtest/gtest.h>

#include "flow/max_flow.hpp"
#include "util/rng.hpp"

namespace rsin::flow {
namespace {

TEST(HopcroftKarp, EmptyGraph) {
  const BipartiteGraph graph(3, 3);
  const MatchingResult result = hopcroft_karp(graph);
  EXPECT_EQ(result.size, 0);
  EXPECT_EQ(result.phases, 0);
}

TEST(HopcroftKarp, PerfectMatchingOnIdentity) {
  BipartiteGraph graph(4, 4);
  for (std::int32_t i = 0; i < 4; ++i) graph.add_edge(i, i);
  const MatchingResult result = hopcroft_karp(graph);
  EXPECT_EQ(result.size, 4);
  for (std::int32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(result.match_left[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(result.match_right[static_cast<std::size_t>(i)], i);
  }
}

TEST(HopcroftKarp, RequiresAugmentingChain) {
  // l0-{r0}, l1-{r0,r1}, l2-{r1,r2}: perfect matching needs the chain.
  BipartiteGraph graph(3, 3);
  graph.add_edge(0, 0);
  graph.add_edge(1, 0);
  graph.add_edge(1, 1);
  graph.add_edge(2, 1);
  graph.add_edge(2, 2);
  const MatchingResult result = hopcroft_karp(graph);
  EXPECT_EQ(result.size, 3);
  EXPECT_EQ(result.match_left[0], 0);
  EXPECT_EQ(result.match_left[1], 1);
  EXPECT_EQ(result.match_left[2], 2);
}

TEST(HopcroftKarp, DeficientSide) {
  BipartiteGraph graph(2, 5);
  for (std::int32_t r = 0; r < 5; ++r) {
    graph.add_edge(0, r);
    graph.add_edge(1, r);
  }
  EXPECT_EQ(hopcroft_karp(graph).size, 2);
}

TEST(HopcroftKarp, KonigStyleBottleneck) {
  // Three lefts all restricted to the same two rights: matching 2.
  BipartiteGraph graph(3, 4);
  for (std::int32_t l = 0; l < 3; ++l) {
    graph.add_edge(l, 0);
    graph.add_edge(l, 1);
  }
  EXPECT_EQ(hopcroft_karp(graph).size, 2);
}

TEST(HopcroftKarp, MatchingIsConsistent) {
  util::Rng rng(91);
  BipartiteGraph graph(8, 8);
  for (std::int32_t l = 0; l < 8; ++l) {
    for (std::int32_t r = 0; r < 8; ++r) {
      if (rng.bernoulli(0.4)) graph.add_edge(l, r);
    }
  }
  const MatchingResult result = hopcroft_karp(graph);
  std::int32_t counted = 0;
  for (std::size_t l = 0; l < 8; ++l) {
    const std::int32_t r = result.match_left[l];
    if (r == -1) continue;
    ++counted;
    EXPECT_EQ(result.match_right[static_cast<std::size_t>(r)],
              static_cast<std::int32_t>(l));
  }
  EXPECT_EQ(counted, result.size);
}

TEST(HopcroftKarp, RejectsBadVertices) {
  BipartiteGraph graph(2, 2);
  EXPECT_THROW(graph.add_edge(-1, 0), std::invalid_argument);
  EXPECT_THROW(graph.add_edge(0, 2), std::invalid_argument);
  EXPECT_THROW(BipartiteGraph(-1, 2), std::invalid_argument);
}

class HopcroftKarpSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HopcroftKarpSweep, MatchesMaxFlowOnRandomBipartiteGraphs) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const auto n_left = static_cast<std::int32_t>(rng.uniform_int(1, 10));
    const auto n_right = static_cast<std::int32_t>(rng.uniform_int(1, 10));
    const double density = rng.uniform(0.1, 0.7);

    BipartiteGraph graph(n_left, n_right);
    FlowNetwork net;
    const NodeId s = net.add_node("s");
    const NodeId t = net.add_node("t");
    net.set_source(s);
    net.set_sink(t);
    std::vector<NodeId> lefts;
    std::vector<NodeId> rights;
    for (std::int32_t l = 0; l < n_left; ++l) {
      lefts.push_back(net.add_node("l" + std::to_string(l)));
      net.add_arc(s, lefts.back(), 1);
    }
    for (std::int32_t r = 0; r < n_right; ++r) {
      rights.push_back(net.add_node("r" + std::to_string(r)));
      net.add_arc(rights.back(), t, 1);
    }
    for (std::int32_t l = 0; l < n_left; ++l) {
      for (std::int32_t r = 0; r < n_right; ++r) {
        if (!rng.bernoulli(density)) continue;
        graph.add_edge(l, r);
        net.add_arc(lefts[static_cast<std::size_t>(l)],
                    rights[static_cast<std::size_t>(r)], 1);
      }
    }
    const MatchingResult matching = hopcroft_karp(graph);
    EXPECT_EQ(static_cast<Capacity>(matching.size),
              max_flow_dinic(net).value)
        << "seed " << GetParam() << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HopcroftKarpSweep,
                         ::testing::Values(401, 402, 403, 404, 405, 406));

}  // namespace
}  // namespace rsin::flow
