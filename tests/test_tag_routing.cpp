#include "topo/tag_routing.hpp"

#include <gtest/gtest.h>

#include "core/routing.hpp"
#include "topo/builders.hpp"

namespace rsin::topo {
namespace {

TEST(TagRouting, MatchesPathEnumerationOnEveryPair) {
  for (const std::int32_t n : {4, 8, 16}) {
    const Network net = make_omega(n);
    for (ProcessorId p = 0; p < n; ++p) {
      for (ResourceId r = 0; r < n; ++r) {
        const Circuit tagged = omega_destination_tag_route(net, p, r);
        EXPECT_TRUE(net.circuit_contiguous(tagged));
        const auto enumerated = core::enumerate_free_paths(net, p, r);
        ASSERT_EQ(enumerated.size(), 1u);
        EXPECT_EQ(tagged.links, enumerated.front().links)
            << 'n' << n << " p" << p << " r" << r;
      }
    }
  }
}

TEST(TagRouting, IgnoresOccupancy) {
  Network net = make_omega(8);
  const Circuit circuit = omega_destination_tag_route(net, 0, 5);
  net.establish(circuit);
  // Tag routing still computes the same (now occupied) circuit.
  const Circuit again = omega_destination_tag_route(net, 0, 5);
  EXPECT_EQ(circuit.links, again.links);
  EXPECT_FALSE(net.circuit_free(again));
}

TEST(TagRouting, RejectsNonOmegaShapes) {
  const Network crossbar = make_crossbar(8, 8);
  EXPECT_THROW(omega_destination_tag_route(crossbar, 0, 0),
               std::invalid_argument);
  const Network benes = make_benes(8);  // 2m-1 stages, not m
  EXPECT_THROW(omega_destination_tag_route(benes, 0, 0),
               std::invalid_argument);
  const Network omega = make_omega(8);
  EXPECT_THROW(omega_destination_tag_route(omega, 17, 0),
               std::invalid_argument);
}

TEST(TagRouting, ExtraStageOmegaIsRejected) {
  // With a redundant stage the tag is no longer m bits; the helper is
  // deliberately restricted to the canonical shape.
  const Network extra = make_omega(8, 1);
  EXPECT_THROW(omega_destination_tag_route(extra, 0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rsin::topo
