#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include "core/hetero.hpp"
#include "core/routing.hpp"
#include "core/scheduler.hpp"
#include "topo/builders.hpp"

namespace rsin::core {
namespace {

Problem priority_problem(const topo::Network& net) {
  Problem problem;
  problem.network = &net;
  problem.requests = {{0, 7, 0}, {2, 3, 0}};
  problem.free_resources = {{1, 9, 0}, {5, 4, 0}};
  return problem;
}

TEST(ScheduleCost, UsesPaperFormula) {
  const topo::Network net = topo::make_omega(8);
  const Problem problem = priority_problem(net);
  MinCostScheduler scheduler;
  const ScheduleResult result = scheduler.schedule(problem);
  // cost = sum (y_max - y_p) + (q_max - q_w); recompute independently.
  std::int64_t expected = 0;
  for (const Assignment& a : result.assignments) {
    expected += (7 - a.request.priority) + (9 - a.resource.preference);
  }
  EXPECT_EQ(schedule_cost(problem, result), expected);
  EXPECT_EQ(result.cost, expected);
}

TEST(ScheduleCost, EmptyScheduleIsFree) {
  const topo::Network net = topo::make_omega(8);
  const Problem problem = priority_problem(net);
  ScheduleResult empty;
  EXPECT_EQ(schedule_cost(problem, empty), 0);
}

TEST(EstablishSchedule, OccupiesEveryCircuitLink) {
  topo::Network net = topo::make_omega(8);
  const Problem problem = make_problem(net, {0, 3, 5}, {1, 4, 6});
  MaxFlowScheduler scheduler;
  const ScheduleResult result = scheduler.schedule(problem);
  ASSERT_EQ(result.allocated(), 3u);
  establish_schedule(net, result);
  std::size_t expected_links = 0;
  for (const Assignment& a : result.assignments) {
    expected_links += a.circuit.links.size();
    EXPECT_FALSE(net.circuit_free(a.circuit));
  }
  EXPECT_EQ(static_cast<std::size_t>(net.occupied_link_count()),
            expected_links);
}

TEST(EstablishSchedule, SecondEstablishThrows) {
  topo::Network net = topo::make_omega(8);
  const Problem problem = make_problem(net, {0}, {2});
  MaxFlowScheduler scheduler;
  const ScheduleResult result = scheduler.schedule(problem);
  establish_schedule(net, result);
  EXPECT_THROW(establish_schedule(net, result), std::invalid_argument);
}

TEST(VerifySchedule, EmptyScheduleAlwaysValid) {
  const topo::Network net = topo::make_omega(8);
  const Problem problem = make_problem(net, {0, 1}, {2, 3});
  EXPECT_FALSE(verify_schedule(problem, ScheduleResult{}).has_value());
}

TEST(VerifySchedule, DetectsOccupiedCircuit) {
  topo::Network net = topo::make_omega(8);
  const Problem problem = make_problem(net, {0}, {2});
  MaxFlowScheduler scheduler;
  const ScheduleResult result = scheduler.schedule(problem);
  // Occupy one of the circuit's links after scheduling.
  net.occupy_link(result.assignments[0].circuit.links[1]);
  const auto violation = verify_schedule(problem, result);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("occupied"), std::string::npos);
}

TEST(VerifySchedule, DetectsTypeMismatch) {
  const topo::Network net = topo::make_omega(8);
  Problem problem;
  problem.network = &net;
  problem.requests = {{0, 0, 1}};
  problem.free_resources = {{2, 0, 1}};
  HeteroSequentialScheduler scheduler;
  ScheduleResult result = scheduler.schedule(problem);
  ASSERT_EQ(result.allocated(), 1u);
  result.assignments[0].request.type = 0;  // forge a mismatch
  const auto violation = verify_schedule(problem, result);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("type"), std::string::npos);
}

TEST(VerifySchedule, DetectsUnknownParticipants) {
  const topo::Network net = topo::make_omega(8);
  const Problem problem = make_problem(net, {0}, {2});
  MaxFlowScheduler scheduler;
  const ScheduleResult genuine = scheduler.schedule(problem);

  ScheduleResult wrong_processor = genuine;
  wrong_processor.assignments[0].request.processor = 5;
  wrong_processor.assignments[0].circuit.processor = 5;
  EXPECT_TRUE(verify_schedule(problem, wrong_processor).has_value());
}

TEST(ScheduleResult, AllocatedCountsAssignments) {
  ScheduleResult result;
  EXPECT_EQ(result.allocated(), 0u);
  result.assignments.resize(3);
  EXPECT_EQ(result.allocated(), 3u);
}

}  // namespace
}  // namespace rsin::core
